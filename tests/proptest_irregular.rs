//! Irregular-decomposition conformance suite (DESIGN.md §14).
//!
//! The contract under test: every artifact the pipeline writes —
//! `.msc`, `.seg` and `.msh` — is a pure function of (decomposition,
//! merge plan, persistence), never of the rank count, the thread count,
//! or the block-to-rank assignment. Uniform runs must keep their
//! historical bytes; adaptive and random-tree runs must be
//! byte-identical to their canonical 1-rank/1-thread execution across
//! non-power-of-two rank counts; and glue over an irregular 3-block
//! L-shaped split must not care which block roots the merge or in what
//! order the neighbor graph is contracted.

use morse_smale_parallel::complex::build::build_block_complex;
use morse_smale_parallel::complex::glue::glue_all;
use morse_smale_parallel::complex::MsComplex;
use morse_smale_parallel::core::{
    full_merge_plan, msh_output_path, run_parallel, seg_output_path, DecompMode, Input, MergePlan,
    PipelineParams,
};
use morse_smale_parallel::grid::{Decomposition, Dims, ScalarField};
use morse_smale_parallel::morse::TraceLimits;
use morse_smale_parallel::oracle::fingerprint;
use morse_smale_parallel::synth;
use proptest::prelude::*;
use std::sync::Arc;

/// Non-power-of-two rank counts are the interesting ones: they exercise
/// LPT assignments that are not permutations of the block-cyclic map.
const RANKS: [u32; 5] = [1, 2, 3, 4, 6];
const THREADS: [u32; 3] = [1, 2, 4];

/// Run the pipeline at one configuration, writing real files, and
/// return the raw bytes of the three artifacts. The invariant checker
/// is on and must come back clean.
fn artifacts(
    field: &Arc<ScalarField>,
    decomp: DecompMode,
    blocks: u32,
    ranks: u32,
    threads: u32,
    tag: &str,
) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let plan = if decomp.is_uniform() {
        MergePlan::full_merge(blocks)
    } else {
        full_merge_plan(blocks)
    };
    let params = PipelineParams {
        persistence_frac: 0.05,
        plan,
        decomp,
        threads: Some(threads as usize),
        check: true,
        segment: true,
        hierarchy: true,
        ..Default::default()
    };
    let mut path = std::env::temp_dir();
    path.push(format!(
        "msp_irr_{}_{tag}_{ranks}r{threads}t.msc",
        std::process::id()
    ));
    let r = run_parallel(
        &Input::Memory(field.clone()),
        ranks,
        blocks,
        &params,
        Some(&path),
    )
    .unwrap();
    for key in [
        "check_structural",
        "check_euler",
        "check_boundary",
        "check_vpath",
        "check_segment",
        "check_hierarchy",
    ] {
        assert_eq!(
            r.telemetry.counter_total(key),
            0,
            "{tag} {ranks}r/{threads}t: {key} violations"
        );
    }
    let seg_path = seg_output_path(&path);
    let msh_path = msh_output_path(&path);
    let msc = std::fs::read(&path).unwrap();
    let seg = std::fs::read(&seg_path).unwrap();
    let msh = std::fs::read(&msh_path).unwrap();
    for p in [&path, &seg_path, &msh_path] {
        std::fs::remove_file(p).ok();
    }
    (msc, seg, msh)
}

/// Sweep the full rank x thread matrix and require every run's three
/// artifacts to equal the canonical 1-rank/1-thread bytes.
fn assert_byte_identical(field: &Arc<ScalarField>, decomp: DecompMode, blocks: u32, tag: &str) {
    let canon = artifacts(field, decomp, blocks, 1, 1, tag);
    for ranks in RANKS {
        for threads in THREADS {
            if (ranks, threads) == (1, 1) {
                continue;
            }
            let got = artifacts(field, decomp, blocks, ranks, threads, tag);
            assert_eq!(
                got.0, canon.0,
                "{tag}: .msc differs at {ranks} ranks / {threads} threads"
            );
            assert_eq!(
                got.1, canon.1,
                "{tag}: .seg differs at {ranks} ranks / {threads} threads"
            );
            assert_eq!(
                got.2, canon.2,
                "{tag}: .msh differs at {ranks} ranks / {threads} threads"
            );
        }
    }
}

#[test]
fn uniform_artifacts_are_byte_identical_across_ranks_and_threads() {
    let field = Arc::new(synth::white_noise(Dims::new(9, 8, 7), 41));
    assert_byte_identical(&field, DecompMode::Uniform, 8, "uniform");
}

#[test]
fn adaptive_artifacts_are_byte_identical_across_ranks_and_threads() {
    // 6 blocks: a non-power-of-two count, so the merge is the
    // neighbor-graph contraction and the assignment is LPT over
    // feature-weight costs
    let field = Arc::new(synth::white_noise(Dims::new(9, 8, 7), 41));
    assert_byte_identical(&field, DecompMode::Adaptive, 6, "adaptive");
}

/// Per-block compacted complexes over an arbitrary decomposition.
fn block_complexes(field: &ScalarField, d: &Decomposition) -> Vec<MsComplex> {
    d.blocks()
        .iter()
        .map(|b| {
            let (mut ms, _) =
                build_block_complex(&field.extract_block(b), d, TraceLimits::default());
            ms.compact();
            ms
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random irregular trees: the two artifact-defining rank counts
    /// (canonical 1 and a non-power-of-two 5-of-5) agree bit for bit.
    #[test]
    fn random_tree_artifacts_are_byte_identical(seed in 0u64..10_000) {
        let field = Arc::new(synth::plateau(Dims::new(8, 7, 9), seed, 3));
        let decomp = DecompMode::RandomTree { seed };
        let canon = artifacts(&field, decomp, 5, 1, 1, "rt");
        for (ranks, threads) in [(3u32, 2u32), (5, 1)] {
            let got = artifacts(&field, decomp, 5, ranks, threads, "rt");
            prop_assert_eq!(&got.0, &canon.0, ".msc differs at {} ranks", ranks);
            prop_assert_eq!(&got.1, &canon.1, ".seg differs at {} ranks", ranks);
            prop_assert_eq!(&got.2, &canon.2, ".msh differs at {} ranks", ranks);
        }
    }

    /// Glue over a 3-block irregular (L-shaped) split is root- and
    /// order-independent: all 6 (root, order) contractions of the
    /// neighbor graph produce the same living content.
    #[test]
    fn glue_is_order_independent_on_irregular_3_block_splits(
        seed in 0u64..10_000,
        fseed in 0u64..1_000_000,
    ) {
        let dims = Dims::new(7, 6, 8);
        let d = Decomposition::random_tree(dims, 3, seed);
        // keep only genuinely L-shaped splits: the second cut ran along
        // a different axis, so all three blocks touch pairwise
        prop_assume!(d.neighbor_edges().len() == 3);
        let field = synth::white_noise(dims, fseed);
        let cs = block_complexes(&field, &d);
        prop_assert_eq!(cs.len(), 3);
        let mut reference = None;
        for root in 0..3usize {
            let others = [(root + 1) % 3, (root + 2) % 3];
            for order in [[others[0], others[1]], [others[1], others[0]]] {
                let mut ms = cs[root].clone();
                let incoming: Vec<MsComplex> =
                    order.iter().map(|&i| cs[i].clone()).collect();
                glue_all(&mut ms, &incoming, &d).unwrap();
                let fp = fingerprint(&ms);
                match &reference {
                    None => reference = Some(fp),
                    Some(r) => prop_assert_eq!(
                        r,
                        &fp,
                        "glue root {} order {:?} diverged",
                        root,
                        order
                    ),
                }
            }
        }
    }
}
