//! The full analysis workflow of the paper's Fig 1, as an integration
//! test: compute in parallel, merge, query features, export for
//! visualization, reload — everything a downstream scientist would do.

use morse_smale_parallel::complex::{export, query, wire};
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::prelude::*;
use std::sync::Arc;

fn hydrogen_run() -> MsComplex {
    let field = Arc::new(synth::hydrogen(33));
    let params = PipelineParams {
        persistence_frac: 0.01,
        plan: MergePlan::full_merge(8),
        ..Default::default()
    };
    run_parallel(&Input::Memory(field), 4, 8, &params, None)
        .unwrap()
        .outputs
        .into_iter()
        .next()
        .unwrap()
}

#[test]
fn feature_queries_compose() {
    let ms = hydrogen_run();
    // the hydrogen-like field has a small set of bright maxima
    let bright = query::nodes_by_index_above(&ms, 3, 100.0);
    assert!(!bright.is_empty() && bright.len() <= 16, "{}", bright.len());
    // ranked features put the brightest alive maxima first
    let top = query::top_k_features(&ms, 3, bright.len());
    assert!(top[0].prominence.is_infinite());
    // filament arcs above the same threshold connect those maxima
    let fil = query::filament_subgraph(&ms, 100.0);
    let stats = query::graph_stats(&ms, &fil);
    assert!(stats.nodes >= bright.len() as u64 / 2);
    // arc-length stats exist and are coherent
    let lens = query::arc_length_stats(&ms).unwrap();
    assert!(lens.count == ms.n_live_arcs());
}

#[test]
fn exports_after_parallel_merge() {
    let ms = hydrogen_run();
    let mut vtk = Vec::new();
    export::write_vtk_to(&ms, &mut vtk).unwrap();
    let text = String::from_utf8(vtk).unwrap();
    assert!(text.contains("DATASET POLYDATA"));
    // every live node appears as a VERTICES cell
    let verts_decl: usize = text
        .lines()
        .find(|l| l.starts_with("VERTICES"))
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(verts_decl as u64, ms.n_live_nodes());
    let mut csv = Vec::new();
    export::write_nodes_csv_to(&ms, &mut csv).unwrap();
    assert_eq!(
        String::from_utf8(csv).unwrap().lines().count() as u64,
        ms.n_live_nodes() + 1
    );
}

#[test]
fn serialization_survives_an_analysis_cycle() {
    let ms = hydrogen_run();
    // serialize -> deserialize -> simplify further -> queries still work
    let bytes = wire::serialize(&ms);
    let mut back = wire::deserialize(&bytes).unwrap();
    back.check_integrity().unwrap();
    simplify(&mut back, SimplifyParams::up_to(255.0)).unwrap();
    back.check_integrity().unwrap();
    let census = back.node_census();
    let chi = census[0] as i64 - census[1] as i64 + census[2] as i64 - census[3] as i64;
    assert_eq!(chi, 1);
    assert!(back.n_live_nodes() <= ms.n_live_nodes());
}

#[test]
fn persistence_curve_reflects_multiresolution() {
    let field = Arc::new(synth::gaussian_bumps(Dims::cube(17), 3, 0.1, 8));
    let r = run_parallel(
        &Input::Memory(field),
        2,
        2,
        &PipelineParams {
            persistence_frac: 0.0, // keep the finest complex
            plan: MergePlan::full_merge(2),
            ..Default::default()
        },
        None,
    )
    .unwrap();
    // the pipeline ships only the coarsest hierarchy level (§IV-F1);
    // the downstream analyst builds a fresh hierarchy by simplifying
    let mut ms = r.outputs.into_iter().next().unwrap();
    simplify(&mut ms, SimplifyParams::up_to(f32::INFINITY)).unwrap();
    let ms = &ms;
    let curve = query::persistence_curve(ms);
    // strictly decreasing node counts, ending at the live count
    assert!(curve.len() > 1);
    for w in curve.windows(2) {
        assert!(w[1].live_nodes < w[0].live_nodes);
    }
    assert_eq!(curve.last().unwrap().live_nodes, ms.n_live_nodes());
    // survivors at threshold 0 include everything recorded in the curve
    assert!(query::nodes_surviving(ms, 0.0) >= ms.n_live_nodes());
}
