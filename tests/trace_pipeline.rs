//! Causal-trace integration tests on the threaded backend: a traced
//! 4-rank, 2-round merge run must produce a trace whose span totals agree
//! with the telemetry recorder, whose message events pair up exactly, and
//! whose Chrome-trace export round-trips through the JSON parser. The
//! critical-path solver is pinned to a hand-constructed scenario with a
//! known longest chain.

use morse_smale_parallel::core::{run_parallel, Input, MergePlan, PipelineParams, RunResult};
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::synth;
use morse_smale_parallel::telemetry::{Json, RankTrace, RunTrace};
use std::sync::Arc;

const RANKS: u32 = 4;

fn traced_run() -> RunResult {
    let input = Input::Memory(Arc::new(synth::gaussian_bumps(Dims::cube(17), 3, 0.12, 41)));
    let params = PipelineParams {
        persistence_frac: 0.02,
        // 4 blocks -> 2 -> 1: two merge rounds
        plan: MergePlan::rounds(vec![2, 2]),
        trace: true,
        ..Default::default()
    };
    run_parallel(&input, RANKS, RANKS, &params, None).unwrap()
}

#[test]
fn trace_span_totals_match_recorder_phase_totals_within_1pct() {
    let r = traced_run();
    let tr = r.trace.as_ref().expect("trace requested");
    assert_eq!(tr.ranks.len(), RANKS as usize);
    for rank in &r.telemetry.ranks {
        let t = tr
            .ranks
            .iter()
            .find(|t| t.rank == rank.rank)
            .unwrap_or_else(|| panic!("rank {} missing from trace", rank.rank));
        assert_eq!(t.unbalanced, 0, "rank {} trace is balanced", rank.rank);
        for (key, rec_s) in &rank.phases {
            // merged (interval-union) seconds: the local stage replays
            // concurrent thread-local spans, whose raw sum can exceed
            // the wall clock; the recorder's buckets hold the union
            let trace_s = t.merged_span_seconds(key);
            let tol = (rec_s * 0.01).max(0.5e-3);
            assert!(
                (trace_s - rec_s).abs() <= tol,
                "rank {} phase '{key}': trace {trace_s}s vs recorder {rec_s}s",
                rank.rank
            );
        }
    }
}

#[test]
fn every_recv_has_a_matching_send_absent_faults() {
    let r = traced_run();
    let tr = r.trace.as_ref().unwrap();
    let m = tr.match_messages();
    assert!(!m.edges.is_empty(), "a 2-round merge moves messages");
    assert!(m.unmatched_sends.is_empty(), "{:?}", m.unmatched_sends);
    assert!(m.unmatched_recvs.is_empty(), "{:?}", m.unmatched_recvs);
    for e in &m.edges {
        assert!(
            e.t_recv_ns >= e.t_send_ns,
            "causality: recv at {} before send at {}",
            e.t_recv_ns,
            e.t_send_ns
        );
    }
}

#[test]
fn chrome_export_round_trips_with_paired_flow_edges() {
    let r = traced_run();
    let tr = r.trace.as_ref().unwrap();
    let dir = std::env::temp_dir().join(format!("msp_trace_it_{}", std::process::id()));
    let path = tr.write(&dir, "trace_pipeline").unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let doc = Json::parse(&text).expect("trace file parses");
    let Json::Obj(top) = &doc else {
        panic!("top level is an object")
    };
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| match v {
            Json::Arr(evs) => evs,
            other => panic!("traceEvents not an array: {other:?}"),
        })
        .expect("traceEvents present");
    assert!(!events.is_empty());
    let ph_of = |ev: &Json, want: &str| -> bool {
        matches!(ev, Json::Obj(pairs)
            if pairs.iter().any(|(k, v)| k == "ph" && matches!(v, Json::Str(s) if s == want)))
    };
    let ids = |want: &str| -> Vec<u64> {
        let mut v: Vec<u64> = events
            .iter()
            .filter(|e| ph_of(e, want))
            .map(|e| match e {
                Json::Obj(pairs) => pairs
                    .iter()
                    .find(|(k, _)| k == "id")
                    .map(|(_, v)| match v {
                        Json::U64(n) => *n,
                        other => panic!("flow id not u64: {other:?}"),
                    })
                    .expect("flow event has id"),
                _ => unreachable!(),
            })
            .collect();
        v.sort_unstable();
        v
    };
    let starts = ids("s");
    let finishes = ids("f");
    assert!(!starts.is_empty(), "flow edges present");
    assert_eq!(starts, finishes, "every flow start has a finish");
    assert_eq!(starts.len(), tr.match_messages().edges.len());
}

#[test]
fn critical_path_is_bounded_by_wall_clock() {
    let r = traced_run();
    let tr = r.trace.as_ref().unwrap();
    let cp = tr.critical_path().expect("non-empty trace has a path");
    assert!(cp.total_ns > 0);
    assert!(cp.total_ns <= cp.wall_ns);
    // the run report carries the same path as structured metadata
    let rendered = r.telemetry.to_json().pretty();
    assert!(
        rendered.contains("critical_path"),
        "telemetry report embeds the critical path"
    );
}

#[test]
fn critical_path_equals_known_longest_chain() {
    // Hand-constructed scenario with one causal choice: rank 0 works
    // 100ns then ships to rank 1, which idled 40ns early on and resumes
    // at the recv. The longest chain is a[0..100] -> (message) ->
    // c[150..400]: 350ns of work on a 400ns wall clock.
    let mut r0 = RankTrace::new(0);
    r0.span("a", 0, 100);
    r0.send(1, 7, 1, 64, 100);
    let mut r1 = RankTrace::new(1);
    r1.span("b", 0, 40);
    r1.span("c", 150, 400);
    r1.recv(0, 7, 1, 64, 150);
    let tr = RunTrace::from_ranks(vec![r0, r1]);
    let cp = tr.critical_path().unwrap();
    assert_eq!(cp.total_ns, 350);
    assert_eq!(cp.wall_ns, 400);
    let steps: Vec<(u32, &str, u64)> = cp
        .steps
        .iter()
        .map(|s| (s.rank, s.key.as_str(), s.dur_ns))
        .collect();
    assert_eq!(steps, vec![(0, "a", 100), (1, "c", 250)]);
}
