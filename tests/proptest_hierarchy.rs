//! Property-based tests of the cancellation hierarchy: for random
//! fields, rank/thread counts in {1, 2, 4} and both merge schedules,
//! the recorded MSH1 artifact must be byte-identical to the serial
//! 1-rank/1-thread run, and prefix replay at any threshold must
//! reproduce a direct simplification of the base complex bit for bit —
//! wire bytes, forward entries, and the remapped segmentation label
//! tables alike.

use morse_smale_parallel::complex::{simplify_with, wire as cwire, CancelOrder, SimplifyParams};
use morse_smale_parallel::core::{run_parallel, Input, MergePlan, PipelineParams, RunResult};
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::hierarchy::{
    compress_forwards, region_sizes, remap_tables, wire as hwire, Ordering,
};
use morse_smale_parallel::segment::wire as segwire;
use morse_smale_parallel::synth;
use proptest::prelude::*;
use std::sync::Arc;

fn run(input: &Input, ranks: u32, blocks: u32, threads: usize, full: bool) -> RunResult {
    let plan = if full {
        MergePlan::full_merge(blocks)
    } else {
        MergePlan::none()
    };
    let params = PipelineParams {
        persistence_frac: 0.0,
        plan,
        threads: Some(threads),
        segment: true,
        hierarchy: true,
        ..Default::default()
    };
    run_parallel(input, ranks, blocks, &params, None).unwrap()
}

fn make_field(kind: usize, dims: Dims, seed: u64) -> morse_smale_parallel::grid::ScalarField {
    match kind {
        0 => synth::white_noise(dims, seed),
        1 => synth::plateau(dims, seed, 4),
        _ => synth::sinusoid_dims(dims, 2),
    }
}

/// The segmentation tables after replaying `forwards` on top of the
/// resolved base tables, as SEG1 bytes (deterministic comparison form).
fn remapped_seg_bytes(r: &RunResult, forwards: &[(u64, u64)]) -> Vec<bytes::Bytes> {
    let resolved = compress_forwards(forwards);
    r.segmentation
        .iter()
        .map(|seg| {
            let mut seg = seg.clone();
            remap_tables(&mut seg, &resolved);
            segwire::serialize(&seg)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn hierarchy_replay_is_bit_identical_across_schedules(
        seed in 0u64..10_000,
        size in 9u32..13,
        kind in 0usize..3,
        ranks_i in 0usize..3,
        threads_i in 0usize..3,
        blocks_exp in 1u32..4,
        full in any::<bool>(),
        frac in 0.0f64..1.0,
    ) {
        let blocks = 1u32 << blocks_exp;
        let ranks = [1u32, 2, 4][ranks_i].min(blocks);
        let threads = [1usize, 2, 4][threads_i];
        let input = Input::Memory(Arc::new(make_field(kind, Dims::cube(size), seed)));
        let want = run(&input, 1, blocks, 1, full);
        let got = run(&input, ranks, blocks, threads, full);

        // the recorded artifact is schedule-independent, byte for byte
        prop_assert_eq!(got.hierarchies.len(), want.hierarchies.len());
        for (i, (g, w)) in got.hierarchies.iter().zip(&want.hierarchies).enumerate() {
            prop_assert_eq!(
                hwire::serialize(g),
                hwire::serialize(w),
                "hierarchy {} with {} ranks / {} threads diverged from serial",
                i, ranks, threads
            );
        }

        // prefix replay at an arbitrary threshold reproduces a direct
        // simplification of the base complex, for every ordering
        let sizes = region_sizes(want.segmentation.iter());
        for (slot, (h, base)) in want.hierarchies.iter().zip(&want.outputs).enumerate() {
            for ordering in h.orderings() {
                let records = h.records(ordering).unwrap();
                let t = match records.len() {
                    0 => f32::INFINITY,
                    n => records[((n - 1) as f64 * frac) as usize].key,
                };
                let m = h.materialize(base, ordering, t).unwrap();
                let mut direct = base.clone();
                let mut order = match ordering {
                    Ordering::Difference => CancelOrder::Difference,
                    Ordering::Count => CancelOrder::Count(sizes.clone()),
                };
                let mut fw = Vec::new();
                simplify_with(
                    &mut direct,
                    SimplifyParams {
                        threshold: t,
                        max_new_arcs: h.params.max_new_arcs,
                        max_parallel_arcs: h.params.max_parallel_arcs,
                    },
                    &mut order,
                    None,
                    Some(&mut fw),
                )
                .unwrap();
                direct.compact();
                prop_assert_eq!(
                    cwire::serialize(&m.complex),
                    cwire::serialize(&direct),
                    "slot {} {:?} replay at t={} diverged from direct simplification",
                    slot, ordering, t
                );
                prop_assert_eq!(&m.forwards, &fw, "slot {} {:?} forwards", slot, ordering);

                // the replayed labels are identical whichever run's
                // artifacts they are derived from
                let a = remapped_seg_bytes(&want, &m.forwards);
                let gm = got.hierarchies[slot]
                    .materialize(&got.outputs[slot], ordering, t)
                    .unwrap();
                let b = remapped_seg_bytes(&got, &gm.forwards);
                prop_assert_eq!(a, b, "slot {} {:?} remapped labels", slot, ordering);
            }
        }
    }
}
