//! Conformance of the full pipeline against the independent reference
//! oracle (satellite of the msp-oracle subsystem; see DESIGN.md §10).
//!
//! Every test drives `morse_smale_parallel::fuzz::run_case`, which per
//! case (a) diffs the production gradient and traced arcs against the
//! naive reference implementation block by block, (b) runs the pipeline
//! at the case's rank/thread/schedule configuration with the invariant
//! checker on and requires zero violation counters, (c) requires the
//! output bytes to equal the canonical 1-rank/1-thread run, and (d)
//! re-checks all invariants plus glue idempotency post-hoc.
//!
//! The grids here are deliberately tiny: the reference oracle is
//! exhaustive and the sweep covers {1,2,4} ranks x {1,2,4} threads x
//! both merge schedules per field.

use morse_smale_parallel::fuzz::run_case;
use morse_smale_parallel::oracle::{Case, DecompKind, FieldKind, Schedule};

const RANKS: [u32; 3] = [1, 2, 4];
const THREADS: [u32; 3] = [1, 2, 4];

fn schedules() -> [Schedule; 2] {
    [Schedule::Full, Schedule::Rounds(vec![2])]
}

fn sweep(kind: FieldKind, dims: [u32; 3], seed: u64, persistence: f32) {
    for ranks in RANKS {
        for threads in THREADS {
            for schedule in schedules() {
                let case = Case {
                    kind: kind.clone(),
                    dims,
                    seed,
                    ranks,
                    blocks: 4,
                    decomp: DecompKind::Uniform,
                    threads,
                    schedule,
                    persistence,
                    hierarchy: false,
                    fault: None,
                };
                case.validate().unwrap();
                run_case(&case).unwrap_or_else(|e| {
                    panic!("case failed:\n{case}--\n{e}");
                });
            }
        }
    }
}

#[test]
fn noise_conforms_across_ranks_threads_and_schedules() {
    sweep(FieldKind::Noise, [6, 7, 6], 2012, 0.05);
}

#[test]
fn plateau_conforms_across_ranks_threads_and_schedules() {
    // adversarial: quantized plateaus, every tie broken by simulation
    // of simplicity
    sweep(FieldKind::Plateau(2), [6, 6, 6], 7, 0.05);
}

#[test]
fn constant_field_conforms_across_ranks_threads_and_schedules() {
    // fully degenerate: one plateau spanning the whole domain
    sweep(FieldKind::Constant, [6, 6, 6], 1, 0.0);
}

#[test]
fn sinusoid_conforms_across_ranks_threads_and_schedules() {
    // saddle-heavy smooth field
    sweep(FieldKind::Sinusoid(2), [7, 7, 7], 1, 0.01);
}

#[test]
fn corpus_reproducers_replay_clean() {
    // The shrunk reproducers shipped in tests/cases/ (also replayed by
    // `oracle_fuzz --replay` in the verify scripts). Embedded with
    // include_str! so the test binary is location-independent.
    for (name, text) in [
        (
            "plateau-multirank.case",
            include_str!("cases/plateau-multirank.case"),
        ),
        (
            "constant-degenerate.case",
            include_str!("cases/constant-degenerate.case"),
        ),
        (
            "sinusoid-fault.case",
            include_str!("cases/sinusoid-fault.case"),
        ),
        (
            "noise-hierarchy.case",
            include_str!("cases/noise-hierarchy.case"),
        ),
        (
            "adaptive-sixblock.case",
            include_str!("cases/adaptive-sixblock.case"),
        ),
        (
            "randomtree-plateau.case",
            include_str!("cases/randomtree-plateau.case"),
        ),
    ] {
        let case: Case = text.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
        run_case(&case).unwrap_or_else(|e| panic!("{name} failed: {e}"));
    }
}
