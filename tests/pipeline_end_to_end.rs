//! End-to-end integration tests spanning every crate: data generation →
//! decomposition → parallel pipeline (threaded backend) → merge → output
//! file → reload → analysis queries.

use morse_smale_parallel::complex::{query, wire};
use morse_smale_parallel::grid::rawio::{write_raw, VolumeDType};
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::prelude::*;
use std::sync::Arc;

fn chi(ms: &MsComplex) -> i64 {
    let c = ms.node_census();
    c[0] as i64 - c[1] as i64 + c[2] as i64 - c[3] as i64
}

#[test]
fn file_input_pipeline_round_trip() {
    // write a raw f32 volume, run the pipeline reading it through
    // subarray views, write the output file, reload and verify
    let dims = Dims::new(17, 13, 11);
    let field = synth::white_noise(dims, 77);
    let mut in_path = std::env::temp_dir();
    in_path.push(format!("msp_it_in_{}.raw", std::process::id()));
    let mut out_path = std::env::temp_dir();
    out_path.push(format!("msp_it_out_{}.msc", std::process::id()));
    write_raw(&in_path, &field, VolumeDType::F32).unwrap();

    let input = Input::File {
        path: in_path.clone(),
        dims,
        dtype: VolumeDType::F32,
    };
    let params = PipelineParams {
        persistence_frac: 0.02,
        plan: MergePlan::rounds(vec![2, 2]),
        ..Default::default()
    };
    let result = run_parallel(&input, 4, 8, &params, Some(&out_path)).unwrap();
    assert_eq!(result.outputs.len(), 2);

    // reload every block from the file and compare to in-memory outputs
    let footer = result.footer.clone().expect("footer written");
    assert_eq!(footer.len(), 2);
    for (entry, expected) in footer.iter().zip(&result.outputs) {
        let payload =
            morse_smale_parallel::vmpi::fileio::read_block_payload(&out_path, entry).unwrap();
        let loaded = wire::deserialize(&payload).unwrap();
        assert_eq!(wire::serialize(&loaded), wire::serialize(expected));
    }
    std::fs::remove_file(&in_path).ok();
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn memory_and_file_inputs_agree() {
    let dims = Dims::new(13, 13, 13);
    let field = synth::gaussian_bumps(dims, 2, 0.15, 5);
    let mut in_path = std::env::temp_dir();
    in_path.push(format!("msp_it_agree_{}.raw", std::process::id()));
    write_raw(&in_path, &field, VolumeDType::F32).unwrap();
    let params = PipelineParams {
        persistence_frac: 0.01,
        plan: MergePlan::full_merge(4),
        ..Default::default()
    };
    let via_mem = run_parallel(&Input::Memory(Arc::new(field)), 4, 4, &params, None).unwrap();
    let via_file = run_parallel(
        &Input::File {
            path: in_path.clone(),
            dims,
            dtype: VolumeDType::F32,
        },
        4,
        4,
        &params,
        None,
    )
    .unwrap();
    assert_eq!(
        wire::serialize(&via_mem.outputs[0]),
        wire::serialize(&via_file.outputs[0]),
        "identical data through either input path must give identical output"
    );
    std::fs::remove_file(&in_path).ok();
}

#[test]
fn serial_vs_parallel_stable_features_across_datasets() {
    // the central correctness claim, checked on three different field
    // families: after full merge + equal simplification, the significant
    // feature census matches the serial run
    let cases: Vec<(&str, ScalarField)> = vec![
        ("bumps", synth::gaussian_bumps(Dims::cube(17), 4, 0.10, 3)),
        ("sinusoid", synth::sinusoid(17, 2)),
        ("porous", synth::porous(17, 2, 0.02, 9)),
    ];
    for (name, field) in cases {
        let input = Input::Memory(Arc::new(field));
        let serial = run_parallel(
            &input,
            1,
            1,
            &PipelineParams {
                persistence_frac: 0.05,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let parallel = run_parallel(
            &input,
            8,
            8,
            &PipelineParams {
                persistence_frac: 0.05,
                plan: MergePlan::full_merge(8),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let (s, p) = (&serial.outputs[0], &parallel.outputs[0]);
        assert_eq!(chi(s), 1, "{name}: serial chi");
        assert_eq!(chi(p), 1, "{name}: parallel chi");
        assert_eq!(
            s.node_census()[3],
            p.node_census()[3],
            "{name}: maxima census"
        );
        assert_eq!(
            s.node_census()[0],
            p.node_census()[0],
            "{name}: minima census"
        );
    }
}

#[test]
fn partial_merge_preserves_block_count_arithmetic() {
    let field = Arc::new(synth::white_noise(Dims::cube(17), 8));
    for (radices, expect) in [
        (vec![2u32], 8),
        (vec![4], 4),
        (vec![2, 4], 2),
        (vec![8, 2], 1),
    ] {
        let params = PipelineParams {
            plan: MergePlan::rounds(radices.clone()),
            ..Default::default()
        };
        let r = run_parallel(&Input::Memory(field.clone()), 8, 16, &params, None).unwrap();
        assert_eq!(
            r.outputs.len(),
            expect,
            "radices {radices:?} over 16 blocks"
        );
        for ms in &r.outputs {
            ms.check_integrity().unwrap();
        }
    }
}

#[test]
fn merged_outputs_unaffected_by_rank_count() {
    // the output must depend only on the decomposition + plan, never on
    // how many OS threads carried the ranks
    let field = Arc::new(synth::jet(Dims::new(24, 28, 16), 48, 7));
    let params = PipelineParams {
        persistence_frac: 0.02,
        plan: MergePlan::rounds(vec![4]),
        ..Default::default()
    };
    let serialized: Vec<Vec<bytes::Bytes>> = [1u32, 2, 4, 8]
        .iter()
        .map(|&p| {
            run_parallel(&Input::Memory(field.clone()), p, 8, &params, None)
                .unwrap()
                .outputs
                .iter()
                .map(wire::serialize)
                .collect()
        })
        .collect();
    for other in &serialized[1..] {
        assert_eq!(other, &serialized[0]);
    }
}

#[test]
fn filament_analysis_on_merged_complex() {
    // cross-crate query check: filament graph statistics on a parallel
    // result behave like those on the serial result
    let field = Arc::new(synth::porous(33, 2, 0.02, 4));
    let params = PipelineParams {
        persistence_frac: 0.02,
        plan: MergePlan::full_merge(8),
        ..Default::default()
    };
    let par = run_parallel(&Input::Memory(field.clone()), 8, 8, &params, None).unwrap();
    let ser = run_parallel(
        &Input::Memory(field),
        1,
        1,
        &PipelineParams {
            persistence_frac: 0.02,
            ..Default::default()
        },
        None,
    )
    .unwrap();
    let fa = query::filament_subgraph(&par.outputs[0], 0.5);
    let fs = query::filament_subgraph(&ser.outputs[0], 0.5);
    let (sa, ss) = (
        query::graph_stats(&par.outputs[0], &fa),
        query::graph_stats(&ser.outputs[0], &fs),
    );
    assert_eq!(sa.components, ss.components, "filament components");
    assert_eq!(sa.cycles, ss.cycles, "filament cycles");
}
