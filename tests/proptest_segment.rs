//! Property-based tests of the Morse-Smale segmentation: for random
//! fields (noise, plateau, constant, sinusoid), rank/thread counts in
//! {1, 2, 4} and both merge schedules, the resolved labeled volumes
//! must be byte-identical to the serial 1-rank/1-thread run of the same
//! schedule, the rounds-to-fixed-point must be partition-independent,
//! and the round count must respect the pointer-jumping bound.

use morse_smale_parallel::core::{run_parallel, Input, MergePlan, PipelineParams};
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::segment::{jump_round_bound, wire as segwire};
use morse_smale_parallel::synth;
use proptest::prelude::*;
use std::sync::Arc;

/// Run the pipeline with segmentation on and return every block's SEG1
/// wire encoding plus the resolution's work counters.
fn run(
    input: &Input,
    ranks: u32,
    blocks: u32,
    threads: usize,
    full: bool,
) -> (Vec<bytes::Bytes>, u64, u64) {
    let plan = if full {
        MergePlan::full_merge(blocks)
    } else {
        MergePlan::none()
    };
    let params = PipelineParams {
        persistence_frac: 0.02,
        plan,
        threads: Some(threads),
        segment: true,
        ..Default::default()
    };
    let r = run_parallel(input, ranks, blocks, &params, None).unwrap();
    let encoded = r.segmentation.iter().map(segwire::serialize).collect();
    let rounds = r.telemetry.ranks[0].counter("seg_rounds");
    let forwards = r.telemetry.counter_total("seg_forwards");
    (encoded, rounds, forwards)
}

fn make_field(kind: usize, dims: Dims, seed: u64) -> morse_smale_parallel::grid::ScalarField {
    match kind {
        0 => synth::white_noise(dims, seed),
        // plateau and constant fields exercise the flat tie-breaking:
        // labels depend entirely on the simulation-of-simplicity order
        1 => synth::plateau(dims, seed, 5),
        2 => synth::constant(dims, 1.5),
        _ => synth::sinusoid_dims(dims, 2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn segmentation_bit_identical_across_ranks_threads_schedules(
        seed in 0u64..10_000,
        size in 9u32..14,
        kind in 0usize..4,
        ranks_i in 0usize..3,
        threads_i in 0usize..3,
        blocks_exp in 1u32..4,
        full in any::<bool>(),
    ) {
        let blocks = 1u32 << blocks_exp;
        let ranks = [1u32, 2, 4][ranks_i].min(blocks);
        let threads = [1usize, 2, 4][threads_i];
        let input = Input::Memory(Arc::new(make_field(kind, Dims::cube(size), seed)));
        let (want, want_rounds, want_fw) = run(&input, 1, blocks, 1, full);
        let (got, got_rounds, got_fw) = run(&input, ranks, blocks, threads, full);
        prop_assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(
                g, w,
                "seg block {} with {} ranks / {} threads diverged from serial",
                i, ranks, threads
            );
        }
        prop_assert_eq!(
            got_rounds, want_rounds,
            "rounds-to-fixed-point must be partition-independent"
        );
        prop_assert_eq!(got_fw, want_fw, "total forwards are schedule-determined");
        prop_assert!(
            got_rounds <= jump_round_bound(got_fw),
            "{} rounds exceeds the pointer-jumping bound {} for {} forwards",
            got_rounds, jump_round_bound(got_fw), got_fw
        );
    }
}

/// Flat-plateau regression: on fields with massive value ties the
/// labels are decided purely by the production two-heap comparison
/// order (simulation of simplicity). A tie-breaking divergence between
/// the labeler and the gradient/simplifier shows up here as a byte
/// difference between rank counts.
#[test]
fn flat_plateau_labels_are_rank_and_thread_independent() {
    for (name, field) in [
        ("constant", synth::constant(Dims::cube(11), 2.5)),
        ("plateau", synth::plateau(Dims::cube(11), 77, 3)),
    ] {
        let input = Input::Memory(Arc::new(field));
        for full in [false, true] {
            let (want, want_rounds, _) = run(&input, 1, 8, 1, full);
            let (got, got_rounds, _) = run(&input, 4, 8, 4, full);
            assert_eq!(got.len(), want.len(), "{name}: block count");
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g, w,
                    "{name}: seg block {i} diverged between 4x4 and serial (full={full})"
                );
            }
            assert_eq!(got_rounds, want_rounds, "{name}: round count (full={full})");
        }
    }
}
