//! Property-based tests of the pipeline layer: merge-plan arithmetic and
//! end-to-end invariants over random plans, block counts and fields.

use morse_smale_parallel::core::{run_parallel, Input, MergePlan, PipelineParams};
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::synth;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_radices() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(prop_oneof![Just(2u32), Just(4), Just(8)], 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plan_arithmetic(radices in arb_radices(), extra in 0u32..4) {
        let plan = MergePlan::rounds(radices.clone());
        let red = plan.reduction();
        prop_assert_eq!(red, radices.iter().product::<u32>());
        // any multiple of the reduction is a valid block count
        let blocks = red * (1 << extra);
        prop_assert_eq!(plan.output_blocks(blocks), blocks / red);
        prop_assert_eq!(plan.output_slots(blocks).len() as u32, blocks / red);
        // group structure is a partition at every round
        let mut alive: Vec<u32> = (0..blocks).collect();
        for r in 0..plan.radices.len() {
            let groups = plan.groups(r, blocks);
            let mut members: Vec<u32> =
                groups.iter().flat_map(|(_, m)| m.iter().copied()).collect();
            members.sort_unstable();
            prop_assert_eq!(&members, &alive);
            alive = groups.iter().map(|(root, _)| *root).collect();
        }
    }

    #[test]
    fn heuristic_plan_properties(exp in 0u32..14) {
        let blocks = 1u32 << exp;
        let plan = MergePlan::full_merge(blocks);
        prop_assert_eq!(plan.reduction(), blocks);
        // radix-8 whenever possible: at most one non-8 round
        let non8 = plan.radices.iter().filter(|&&r| r != 8).count();
        prop_assert!(non8 <= 1);
        // and the smaller radix comes first
        if non8 == 1 {
            prop_assert!(plan.radices[0] != 8);
        }
    }

    #[test]
    fn pipeline_output_block_count(
        seed in 0u64..10_000,
        ranks in 1u32..5,
        rounds in arb_radices(),
    ) {
        let plan = MergePlan::rounds(rounds);
        let blocks = plan.reduction().max(4) * 2;
        prop_assume!(blocks <= 32);
        prop_assume!(blocks.is_multiple_of(plan.reduction()));
        let expected = blocks / plan.reduction();
        let field = Arc::new(synth::white_noise(Dims::cube(13), seed));
        let params = PipelineParams {
            plan,
            ..Default::default()
        };
        let ranks = ranks.min(blocks);
        let r = run_parallel(&Input::Memory(field), ranks, blocks, &params, None).unwrap();
        prop_assert_eq!(r.outputs.len() as u32, expected);
        for ms in &r.outputs {
            ms.check_integrity().unwrap();
            // members of all outputs partition the block set
        }
        let mut members: Vec<u32> = r
            .outputs
            .iter()
            .flat_map(|c| c.member_blocks.iter().copied())
            .collect();
        members.sort_unstable();
        prop_assert_eq!(members, (0..blocks).collect::<Vec<_>>());
    }
}
