//! End-to-end fault-tolerance tests on the threaded backend: injected
//! crashes, dropped and delayed messages, checkpoint-based recovery, and
//! the degraded (absorb) path. The central claim is the acceptance
//! criterion of DESIGN.md §9 — a run that loses a rank mid-merge and
//! recovers from round-boundary checkpoints produces a final complex
//! **bitwise identical** to the fault-free run.

use morse_smale_parallel::complex::wire;
use morse_smale_parallel::core::{run_parallel, FaultConfig, Input, MergePlan, PipelineParams};
use morse_smale_parallel::fault::FaultPlan;
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::synth;
use std::sync::Arc;
use std::time::Duration;

const RANKS: u32 = 4;
const BLOCKS: u32 = 8;

fn test_input() -> Input {
    Input::Memory(Arc::new(synth::gaussian_bumps(Dims::cube(17), 3, 0.12, 41)))
}

fn base_params() -> PipelineParams {
    PipelineParams {
        persistence_frac: 0.02,
        // two rounds: 8 -> 4 -> 2 output blocks, so recovery must carry
        // partially-merged state across a later round correctly
        plan: MergePlan::rounds(vec![2, 2]),
        ..Default::default()
    }
}

fn fault_params(plan: FaultPlan, checkpoint: bool) -> PipelineParams {
    PipelineParams {
        fault: FaultConfig {
            plan: Some(plan),
            checkpoint,
            deadline: Duration::from_millis(400),
        },
        ..base_params()
    }
}

/// Serialized output blocks of a fault-free reference run.
fn reference(input: &Input) -> Vec<bytes::Bytes> {
    run_parallel(input, RANKS, BLOCKS, &base_params(), None)
        .unwrap()
        .outputs
        .iter()
        .map(wire::serialize)
        .collect()
}

fn assert_bitwise_identical(
    input: &Input,
    params: &PipelineParams,
) -> morse_smale_parallel::core::RunResult {
    let want = reference(input);
    let got = run_parallel(input, RANKS, BLOCKS, params, None).unwrap();
    assert_eq!(got.outputs.len(), want.len(), "output block count");
    for (i, (c, w)) in got.outputs.iter().zip(&want).enumerate() {
        assert_eq!(
            wire::serialize(c),
            *w,
            "output block {i} must be bitwise identical to the fault-free run"
        );
    }
    got
}

#[test]
fn crash_during_merge_round_1_recovers_bitwise_identical() {
    // Rank 3 owns blocks 3 and 7, both members shipping to rank 2's
    // roots (2 and 6) in round 1. The crash destroys rank 3's state at
    // the round boundary; rank 2 must detect the dead peer by deadline
    // and replay both slots from rank 3's checkpoint.
    let input = test_input();
    let r = assert_bitwise_identical(&input, &fault_params(FaultPlan::new().crash(3, 1), true));
    let tel = &r.telemetry;
    assert_eq!(tel.counter_total("crashes"), 1);
    assert_eq!(tel.counter_total("retries"), 2, "blocks 3 and 7 recovered");
    assert!(tel.counter_total("rounds_replayed") >= 2);
    assert_eq!(tel.counter_total("blocks_absorbed"), 0);
    assert!(tel.counter_total("checkpoint_bytes") > 0);
    assert!(
        tel.counter_total("recovery_ms") > 0,
        "deadline waits are charged"
    );
}

#[test]
fn crash_of_a_root_rank_recovers_bitwise_identical() {
    // Rank 0 owns the round-1 roots 0 and 4: it loses its state, ships
    // nothing (it has no member slots in round 1), reloads its own
    // checkpoint and carries on gluing as if nothing happened.
    let input = test_input();
    let r = assert_bitwise_identical(&input, &fault_params(FaultPlan::new().crash(0, 1), true));
    let tel = &r.telemetry;
    assert_eq!(tel.counter_total("crashes"), 1);
    assert_eq!(tel.counter_total("retries"), 0, "no message was lost");
    assert!(
        tel.counter_total("rounds_replayed") >= 1,
        "self-recovery replay"
    );
}

#[test]
fn crash_at_the_pre_write_cut_recovers_bitwise_identical() {
    // Round 3 on a 2-round plan = after the last merge, before the
    // write: the fully-merged state must come back from the final cut.
    let input = test_input();
    let r = assert_bitwise_identical(&input, &fault_params(FaultPlan::new().crash(0, 3), true));
    let tel = &r.telemetry;
    assert_eq!(tel.counter_total("crashes"), 1);
    assert_eq!(tel.counter_total("blocks_absorbed"), 0);
}

#[test]
fn spec_parsed_plan_drives_the_same_recovery() {
    // the CLI path: `--faults crash:3@1` goes through FromStr
    let input = test_input();
    let plan: FaultPlan = "crash:3@1".parse().unwrap();
    let r = assert_bitwise_identical(&input, &fault_params(plan, true));
    assert_eq!(r.telemetry.counter_total("crashes"), 1);
}

#[test]
fn dropped_message_is_recovered_from_checkpoint() {
    // the first message rank 3 -> rank 2 (block 3's round-1 ship) is
    // lost in flight; the root times out and replays it from the
    // sender's checkpoint — same bytes, same result
    let input = test_input();
    let r = assert_bitwise_identical(
        &input,
        &fault_params(FaultPlan::new().drop_msg(3, 2, 1), true),
    );
    let tel = &r.telemetry;
    assert_eq!(tel.counter_total("crashes"), 0);
    assert_eq!(tel.counter_total("retries"), 1);
}

#[test]
fn delayed_message_within_deadline_needs_no_recovery() {
    let input = test_input();
    let r = assert_bitwise_identical(
        &input,
        &fault_params(FaultPlan::new().delay_msg(3, 2, 1, 100), true),
    );
    let tel = &r.telemetry;
    assert_eq!(tel.counter_total("retries"), 0);
    assert_eq!(tel.counter_total("rounds_replayed"), 0);
}

#[test]
fn degraded_mode_absorbs_orphaned_blocks_without_checkpoints() {
    // No checkpoints: the crashed rank's blocks are unrecoverable. The
    // run must still complete, reporting the loss instead of hanging or
    // panicking; the roots absorb the orphaned blocks.
    let input = test_input();
    let params = fault_params(FaultPlan::new().crash(3, 1), false);
    let r = run_parallel(&input, RANKS, BLOCKS, &params, None).unwrap();
    let tel = &r.telemetry;
    assert_eq!(tel.counter_total("crashes"), 1);
    assert!(
        tel.counter_total("blocks_absorbed") >= 2,
        "blocks 3 and 7 are lost for good"
    );
    assert_eq!(tel.counter_total("rounds_replayed"), 0);
    assert_eq!(tel.counter_total("checkpoint_bytes"), 0);
    // the run still produces its output blocks (with reduced content)
    assert_eq!(r.outputs.len(), 2);
    for ms in &r.outputs {
        ms.check_integrity().unwrap();
    }
}

#[test]
fn multithreaded_recovery_matches_serial_recovery_bitwise() {
    // The intra-rank parallel local stage must not perturb the recovery
    // path: a crash + checkpoint-recovery run with --threads 4 produces
    // the same bytes as the identical run with --threads 1, and both
    // match the fault-free reference.
    let input = test_input();
    let with_threads = |threads: usize| PipelineParams {
        threads: Some(threads),
        ..fault_params(FaultPlan::new().crash(3, 1), true)
    };
    let serial = run_parallel(&input, RANKS, BLOCKS, &with_threads(1), None).unwrap();
    let threaded = assert_bitwise_identical(&input, &with_threads(4));
    assert_eq!(serial.outputs.len(), threaded.outputs.len());
    for (i, (s, t)) in serial.outputs.iter().zip(&threaded.outputs).enumerate() {
        assert_eq!(
            wire::serialize(s),
            wire::serialize(t),
            "recovered block {i}: threads=4 diverged from threads=1"
        );
    }
    assert_eq!(threaded.telemetry.counter_total("crashes"), 1);
    assert_eq!(threaded.telemetry.counter_total("retries"), 2);
}

#[test]
fn checkpoint_only_run_is_bitwise_clean_and_accounts_bytes() {
    // fault rate 0 with checkpointing on: pure overhead, zero recovery
    let input = test_input();
    let params = PipelineParams {
        fault: FaultConfig {
            plan: None,
            checkpoint: true,
            deadline: Duration::from_millis(400),
        },
        ..base_params()
    };
    let r = assert_bitwise_identical(&input, &params);
    let tel = &r.telemetry;
    // every rank checkpoints at 2 round cuts + the pre-write cut
    assert!(tel.counter_total("checkpoint_bytes") > 0);
    assert_eq!(tel.counter_total("crashes"), 0);
    assert_eq!(tel.counter_total("retries"), 0);
    assert_eq!(tel.counter_total("recovery_ms"), 0);
}
