//! Trace causality under injected faults: dropped messages leave an
//! orphan send plus a receiver timeout event, crash recovery shows up as
//! `recover` spans attributed to the ranks doing the recovering — and in
//! all cases the traced run still produces bit-identical outputs.

use morse_smale_parallel::complex::wire;
use morse_smale_parallel::core::{run_parallel, FaultConfig, Input, MergePlan, PipelineParams};
use morse_smale_parallel::fault::FaultPlan;
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::synth;
use std::sync::Arc;
use std::time::Duration;

const RANKS: u32 = 4;
const BLOCKS: u32 = 8;

fn test_input() -> Input {
    Input::Memory(Arc::new(synth::gaussian_bumps(Dims::cube(17), 3, 0.12, 41)))
}

fn base_params(trace: bool) -> PipelineParams {
    PipelineParams {
        persistence_frac: 0.02,
        plan: MergePlan::rounds(vec![2, 2]),
        trace,
        ..Default::default()
    }
}

fn fault_params(plan: FaultPlan) -> PipelineParams {
    PipelineParams {
        fault: FaultConfig {
            plan: Some(plan),
            checkpoint: true,
            deadline: Duration::from_millis(400),
        },
        ..base_params(true)
    }
}

#[test]
fn dropped_message_leaves_orphan_send_and_timeout_event() {
    let input = test_input();
    let want: Vec<_> = run_parallel(&input, RANKS, BLOCKS, &base_params(false), None)
        .unwrap()
        .outputs
        .iter()
        .map(wire::serialize)
        .collect();

    // round 1: rank 3's block 3 ships to rank 2's root 2; drop it
    let r = run_parallel(
        &input,
        RANKS,
        BLOCKS,
        &fault_params(FaultPlan::new().drop_msg(3, 2, 1)),
        None,
    )
    .unwrap();
    let tr = r.trace.as_ref().expect("trace requested");
    let m = tr.match_messages();
    assert!(
        m.unmatched_sends.iter().any(|s| s.dst == 2),
        "the dropped transfer stays an orphan send: {:?}",
        m.unmatched_sends
    );
    assert!(
        m.unmatched_recvs.is_empty(),
        "no recv without a send: {:?}",
        m.unmatched_recvs
    );
    let t2 = tr.ranks.iter().find(|t| t.rank == 2).unwrap();
    assert!(
        t2.timeouts.iter().any(|t| t.src == 3),
        "rank 2's expired deadline on rank 3 is a trace event: {:?}",
        t2.timeouts
    );
    assert!(
        t2.span_seconds("recover") > 0.0,
        "the checkpoint replay shows as a recover span on rank 2"
    );

    // the trace must be a pure observer: outputs stay bit-identical
    assert_eq!(r.outputs.len(), want.len());
    for (i, (c, w)) in r.outputs.iter().zip(&want).enumerate() {
        assert_eq!(wire::serialize(c), *w, "output block {i} identical");
    }
}

#[test]
fn crash_recovery_attributes_replayed_slots_to_recovering_ranks() {
    let input = test_input();
    // rank 3 dies at the round-1 cut: rank 2 replays blocks 3 and 7 from
    // rank 3's checkpoint; rank 3 reloads its own state and carries on
    let r = run_parallel(
        &input,
        RANKS,
        BLOCKS,
        &fault_params(FaultPlan::new().crash(3, 1)),
        None,
    )
    .unwrap();
    assert_eq!(r.telemetry.counter_total("crashes"), 1);
    let tr = r.trace.as_ref().unwrap();
    let t2 = tr.ranks.iter().find(|t| t.rank == 2).unwrap();
    assert!(
        t2.span_seconds("recover") > 0.0,
        "root rank 2 owns the replay recover span"
    );
    assert!(
        t2.timeouts.iter().any(|t| t.src == 3),
        "detection deadline on the dead peer is recorded"
    );
    let t3 = tr.ranks.iter().find(|t| t.rank == 3).unwrap();
    assert!(
        t3.span_seconds("recover") > 0.0,
        "crashed rank 3 records restoring its own state"
    );
    // the crashed rank never handed its round-1 payloads to the comm
    // layer, so nothing from rank 3 to rank 2 may pair up as delivered
    let m = tr.match_messages();
    assert!(
        !m.edges.iter().any(|e| e.src == 3 && e.dst == 2),
        "no delivered round-1 edge from the crashed rank: {:?}",
        m.edges
    );
}
