//! Property-based tests of the intra-rank parallel local stage: for
//! random fields, rank/block splits and thread counts, `--threads N`
//! must produce output blocks whose wire encodings are byte-identical
//! to `--threads 1` (the exact old serial code path), with matching
//! work counters.

use morse_smale_parallel::complex::wire;
use morse_smale_parallel::core::{run_parallel, Input, MergePlan, PipelineParams};
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::synth;
use proptest::prelude::*;
use std::sync::Arc;

/// Counters that measure work done (not timing) and must not depend on
/// how the local stage was scheduled.
const WORK_COUNTERS: &[&str] = &[
    "cells_paired",
    "critical_cells",
    "arcs_traced",
    "cancellations",
];

fn run(input: &Input, ranks: u32, blocks: u32, threads: usize) -> (Vec<bytes::Bytes>, Vec<u64>) {
    let params = PipelineParams {
        persistence_frac: 0.02,
        plan: MergePlan::full_merge(blocks),
        threads: Some(threads),
        ..Default::default()
    };
    let r = run_parallel(input, ranks, blocks, &params, None).unwrap();
    let encoded = r.outputs.iter().map(wire::serialize).collect();
    let counters = WORK_COUNTERS
        .iter()
        .map(|k| r.telemetry.counter_total(k))
        .collect();
    (encoded, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_local_stage_bit_identical_to_serial(
        seed in 0u64..10_000,
        size in 9u32..17,
        ranks in 1u32..4,
        blocks_exp in 1u32..4,
        threads in 2usize..7,
    ) {
        let blocks = 1u32 << blocks_exp;
        let ranks = ranks.min(blocks);
        let input = Input::Memory(Arc::new(synth::white_noise(Dims::cube(size), seed)));
        let (want, want_ctrs) = run(&input, ranks, blocks, 1);
        let (got, got_ctrs) = run(&input, ranks, blocks, threads);
        prop_assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(
                g, w,
                "output block {} with {} threads diverged from --threads 1",
                i, threads
            );
        }
        prop_assert_eq!(got_ctrs, want_ctrs, "work counters are schedule-independent");
    }
}
