//! Integration tests of the simulation driver's report structure: the
//! quantities the figure binaries print must be internally consistent.

use morse_smale_parallel::core::{simulate, MergePlan, SimParams};
use morse_smale_parallel::grid::Dims;
use morse_smale_parallel::synth;
use morse_smale_parallel::vmpi::{IoParams, NetParams};

fn base_params(plan: MergePlan) -> SimParams {
    SimParams {
        persistence_frac: 0.02,
        plan,
        ..Default::default()
    }
}

#[test]
fn round_reports_match_plan() {
    let f = synth::white_noise(Dims::cube(13), 3);
    let plan = MergePlan::rounds(vec![2, 4]);
    let r = simulate(&f, 16, &base_params(plan.clone())).unwrap();
    assert_eq!(r.rounds.len(), 2);
    assert_eq!(r.rounds[0].radix, 2);
    assert_eq!(r.rounds[1].radix, 4);
    assert_eq!(r.output_blocks, 2);
    for round in &r.rounds {
        assert!(round.comm_s >= 0.0 && round.glue_s >= 0.0);
        assert!(round.round_s >= 0.0);
        assert!(round.bytes_moved > 0, "complexes are never empty");
    }
}

#[test]
fn totals_compose_from_stages() {
    let f = synth::white_noise(Dims::cube(13), 5);
    let r = simulate(&f, 8, &base_params(MergePlan::full_merge(8))).unwrap();
    // total = critical path >= read + compute components, plus write
    assert!(r.total_s >= r.read_s + r.compute_s);
    assert!(r.total_s >= r.write_s);
    // merge critical path includes local simplification
    assert!(r.merge_s >= r.local_simplify_s);
    // threshold is 2% of the noise range (~1.0)
    assert!(r.threshold > 0.0 && r.threshold < 0.1);
}

#[test]
fn read_time_scales_with_dtype() {
    use morse_smale_parallel::grid::rawio::VolumeDType;
    let f = synth::white_noise(Dims::cube(17), 9);
    let mut p8 = base_params(MergePlan::none());
    p8.dtype = VolumeDType::U8;
    let mut p64 = base_params(MergePlan::none());
    p64.dtype = VolumeDType::F64;
    let r8 = simulate(&f, 4, &p8).unwrap();
    let r64 = simulate(&f, 4, &p64).unwrap();
    assert!(
        r64.read_s > r8.read_s,
        "f64 volumes are 8x the bytes of u8 ({} vs {})",
        r64.read_s,
        r8.read_s
    );
}

#[test]
fn network_parameters_influence_merge() {
    let f = synth::sinusoid(17, 2);
    let fast = base_params(MergePlan::full_merge(8));
    let mut slow = base_params(MergePlan::full_merge(8));
    slow.net = NetParams {
        latency_s: 1.0, // absurdly slow network
        ..NetParams::default()
    };
    let rf = simulate(&f, 8, &fast).unwrap();
    let rs = simulate(&f, 8, &slow).unwrap();
    assert!(
        rs.rounds[0].round_s > rf.rounds[0].round_s + 0.5,
        "1s latency must dominate the round time"
    );
}

#[test]
fn io_parameters_influence_read_write() {
    let f = synth::white_noise(Dims::cube(17), 2);
    let fast = base_params(MergePlan::none());
    let mut slow = base_params(MergePlan::none());
    slow.io = IoParams {
        aggregate_bw: 1.0e3, // 1 KB/s filesystem
        per_proc_bw: 1.0e3,
        ..IoParams::default()
    };
    let rf = simulate(&f, 4, &fast).unwrap();
    let rs = simulate(&f, 4, &slow).unwrap();
    assert!(rs.read_s > 10.0 * rf.read_s);
    assert!(rs.write_s > 10.0 * rf.write_s);
}

#[test]
fn no_merge_means_no_rounds_and_many_outputs() {
    let f = synth::white_noise(Dims::cube(13), 4);
    let r = simulate(&f, 8, &base_params(MergePlan::none())).unwrap();
    assert!(r.rounds.is_empty());
    assert_eq!(r.output_blocks, 8);
    assert_eq!(r.merge_s, r.local_simplify_s, "merge = local simplify only");
}

#[test]
fn live_counts_match_threaded_backend_across_plans() {
    use morse_smale_parallel::core::{run_parallel, Input, PipelineParams};
    use std::sync::Arc;
    let field = Arc::new(synth::gaussian_bumps(Dims::cube(13), 2, 0.15, 6));
    for plan in [
        MergePlan::none(),
        MergePlan::rounds(vec![4]),
        MergePlan::full_merge(8),
    ] {
        let sim = simulate(
            &field,
            8,
            &SimParams {
                persistence_frac: 0.02,
                plan: plan.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        let thr = run_parallel(
            &Input::Memory(field.clone()),
            4,
            8,
            &PipelineParams {
                persistence_frac: 0.02,
                plan,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let thr_nodes: u64 = thr.outputs.iter().map(|c| c.n_live_nodes()).sum();
        let thr_arcs: u64 = thr.outputs.iter().map(|c| c.n_live_arcs()).sum();
        assert_eq!(sim.live_nodes, thr_nodes);
        assert_eq!(sim.live_arcs, thr_arcs);
        assert_eq!(sim.output_bytes, thr.output_bytes);
    }
}
