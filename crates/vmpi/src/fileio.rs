//! Collective file operations (paper §IV-B, §IV-G).
//!
//! *Reads* use subarray views: a list of `(offset, length)` byte runs per
//! rank — the access pattern an MPI subarray datatype + file view
//! produces. *Writes* are collective: every rank contributes zero or more
//! payload blocks ("processes with no output blocks participate … by
//! issuing a null write"), offsets are assigned by an exscan at rank 0,
//! each rank writes its payloads at its offsets, and rank 0 appends a
//! **footer** indexing every block — "a binary collection of all of the
//! output blocks, followed by a footer that provides an index".

use crate::comm::{CommError, Rank};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

const FOOTER_MAGIC: &[u8; 4] = b"MSPF";

/// A collective write is only as reliable as its participants: a comm
/// failure mid-collective is an I/O failure from the caller's view.
fn comm_err(e: CommError) -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, format!("collective write: {e}"))
}
const TAG_SIZES: u32 = 9001;
const TAG_OFFSETS: u32 = 9002;

/// One footer entry: where a block payload lives in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FooterEntry {
    pub offset: u64,
    pub len: u64,
    /// Rank that wrote the block (provenance; mirrors the paper's file
    /// format documentation pointer [23]).
    pub writer: u32,
}

/// Read a rank's subarray view: the concatenation of the given byte runs.
pub fn read_runs(path: &Path, runs: &[(u64, u64)]) -> io::Result<Vec<u8>> {
    let mut f = File::open(path)?;
    let total: u64 = runs.iter().map(|r| r.1).sum();
    let mut out = Vec::with_capacity(total as usize);
    let mut buf = Vec::new();
    for &(off, len) in runs {
        f.seek(SeekFrom::Start(off))?;
        buf.resize(len as usize, 0);
        f.read_exact(&mut buf)?;
        out.extend_from_slice(&buf);
    }
    Ok(out)
}

/// Collectively write this rank's payload blocks (possibly none) and the
/// footer. Every rank must call this; returns the footer on every rank.
/// Payloads land in rank order (rank 0's blocks first); the footer's
/// third field records the writing rank.
pub fn collective_write_blocks(
    rank: &Rank,
    path: &Path,
    payloads: &[Bytes],
) -> io::Result<Vec<FooterEntry>> {
    collective_write_impl(rank, path, payloads, None)
}

/// Like [`collective_write_blocks`], but payloads are placed in the file
/// in ascending **key** order across all ranks (keys must be globally
/// unique — e.g. block ids), and the footer's third field records the
/// key instead of the writing rank. Because neither placement nor
/// footer depends on which rank contributed which payload, the same
/// payload/key sets produce a **byte-identical file for every rank
/// count** — the determinism contract of the `.seg` labeled volume.
pub fn collective_write_blocks_keyed(
    rank: &Rank,
    path: &Path,
    payloads: &[Bytes],
    keys: &[u64],
) -> io::Result<Vec<FooterEntry>> {
    debug_assert_eq!(payloads.len(), keys.len());
    collective_write_impl(rank, path, payloads, Some(keys))
}

fn collective_write_impl(
    rank: &Rank,
    path: &Path,
    payloads: &[Bytes],
    keys: Option<&[u64]>,
) -> io::Result<Vec<FooterEntry>> {
    // 1. announce sizes (and keys, for keyed writes)
    let per = if keys.is_some() { 16 } else { 8 };
    let mut size_msg = BytesMut::with_capacity(4 + payloads.len() * per);
    size_msg.put_u32_le(payloads.len() as u32);
    for (i, p) in payloads.iter().enumerate() {
        if let Some(ks) = keys {
            size_msg.put_u64_le(ks[i]);
        }
        size_msg.put_u64_le(p.len() as u64);
    }
    let gathered = rank
        .gather(0, TAG_SIZES, size_msg.freeze())
        .map_err(comm_err)?;

    // 2. rank 0 assigns offsets and builds the footer
    let footer: Vec<FooterEntry>;
    let my_offsets: Vec<u64>;
    if let Some(all) = gathered {
        // (sort key, writer rank, writer-local index, len)
        let mut blocks: Vec<(u64, usize, usize, u64)> = Vec::new();
        for (r, msg) in all.iter().enumerate() {
            let mut b = &msg[..];
            let n = b.get_u32_le() as usize;
            for i in 0..n {
                let key = if keys.is_some() { b.get_u64_le() } else { 0 };
                let len = b.get_u64_le();
                blocks.push((key, r, i, len));
            }
        }
        // Plain writes keep gather order (key 0 everywhere, rank/index
        // tie-break); keyed writes interleave ranks into global key order.
        blocks.sort();
        let mut entries = Vec::with_capacity(blocks.len());
        let mut per_rank_offsets: Vec<Vec<(usize, u64)>> = vec![Vec::new(); rank.size()];
        let mut cursor = 0u64;
        for &(key, r, i, len) in &blocks {
            per_rank_offsets[r].push((i, cursor));
            entries.push(FooterEntry {
                offset: cursor,
                len,
                writer: if keys.is_some() { key as u32 } else { r as u32 },
            });
            cursor += len;
        }
        // offsets travel in each rank's local payload order
        let mut per_rank_offsets: Vec<Vec<u64>> = per_rank_offsets
            .into_iter()
            .map(|mut v| {
                v.sort();
                v.into_iter().map(|(_, o)| o).collect()
            })
            .collect();
        // create/truncate the file before anyone writes
        File::create(path)?;
        // broadcast the full footer, then send each rank its offsets
        rank.broadcast(0, TAG_OFFSETS + 1, Some(encode_footer_entries(&entries)))
            .map_err(comm_err)?;
        for (r, offs) in per_rank_offsets.iter().enumerate().skip(1) {
            let mut m = BytesMut::with_capacity(4 + offs.len() * 8);
            m.put_u32_le(offs.len() as u32);
            for &o in offs {
                m.put_u64_le(o);
            }
            rank.send(r, TAG_OFFSETS, m.freeze()).map_err(comm_err)?;
        }
        my_offsets = per_rank_offsets.swap_remove(0);
        footer = entries;
    } else {
        let fb = rank.broadcast(0, TAG_OFFSETS + 1, None).map_err(comm_err)?;
        footer = decode_footer_entries(&fb);
        let m = rank.recv(0, TAG_OFFSETS).map_err(comm_err)?;
        let mut b = &m[..];
        let n = b.get_u32_le() as usize;
        my_offsets = (0..n).map(|_| b.get_u64_le()).collect();
    }

    // ensure the file exists before concurrent writers open it
    rank.barrier().map_err(comm_err)?;

    // 3. each rank writes its payloads at its offsets
    if !payloads.is_empty() {
        let mut f = OpenOptions::new().write(true).open(path)?;
        for (p, &off) in payloads.iter().zip(&my_offsets) {
            f.seek(SeekFrom::Start(off))?;
            f.write_all(p)?;
        }
        f.flush()?;
    }
    rank.barrier().map_err(comm_err)?;

    // 4. rank 0 appends the footer
    if rank.rank() == 0 {
        let mut f = OpenOptions::new().write(true).open(path)?;
        f.seek(SeekFrom::End(0))?;
        let body = encode_footer_entries(&footer);
        f.write_all(&body)?;
        f.write_all(&(body.len() as u64).to_le_bytes())?;
        f.write_all(FOOTER_MAGIC)?;
        f.flush()?;
    }
    rank.barrier().map_err(comm_err)?;
    Ok(footer)
}

fn encode_footer_entries(entries: &[FooterEntry]) -> Bytes {
    let mut b = BytesMut::with_capacity(4 + entries.len() * 20);
    b.put_u32_le(entries.len() as u32);
    for e in entries {
        b.put_u64_le(e.offset);
        b.put_u64_le(e.len);
        b.put_u32_le(e.writer);
    }
    b.freeze()
}

fn decode_footer_entries(mut b: &[u8]) -> Vec<FooterEntry> {
    let n = b.get_u32_le() as usize;
    (0..n)
        .map(|_| FooterEntry {
            offset: b.get_u64_le(),
            len: b.get_u64_le(),
            writer: b.get_u32_le(),
        })
        .collect()
}

/// Read the footer of a collectively-written file.
pub fn read_footer(path: &Path) -> io::Result<Vec<FooterEntry>> {
    let mut f = File::open(path)?;
    let size = f.metadata()?.len();
    if size < 12 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "file too small"));
    }
    f.seek(SeekFrom::Start(size - 12))?;
    let mut tail = [0u8; 12];
    f.read_exact(&mut tail)?;
    if &tail[8..12] != FOOTER_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad footer magic",
        ));
    }
    let body_len = u64::from_le_bytes(tail[..8].try_into().unwrap());
    if body_len + 12 > size {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad footer length",
        ));
    }
    f.seek(SeekFrom::Start(size - 12 - body_len))?;
    let mut body = vec![0u8; body_len as usize];
    f.read_exact(&mut body)?;
    Ok(decode_footer_entries(&body))
}

/// Read one block payload by footer entry.
pub fn read_block_payload(path: &Path, entry: &FooterEntry) -> io::Result<Vec<u8>> {
    read_runs(path, &[(entry.offset, entry.len)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Universe;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("msp_vmpi_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn collective_write_and_footer() {
        let path = tmp("cw.bin");
        let footers = Universe::run(4, |r| {
            // rank i writes i payloads (rank 0 issues a null write)
            let payloads: Vec<Bytes> = (0..r.rank())
                .map(|k| Bytes::from(vec![r.rank() as u8 * 16 + k as u8; 10 * (k + 1)]))
                .collect();
            collective_write_blocks(r, &path, &payloads).unwrap()
        });
        // all ranks see identical footers
        for f in &footers[1..] {
            assert_eq!(f, &footers[0]);
        }
        let footer = read_footer(&path).unwrap();
        assert_eq!(footer, footers[0]);
        assert_eq!(footer.len(), 6); // block counts 0+1+2+3

        // payload contents round trip
        for e in &footer {
            let data = read_block_payload(&path, e).unwrap();
            assert_eq!(data.len() as u64, e.len);
            assert!(data.iter().all(|&b| b == data[0]));
            assert_eq!(data[0] >> 4, e.writer as u8);
        }
        // entries are contiguous from offset 0
        let mut cursor = 0;
        for e in &footer {
            assert_eq!(e.offset, cursor);
            cursor += e.len;
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn keyed_write_is_rank_count_invariant() {
        // 6 payloads with block-cyclic keys: the 3-rank collective write
        // must produce the same bytes as a 1-rank write of the full set.
        let payloads: Vec<Bytes> = (0u8..6)
            .map(|k| Bytes::from(vec![k; 5 + k as usize]))
            .collect();
        let keys: Vec<u64> = (0..6).collect();

        let p1 = tmp("keyed1.bin");
        let (sp, sk, q1) = (payloads.clone(), keys.clone(), p1.clone());
        Universe::run(1, move |r| {
            collective_write_blocks_keyed(r, &q1, &sp, &sk).unwrap();
        });

        let p3 = tmp("keyed3.bin");
        let (sp, sk, q3) = (payloads.clone(), keys.clone(), p3.clone());
        let footers = Universe::run(3, move |r| {
            // rank r contributes keys r, r+3 (ascending local order)
            let mine: Vec<usize> = vec![r.rank(), r.rank() + 3];
            let pl: Vec<Bytes> = mine.iter().map(|&i| sp[i].clone()).collect();
            let ks: Vec<u64> = mine.iter().map(|&i| sk[i]).collect();
            collective_write_blocks_keyed(r, &q3, &pl, &ks).unwrap()
        });

        let a = std::fs::read(&p1).unwrap();
        let b = std::fs::read(&p3).unwrap();
        assert_eq!(a, b, "keyed collective write must not depend on ranks");

        // footer is in key order and records keys, and payloads land at
        // their key-sorted offsets
        let footer = read_footer(&p3).unwrap();
        assert_eq!(footer, footers[0]);
        for (i, e) in footer.iter().enumerate() {
            assert_eq!(e.writer, i as u32);
            let data = read_block_payload(&p3, e).unwrap();
            assert_eq!(data, payloads[i].as_ref());
        }
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p3).ok();
    }

    #[test]
    fn empty_write_produces_valid_footer() {
        let path = tmp("empty.bin");
        Universe::run(3, |r| {
            collective_write_blocks(r, &path, &[]).unwrap();
        });
        let footer = read_footer(&path).unwrap();
        assert!(footer.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_runs_concatenates() {
        let path = tmp("runs.bin");
        std::fs::write(&path, (0u8..100).collect::<Vec<u8>>()).unwrap();
        let out = read_runs(&path, &[(10, 5), (50, 3), (0, 2)]).unwrap();
        assert_eq!(out, vec![10, 11, 12, 13, 14, 50, 51, 52, 0, 1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn footer_rejects_garbage() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"this is not a valid msp file at all!").unwrap();
        assert!(read_footer(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
