//! Threaded message-passing backend: one OS thread per rank.
//!
//! Point-to-point messages carry `(source, tag, payload)`; receives match
//! on `(source, tag)`, buffering out-of-order arrivals per rank — the
//! same envelope semantics MPI provides, minus wildcards (the pipeline
//! never needs them).
//!
//! Every operation is **fallible**: sends and receives return
//! [`CommError`] instead of panicking, and receives accept an optional
//! deadline ([`Rank::recv_deadline`]). A rank that bails out early tears
//! its inbox down, so *sends to* it fail fast with `Disconnected`;
//! detecting a peer that silently stopped *sending* requires a deadline
//! (the channel fabric cannot distinguish "slow" from "gone", exactly
//! like a real interconnect). Together these are the substrate the
//! fault-tolerant pipeline needs: a lost message or dead group member
//! surfaces as a typed, recoverable error at the caller.
//!
//! Fault injection plugs in through the [`Inject`] hook
//! ([`Universe::run_with_inject`]): a deterministic plan can drop or
//! delay the n-th message on any directed link without the pipeline
//! code knowing injection exists.
//!
//! Causal tracing plugs in the same way: [`Rank::attach_tracer`] hands
//! the endpoint a [`TraceSink`], and every data-plane send/recv is
//! stamped with `(src, dst, tag, seq, bytes)` — `seq` being the 1-based
//! per-directed-link ordinal carried in the message envelope, so the
//! two sides of a transfer can be paired exactly after the run even
//! when injection dropped or delayed messages in between. Control-plane
//! barrier tokens are neither counted nor traced.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use msp_telemetry::TraceSink;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Msg {
    from: usize,
    tag: u32,
    /// Per-directed-link ordinal (0 for control-plane tokens).
    seq: u64,
    payload: Bytes,
}

/// Tag namespace reserved by the barrier (`0x7FF0_0000..`); user tags
/// must stay below it. The pipeline's highest tags are in the 9xxx
/// range plus `round << 20`, far underneath.
const TAG_BARRIER: u32 = 0x7FF0_0000;

/// Error from a communication operation. Carries enough context to log
/// or to drive recovery (who was involved, on which tag, for how long
/// the receiver waited).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A receive deadline expired with no matching message.
    Timeout {
        from: usize,
        tag: u32,
        waited: Duration,
    },
    /// The peer's endpoint is gone (its thread returned or panicked).
    Disconnected { peer: usize, tag: u32 },
    /// A typed message failed to decode — a protocol bug on the sender,
    /// surfaced as an error so the pipeline's failure path stays uniform.
    Protocol {
        from: usize,
        tag: u32,
        detail: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { from, tag, waited } => write!(
                f,
                "receive from rank {from} (tag {tag:#x}) timed out after {:.3}s",
                waited.as_secs_f64()
            ),
            CommError::Disconnected { peer, tag } => {
                write!(f, "rank {peer} disconnected (tag {tag:#x})")
            }
            CommError::Protocol { from, tag, detail } => {
                write!(
                    f,
                    "malformed message from rank {from} (tag {tag:#x}): {detail}"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

/// What the injection hook decides about one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// Deliver normally.
    Deliver,
    /// Silently lose the message (the receiver must detect and recover).
    Drop,
    /// Hold the message back for this long before delivering.
    Delay(Duration),
}

/// Deterministic fault-injection hook consulted on every point-to-point
/// send. `nth` is the 1-based ordinal of this message on the directed
/// link `from -> to`, so plans are reproducible independent of timing.
pub trait Inject: Send + Sync {
    fn fate(&self, from: usize, to: usize, nth: u64) -> SendFate;
}

/// Cumulative per-rank traffic totals, counted at the point-to-point
/// layer so collectives (gather/broadcast/allreduce) are included
/// automatically. Payload bytes only — the `(from, tag)` envelope is
/// backend bookkeeping, not wire data. Zero-payload barrier tokens are
/// control-plane traffic and are not counted either.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    pub bytes_sent: u64,
    pub bytes_recv: u64,
    pub msgs_sent: u64,
    pub msgs_recv: u64,
}

/// Launches a world of ranks, each on its own thread.
pub struct Universe;

impl Universe {
    /// Run `f` on `world` ranks concurrently and collect each rank's
    /// return value (indexed by rank).
    ///
    /// Panics in any rank propagate after all threads finish or abort.
    pub fn run<R, F>(world: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Rank) -> R + Send + Sync,
    {
        Self::run_with_inject(world, None, f)
    }

    /// [`Universe::run`] with a fault-injection hook consulted on every
    /// point-to-point send (including the legs of collectives).
    pub fn run_with_inject<R, F>(world: usize, inject: Option<Arc<dyn Inject>>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Rank) -> R + Send + Sync,
    {
        assert!(world >= 1, "world must have at least one rank");
        let mut senders = Vec::with_capacity(world);
        let mut receivers = Vec::with_capacity(world);
        for _ in 0..world {
            let (tx, rx) = unbounded::<Msg>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(world);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                let inject = inject.clone();
                handles.push(scope.spawn(move || {
                    let mut r = Rank {
                        rank,
                        size: world,
                        senders,
                        receiver: rx,
                        stash: RefCell::new(HashMap::new()),
                        stats: Cell::new(CommStats::default()),
                        barrier_gen: Cell::new(0),
                        link_seq: RefCell::new(vec![0; world]),
                        inject,
                        tracer: RefCell::new(None),
                    };
                    f(&mut r)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

/// Out-of-order messages parked until their `(source, tag)` is asked
/// for, each alongside its envelope sequence number.
type Stash = HashMap<(usize, u32), VecDeque<(Bytes, u64)>>;

/// A rank's communication endpoint. Not `Sync`: it lives on one thread.
pub struct Rank {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Msg>>>,
    receiver: Receiver<Msg>,
    stash: RefCell<Stash>,
    stats: Cell<CommStats>,
    /// Wrapping barrier generation; dissemination tags embed it so a
    /// fast rank entering the next barrier cannot confuse a slow one.
    barrier_gen: Cell<u8>,
    /// Per-destination message ordinals: feed the injection hook and
    /// travel in the envelope as the causal-matching sequence number.
    link_seq: RefCell<Vec<u64>>,
    inject: Option<Arc<dyn Inject>>,
    /// Optional causal tracer stamping data-plane sends/recvs.
    tracer: RefCell<Option<TraceSink>>,
}

impl Rank {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Stamp every subsequent data-plane send/recv (and receive
    /// timeout) into `sink`. The sink must share its epoch with the
    /// other ranks' sinks for cross-rank timestamps to be comparable.
    pub fn attach_tracer(&self, sink: TraceSink) {
        *self.tracer.borrow_mut() = Some(sink);
    }

    /// Stop stamping comm events (e.g. before the trace itself is
    /// gathered, so the gather does not observe itself).
    pub fn detach_tracer(&self) -> Option<TraceSink> {
        self.tracer.borrow_mut().take()
    }

    /// Snapshot of this rank's cumulative traffic counters.
    pub fn comm_stats(&self) -> CommStats {
        self.stats.get()
    }

    /// Reset the traffic counters (e.g. between benchmark repetitions).
    pub fn reset_comm_stats(&self) {
        self.stats.set(CommStats::default());
    }

    fn count_sent(&self, bytes: usize) {
        let mut s = self.stats.get();
        s.bytes_sent += bytes as u64;
        s.msgs_sent += 1;
        self.stats.set(s);
    }

    fn count_recv(&self, bytes: usize) {
        let mut s = self.stats.get();
        s.bytes_recv += bytes as u64;
        s.msgs_recv += 1;
        self.stats.set(s);
    }

    /// Hand a message to the transport without touching CommStats
    /// (barrier tokens). Injection is not consulted: control-plane
    /// traffic is outside the fault plans' message ordinals.
    fn send_control(&self, to: usize, tag: u32) -> Result<(), CommError> {
        self.senders[to]
            .send(Msg {
                from: self.rank,
                tag,
                seq: 0,
                payload: Bytes::new(),
            })
            .map_err(|_| CommError::Disconnected { peer: to, tag })
    }

    /// Send `payload` to rank `to` with the given tag. Never blocks
    /// (buffered channels), like an MPI eager-protocol send.
    ///
    /// Errors with [`CommError::Disconnected`] if the destination rank
    /// already tore down its endpoint. An injected `Drop` still counts
    /// as sent (the payload was handed to the transport) and succeeds —
    /// losing a message is the receiver's problem, exactly as on a real
    /// interconnect.
    pub fn send(&self, to: usize, tag: u32, payload: Bytes) -> Result<(), CommError> {
        let seq = {
            let mut ls = self.link_seq.borrow_mut();
            ls[to] += 1;
            ls[to]
        };
        let fate = match &self.inject {
            Some(h) => h.fate(self.rank, to, seq),
            None => SendFate::Deliver,
        };
        self.count_sent(payload.len());
        // Stamp at hand-off, before any injected delay: the trace
        // records when the sender let go. A dropped message is stamped
        // too — it surfaces later as an unmatched orphan send.
        if let Some(t) = self.tracer.borrow().as_ref() {
            t.send(to as u32, tag, seq, payload.len() as u64);
        }
        match fate {
            SendFate::Drop => return Ok(()),
            SendFate::Delay(d) => std::thread::sleep(d),
            SendFate::Deliver => {}
        }
        self.senders[to]
            .send(Msg {
                from: self.rank,
                tag,
                seq,
                payload,
            })
            .map_err(|_| CommError::Disconnected { peer: to, tag })
    }

    /// Blocking receive matching `(from, tag)`; other messages arriving
    /// meanwhile are stashed for later receives.
    ///
    /// Counters attribute a message to the receive that consumed it, so a
    /// stashed out-of-order arrival is counted when it is matched, not
    /// when it lands.
    pub fn recv(&self, from: usize, tag: u32) -> Result<Bytes, CommError> {
        self.recv_deadline(from, tag, None)
    }

    /// [`Rank::recv`] with an optional deadline. `None` waits forever;
    /// `Some(d)` returns [`CommError::Timeout`] if no matching message
    /// arrives within `d` — the detection primitive the fault-tolerant
    /// pipeline uses to declare a group member dead.
    pub fn recv_deadline(
        &self,
        from: usize,
        tag: u32,
        deadline: Option<Duration>,
    ) -> Result<Bytes, CommError> {
        if let Some(q) = self.stash.borrow_mut().get_mut(&(from, tag)) {
            if let Some((b, seq)) = q.pop_front() {
                self.count_recv(b.len());
                self.trace_recv(from, tag, seq, b.len());
                return Ok(b);
            }
        }
        let started = Instant::now();
        loop {
            let msg = match deadline {
                None => self
                    .receiver
                    .recv()
                    .map_err(|_| CommError::Disconnected { peer: from, tag })?,
                Some(d) => {
                    let waited = started.elapsed();
                    let left = d.checked_sub(waited).ok_or_else(|| {
                        self.trace_timeout(from, tag, waited);
                        CommError::Timeout { from, tag, waited }
                    })?;
                    match self.receiver.recv_timeout(left) {
                        Ok(m) => m,
                        Err(RecvTimeoutError::Timeout) => {
                            let waited = started.elapsed();
                            self.trace_timeout(from, tag, waited);
                            return Err(CommError::Timeout { from, tag, waited });
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(CommError::Disconnected { peer: from, tag })
                        }
                    }
                }
            };
            if msg.from == from && msg.tag == tag {
                self.count_recv(msg.payload.len());
                self.trace_recv(from, tag, msg.seq, msg.payload.len());
                return Ok(msg.payload);
            }
            self.stash
                .borrow_mut()
                .entry((msg.from, msg.tag))
                .or_default()
                .push_back((msg.payload, msg.seq));
        }
    }

    /// Stamp a matched data-plane receive (attributed to the receive
    /// that consumed it, like CommStats, so the envelope seq pairs it
    /// with its send).
    fn trace_recv(&self, from: usize, tag: u32, seq: u64, bytes: usize) {
        if let Some(t) = self.tracer.borrow().as_ref() {
            t.recv(from as u32, tag, seq, bytes as u64);
        }
    }

    /// Stamp an expired receive deadline — the fault-detection event.
    fn trace_timeout(&self, from: usize, tag: u32, waited: Duration) {
        if let Some(t) = self.tracer.borrow().as_ref() {
            t.timeout(from as u32, tag, waited.as_nanos() as u64);
        }
    }

    /// Synchronize all ranks: a dissemination barrier over the message
    /// channels (⌈log₂ P⌉ token exchanges per rank). Unlike a shared
    /// `std::sync::Barrier`, a rank that already exited on an error
    /// surfaces as `Disconnected` on the token send to it, rather than
    /// poisoning a process-wide sync primitive.
    pub fn barrier(&self) -> Result<(), CommError> {
        let gen = self.barrier_gen.get();
        self.barrier_gen.set(gen.wrapping_add(1));
        let mut step = 0u32;
        let mut dist = 1usize;
        while dist < self.size {
            let tag = TAG_BARRIER | (u32::from(gen) << 8) | step;
            let to = (self.rank + dist) % self.size;
            let from = (self.rank + self.size - dist) % self.size;
            self.send_control(to, tag)?;
            self.recv_control(from, tag)?;
            step += 1;
            dist *= 2;
        }
        Ok(())
    }

    /// Receive a control token without counting it (pair of
    /// [`Rank::send_control`]).
    fn recv_control(&self, from: usize, tag: u32) -> Result<(), CommError> {
        if let Some(q) = self.stash.borrow_mut().get_mut(&(from, tag)) {
            if q.pop_front().is_some() {
                return Ok(());
            }
        }
        loop {
            let msg = self
                .receiver
                .recv()
                .map_err(|_| CommError::Disconnected { peer: from, tag })?;
            if msg.from == from && msg.tag == tag {
                return Ok(());
            }
            self.stash
                .borrow_mut()
                .entry((msg.from, msg.tag))
                .or_default()
                .push_back((msg.payload, msg.seq));
        }
    }

    /// Gather every rank's payload at `root`; returns `Some(vec indexed
    /// by rank)` at the root, `None` elsewhere.
    pub fn gather(
        &self,
        root: usize,
        tag: u32,
        payload: Bytes,
    ) -> Result<Option<Vec<Bytes>>, CommError> {
        if self.rank == root {
            let mut out = Vec::with_capacity(self.size);
            for r in 0..self.size {
                if r == root {
                    out.push(payload.clone());
                } else {
                    out.push(self.recv(r, tag)?);
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, tag, payload)?;
            Ok(None)
        }
    }

    /// Broadcast `payload` from `root` to every rank; returns the payload
    /// everywhere.
    pub fn broadcast(
        &self,
        root: usize,
        tag: u32,
        payload: Option<Bytes>,
    ) -> Result<Bytes, CommError> {
        if self.rank == root {
            let p = payload.expect("root must supply the broadcast payload");
            for r in 0..self.size {
                if r != root {
                    self.send(r, tag, p.clone())?;
                }
            }
            Ok(p)
        } else {
            self.recv(root, tag)
        }
    }

    /// All-reduce an `f64` with the given associative op (gather at rank
    /// 0, reduce, broadcast).
    pub fn allreduce_f64(
        &self,
        tag: u32,
        value: f64,
        op: impl Fn(f64, f64) -> f64,
    ) -> Result<f64, CommError> {
        let payload = Bytes::copy_from_slice(&value.to_le_bytes());
        let gathered = self.gather(0, tag, payload)?;
        let result = if let Some(all) = gathered {
            let reduced = all
                .iter()
                .map(|b| f64::from_le_bytes(b[..8].try_into().unwrap()))
                .reduce(&op)
                .unwrap();
            self.broadcast(
                0,
                tag + 1,
                Some(Bytes::copy_from_slice(&reduced.to_le_bytes())),
            )?
        } else {
            self.broadcast(0, tag + 1, None)?
        };
        Ok(f64::from_le_bytes(result[..8].try_into().unwrap()))
    }

    /// Convenience min/max all-reduce pair (used for global value range).
    pub fn allreduce_min_max(&self, tag: u32, lo: f64, hi: f64) -> Result<(f64, f64), CommError> {
        let l = self.allreduce_f64(tag, lo, f64::min)?;
        let h = self.allreduce_f64(tag + 2, hi, f64::max)?;
        Ok((l, h))
    }

    /// All-reduce a `u64` with the given associative op — same
    /// gather-reduce-broadcast scheme as [`Rank::allreduce_f64`], for
    /// exact integer totals (counters, sizes) where floating-point
    /// rounding is unacceptable.
    pub fn allreduce_u64(
        &self,
        tag: u32,
        value: u64,
        op: impl Fn(u64, u64) -> u64,
    ) -> Result<u64, CommError> {
        let payload = Bytes::copy_from_slice(&value.to_le_bytes());
        let gathered = self.gather(0, tag, payload)?;
        let result = if let Some(all) = gathered {
            let reduced = all
                .iter()
                .map(|b| u64::from_le_bytes(b[..8].try_into().unwrap()))
                .reduce(&op)
                .unwrap();
            self.broadcast(
                0,
                tag + 1,
                Some(Bytes::copy_from_slice(&reduced.to_le_bytes())),
            )?
        } else {
            self.broadcast(0, tag + 1, None)?
        };
        Ok(u64::from_le_bytes(result[..8].try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = Universe::run(1, |r| {
            r.barrier().unwrap();
            r.rank() + r.size()
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_pass() {
        let out = Universe::run(8, |r| {
            let next = (r.rank() + 1) % r.size();
            let prev = (r.rank() + r.size() - 1) % r.size();
            r.send(
                next,
                7,
                Bytes::copy_from_slice(&(r.rank() as u64).to_le_bytes()),
            )
            .unwrap();
            let got = r.recv(prev, 7).unwrap();
            u64::from_le_bytes(got[..8].try_into().unwrap())
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(*got as usize, (rank + 7) % 8);
        }
    }

    #[test]
    fn out_of_order_tags() {
        let out = Universe::run(2, |r| {
            if r.rank() == 0 {
                r.send(1, 5, Bytes::from_static(b"five")).unwrap();
                r.send(1, 3, Bytes::from_static(b"three")).unwrap();
                Vec::new()
            } else {
                // receive in the opposite order of sending
                let a = r.recv(0, 3).unwrap();
                let b = r.recv(0, 5).unwrap();
                vec![a, b]
            }
        });
        assert_eq!(
            out[1],
            vec![Bytes::from_static(b"three"), Bytes::from_static(b"five")]
        );
    }

    #[test]
    fn gather_and_broadcast() {
        let out = Universe::run(5, |r| {
            let mine = Bytes::copy_from_slice(&[r.rank() as u8]);
            let gathered = r.gather(2, 1, mine).unwrap();
            if let Some(all) = &gathered {
                assert_eq!(all.len(), 5);
                for (i, b) in all.iter().enumerate() {
                    assert_eq!(b[0] as usize, i);
                }
            }
            let bc = r
                .broadcast(2, 9, (r.rank() == 2).then(|| Bytes::from_static(b"hello")))
                .unwrap();
            bc.len()
        });
        assert!(out.iter().all(|&l| l == 5));
    }

    #[test]
    fn allreduce_min_max() {
        let out = Universe::run(6, |r| {
            let v = r.rank() as f64 * 2.0 - 3.0;
            r.allreduce_min_max(100, v, v).unwrap()
        });
        for (lo, hi) in out {
            assert_eq!(lo, -3.0);
            assert_eq!(hi, 7.0);
        }
    }

    #[test]
    fn allreduce_u64_sum_and_max() {
        let out = Universe::run(5, |r| {
            let v = r.rank() as u64 + 1;
            let sum = r.allreduce_u64(200, v, |a, b| a + b).unwrap();
            let max = r.allreduce_u64(210, v, u64::max).unwrap();
            (sum, max)
        });
        for (sum, max) in out {
            assert_eq!(sum, 15);
            assert_eq!(max, 5);
        }
    }

    #[test]
    fn comm_stats_count_point_to_point() {
        let out = Universe::run(2, |r| {
            if r.rank() == 0 {
                r.send(1, 1, Bytes::from_static(b"abcde")).unwrap();
                r.send(1, 2, Bytes::from_static(b"xy")).unwrap();
            } else {
                // out-of-order match exercises the stash path
                let b = r.recv(0, 2).unwrap();
                assert_eq!(&b[..], b"xy");
                let a = r.recv(0, 1).unwrap();
                assert_eq!(&a[..], b"abcde");
            }
            r.comm_stats()
        });
        assert_eq!(
            out[0],
            CommStats {
                bytes_sent: 7,
                bytes_recv: 0,
                msgs_sent: 2,
                msgs_recv: 0
            }
        );
        assert_eq!(
            out[1],
            CommStats {
                bytes_sent: 0,
                bytes_recv: 7,
                msgs_sent: 0,
                msgs_recv: 2
            }
        );
    }

    #[test]
    fn comm_stats_cover_collectives() {
        // One allreduce_f64 over W ranks: gather = (W-1) 8-byte sends into
        // root, broadcast = (W-1) 8-byte sends out of root.
        const W: usize = 4;
        let out = Universe::run(W, |r| {
            let _ = r.allreduce_f64(300, r.rank() as f64, f64::max).unwrap();
            r.comm_stats()
        });
        let total_sent: u64 = out.iter().map(|s| s.bytes_sent).sum();
        let total_recv: u64 = out.iter().map(|s| s.bytes_recv).sum();
        assert_eq!(total_sent, 16 * (W as u64 - 1));
        assert_eq!(total_recv, total_sent);
        let msgs: u64 = out.iter().map(|s| s.msgs_sent).sum();
        assert_eq!(msgs, 2 * (W as u64 - 1));
        // Root sends the broadcast fan-out, leaves send one gather leg.
        assert_eq!(out[0].msgs_sent, W as u64 - 1);
        for s in &out[1..] {
            assert_eq!(s.msgs_sent, 1);
        }
    }

    #[test]
    fn comm_stats_reset() {
        let out = Universe::run(2, |r| {
            let peer = 1 - r.rank();
            r.send(peer, 4, Bytes::from_static(b"warmup")).unwrap();
            let _ = r.recv(peer, 4).unwrap();
            r.reset_comm_stats();
            r.comm_stats()
        });
        assert!(out.iter().all(|s| *s == CommStats::default()));
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let out = Universe::run(4, |r| {
            phase1.fetch_add(1, Ordering::SeqCst);
            r.barrier().unwrap();
            // after the barrier every rank must observe all increments
            phase1.load(Ordering::SeqCst)
        });
        assert!(out.iter().all(|&v| v == 4));
    }

    #[test]
    fn barrier_is_control_plane_traffic() {
        // Repeated barriers exchange tokens but never touch CommStats.
        let out = Universe::run(3, |r| {
            for _ in 0..5 {
                r.barrier().unwrap();
            }
            r.comm_stats()
        });
        assert!(out.iter().all(|s| *s == CommStats::default()));
    }

    #[test]
    fn recv_deadline_times_out() {
        let out = Universe::run(2, |r| {
            if r.rank() == 0 {
                // never send; rank 1 must time out
                r.barrier().unwrap();
                None
            } else {
                let e = r
                    .recv_deadline(0, 42, Some(Duration::from_millis(30)))
                    .unwrap_err();
                r.barrier().unwrap();
                Some(e)
            }
        });
        match out[1].clone().unwrap() {
            CommError::Timeout { from, tag, waited } => {
                assert_eq!(from, 0);
                assert_eq!(tag, 42);
                assert!(waited >= Duration::from_millis(30));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn recv_deadline_delivers_in_time() {
        let out = Universe::run(2, |r| {
            if r.rank() == 0 {
                r.send(1, 9, Bytes::from_static(b"ok")).unwrap();
                Bytes::new()
            } else {
                r.recv_deadline(0, 9, Some(Duration::from_secs(5))).unwrap()
            }
        });
        assert_eq!(&out[1][..], b"ok");
    }

    struct DropSecond;
    impl Inject for DropSecond {
        fn fate(&self, _from: usize, _to: usize, nth: u64) -> SendFate {
            if nth == 2 {
                SendFate::Drop
            } else {
                SendFate::Deliver
            }
        }
    }

    #[test]
    fn inject_drops_exactly_the_nth_link_message() {
        let out = Universe::run_with_inject(2, Some(Arc::new(DropSecond)), |r| {
            if r.rank() == 0 {
                r.send(1, 1, Bytes::from_static(b"first")).unwrap();
                r.send(1, 2, Bytes::from_static(b"second")).unwrap(); // dropped
                r.send(1, 3, Bytes::from_static(b"third")).unwrap();
                (Bytes::new(), None, r.comm_stats())
            } else {
                let first = r.recv(0, 1).unwrap();
                let third = r.recv(0, 3).unwrap();
                assert_eq!(&third[..], b"third");
                let lost = r
                    .recv_deadline(0, 2, Some(Duration::from_millis(25)))
                    .unwrap_err();
                (first, Some(lost), r.comm_stats())
            }
        });
        assert!(matches!(out[1].1, Some(CommError::Timeout { .. })));
        // the dropped message still counts as sent, but is never received
        assert_eq!(out[0].2.msgs_sent, 3);
        assert_eq!(out[1].2.msgs_recv, 2);
        assert_eq!(
            out[0].2.bytes_sent - out[1].2.bytes_recv,
            "second".len() as u64
        );
    }

    struct DelayFirst;
    impl Inject for DelayFirst {
        fn fate(&self, _from: usize, _to: usize, nth: u64) -> SendFate {
            if nth == 1 {
                SendFate::Delay(Duration::from_millis(20))
            } else {
                SendFate::Deliver
            }
        }
    }

    #[test]
    fn inject_delay_still_delivers() {
        let out = Universe::run_with_inject(2, Some(Arc::new(DelayFirst)), |r| {
            if r.rank() == 0 {
                let t0 = Instant::now();
                r.send(1, 5, Bytes::from_static(b"late")).unwrap();
                t0.elapsed() >= Duration::from_millis(20)
            } else {
                let b = r.recv_deadline(0, 5, Some(Duration::from_secs(5))).unwrap();
                assert_eq!(&b[..], b"late");
                true
            }
        });
        assert!(out[0], "delay charged on the sending side");
        assert!(out[1]);
    }

    #[test]
    fn tracer_stamps_sends_recvs_and_pairs_by_seq() {
        use msp_telemetry::RunTrace;
        let epoch = Instant::now();
        let traces = Universe::run(3, |r| {
            let sink = TraceSink::new(r.rank() as u32, epoch);
            r.attach_tracer(sink.clone());
            let next = (r.rank() + 1) % r.size();
            let prev = (r.rank() + r.size() - 1) % r.size();
            // two messages per link, received out of order to cross
            // the stash path
            r.send(next, 11, Bytes::from_static(b"first")).unwrap();
            r.send(next, 12, Bytes::from_static(b"second!")).unwrap();
            let b = r.recv(prev, 12).unwrap();
            assert_eq!(&b[..], b"second!");
            let a = r.recv(prev, 11).unwrap();
            assert_eq!(&a[..], b"first");
            r.barrier().unwrap(); // control plane: must not be traced
            r.detach_tracer();
            r.send(next, 13, Bytes::from_static(b"untraced")).unwrap();
            let _ = r.recv(prev, 13).unwrap();
            sink.finish()
        });
        for t in &traces {
            assert_eq!(t.sends.len(), 2, "detached sends not stamped");
            assert_eq!(t.recvs.len(), 2);
            assert_eq!(t.sends[0].seq, 1);
            assert_eq!(t.sends[1].seq, 2);
            assert_eq!(t.sends[0].bytes, 5);
            assert_eq!(t.sends[1].bytes, 7);
            // stash-matched recv kept the envelope seq of its send
            assert_eq!(t.recvs[0].tag, 12);
            assert_eq!(t.recvs[0].seq, 2);
            assert_eq!(t.recvs[1].tag, 11);
            assert_eq!(t.recvs[1].seq, 1);
        }
        let run = RunTrace::from_ranks(traces);
        let m = run.match_messages();
        assert_eq!(m.edges.len(), 6, "every traced recv pairs with a send");
        assert!(m.unmatched_sends.is_empty());
        assert!(m.unmatched_recvs.is_empty());
        for e in &m.edges {
            assert!(e.t_recv_ns >= e.t_send_ns, "recv after send per edge");
        }
    }

    #[test]
    fn tracer_records_timeout_and_orphan_send() {
        use msp_telemetry::RunTrace;
        let epoch = Instant::now();
        let traces = Universe::run_with_inject(2, Some(Arc::new(DropSecond)), |r| {
            let sink = TraceSink::new(r.rank() as u32, epoch);
            r.attach_tracer(sink.clone());
            if r.rank() == 0 {
                r.send(1, 1, Bytes::from_static(b"ok")).unwrap();
                r.send(1, 2, Bytes::from_static(b"lost")).unwrap(); // dropped
            } else {
                let _ = r.recv(0, 1).unwrap();
                let e = r
                    .recv_deadline(0, 2, Some(Duration::from_millis(20)))
                    .unwrap_err();
                assert!(matches!(e, CommError::Timeout { .. }));
            }
            sink.finish()
        });
        assert_eq!(traces[0].sends.len(), 2, "dropped send still stamped");
        assert_eq!(traces[1].timeouts.len(), 1);
        assert_eq!(traces[1].timeouts[0].src, 0);
        assert_eq!(traces[1].timeouts[0].tag, 2);
        assert!(traces[1].timeouts[0].waited_ns >= 20_000_000);
        let m = RunTrace::from_ranks(traces).match_messages();
        assert_eq!(m.edges.len(), 1);
        assert_eq!(m.unmatched_sends.len(), 1, "the drop is an orphan");
        assert_eq!(m.unmatched_sends[0].seq, 2);
    }

    #[test]
    fn send_to_departed_rank_disconnects() {
        // rank 1 announces it is "dying" and returns, dropping its inbox;
        // rank 0's sends to it start failing with Disconnected.
        let out = Universe::run(2, |r| {
            if r.rank() == 1 {
                r.send(0, 1, Bytes::from_static(b"bye")).unwrap();
                return Ok(());
            }
            let _ = r.recv(1, 1)?;
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match r.send(1, 2, Bytes::from_static(b"ping")) {
                    Err(e) => return Err(e),
                    Ok(()) if Instant::now() > deadline => {
                        panic!("send to departed rank never failed")
                    }
                    Ok(()) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
        });
        assert!(
            matches!(out[0], Err(CommError::Disconnected { peer: 1, .. })),
            "got {:?}",
            out[0]
        );
        assert!(out[1].is_ok());
    }
}
