//! Threaded message-passing backend: one OS thread per rank.
//!
//! Point-to-point messages carry `(source, tag, payload)`; receives match
//! on `(source, tag)`, buffering out-of-order arrivals per rank — the
//! same envelope semantics MPI provides, minus wildcards (the pipeline
//! never needs them).

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Barrier};

struct Msg {
    from: usize,
    tag: u32,
    payload: Bytes,
}

/// Cumulative per-rank traffic totals, counted at the point-to-point
/// layer so collectives (gather/broadcast/allreduce) are included
/// automatically. Payload bytes only — the `(from, tag)` envelope is
/// backend bookkeeping, not wire data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    pub bytes_sent: u64,
    pub bytes_recv: u64,
    pub msgs_sent: u64,
    pub msgs_recv: u64,
}

/// Launches a world of ranks, each on its own thread.
pub struct Universe;

impl Universe {
    /// Run `f` on `world` ranks concurrently and collect each rank's
    /// return value (indexed by rank).
    ///
    /// Panics in any rank propagate after all threads finish or abort.
    pub fn run<R, F>(world: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Rank) -> R + Send + Sync,
    {
        assert!(world >= 1, "world must have at least one rank");
        let mut senders = Vec::with_capacity(world);
        let mut receivers = Vec::with_capacity(world);
        for _ in 0..world {
            let (tx, rx) = unbounded::<Msg>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let barrier = Arc::new(Barrier::new(world));
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(world);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                let barrier = Arc::clone(&barrier);
                handles.push(scope.spawn(move || {
                    let mut r = Rank {
                        rank,
                        size: world,
                        senders,
                        receiver: rx,
                        stash: RefCell::new(HashMap::new()),
                        barrier,
                        stats: Cell::new(CommStats::default()),
                    };
                    f(&mut r)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

/// A rank's communication endpoint. Not `Sync`: it lives on one thread.
pub struct Rank {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Msg>>>,
    receiver: Receiver<Msg>,
    stash: RefCell<HashMap<(usize, u32), VecDeque<Bytes>>>,
    barrier: Arc<Barrier>,
    stats: Cell<CommStats>,
}

impl Rank {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of this rank's cumulative traffic counters.
    pub fn comm_stats(&self) -> CommStats {
        self.stats.get()
    }

    /// Reset the traffic counters (e.g. between benchmark repetitions).
    pub fn reset_comm_stats(&self) {
        self.stats.set(CommStats::default());
    }

    fn count_sent(&self, bytes: usize) {
        let mut s = self.stats.get();
        s.bytes_sent += bytes as u64;
        s.msgs_sent += 1;
        self.stats.set(s);
    }

    fn count_recv(&self, bytes: usize) {
        let mut s = self.stats.get();
        s.bytes_recv += bytes as u64;
        s.msgs_recv += 1;
        self.stats.set(s);
    }

    /// Send `payload` to rank `to` with the given tag. Never blocks
    /// (buffered channels), like an MPI eager-protocol send.
    pub fn send(&self, to: usize, tag: u32, payload: Bytes) {
        self.count_sent(payload.len());
        self.senders[to]
            .send(Msg {
                from: self.rank,
                tag,
                payload,
            })
            .expect("receiver hung up");
    }

    /// Blocking receive matching `(from, tag)`; other messages arriving
    /// meanwhile are stashed for later receives.
    ///
    /// Counters attribute a message to the receive that consumed it, so a
    /// stashed out-of-order arrival is counted when it is matched, not
    /// when it lands.
    pub fn recv(&self, from: usize, tag: u32) -> Bytes {
        if let Some(q) = self.stash.borrow_mut().get_mut(&(from, tag)) {
            if let Some(b) = q.pop_front() {
                self.count_recv(b.len());
                return b;
            }
        }
        loop {
            let msg = self.receiver.recv().expect("all senders hung up");
            if msg.from == from && msg.tag == tag {
                self.count_recv(msg.payload.len());
                return msg.payload;
            }
            self.stash
                .borrow_mut()
                .entry((msg.from, msg.tag))
                .or_default()
                .push_back(msg.payload);
        }
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Gather every rank's payload at `root`; returns `Some(vec indexed
    /// by rank)` at the root, `None` elsewhere.
    pub fn gather(&self, root: usize, tag: u32, payload: Bytes) -> Option<Vec<Bytes>> {
        if self.rank == root {
            let mut out = Vec::with_capacity(self.size);
            for r in 0..self.size {
                if r == root {
                    out.push(payload.clone());
                } else {
                    out.push(self.recv(r, tag));
                }
            }
            Some(out)
        } else {
            self.send(root, tag, payload);
            None
        }
    }

    /// Broadcast `payload` from `root` to every rank; returns the payload
    /// everywhere.
    pub fn broadcast(&self, root: usize, tag: u32, payload: Option<Bytes>) -> Bytes {
        if self.rank == root {
            let p = payload.expect("root must supply the broadcast payload");
            for r in 0..self.size {
                if r != root {
                    self.send(r, tag, p.clone());
                }
            }
            p
        } else {
            self.recv(root, tag)
        }
    }

    /// All-reduce an `f64` with the given associative op (gather at rank
    /// 0, reduce, broadcast).
    pub fn allreduce_f64(&self, tag: u32, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        let payload = Bytes::copy_from_slice(&value.to_le_bytes());
        let gathered = self.gather(0, tag, payload);
        let result = if let Some(all) = gathered {
            let reduced = all
                .iter()
                .map(|b| f64::from_le_bytes(b[..8].try_into().unwrap()))
                .reduce(&op)
                .unwrap();
            self.broadcast(0, tag + 1, Some(Bytes::copy_from_slice(&reduced.to_le_bytes())))
        } else {
            self.broadcast(0, tag + 1, None)
        };
        f64::from_le_bytes(result[..8].try_into().unwrap())
    }

    /// Convenience min/max all-reduce pair (used for global value range).
    pub fn allreduce_min_max(&self, tag: u32, lo: f64, hi: f64) -> (f64, f64) {
        let l = self.allreduce_f64(tag, lo, f64::min);
        let h = self.allreduce_f64(tag + 2, hi, f64::max);
        (l, h)
    }

    /// All-reduce a `u64` with the given associative op — same
    /// gather-reduce-broadcast scheme as [`Rank::allreduce_f64`], for
    /// exact integer totals (counters, sizes) where floating-point
    /// rounding is unacceptable.
    pub fn allreduce_u64(&self, tag: u32, value: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        let payload = Bytes::copy_from_slice(&value.to_le_bytes());
        let gathered = self.gather(0, tag, payload);
        let result = if let Some(all) = gathered {
            let reduced = all
                .iter()
                .map(|b| u64::from_le_bytes(b[..8].try_into().unwrap()))
                .reduce(&op)
                .unwrap();
            self.broadcast(0, tag + 1, Some(Bytes::copy_from_slice(&reduced.to_le_bytes())))
        } else {
            self.broadcast(0, tag + 1, None)
        };
        u64::from_le_bytes(result[..8].try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = Universe::run(1, |r| {
            r.barrier();
            r.rank() + r.size()
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_pass() {
        let out = Universe::run(8, |r| {
            let next = (r.rank() + 1) % r.size();
            let prev = (r.rank() + r.size() - 1) % r.size();
            r.send(next, 7, Bytes::copy_from_slice(&(r.rank() as u64).to_le_bytes()));
            let got = r.recv(prev, 7);
            u64::from_le_bytes(got[..8].try_into().unwrap())
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(*got as usize, (rank + 7) % 8);
        }
    }

    #[test]
    fn out_of_order_tags() {
        let out = Universe::run(2, |r| {
            if r.rank() == 0 {
                r.send(1, 5, Bytes::from_static(b"five"));
                r.send(1, 3, Bytes::from_static(b"three"));
                Vec::new()
            } else {
                // receive in the opposite order of sending
                let a = r.recv(0, 3);
                let b = r.recv(0, 5);
                vec![a, b]
            }
        });
        assert_eq!(out[1], vec![Bytes::from_static(b"three"), Bytes::from_static(b"five")]);
    }

    #[test]
    fn gather_and_broadcast() {
        let out = Universe::run(5, |r| {
            let mine = Bytes::copy_from_slice(&[r.rank() as u8]);
            let gathered = r.gather(2, 1, mine);
            if let Some(all) = &gathered {
                assert_eq!(all.len(), 5);
                for (i, b) in all.iter().enumerate() {
                    assert_eq!(b[0] as usize, i);
                }
            }
            let bc = r.broadcast(
                2,
                9,
                (r.rank() == 2).then(|| Bytes::from_static(b"hello")),
            );
            bc.len()
        });
        assert!(out.iter().all(|&l| l == 5));
    }

    #[test]
    fn allreduce_min_max() {
        let out = Universe::run(6, |r| {
            let v = r.rank() as f64 * 2.0 - 3.0;
            r.allreduce_min_max(100, v, v)
        });
        for (lo, hi) in out {
            assert_eq!(lo, -3.0);
            assert_eq!(hi, 7.0);
        }
    }

    #[test]
    fn allreduce_u64_sum_and_max() {
        let out = Universe::run(5, |r| {
            let v = r.rank() as u64 + 1;
            let sum = r.allreduce_u64(200, v, |a, b| a + b);
            let max = r.allreduce_u64(210, v, u64::max);
            (sum, max)
        });
        for (sum, max) in out {
            assert_eq!(sum, 15);
            assert_eq!(max, 5);
        }
    }

    #[test]
    fn comm_stats_count_point_to_point() {
        let out = Universe::run(2, |r| {
            if r.rank() == 0 {
                r.send(1, 1, Bytes::from_static(b"abcde"));
                r.send(1, 2, Bytes::from_static(b"xy"));
            } else {
                // out-of-order match exercises the stash path
                let b = r.recv(0, 2);
                assert_eq!(&b[..], b"xy");
                let a = r.recv(0, 1);
                assert_eq!(&a[..], b"abcde");
            }
            r.comm_stats()
        });
        assert_eq!(
            out[0],
            CommStats { bytes_sent: 7, bytes_recv: 0, msgs_sent: 2, msgs_recv: 0 }
        );
        assert_eq!(
            out[1],
            CommStats { bytes_sent: 0, bytes_recv: 7, msgs_sent: 0, msgs_recv: 2 }
        );
    }

    #[test]
    fn comm_stats_cover_collectives() {
        // One allreduce_f64 over W ranks: gather = (W-1) 8-byte sends into
        // root, broadcast = (W-1) 8-byte sends out of root.
        const W: usize = 4;
        let out = Universe::run(W, |r| {
            let _ = r.allreduce_f64(300, r.rank() as f64, f64::max);
            r.comm_stats()
        });
        let total_sent: u64 = out.iter().map(|s| s.bytes_sent).sum();
        let total_recv: u64 = out.iter().map(|s| s.bytes_recv).sum();
        assert_eq!(total_sent, 16 * (W as u64 - 1));
        assert_eq!(total_recv, total_sent);
        let msgs: u64 = out.iter().map(|s| s.msgs_sent).sum();
        assert_eq!(msgs, 2 * (W as u64 - 1));
        // Root sends the broadcast fan-out, leaves send one gather leg.
        assert_eq!(out[0].msgs_sent, W as u64 - 1);
        for s in &out[1..] {
            assert_eq!(s.msgs_sent, 1);
        }
    }

    #[test]
    fn comm_stats_reset() {
        let out = Universe::run(2, |r| {
            let peer = 1 - r.rank();
            r.send(peer, 4, Bytes::from_static(b"warmup"));
            let _ = r.recv(peer, 4);
            r.reset_comm_stats();
            r.comm_stats()
        });
        assert!(out.iter().all(|s| *s == CommStats::default()));
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let out = Universe::run(4, |r| {
            phase1.fetch_add(1, Ordering::SeqCst);
            r.barrier();
            // after the barrier every rank must observe all increments
            phase1.load(Ordering::SeqCst)
        });
        assert!(out.iter().all(|&v| v == 4));
    }
}
