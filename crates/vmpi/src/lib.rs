//! # msp-vmpi
//!
//! A virtual message-passing substrate standing in for MPI on the
//! IBM Blue Gene/P (see DESIGN.md §2 for the substitution rationale).
//!
//! Three layers:
//!
//! * [`comm`] — a **threaded backend**: one OS thread per rank, typed
//!   point-to-point messages with `(source, tag)` matching, and the
//!   collectives the pipeline needs (barrier, gather, broadcast,
//!   all-reduce). Data movement is real: payloads are serialized bytes
//!   travelling through channels. Every operation is fallible
//!   (`Result<_, CommError>`, optional receive deadlines) and a
//!   deterministic fault-injection hook can drop/delay link messages —
//!   the substrate the fault-tolerant pipeline builds on. Suitable for
//!   rank counts that fit a workstation (tests use ≤ 64, examples ≤ 256).
//! * [`fileio`] — collective file operations mirroring MPI-IO usage in
//!   the paper (§IV-B, §IV-G): subarray-view reads and a collective
//!   block write that appends a footer index, including "null" writes by
//!   ranks with no output blocks.
//! * [`netmodel`] — a 3D-torus + LogGP-style performance model with
//!   BG/P-flavoured constants, and a parallel-filesystem model. The
//!   simulation driver in `msp-core` combines *measured* per-rank compute
//!   times with these *modeled* communication/I-O times to reproduce the
//!   shape of the paper's scaling figures at virtual rank counts far
//!   beyond the host machine.

pub mod comm;
pub mod fileio;
pub mod netmodel;
pub mod pairmsg;

pub use comm::{CommError, CommStats, Inject, Rank, SendFate, Universe};
pub use netmodel::{IoParams, NetParams, Torus};
