//! Performance model of a Blue Gene/P-like machine: a 3D torus
//! interconnect with LogGP-style message costs, and a shared parallel
//! filesystem.
//!
//! The constants default to published BG/P figures (DMA torus links of
//! 425 MB/s raw / ≈ 375 MB/s usable, ≈ 3.5 µs MPI latency, ≈ 0.1 µs per
//! hop) and ALCF-Intrepid-era GPFS aggregate bandwidth. They are inputs,
//! not truths: the scaling *shapes* of Figs 6/9/10 are insensitive to
//! ±2× changes here, which EXPERIMENTS.md demonstrates with a parameter
//! note.

use serde::{Deserialize, Serialize};

/// A 3D torus with `dims[0] · dims[1] · dims[2] >= n_ranks` nodes,
/// factored as near-cubically as possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    pub dims: [u32; 3],
}

impl Torus {
    /// Build the smallest near-cubic torus holding `n` ranks.
    pub fn for_ranks(n: u32) -> Self {
        assert!(n >= 1);
        // factor n = a*b*c with a <= b <= c as balanced as possible;
        // fall back to enlarging when n has awkward factors
        let mut best: Option<[u32; 3]> = None;
        let mut best_score = u64::MAX;
        let cap = n + n / 4 + 2; // allow slight overprovisioning
        let mut m = n;
        while m <= cap && best_score > 0 {
            let mut a = 1;
            while a * a * a <= m {
                if m.is_multiple_of(a) {
                    let rest = m / a;
                    let mut b = a;
                    while b * b <= rest {
                        if rest.is_multiple_of(b) {
                            let c = rest / b;
                            let score = (c - a) as u64 * 1000 + (m - n) as u64;
                            if score < best_score {
                                best_score = score;
                                best = Some([a, b, c]);
                            }
                        }
                        b += 1;
                    }
                }
                a += 1;
            }
            m += 1;
        }
        Torus {
            dims: best.unwrap(),
        }
    }

    pub fn n_nodes(&self) -> u32 {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Coordinates of a rank in row-major placement.
    pub fn coords(&self, rank: u32) -> [u32; 3] {
        let x = rank % self.dims[0];
        let rest = rank / self.dims[0];
        [x, rest % self.dims[1], rest / self.dims[1]]
    }

    /// Minimal hop count between two ranks with wraparound links.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (0..3)
            .map(|i| {
                let d = ca[i].abs_diff(cb[i]);
                d.min(self.dims[i] - d)
            })
            .sum()
    }

    /// Network diameter (maximum hop distance).
    pub fn diameter(&self) -> u32 {
        (0..3).map(|i| self.dims[i] / 2).sum()
    }
}

/// LogGP-style point-to-point message cost parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetParams {
    /// Software + injection latency per message (s).
    pub latency_s: f64,
    /// Transfer time per byte (s) — inverse link bandwidth.
    pub byte_time_s: f64,
    /// Additional per-hop routing delay (s).
    pub hop_time_s: f64,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            latency_s: 3.5e-6,
            byte_time_s: 1.0 / 375.0e6,
            hop_time_s: 1.0e-7,
        }
    }
}

impl NetParams {
    /// Modeled time to move one `bytes`-sized message across `hops`.
    pub fn msg_time(&self, bytes: u64, hops: u32) -> f64 {
        self.latency_s + self.hop_time_s * hops as f64 + self.byte_time_s * bytes as f64
    }

    /// Modeled time to re-ship a lost message: detection already charged
    /// separately by the caller, so this is a fresh transfer plus one
    /// extra software round-trip for the retry handshake (NACK + resend
    /// setup). Used by the sim driver to price fault-recovery traffic.
    pub fn retry_time(&self, bytes: u64, hops: u32) -> f64 {
        2.0 * (self.latency_s + self.hop_time_s * hops as f64) + self.msg_time(bytes, hops)
    }
}

/// Shared-parallel-filesystem model (collective read/write).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IoParams {
    /// Aggregate filesystem bandwidth (bytes/s) across all ranks.
    pub aggregate_bw: f64,
    /// Per-process achievable bandwidth (bytes/s).
    pub per_proc_bw: f64,
    /// Fixed collective-operation latency (s) — open, view setup, sync.
    pub latency_s: f64,
    /// Additional per-rank collective coordination cost (s) — metadata
    /// pressure that makes very wide collectives slightly slower.
    pub per_rank_s: f64,
}

impl Default for IoParams {
    fn default() -> Self {
        IoParams {
            aggregate_bw: 8.0e9,
            per_proc_bw: 300.0e6,
            latency_s: 5.0e-3,
            per_rank_s: 2.0e-6,
        }
    }
}

impl IoParams {
    /// Modeled wall time for a collective transfer of `total_bytes`
    /// spread over `n_ranks` ranks, the widest single rank moving
    /// `max_rank_bytes`.
    pub fn collective_time(&self, total_bytes: u64, max_rank_bytes: u64, n_ranks: u32) -> f64 {
        let aggregate_limited = total_bytes as f64 / self.aggregate_bw;
        let rank_limited = max_rank_bytes as f64 / self.per_proc_bw;
        self.latency_s + self.per_rank_s * n_ranks as f64 + aggregate_limited.max(rank_limited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_factorization_is_exactish() {
        for n in [1u32, 2, 8, 32, 64, 512, 2048, 8192, 32768] {
            let t = Torus::for_ranks(n);
            assert!(t.n_nodes() >= n);
            assert!(t.n_nodes() <= n + n / 4 + 2);
            assert!(t.dims[0] <= t.dims[1] && t.dims[1] <= t.dims[2]);
        }
        // powers of two factor perfectly
        assert_eq!(Torus::for_ranks(4096).n_nodes(), 4096);
        assert_eq!(Torus::for_ranks(8).dims, [2, 2, 2]);
    }

    #[test]
    fn hops_wraparound() {
        let t = Torus { dims: [4, 4, 4] };
        // ranks 0 and 3 on the x ring: distance 1 via wraparound
        assert_eq!(t.hops(0, 3), 1);
        assert_eq!(t.hops(0, 2), 2);
        // self distance 0
        assert_eq!(t.hops(17, 17), 0);
        // symmetric
        assert_eq!(t.hops(5, 42), t.hops(42, 5));
        assert!(t.hops(5, 42) <= t.diameter());
    }

    #[test]
    fn msg_time_monotone() {
        let p = NetParams::default();
        assert!(p.msg_time(1000, 1) < p.msg_time(2000, 1));
        assert!(p.msg_time(1000, 1) < p.msg_time(1000, 5));
        // large messages are bandwidth dominated
        let t = p.msg_time(100_000_000, 1);
        assert!((t - 100_000_000.0 / 375.0e6).abs() / t < 0.01);
    }

    #[test]
    fn io_model_caps_at_aggregate() {
        let io = IoParams::default();
        let total = 8_000_000_000u64; // 8 GB collective
        let t = |n: u64| io.collective_time(total, total / n, n as u32);
        // few ranks: per-process bandwidth limited — more ranks help
        assert!(t(16) > t(512), "scaling out helps while per-proc limited");
        // beyond the aggregate cap, extra ranks only add coordination cost
        assert!(
            t(32768) > t(512),
            "past the cap wider collectives cost more"
        );
        // and never beat the aggregate-bandwidth floor
        assert!(t(32768) > total as f64 / io.aggregate_bw);
    }
}
