//! Typed `u64`-pair and `u64`-list messages, plus symmetric all-to-all
//! exchange helpers.
//!
//! The segmentation resolution protocol ships exactly two payload
//! shapes between ranks: lists of `(u64, u64)` pairs (forward entries,
//! query replies) and flat lists of `u64` addresses (queries). Both get
//! a length-prefixed little-endian encoding here so every message is
//! validated on receipt, and both get an `exchange_*` helper that
//! performs a deterministic all-to-all: send the bucket for every other
//! rank (sends are non-blocking, so send-all-then-receive-all cannot
//! deadlock), deliver the self bucket locally without touching the
//! transport, and receive from peers in ascending rank order.
//!
//! Senders must pre-sort bucket contents — the helpers preserve order,
//! so sorted-in means deterministic-out regardless of arrival order.

use crate::comm::{CommError, Rank};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encode a pair list: `u32` count, then `(u64, u64)` little-endian.
pub fn encode_pairs(pairs: &[(u64, u64)]) -> Bytes {
    let mut b = BytesMut::with_capacity(4 + 16 * pairs.len());
    b.put_u32_le(pairs.len() as u32);
    for &(k, v) in pairs {
        b.put_u64_le(k);
        b.put_u64_le(v);
    }
    b.freeze()
}

/// Decode a pair list encoded by [`encode_pairs`].
pub fn decode_pairs(mut b: &[u8]) -> Result<Vec<(u64, u64)>, String> {
    if b.len() < 4 {
        return Err("truncated pair message (no count)".into());
    }
    let n = b.get_u32_le() as usize;
    if b.len() != 16 * n {
        return Err(format!("pair message: {} bytes for {} pairs", b.len(), n));
    }
    Ok((0..n).map(|_| (b.get_u64_le(), b.get_u64_le())).collect())
}

/// Encode an address list: `u32` count, then `u64` little-endian.
pub fn encode_u64s(addrs: &[u64]) -> Bytes {
    let mut b = BytesMut::with_capacity(4 + 8 * addrs.len());
    b.put_u32_le(addrs.len() as u32);
    for &a in addrs {
        b.put_u64_le(a);
    }
    b.freeze()
}

/// Decode an address list encoded by [`encode_u64s`].
pub fn decode_u64s(mut b: &[u8]) -> Result<Vec<u64>, String> {
    if b.len() < 4 {
        return Err("truncated u64 message (no count)".into());
    }
    let n = b.get_u32_le() as usize;
    if b.len() != 8 * n {
        return Err(format!("u64 message: {} bytes for {} entries", b.len(), n));
    }
    Ok((0..n).map(|_| b.get_u64_le()).collect())
}

fn protocol_err(what: &str, from: usize, tag: u32, e: String) -> CommError {
    // An in-process peer sent a malformed typed message: that is a
    // protocol bug, not a transport fault, but surfacing it as a typed
    // error keeps the pipeline's error path uniform.
    CommError::Protocol {
        from,
        tag,
        detail: format!("{what}: {e}"),
    }
}

/// Per-source buckets of `(u64, u64)` pairs, indexed by rank.
pub type PairBuckets = Vec<Vec<(u64, u64)>>;

/// All-to-all exchange of pair buckets. `outgoing[p]` is sent to rank
/// `p` (the self bucket is delivered locally, unserialized). Returns
/// per-source incoming buckets (`incoming[me] == outgoing[me]`) and the
/// wire bytes this rank actually sent.
pub fn exchange_pairs(
    rank: &Rank,
    tag: u32,
    outgoing: &[Vec<(u64, u64)>],
) -> Result<(PairBuckets, u64), CommError> {
    let (me, size) = (rank.rank(), rank.size());
    debug_assert_eq!(outgoing.len(), size);
    let mut sent = 0u64;
    for (p, bucket) in outgoing.iter().enumerate() {
        if p == me {
            continue;
        }
        let payload = encode_pairs(bucket);
        sent += payload.len() as u64;
        rank.send(p, tag, payload)?;
    }
    let mut incoming = vec![Vec::new(); size];
    incoming[me] = outgoing[me].clone();
    for (p, slot) in incoming.iter_mut().enumerate() {
        if p == me {
            continue;
        }
        let b = rank.recv(p, tag)?;
        *slot = decode_pairs(&b).map_err(|e| protocol_err("pair message", p, tag, e))?;
    }
    Ok((incoming, sent))
}

/// All-to-all exchange of address buckets; same contract as
/// [`exchange_pairs`].
pub fn exchange_u64s(
    rank: &Rank,
    tag: u32,
    outgoing: &[Vec<u64>],
) -> Result<(Vec<Vec<u64>>, u64), CommError> {
    let (me, size) = (rank.rank(), rank.size());
    debug_assert_eq!(outgoing.len(), size);
    let mut sent = 0u64;
    for (p, bucket) in outgoing.iter().enumerate() {
        if p == me {
            continue;
        }
        let payload = encode_u64s(bucket);
        sent += payload.len() as u64;
        rank.send(p, tag, payload)?;
    }
    let mut incoming = vec![Vec::new(); size];
    incoming[me] = outgoing[me].clone();
    for (p, slot) in incoming.iter_mut().enumerate() {
        if p == me {
            continue;
        }
        let b = rank.recv(p, tag)?;
        *slot = decode_u64s(&b).map_err(|e| protocol_err("u64 message", p, tag, e))?;
    }
    Ok((incoming, sent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Universe;

    #[test]
    fn pair_round_trip() {
        let pairs = vec![(1u64, 2u64), (u64::MAX, 0), (7, 7)];
        assert_eq!(decode_pairs(&encode_pairs(&pairs)).unwrap(), pairs);
        assert_eq!(decode_pairs(&encode_pairs(&[])).unwrap(), vec![]);
    }

    #[test]
    fn u64_round_trip() {
        let addrs = vec![0u64, 5, u64::MAX];
        assert_eq!(decode_u64s(&encode_u64s(&addrs)).unwrap(), addrs);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode_pairs(b"").is_err());
        assert!(decode_pairs(b"\x02\x00\x00\x00short").is_err());
        let mut extra = encode_pairs(&[(1, 2)]).to_vec();
        extra.push(0);
        assert!(decode_pairs(&extra).is_err());
        assert!(decode_u64s(b"\x01").is_err());
        let mut extra = encode_u64s(&[9]).to_vec();
        extra.push(0);
        assert!(decode_u64s(&extra).is_err());
    }

    #[test]
    fn all_to_all_routes_buckets() {
        let results = Universe::run(3, |rank| {
            let me = rank.rank() as u64;
            // bucket for p carries (me, p) pairs, p+1 of them
            let outgoing: Vec<Vec<(u64, u64)>> =
                (0..3).map(|p| vec![(me, p as u64); p + 1]).collect();
            let (incoming, sent) = exchange_pairs(rank, 0x4000_0000, &outgoing).unwrap();
            for (src, bucket) in incoming.iter().enumerate() {
                assert_eq!(bucket.len(), rank.rank() + 1);
                assert!(bucket.iter().all(|&(s, d)| s == src as u64 && d == me));
            }
            // two peers get buckets of (me+1 ... ) pairs each
            let expected: u64 = (0..3)
                .filter(|&p| p != rank.rank())
                .map(|p| 4 + 16 * (p as u64 + 1))
                .sum();
            assert_eq!(sent, expected);

            let addr_out: Vec<Vec<u64>> = (0..3).map(|p| vec![me * 10 + p as u64]).collect();
            let (addr_in, _) = exchange_u64s(rank, 0x4100_0000, &addr_out).unwrap();
            for (src, bucket) in addr_in.iter().enumerate() {
                assert_eq!(bucket, &vec![src as u64 * 10 + me]);
            }
            1u32
        });
        assert_eq!(results, vec![1, 1, 1]);
    }
}
