//! Property-based round-trip tests of the checkpoint format: random
//! complexes (nodes, arcs, leaf + cancel geometry, boundary flags) and
//! random merge cursors must survive encode → decode bit-exactly, and
//! random corruption must never decode successfully.

use bytes::Bytes;
use msp_complex::wire;
use msp_complex::MsComplex;
use msp_fault::{Checkpoint, CheckpointStore};
use msp_grid::dims::RefinedDims;
use proptest::prelude::*;

/// Deterministically grow a complex from a compact recipe so proptest
/// shrinking stays meaningful: `spec[i] = (index, boundary, path_len)`.
fn complex_from_spec(blocks: Vec<u32>, spec: &[(u8, bool, u8)]) -> MsComplex {
    let refined = RefinedDims {
        rx: 33,
        ry: 17,
        rz: 9,
    };
    let mut ms = MsComplex::new(refined, blocks);
    for (i, &(index, boundary, _)) in spec.iter().enumerate() {
        ms.add_node(i as u64 * 5 + 1, index % 4, i as f32 * 0.25 - 3.0, boundary);
    }
    // connect every adjacent-index pair among consecutive nodes
    for (i, &(_, _, path_len)) in spec.iter().enumerate().skip(1) {
        let (a, b) = (i as u32, i as u32 - 1);
        let (ia, ib) = (ms.nodes[a as usize].index, ms.nodes[b as usize].index);
        let path: Vec<u64> = (0..u64::from(path_len) + 2)
            .map(|k| k * 7 + i as u64)
            .collect();
        if ia == ib + 1 {
            let g = ms.add_leaf_geom(&path);
            ms.add_arc(a, b, g);
        } else if ib == ia + 1 {
            let g = ms.add_leaf_geom(&path);
            ms.add_arc(b, a, g);
        }
    }
    ms
}

fn arb_spec() -> impl Strategy<Value = Vec<(u8, bool, u8)>> {
    proptest::collection::vec((0u8..4, any::<bool>(), 0u8..6), 0..40)
}

fn arb_blocks() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..64, 1..5).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_trip_is_exact(
        rank in 0u32..64,
        round in 0u32..8,
        threshold in 0.0f32..1.0,
        blocks in arb_blocks(),
        spec in arb_spec(),
        spec2 in arb_spec(),
    ) {
        let ck = Checkpoint {
            rank,
            round,
            threshold,
            slots: vec![
                (blocks[0], complex_from_spec(blocks.clone(), &spec)),
                (blocks[0] + 100, complex_from_spec(vec![blocks[0] + 100], &spec2)),
            ],
        };
        let encoded = ck.encode();
        let back = Checkpoint::decode(&encoded).unwrap();
        prop_assert_eq!(back.rank, rank);
        prop_assert_eq!(back.round, round);
        prop_assert_eq!(back.threshold, threshold);
        prop_assert_eq!(back.slots.len(), 2);
        for ((b0, c0), (b1, c1)) in ck.slots.iter().zip(&back.slots) {
            prop_assert_eq!(b0, b1);
            // canonical wire form: byte equality == structural equality
            prop_assert_eq!(wire::serialize(c0), wire::serialize(c1));
        }
        // a second encode of the decoded checkpoint is bit-identical
        prop_assert_eq!(encoded, back.encode());
    }

    #[test]
    fn corruption_never_decodes(
        round in 0u32..8,
        spec in arb_spec(),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let ck = Checkpoint {
            rank: 1,
            round,
            threshold: 0.5,
            slots: vec![(0, complex_from_spec(vec![0], &spec))],
        };
        let mut bad = ck.encode().to_vec();
        let pos = flip_at.index(bad.len());
        bad[pos] ^= 1 << flip_bit;
        prop_assert!(Checkpoint::decode(&bad).is_err(), "flipped byte {} undetected", pos);
    }

    #[test]
    fn store_round_trips_through_encoded_bytes(
        rank in 0u32..16,
        round in 0u32..4,
        spec in arb_spec(),
    ) {
        let store = CheckpointStore::new();
        let ck = Checkpoint {
            rank,
            round,
            threshold: 0.1,
            slots: vec![(3, complex_from_spec(vec![3], &spec))],
        };
        let encoded = ck.encode();
        let n = store.save(rank, round, Bytes::from(encoded.to_vec()));
        prop_assert_eq!(n, encoded.len());
        let loaded = store.load(rank, round).unwrap();
        let back = Checkpoint::decode(&loaded).unwrap();
        prop_assert_eq!(back.round, round);
        prop_assert_eq!(
            wire::serialize(&back.slots[0].1),
            wire::serialize(&ck.slots[0].1)
        );
    }
}
