//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) with a
//! compile-time lookup table — no dependency, deterministic everywhere.

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn checksum(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // canonical check value for "123456789"
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum(b""), 0);
        assert_eq!(checksum(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = checksum(b"hello, torus");
        assert_ne!(base, checksum(b"hello, torut"));
        assert_ne!(base, checksum(b"hello, toru"));
    }
}
