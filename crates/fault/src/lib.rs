//! # msp-fault
//!
//! Fault tolerance for the parallel MS-complex pipeline (DESIGN.md §9).
//!
//! The paper's target machine is a 32k-node Blue Gene/P, where rank
//! failure mid-run is an operational reality. The algorithm's
//! bulk-synchronous shape — local compute, then radix-k merge rounds,
//! then a collective write — makes every round boundary a natural
//! consistent cut, and this crate packages the three pieces needed to
//! exploit that:
//!
//! * [`plan`] — a deterministic, seedable [`FaultPlan`]: crash rank *r*
//!   at round *k*, drop/delay the *n*-th message on a link, slow a rank
//!   by a factor. Plans implement the comm layer's `Inject` hook and
//!   parse from a compact CLI spec (`crash:2@1;drop:0->3#7`).
//! * [`checkpoint`] — a versioned, CRC-protected [`Checkpoint`] of one
//!   rank's state at a round boundary: merge-plan cursor, resolved
//!   persistence threshold, and every living complex in the compact
//!   `msp-complex::wire` encoding.
//! * [`store`] — a [`CheckpointStore`] shared across ranks, standing in
//!   for stable storage, from which survivors reload a dead peer's
//!   state to replay the affected round.
//!
//! The recovery protocol itself lives in `msp-core::pipeline` (threaded
//! runs) and `msp-core::simdriver` (modeled runs); this crate only
//! provides the deterministic inputs and durable state they need.

pub mod checkpoint;
pub mod crc32;
pub mod plan;
pub mod store;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use plan::{FaultEvent, FaultPlan, PlanParseError};
pub use store::CheckpointStore;
