//! Versioned merge-round checkpoints.
//!
//! The pipeline's bulk-synchronous shape makes every merge-round
//! boundary a consistent cut: all sends of round *k* are matched before
//! anyone starts round *k + 1*. A [`Checkpoint`] captures one rank's
//! state at such a cut — its merge-plan cursor plus every living complex
//! it holds, each in the compact `msp-complex::wire` encoding (which
//! already carries boundary flags and member blocks). Replaying a lost
//! round from a checkpoint therefore reproduces the fault-free result
//! bit for bit.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   "MSK1"
//! version u16        (= 1)
//! rank    u32
//! round   u32        merge-plan cursor: rounds completed when saved
//! thresh  f32        persistence threshold the run resolved
//! n_slots u32
//! slot[i] block u32, len u32, wire bytes (MSC2 payload)
//! crc     u32        CRC-32 (IEEE) over everything above
//! ```

use crate::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use msp_complex::wire::{self, WireError};
use msp_complex::MsComplex;

const MAGIC: &[u8; 4] = b"MSK1";
const VERSION: u16 = 1;

/// One rank's recoverable state at a merge-round boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    pub rank: u32,
    /// Merge rounds completed when this was taken (0 = after local
    /// compute, before any merging).
    pub round: u32,
    /// Global persistence threshold (resolved before merging starts;
    /// recovery must simplify with the same value).
    pub threshold: f32,
    /// `(block id, complex)` for every living complex this rank holds.
    pub slots: Vec<(u32, MsComplex)>,
}

/// Errors from [`Checkpoint::decode`].
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    BadMagic,
    /// Version in the header we do not understand.
    BadVersion(u16),
    /// CRC mismatch: the payload was corrupted at rest or in flight.
    BadCrc {
        expected: u32,
        found: u32,
    },
    Truncated,
    /// A slot's embedded complex failed wire decoding.
    Wire(WireError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "bad magic (not an MSK1 checkpoint)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadCrc { expected, found } => {
                write!(
                    f,
                    "checkpoint CRC mismatch (expected {expected:#010x}, found {found:#010x})"
                )
            }
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::Wire(e) => write!(f, "checkpoint slot payload: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Wire(e)
    }
}

impl Checkpoint {
    /// Serialize to the versioned, CRC-protected format. Complexes must
    /// be compacted (the wire layer requires it).
    pub fn encode(&self) -> Bytes {
        let body: usize = self
            .slots
            .iter()
            .map(|(_, c)| 8 + wire::estimate_size(c))
            .sum();
        let mut buf = BytesMut::with_capacity(4 + 2 + 4 + 4 + 4 + 4 + body + 4);
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u32_le(self.rank);
        buf.put_u32_le(self.round);
        buf.put_f32_le(self.threshold);
        buf.put_u32_le(self.slots.len() as u32);
        for (block, complex) in &self.slots {
            let payload = wire::serialize(complex);
            buf.put_u32_le(*block);
            buf.put_u32_le(payload.len() as u32);
            buf.put_slice(&payload);
        }
        let crc = crc32::checksum(&buf);
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Decode and fully validate (magic, version, CRC, every embedded
    /// complex).
    pub fn decode(data: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if data.len() < 4 + 2 + 4 + 4 + 4 + 4 + 4 {
            return Err(CheckpointError::Truncated);
        }
        if &data[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let found = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let expected = crc32::checksum(body);
        if expected != found {
            return Err(CheckpointError::BadCrc { expected, found });
        }
        let mut buf = &body[4..];
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let rank = buf.get_u32_le();
        let round = buf.get_u32_le();
        let threshold = buf.get_f32_le();
        let n_slots = buf.get_u32_le() as usize;
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            if buf.remaining() < 8 {
                return Err(CheckpointError::Truncated);
            }
            let block = buf.get_u32_le();
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(CheckpointError::Truncated);
            }
            let complex = wire::deserialize(&buf[..len])?;
            buf.advance(len);
            slots.push((block, complex));
        }
        if buf.remaining() > 0 {
            return Err(CheckpointError::Wire(WireError::Corrupt(
                "trailing bytes after last slot",
            )));
        }
        Ok(Checkpoint {
            rank,
            round,
            threshold,
            slots,
        })
    }

    /// The complex checkpointed for `block`, if present.
    pub fn slot(&self, block: u32) -> Option<&MsComplex> {
        self.slots.iter().find(|(b, _)| *b == block).map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::dims::RefinedDims;

    fn sample_complex(blocks: Vec<u32>, n_nodes: u32) -> MsComplex {
        let refined = RefinedDims {
            rx: 17,
            ry: 17,
            rz: 9,
        };
        let mut ms = MsComplex::new(refined, blocks);
        for i in 0..n_nodes {
            ms.add_node(u64::from(i) * 3, (i % 4) as u8, i as f32 * 0.5, i % 5 == 0);
        }
        // a few arcs between consecutive-index nodes, with leaf geometry
        for i in 1..n_nodes {
            let (a, b) = (i, i - 1);
            let (ia, ib) = (ms.nodes[a as usize].index, ms.nodes[b as usize].index);
            if ia == ib + 1 {
                let g = ms.add_leaf_geom(&[u64::from(a) * 3, u64::from(b) * 3]);
                ms.add_arc(a, b, g);
            }
        }
        ms
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            rank: 3,
            round: 2,
            threshold: 0.125,
            slots: vec![
                (0, sample_complex(vec![0, 1], 8)),
                (5, sample_complex(vec![5], 3)),
                (9, sample_complex(vec![9], 0)),
            ],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ck = sample_checkpoint();
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back.rank, ck.rank);
        assert_eq!(back.round, ck.round);
        assert_eq!(back.threshold, ck.threshold);
        assert_eq!(back.slots.len(), ck.slots.len());
        for ((b0, c0), (b1, c1)) in ck.slots.iter().zip(&back.slots) {
            assert_eq!(b0, b1);
            // wire encoding is canonical for compact complexes: byte
            // equality of re-serialization proves structural equality
            assert_eq!(wire::serialize(c0), wire::serialize(c1));
        }
        assert_eq!(back.slot(5).unwrap().nodes.len(), 3);
        assert!(back.slot(7).is_none());
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample_checkpoint().encode();
        // flip one bit somewhere in the middle
        let mut bad = bytes.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(matches!(
            Checkpoint::decode(&bad),
            Err(CheckpointError::BadCrc { .. })
        ));
    }

    #[test]
    fn truncation_and_magic_are_detected() {
        let bytes = sample_checkpoint().encode();
        assert_eq!(
            Checkpoint::decode(&bytes[..10]).err(),
            Some(CheckpointError::Truncated)
        );
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert_eq!(
            Checkpoint::decode(&bad).err(),
            Some(CheckpointError::BadMagic)
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let bytes = sample_checkpoint().encode();
        let mut bad = bytes.to_vec();
        bad[4] = 99; // version field, little-endian low byte
        let n = bad.len();
        // re-seal the CRC so only the version is at fault
        let crc = crc32::checksum(&bad[..n - 4]);
        bad[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bad).err(),
            Some(CheckpointError::BadVersion(99))
        );
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let ck = Checkpoint {
            rank: 0,
            round: 0,
            threshold: 0.0,
            slots: vec![],
        };
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back.slots.len(), 0);
        assert_eq!(back.round, 0);
    }
}
