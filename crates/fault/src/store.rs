//! In-memory checkpoint store shared by all ranks of a threaded run.
//!
//! Stands in for the stable storage (parallel filesystem or buddy-rank
//! memory) a production deployment would use: ranks save encoded
//! checkpoints keyed by `(rank, round)`, and any survivor can later load
//! a *peer's* checkpoint to replay a lost round. Encoded bytes are
//! stored, not live objects — recovery pays the same decode + CRC cost a
//! disk-based store would.

use bytes::Bytes;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cloneable handle; all clones share one underlying map.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<HashMap<(u32, u32), Bytes>>>,
}

impl CheckpointStore {
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Save `rank`'s checkpoint for merge-round cursor `round`,
    /// replacing any previous one. Returns the encoded size in bytes
    /// (what the caller should account as `checkpoint_bytes`).
    pub fn save(&self, rank: u32, round: u32, encoded: Bytes) -> usize {
        let n = encoded.len();
        self.inner.lock().unwrap().insert((rank, round), encoded);
        n
    }

    /// Load the checkpoint `rank` saved at `round`, if any.
    pub fn load(&self, rank: u32, round: u32) -> Option<Bytes> {
        self.inner.lock().unwrap().get(&(rank, round)).cloned()
    }

    /// Latest round ≤ `round` for which `rank` has a checkpoint.
    pub fn latest(&self, rank: u32, round: u32) -> Option<(u32, Bytes)> {
        let map = self.inner.lock().unwrap();
        (0..=round)
            .rev()
            .find_map(|k| map.get(&(rank, k)).map(|b| (k, b.clone())))
    }

    /// Number of checkpoints currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded bytes currently held.
    pub fn total_bytes(&self) -> usize {
        self.inner.lock().unwrap().values().map(Bytes::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_latest() {
        let store = CheckpointStore::new();
        assert!(store.is_empty());
        store.save(1, 0, Bytes::from_static(b"r1k0"));
        store.save(1, 2, Bytes::from_static(b"r1k2"));
        store.save(0, 1, Bytes::from_static(b"r0k1"));
        assert_eq!(store.len(), 3);
        assert_eq!(store.total_bytes(), 12);
        assert_eq!(store.load(1, 2).unwrap(), Bytes::from_static(b"r1k2"));
        assert!(store.load(1, 1).is_none());
        // latest walks backwards from the requested round
        let (k, b) = store.latest(1, 3).unwrap();
        assert_eq!((k, b), (2, Bytes::from_static(b"r1k2")));
        let (k, _) = store.latest(1, 1).unwrap();
        assert_eq!(k, 0);
        assert!(store.latest(7, 5).is_none());
    }

    #[test]
    fn clones_share_state() {
        let a = CheckpointStore::new();
        let b = a.clone();
        a.save(0, 0, Bytes::from_static(b"x"));
        assert_eq!(b.load(0, 0).unwrap(), Bytes::from_static(b"x"));
    }
}
