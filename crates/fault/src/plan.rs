//! Deterministic, seedable fault plans.
//!
//! A [`FaultPlan`] is a finite list of [`FaultEvent`]s fixed before the
//! run starts — faults are *data*, not side effects of a random number
//! generator consulted mid-run, so every experiment is exactly
//! reproducible: the same plan against the same input produces the same
//! crashes, the same dropped messages, and (with recovery working) the
//! same final complex.
//!
//! Plans come from three places: built programmatically (tests), parsed
//! from the CLI `--faults` spec (see [`FaultPlan::from_str`]), or
//! generated from a seed + target rate ([`FaultPlan::seeded_crashes`])
//! for sweep benchmarks.

use msp_vmpi::comm::{Inject, SendFate};
use std::str::FromStr;
use std::time::Duration;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Rank `rank` loses its in-memory state at the boundary of merge
    /// round `round` (1-based; `round = n_rounds + 1` models a crash
    /// after the last merge but before the collective write).
    Crash { rank: usize, round: u32 },
    /// Silently lose the `nth` (1-based) message on the directed link
    /// `from -> to`.
    DropMsg { from: usize, to: usize, nth: u64 },
    /// Hold the `nth` (1-based) message on `from -> to` back by
    /// `delay_ms` milliseconds before delivering it.
    DelayMsg {
        from: usize,
        to: usize,
        nth: u64,
        delay_ms: u64,
    },
    /// Multiply rank `rank`'s compute time by `factor` (≥ 1.0) — a
    /// straggler. Only the BSP sim driver charges this; the threaded
    /// backend runs real compute and cannot slow it honestly.
    SlowRank { rank: usize, factor: f64 },
}

/// A complete, ordered fault schedule for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn crash(mut self, rank: usize, round: u32) -> Self {
        self.events.push(FaultEvent::Crash { rank, round });
        self
    }

    pub fn drop_msg(mut self, from: usize, to: usize, nth: u64) -> Self {
        self.events.push(FaultEvent::DropMsg { from, to, nth });
        self
    }

    pub fn delay_msg(mut self, from: usize, to: usize, nth: u64, delay_ms: u64) -> Self {
        self.events.push(FaultEvent::DelayMsg {
            from,
            to,
            nth,
            delay_ms,
        });
        self
    }

    pub fn slow_rank(mut self, rank: usize, factor: f64) -> Self {
        self.events.push(FaultEvent::SlowRank { rank, factor });
        self
    }

    /// Generate a crash plan where each (rank, round) cell fails
    /// independently with probability `rate`, driven by a SplitMix64
    /// stream from `seed` — same seed, same plan, on every platform.
    /// Rounds are 1-based up to `n_rounds` inclusive.
    pub fn seeded_crashes(seed: u64, n_ranks: usize, n_rounds: u32, rate: f64) -> Self {
        let mut plan = FaultPlan::new();
        let mut rng = SplitMix64::new(seed);
        for round in 1..=n_rounds {
            for rank in 0..n_ranks {
                if rng.next_f64() < rate {
                    plan.events.push(FaultEvent::Crash { rank, round });
                }
            }
        }
        plan
    }

    /// Does the plan crash `rank` at merge round `round`?
    pub fn should_crash(&self, rank: usize, round: u32) -> bool {
        self.events.iter().any(
            |e| matches!(e, FaultEvent::Crash { rank: r, round: k } if *r == rank && *k == round),
        )
    }

    /// Compute-slowdown factor for `rank` (product of all matching
    /// `SlowRank` events; 1.0 when unaffected).
    pub fn slow_factor(&self, rank: usize) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::SlowRank { rank: r, factor } if *r == rank => Some(*factor),
                _ => None,
            })
            .product()
    }

    /// Total number of crash events (any rank, any round).
    pub fn n_crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, FaultEvent::Crash { .. }))
            .count()
    }
}

/// The threaded backend consults the plan on every point-to-point send:
/// drop/delay events translate directly to [`SendFate`]s keyed on the
/// per-link message ordinal. Crash and slow events are handled at the
/// pipeline / sim-driver layer, not here.
impl Inject for FaultPlan {
    fn fate(&self, from: usize, to: usize, nth: u64) -> SendFate {
        for e in &self.events {
            match *e {
                FaultEvent::DropMsg {
                    from: f,
                    to: t,
                    nth: n,
                } if f == from && t == to && n == nth => return SendFate::Drop,
                FaultEvent::DelayMsg {
                    from: f,
                    to: t,
                    nth: n,
                    delay_ms,
                } if f == from && t == to && n == nth => {
                    return SendFate::Delay(Duration::from_millis(delay_ms))
                }
                _ => {}
            }
        }
        SendFate::Deliver
    }
}

/// Error from parsing a `--faults` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending `;`-separated clause.
    pub clause: String,
    pub what: &'static str,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault clause {:?}: {}", self.clause, self.what)
    }
}

impl std::error::Error for PlanParseError {}

fn parse_num<T: FromStr>(s: &str, clause: &str, what: &'static str) -> Result<T, PlanParseError> {
    s.trim().parse().map_err(|_| PlanParseError {
        clause: clause.to_string(),
        what,
    })
}

/// Parse the CLI fault spec: `;`-separated clauses, each one of
///
/// * `crash:R@K` — crash rank R at merge round K
/// * `drop:F->T#N` — drop the Nth message from rank F to rank T
/// * `delay:F->T#N+MS` — delay that message by MS milliseconds
/// * `slow:R*F` — multiply rank R's compute time by F
///
/// e.g. `--faults 'crash:2@1;drop:0->3#7'`.
impl FromStr for FaultPlan {
    type Err = PlanParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::new();
        for clause in s.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let bad = |what| PlanParseError {
                clause: clause.to_string(),
                what,
            };
            let (kind, rest) = clause
                .split_once(':')
                .ok_or(bad("missing `kind:` prefix"))?;
            match kind.trim() {
                "crash" => {
                    let (r, k) = rest.split_once('@').ok_or(bad("expected `crash:R@K`"))?;
                    plan = plan.crash(
                        parse_num(r, clause, "bad rank")?,
                        parse_num(k, clause, "bad round")?,
                    );
                }
                "drop" => {
                    let (link, n) = rest.split_once('#').ok_or(bad("expected `drop:F->T#N`"))?;
                    let (f, t) = link.split_once("->").ok_or(bad("expected `F->T` link"))?;
                    plan = plan.drop_msg(
                        parse_num(f, clause, "bad source rank")?,
                        parse_num(t, clause, "bad destination rank")?,
                        parse_num(n, clause, "bad message ordinal")?,
                    );
                }
                "delay" => {
                    let (link, tail) = rest
                        .split_once('#')
                        .ok_or(bad("expected `delay:F->T#N+MS`"))?;
                    let (f, t) = link.split_once("->").ok_or(bad("expected `F->T` link"))?;
                    let (n, ms) = tail.split_once('+').ok_or(bad("expected `N+MS` tail"))?;
                    plan = plan.delay_msg(
                        parse_num(f, clause, "bad source rank")?,
                        parse_num(t, clause, "bad destination rank")?,
                        parse_num(n, clause, "bad message ordinal")?,
                        parse_num(ms, clause, "bad delay (ms)")?,
                    );
                }
                "slow" => {
                    let (r, f) = rest.split_once('*').ok_or(bad("expected `slow:R*F`"))?;
                    let factor: f64 = parse_num(f, clause, "bad slowdown factor")?;
                    if factor < 1.0 || factor.is_nan() {
                        return Err(bad("slowdown factor must be >= 1"));
                    }
                    plan = plan.slow_rank(parse_num(r, clause, "bad rank")?, factor);
                }
                _ => return Err(bad("unknown kind (crash|drop|delay|slow)")),
            }
        }
        Ok(plan)
    }
}

/// SplitMix64: tiny, seedable, platform-independent PRNG (Steele et al.,
/// "Fast splittable pseudorandom number generators"). Used instead of the
/// `rand` crate so fault plans stay bit-identical everywhere.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_queries() {
        let p = FaultPlan::new()
            .crash(2, 1)
            .drop_msg(0, 3, 7)
            .slow_rank(1, 2.5)
            .slow_rank(1, 2.0);
        assert!(p.should_crash(2, 1));
        assert!(!p.should_crash(2, 2));
        assert!(!p.should_crash(1, 1));
        assert_eq!(p.slow_factor(1), 5.0);
        assert_eq!(p.slow_factor(0), 1.0);
        assert_eq!(p.n_crashes(), 1);
    }

    #[test]
    fn inject_maps_drop_and_delay() {
        let p = FaultPlan::new().drop_msg(0, 1, 3).delay_msg(1, 0, 2, 40);
        assert_eq!(p.fate(0, 1, 3), SendFate::Drop);
        assert_eq!(p.fate(0, 1, 2), SendFate::Deliver);
        assert_eq!(p.fate(1, 0, 2), SendFate::Delay(Duration::from_millis(40)));
        // crash events never affect message fates
        let c = FaultPlan::new().crash(0, 1);
        assert_eq!(c.fate(0, 1, 1), SendFate::Deliver);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded_crashes(2012, 8, 3, 0.3);
        let b = FaultPlan::seeded_crashes(2012, 8, 3, 0.3);
        assert_eq!(a, b);
        let c = FaultPlan::seeded_crashes(2013, 8, 3, 0.3);
        assert_ne!(a, c, "different seed, different plan");
        // rate 0 => no crashes; rate 1 => every cell crashes
        assert!(FaultPlan::seeded_crashes(1, 8, 3, 0.0).is_empty());
        assert_eq!(FaultPlan::seeded_crashes(1, 8, 3, 1.0).n_crashes(), 24);
    }

    #[test]
    fn seeded_rate_is_roughly_honoured() {
        let p = FaultPlan::seeded_crashes(7, 100, 100, 0.1);
        let n = p.n_crashes() as f64 / 10_000.0;
        assert!((n - 0.1).abs() < 0.02, "empirical rate {n} far from 0.1");
    }

    #[test]
    fn spec_round_trips() {
        let p: FaultPlan = "crash:2@1; drop:0->3#7 ;delay:1->0#2+40;slow:5*3.5"
            .parse()
            .unwrap();
        assert_eq!(
            p.events,
            vec![
                FaultEvent::Crash { rank: 2, round: 1 },
                FaultEvent::DropMsg {
                    from: 0,
                    to: 3,
                    nth: 7
                },
                FaultEvent::DelayMsg {
                    from: 1,
                    to: 0,
                    nth: 2,
                    delay_ms: 40
                },
                FaultEvent::SlowRank {
                    rank: 5,
                    factor: 3.5
                },
            ]
        );
        assert_eq!("".parse::<FaultPlan>().unwrap(), FaultPlan::new());
    }

    #[test]
    fn spec_errors_name_the_clause() {
        let e = "crash:2@1;bogus:3".parse::<FaultPlan>().unwrap_err();
        assert_eq!(e.clause, "bogus:3");
        let e = "crash:x@1".parse::<FaultPlan>().unwrap_err();
        assert_eq!(e.what, "bad rank");
        let e = "drop:0-3#1".parse::<FaultPlan>().unwrap_err();
        assert_eq!(e.what, "expected `F->T` link");
        let e = "slow:1*0.5".parse::<FaultPlan>().unwrap_err();
        assert_eq!(e.what, "slowdown factor must be >= 1");
        assert!(!e.to_string().is_empty());
    }
}
