//! Naive reference implementation of the discrete gradient and of
//! V-path enumeration.
//!
//! This is the oracle the production path is diffed against, so it is
//! written for obviousness, not speed:
//!
//! * the lower star of every vertex is recollected from the full 27-cell
//!   neighbourhood, with owner sets always taken from the decomposition
//!   (no interior fast path);
//! * homotopy expansion is the literal textbook rule, re-derived from
//!   scratch each step: *if any unassigned cell has exactly one
//!   unassigned facet in its owner group, pair the smallest such cell
//!   (by simulation-of-simplicity key) with that facet; otherwise the
//!   smallest unassigned cell is critical*. No priority queues, no
//!   incremental facet counts;
//! * the facet relation is derived from vertex-set inclusion, not from
//!   coordinate parity tricks;
//! * V-paths are enumerated by plain recursion, collecting whole paths.
//!
//! Equivalence with the production two-queue expansion follows from the
//! key order: a facet's vertex set is a strict subset of its cofacet's,
//! so a facet's SoS key is strictly smaller — hence the smallest
//! unassigned cell of a group never has unassigned facets, and the
//! production zero-queue pop always coincides with this rule.

use msp_grid::decomp::{Decomposition, OwnerSet};
use msp_grid::dims::RefinedDims;
use msp_grid::field::{BlockField, CellKey};
use msp_grid::topology::{facets, RBox};
use msp_grid::RCoord;
use msp_morse::gradient::GradientField;
use msp_morse::ArcStore;

/// True when `f` is a facet of `c`: one dimension lower and every vertex
/// of `f` is a vertex of `c`.
fn is_facet(f: RCoord, c: RCoord) -> bool {
    if f.cell_dim() + 1 != c.cell_dim() {
        return false;
    }
    let cv: Vec<RCoord> = c.vertices().collect();
    f.vertices().all(|v| cv.contains(&v))
}

/// Compute the discrete gradient of one block by exhaustive lower-star
/// expansion. Bit-for-bit equal to `msp_morse::assign_gradient` by
/// construction (see module docs); the conformance and fuzz suites
/// assert it.
pub fn reference_gradient(field: &BlockField, decomp: &Decomposition) -> GradientField {
    let block = *field.block();
    let bbox = block.refined_box();
    let mut grad = GradientField::new(bbox);
    for z in block.lo[2]..=block.hi[2] {
        for y in block.lo[1]..=block.hi[1] {
            for x in block.lo[0]..=block.hi[0] {
                expand_lower_star(field, decomp, &bbox, RCoord::of_vertex(x, y, z), &mut grad);
            }
        }
    }
    grad
}

fn expand_lower_star(
    field: &BlockField,
    decomp: &Decomposition,
    bbox: &RBox,
    rv: RCoord,
    grad: &mut GradientField,
) {
    let vkey = field.vertex_key(rv);

    // The lower star: every cell of the 27-neighbourhood (within the
    // block box) whose SoS-maximal vertex is rv.
    let mut cells: Vec<(RCoord, CellKey, OwnerSet)> = Vec::new();
    for dz in -1i64..=1 {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let (cx, cy, cz) = (rv.x as i64 + dx, rv.y as i64 + dy, rv.z as i64 + dz);
                if cx < 0 || cy < 0 || cz < 0 {
                    continue;
                }
                let c = RCoord::new(cx as u32, cy as u32, cz as u32);
                if !bbox.contains(c) {
                    continue;
                }
                let key = field.cell_key(c);
                if key.max_vertex() != vkey {
                    continue;
                }
                cells.push((c, key, decomp.owners(c)));
            }
        }
    }

    let mut assigned = vec![false; cells.len()];
    loop {
        // Pairing step: among unassigned cells having exactly one
        // unassigned same-owner facet in the star, take the smallest.
        let mut best: Option<(usize, usize)> = None; // (cell, its facet)
        for i in 0..cells.len() {
            if assigned[i] {
                continue;
            }
            let fs: Vec<usize> = (0..cells.len())
                .filter(|&j| {
                    !assigned[j] && cells[j].2 == cells[i].2 && is_facet(cells[j].0, cells[i].0)
                })
                .collect();
            if fs.len() == 1 && best.is_none_or(|(b, _)| cells[i].1.cmp(&cells[b].1).is_lt()) {
                best = Some((i, fs[0]));
            }
        }
        if let Some((i, j)) = best {
            grad.pair(cells[j].0, cells[i].0);
            assigned[i] = true;
            assigned[j] = true;
            continue;
        }
        // Critical step: the smallest unassigned cell overall.
        let Some(i) = (0..cells.len())
            .filter(|&i| !assigned[i])
            .min_by(|&a, &b| cells[a].1.cmp(&cells[b].1))
        else {
            break;
        };
        grad.mark_critical(cells[i].0);
        assigned[i] = true;
    }
}

/// One enumerated arc in canonical (address) form: the V-path from a
/// critical `upper` cell of index d down to a critical `lower` cell of
/// index d−1, with the full path as addresses on the refined grid of
/// the whole dataset.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RefArc {
    pub upper: u64,
    pub lower: u64,
    pub geom: Vec<u64>,
}

/// Enumerate every descending V-path between critical cells by plain
/// recursion, sorted canonically. The path multiset (same arc traced
/// along distinct paths appears once per path) matches what
/// `msp_morse::trace_all_arcs` produces.
pub fn reference_arcs(grad: &GradientField, refined: &RefinedDims) -> Vec<RefArc> {
    let bbox = *grad.bbox();
    let mut out = Vec::new();
    for c in grad.critical_cells() {
        if c.cell_dim() == 0 {
            continue;
        }
        let mut path = vec![c];
        for (_, f) in facets(c, &bbox) {
            descend(grad, &bbox, refined, c, f, &mut path, &mut out);
        }
    }
    out.sort();
    out
}

fn descend(
    grad: &GradientField,
    bbox: &RBox,
    refined: &RefinedDims,
    from: RCoord,
    alpha: RCoord,
    path: &mut Vec<RCoord>,
    out: &mut Vec<RefArc>,
) {
    path.push(alpha);
    if grad.is_critical(alpha) {
        out.push(RefArc {
            upper: from.address(refined),
            lower: alpha.address(refined),
            geom: path.iter().map(|c| c.address(refined)).collect(),
        });
    } else if grad.is_tail(alpha) {
        let beta = grad.partner(alpha).expect("tail has a partner");
        // paired upward out of the tracing dimension: flow stops
        if beta.cell_dim() == from.cell_dim() {
            path.push(beta);
            for (_, f2) in facets(beta, bbox) {
                if f2 != alpha {
                    descend(grad, bbox, refined, from, f2, path, out);
                }
            }
            path.pop();
        }
    }
    // head cells end the flow: nothing to do
    path.pop();
}

/// The arcs of a production [`ArcStore`] in the same canonical form as
/// [`reference_arcs`], for multiset diffing.
pub fn arcs_of_store(store: &ArcStore, refined: &RefinedDims) -> Vec<RefArc> {
    let mut out: Vec<RefArc> = store
        .iter()
        .map(|a| RefArc {
            upper: a.upper.address(refined),
            lower: a.lower.address(refined),
            geom: a.geom.iter().map(|c| c.address(refined)).collect(),
        })
        .collect();
    out.sort();
    out
}

/// Byte-level diff of two gradient fields over the same box. Returns a
/// human-readable description of the first few mismatches, or `None`
/// when identical.
pub fn diff_gradient(got: &GradientField, want: &GradientField) -> Option<String> {
    if got.bbox() != want.bbox() {
        return Some(format!(
            "gradient boxes differ: {:?} vs {:?}",
            got.bbox(),
            want.bbox()
        ));
    }
    let mut mismatches = 0u64;
    let mut first = String::new();
    for c in got.bbox().iter() {
        if got.raw(c) != want.raw(c) {
            if mismatches < 4 {
                first.push_str(&format!(
                    " [{},{},{}] got {:#04x} want {:#04x}",
                    c.x,
                    c.y,
                    c.z,
                    got.raw(c),
                    want.raw(c)
                ));
            }
            mismatches += 1;
        }
    }
    (mismatches > 0).then(|| format!("{mismatches} gradient byte(s) differ:{first}"))
}

/// Multiset diff of two canonically-sorted arc lists. Returns a
/// description of the symmetric difference, or `None` when equal.
pub fn diff_arcs(got: &[RefArc], want: &[RefArc]) -> Option<String> {
    if got == want {
        return None;
    }
    let mut only_got = 0u64;
    let mut only_want = 0u64;
    let mut sample = String::new();
    let (mut i, mut j) = (0, 0);
    while i < got.len() || j < want.len() {
        let side = match (got.get(i), want.get(j)) {
            (Some(a), Some(b)) => a.cmp(b),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => break,
        };
        match side {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                if only_got + only_want < 3 {
                    sample.push_str(&format!(" +{:?}", got[i]));
                }
                only_got += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if only_got + only_want < 3 {
                    sample.push_str(&format!(" -{:?}", want[j]));
                }
                only_want += 1;
                j += 1;
            }
        }
    }
    Some(format!(
        "arc multisets differ: {only_got} unexpected, {only_want} missing ({} vs {} total):{sample}",
        got.len(),
        want.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::Dims;
    use msp_morse::{assign_gradient, trace_all_arcs, TraceLimits};

    fn both(
        dims: Dims,
        seed: u64,
        blocks: u32,
    ) -> (Decomposition, Vec<(GradientField, GradientField)>) {
        let f = msp_synth::white_noise(dims, seed);
        let d = Decomposition::bisect(dims, blocks);
        let pairs = d
            .blocks()
            .iter()
            .map(|b| {
                let bf = f.extract_block(b);
                (assign_gradient(&bf, &d), reference_gradient(&bf, &d))
            })
            .collect();
        (d, pairs)
    }

    #[test]
    fn reference_matches_production_on_noise() {
        for (dims, seed) in [
            (Dims::new(6, 6, 6), 1u64),
            (Dims::new(7, 5, 6), 99),
            (Dims::new(5, 8, 5), 1234),
        ] {
            let (_, pairs) = both(dims, seed, 1);
            for (prod, refg) in &pairs {
                assert_eq!(diff_gradient(prod, refg), None);
            }
        }
    }

    #[test]
    fn reference_matches_production_on_blocks() {
        let (_, pairs) = both(Dims::new(9, 9, 9), 7, 4);
        for (prod, refg) in &pairs {
            assert_eq!(diff_gradient(prod, refg), None);
        }
    }

    #[test]
    fn reference_matches_production_on_plateaus() {
        for levels in [1u32, 2, 3] {
            let dims = Dims::new(6, 7, 5);
            let f = msp_synth::plateau(dims, 5, levels);
            let d = Decomposition::bisect(dims, 2);
            for b in d.blocks() {
                let bf = f.extract_block(b);
                let prod = assign_gradient(&bf, &d);
                let refg = reference_gradient(&bf, &d);
                assert_eq!(diff_gradient(&prod, &refg), None, "levels {levels}");
            }
        }
    }

    #[test]
    fn reference_arcs_match_traced_arcs() {
        let dims = Dims::new(7, 7, 7);
        let refined = dims.refined();
        let f = msp_synth::white_noise(dims, 21);
        let d = Decomposition::bisect(dims, 2);
        for b in d.blocks() {
            let bf = f.extract_block(b);
            let g = assign_gradient(&bf, &d);
            let (store, _) = trace_all_arcs(&g, TraceLimits::default());
            let got = arcs_of_store(&store, &refined);
            let want = reference_arcs(&g, &refined);
            assert_eq!(diff_arcs(&got, &want), None);
        }
    }

    #[test]
    fn diff_gradient_reports_an_injected_difference() {
        let dims = Dims::new(6, 6, 6);
        let f = msp_synth::white_noise(dims, 3);
        let d = Decomposition::bisect(dims, 1);
        let bf = f.extract_block(d.block(0));
        let g = reference_gradient(&bf, &d);
        let (mutated, dropped) = crate::mutate::drop_pairing(&g, 0);
        assert!(dropped.is_some());
        let msg = diff_gradient(&mutated, &g).expect("mutation must be visible");
        assert!(msg.contains("differ"), "{msg}");
    }
}
