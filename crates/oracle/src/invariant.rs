//! Invariant checking over any [`MsComplex`].
//!
//! Two tiers:
//!
//! * **Structural** ([`check_structural`]) — needs only the complex and
//!   the decomposition: storage integrity, Morse-index steps, geometry
//!   endpoints anchored at the arc's nodes, boundary flags matching the
//!   geometric block faces, and — when the member blocks tile a box —
//!   the Euler characteristic `Σ (−1)^i c_i = χ(box) = 1`.
//! * **Semantic** ([`check_semantic`]) — additionally needs the scalar
//!   data of the member blocks. A reference gradient (crate
//!   [`reference`](crate::reference)) is built for the union of the
//!   members; then every node must be a critical cell of it (right
//!   index, right value), every boundary critical cell must still be a
//!   live node (simplification never cancels boundary nodes), every
//!   traced (leaf) arc geometry must be a valid V-path of the gradient,
//!   and the alternating node census must equal the alternating critical
//!   census — the Euler identity that holds for *any* member shape, box
//!   or not, because cancellations remove one critical cell in each of
//!   two adjacent dimensions.
//!
//! Violations are *counted* per invariant class (so they can feed
//! telemetry counters and a nonzero count can fail CI) and described in
//! a bounded list of notes; the checker itself never panics on a broken
//! complex.

use crate::reference::reference_gradient;
use msp_complex::glue::glue_with;
use msp_complex::MsComplex;
use msp_grid::field::BlockField;
use msp_grid::topology::RBox;
use msp_grid::{Decomposition, RCoord, ScalarField};
use msp_morse::gradient::GradientField;
use std::collections::HashSet;

/// Knobs for the checker.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Semantic checks rebuild a reference gradient over the union of
    /// the member blocks; skip them (reporting `semantic = false`) when
    /// the union's refined box has more cells than this.
    pub semantic_cell_limit: u64,
    /// At most this many human-readable violation notes are kept.
    pub max_notes: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            semantic_cell_limit: 2_000_000,
            max_notes: 8,
        }
    }
}

/// Violation counts per invariant class, plus bounded descriptions.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// Storage integrity, index steps, geometry endpoints, node-vs-
    /// reference criticality/index/value.
    pub structural: u64,
    /// Euler-characteristic violations (box χ = 1 and census-vs-
    /// reference alternating sums).
    pub euler: u64,
    /// Boundary-flag mismatches and cancelled boundary nodes.
    pub boundary: u64,
    /// Arc geometries that are not valid V-paths of the gradient.
    pub vpath: u64,
    /// Segmentation violations (malformed label tables, labels that
    /// change along a V-path, representatives that are not live critical
    /// cells of the covering complex); see
    /// [`segcheck`](crate::segcheck).
    pub segment: u64,
    /// True when the semantic tier actually ran (fields available and
    /// within the cell limit).
    pub semantic: bool,
    /// Bounded human-readable descriptions of the violations.
    pub notes: Vec<String>,
}

impl InvariantReport {
    /// Total violations across all classes.
    pub fn total(&self) -> u64 {
        self.structural + self.euler + self.boundary + self.vpath + self.segment
    }

    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    pub(crate) fn note(&mut self, opts: &CheckOptions, msg: String) {
        if self.notes.len() < opts.max_notes {
            self.notes.push(msg);
        }
    }
}

fn alternating(census: [u64; 4]) -> i64 {
    census[0] as i64 - census[1] as i64 + census[2] as i64 - census[3] as i64
}

/// The refined bounding box of the complex's member blocks.
fn member_bounds(ms: &MsComplex, decomp: &Decomposition) -> Option<RBox> {
    let mut boxes = ms
        .member_blocks
        .iter()
        .map(|&b| decomp.block(b).refined_box());
    let first = boxes.next()?;
    let (mut lo, mut hi) = (first.lo, first.hi);
    for b in boxes {
        for a in 0..3 {
            lo = lo.with(a, lo.get(a).min(b.lo.get(a)));
            hi = hi.with(a, hi.get(a).max(b.hi.get(a)));
        }
    }
    Some(RBox::new(lo, hi))
}

/// Structural checks: no scalar data needed.
pub fn check_structural(
    ms: &MsComplex,
    decomp: &Decomposition,
    opts: &CheckOptions,
    report: &mut InvariantReport,
) {
    if let Err(e) = ms.check_integrity() {
        report.structural += 1;
        report.note(opts, format!("integrity: {e}"));
    }

    let members: HashSet<u32> = ms.member_blocks.iter().copied().collect();
    for (id, n) in ms.nodes.iter().enumerate() {
        if !n.alive {
            continue;
        }
        if n.index > 3 {
            report.structural += 1;
            report.note(opts, format!("node {id} has Morse index {}", n.index));
            continue;
        }
        let c = RCoord::from_address(n.addr, &ms.refined);
        if c.cell_dim() != n.index {
            report.structural += 1;
            report.note(
                opts,
                format!(
                    "node {id} at {:?} has cell dim {} but index {}",
                    c,
                    c.cell_dim(),
                    n.index
                ),
            );
        }
        // boundary flag == "shared with a block outside the members"
        let expect = decomp
            .owners(c)
            .as_slice()
            .iter()
            .any(|b| !members.contains(b));
        if n.boundary != expect {
            report.boundary += 1;
            report.note(
                opts,
                format!(
                    "node {id} at {:?}: boundary flag {} but geometric boundary {}",
                    c, n.boundary, expect
                ),
            );
        }
    }

    // arc geometry endpoints anchor at the arc's nodes
    for (aid, a) in ms.arcs.iter().enumerate() {
        if !a.alive {
            continue;
        }
        let geom = ms.flatten_geom(a.geom);
        let (u, l) = (
            ms.nodes[a.upper as usize].addr,
            ms.nodes[a.lower as usize].addr,
        );
        if geom.first() != Some(&u) || geom.last() != Some(&l) {
            report.structural += 1;
            report.note(
                opts,
                format!("arc {aid}: geometry endpoints do not match its nodes"),
            );
        }
    }

    // Euler characteristic when the members tile a box: χ = 1.
    if let Some(bounds) = member_bounds(ms, decomp) {
        let tiles_box = bounds.len() <= opts.semantic_cell_limit
            && bounds.iter().all(|c| {
                ms.member_blocks
                    .iter()
                    .any(|&b| decomp.block(b).refined_box().contains(c))
            });
        if tiles_box {
            let chi = alternating(ms.node_census());
            if chi != 1 {
                report.euler += 1;
                report.note(
                    opts,
                    format!(
                        "members tile a box but χ = {chi} (census {:?})",
                        ms.node_census()
                    ),
                );
            }
        }
    }
}

/// Semantic checks against the scalar data of the member blocks.
/// `fields` must hold exactly the member blocks (any order); extra
/// blocks are ignored, missing ones skip their checks.
pub fn check_semantic(
    ms: &MsComplex,
    decomp: &Decomposition,
    fields: &[BlockField],
    opts: &CheckOptions,
    report: &mut InvariantReport,
) {
    let Some(bounds) = member_bounds(ms, decomp) else {
        return;
    };
    if bounds.len() > opts.semantic_cell_limit {
        return;
    }
    let members: HashSet<u32> = ms.member_blocks.iter().copied().collect();
    let member_fields: Vec<&BlockField> = fields
        .iter()
        .filter(|f| members.contains(&f.block().id))
        .collect();
    if member_fields.is_empty() {
        return;
    }
    report.semantic = true;

    // Union reference gradient: per-member reference gradients merged
    // over the bounding box. Shared faces agree bitwise (the boundary
    // restriction), so absorb order does not matter; cells outside every
    // member stay unassigned and are ignored below.
    let mut g = GradientField::new(bounds);
    for f in &member_fields {
        g.absorb_assigned(&reference_gradient(f, decomp));
    }
    let covered = |c: RCoord| {
        member_fields
            .iter()
            .any(|f| f.block().refined_box().contains(c))
    };

    // Every live node is a critical cell of the reference gradient with
    // the matching value.
    for (id, n) in ms.nodes.iter().enumerate() {
        if !n.alive {
            continue;
        }
        let c = RCoord::from_address(n.addr, &ms.refined);
        if !bounds.contains(c) || !covered(c) {
            report.structural += 1;
            report.note(opts, format!("node {id} at {:?} outside the members", c));
            continue;
        }
        if !g.is_critical(c) {
            report.structural += 1;
            report.note(
                opts,
                format!(
                    "node {id} at {:?} is not critical in the reference gradient",
                    c
                ),
            );
        }
        let f = member_fields
            .iter()
            .find(|f| f.block().refined_box().contains(c))
            .expect("covered");
        let want = f.cell_value(c);
        if n.value.to_bits() != want.to_bits() {
            report.structural += 1;
            report.note(
                opts,
                format!(
                    "node {id} at {:?} has value {} but the field says {}",
                    c, n.value, want
                ),
            );
        }
    }

    // Simplification never cancels a boundary node: every critical cell
    // shared with a non-member block must still be a live node.
    for c in g.critical_cells() {
        let shared = decomp
            .owners(c)
            .as_slice()
            .iter()
            .any(|b| !members.contains(b));
        if !shared {
            continue;
        }
        let addr = c.address(&ms.refined);
        let live = ms
            .node_at(addr)
            .is_some_and(|id| ms.nodes[id as usize].alive);
        if !live {
            report.boundary += 1;
            report.note(
                opts,
                format!(
                    "boundary critical cell {:?} has no live node (cancelled?)",
                    c
                ),
            );
        }
    }

    // Every traced (leaf) arc geometry is a valid V-path. Cancellation
    // splices are concatenations with a reversed middle segment and are
    // checked only via their endpoints (above).
    for (aid, a) in ms.arcs.iter().enumerate() {
        if !a.alive || !ms.geom_is_leaf(a.geom) {
            continue;
        }
        if let Some(err) = vpath_error(ms, &g, a.geom, a.upper, a.lower) {
            report.vpath += 1;
            report.note(opts, format!("arc {aid}: {err}"));
        }
    }

    // Alternating censuses agree: cancellations remove one critical
    // cell in each of two adjacent dimensions, so this holds at every
    // simplification level and for any member shape.
    let chi_nodes = alternating(ms.node_census());
    let chi_grad = alternating(g.census());
    if chi_nodes != chi_grad {
        report.euler += 1;
        report.note(
            opts,
            format!("alternating node census {chi_nodes} != reference critical census {chi_grad}"),
        );
    }
}

/// Why a leaf geometry is not a valid V-path, if it is not.
fn vpath_error(
    ms: &MsComplex,
    g: &GradientField,
    geom: msp_complex::GeomId,
    upper: msp_complex::NodeId,
    lower: msp_complex::NodeId,
) -> Option<String> {
    let path: Vec<RCoord> = ms
        .flatten_geom(geom)
        .iter()
        .map(|&a| RCoord::from_address(a, &ms.refined))
        .collect();
    if path.len() < 2 || !path.len().is_multiple_of(2) {
        return Some(format!("path length {} is not even and >= 2", path.len()));
    }
    let d = path[0].cell_dim();
    if d == 0 {
        return Some("upper cell has dimension 0".into());
    }
    let u = RCoord::from_address(ms.nodes[upper as usize].addr, &ms.refined);
    let l = RCoord::from_address(ms.nodes[lower as usize].addr, &ms.refined);
    if path[0] != u || *path.last().expect("nonempty") != l {
        return Some("path endpoints are not the arc's nodes".into());
    }
    if !g.bbox().contains(u) || !g.bbox().contains(l) {
        return Some("path endpoints outside the reference gradient".into());
    }
    if !g.is_critical(u) || !g.is_critical(l) {
        return Some("an endpoint is not critical in the reference gradient".into());
    }
    for (i, c) in path.iter().enumerate() {
        let expect = if i % 2 == 0 { d } else { d - 1 };
        if c.cell_dim() != expect {
            return Some(format!(
                "cell {i} has dimension {} (want {expect}: alternation broken)",
                c.cell_dim()
            ));
        }
        if i > 0 && i + 1 < path.len() && g.is_critical(*c) {
            return Some(format!("interior cell {i} is critical"));
        }
    }
    // interior (d−1)-cells are tails paired with the next d-cell
    for (i, w) in path.windows(2).enumerate().skip(1).step_by(2) {
        if i + 1 == path.len() - 1 {
            break; // w[1] is the lower endpoint: no pairing expected
        }
        if g.partner(w[0]) != Some(w[1]) {
            return Some(format!("cells {i},{} are not a gradient pair", i + 1));
        }
    }
    None
}

/// Run all applicable checks on one complex. When `field` is given,
/// member blocks are extracted from it and the semantic tier runs too
/// (subject to the cell limit).
pub fn check_complex(
    ms: &MsComplex,
    decomp: &Decomposition,
    field: Option<&ScalarField>,
    opts: &CheckOptions,
) -> InvariantReport {
    let mut report = InvariantReport::default();
    check_structural(ms, decomp, opts, &mut report);
    if let Some(f) = field {
        let fields: Vec<BlockField> = ms
            .member_blocks
            .iter()
            .map(|&b| f.extract_block(decomp.block(b)))
            .collect();
        check_semantic(ms, decomp, &fields, opts, &mut report);
    }
    report
}

/// An order-independent content fingerprint: sorted node tuples and
/// sorted arc tuples with fully-flattened geometry. Two complexes with
/// equal fingerprints present the same Morse-Smale 1-skeleton,
/// regardless of storage order, tombstones or geometry sharing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    pub nodes: Vec<(u64, u8, u32, bool)>,
    pub arcs: Vec<(u64, u64, Vec<u64>)>,
}

/// Compute the [`Fingerprint`] of the living part of a complex.
pub fn fingerprint(ms: &MsComplex) -> Fingerprint {
    let mut nodes: Vec<(u64, u8, u32, bool)> = ms
        .nodes
        .iter()
        .filter(|n| n.alive)
        .map(|n| (n.addr, n.index, n.value.to_bits(), n.boundary))
        .collect();
    nodes.sort_unstable();
    let mut arcs: Vec<(u64, u64, Vec<u64>)> = ms
        .arcs
        .iter()
        .filter(|a| a.alive)
        .map(|a| {
            (
                ms.nodes[a.upper as usize].addr,
                ms.nodes[a.lower as usize].addr,
                ms.flatten_geom(a.geom),
            )
        })
        .collect();
    arcs.sort_unstable();
    Fingerprint { nodes, arcs }
}

/// Glue idempotency: gluing a complex onto (a compacted copy of) itself
/// with shared-arc deduplication must add nothing and leave the content
/// fingerprint unchanged. Returns a description of the violation, if
/// any.
pub fn check_glue_idempotent(ms: &MsComplex, decomp: &Decomposition) -> Result<(), String> {
    let mut base = ms.clone();
    base.compact();
    let mut doubled = base.clone();
    let stats = glue_with(&mut doubled, &base, decomp, true)
        .map_err(|e| format!("self-glue failed: {e}"))?;
    if stats.added_nodes != 0 || stats.added_arcs != 0 {
        return Err(format!(
            "self-glue added {} node(s) and {} arc(s)",
            stats.added_nodes, stats.added_arcs
        ));
    }
    if fingerprint(&doubled) != fingerprint(&base) {
        return Err("self-glue changed the content fingerprint".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::drop_pairing;
    use msp_complex::{build_block_complex, complex_from_gradient, simplify, SimplifyParams};
    use msp_grid::Dims;
    use msp_morse::TraceLimits;

    fn build_all(f: &ScalarField, blocks: u32) -> (Decomposition, Vec<MsComplex>) {
        let d = Decomposition::bisect(f.dims(), blocks);
        let cs = d
            .blocks()
            .iter()
            .map(|b| build_block_complex(&f.extract_block(b), &d, TraceLimits::default()).0)
            .collect();
        (d, cs)
    }

    #[test]
    fn clean_block_complexes_pass_all_checks() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 11);
        let (d, cs) = build_all(&f, 4);
        for ms in &cs {
            let r = check_complex(ms, &d, Some(&f), &CheckOptions::default());
            assert!(r.semantic);
            assert!(r.is_clean(), "{:?}", r.notes);
            check_glue_idempotent(ms, &d).unwrap();
        }
    }

    #[test]
    fn simplified_complexes_stay_clean() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 23);
        let (d, mut cs) = build_all(&f, 2);
        for ms in &mut cs {
            simplify(ms, SimplifyParams::up_to(0.3)).unwrap();
            ms.compact();
            let r = check_complex(ms, &d, Some(&f), &CheckOptions::default());
            assert!(r.is_clean(), "{:?}", r.notes);
        }
    }

    #[test]
    fn glued_complex_stays_clean() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 29);
        let (d, mut cs) = build_all(&f, 4);
        for ms in &mut cs {
            ms.compact();
        }
        let mut root = cs.remove(0);
        msp_complex::glue::glue_all(&mut root, &cs, &d).unwrap();
        simplify(&mut root, SimplifyParams::up_to(0.1)).unwrap();
        root.compact();
        let r = check_complex(&root, &d, Some(&f), &CheckOptions::default());
        assert!(r.semantic);
        assert!(r.is_clean(), "{:?}", r.notes);
        check_glue_idempotent(&root, &d).unwrap();
    }

    #[test]
    fn injected_pairing_bug_is_caught() {
        // The acceptance-criteria mutation test: drop one gradient pair
        // (Euler-neutral!), rebuild the complex, and require the checker
        // to flag it even though χ still equals 1.
        let dims = Dims::new(7, 7, 7);
        let f = msp_synth::white_noise(dims, 41);
        let d = Decomposition::bisect(dims, 1);
        let bf = f.extract_block(d.block(0));
        let good = msp_morse::assign_gradient(&bf, &d);
        let (bad, dropped) = drop_pairing(&good, 7);
        assert!(dropped.is_some());
        let (ms, _) = complex_from_gradient(&bf, &d, &bad, TraceLimits::default());
        let r = check_complex(&ms, &d, Some(&f), &CheckOptions::default());
        assert!(r.semantic);
        assert!(
            r.structural > 0,
            "spurious critical cells must be flagged: {:?}",
            r
        );
        // χ stayed 1, so the box-Euler check alone would have missed it
        assert_eq!(alternating(ms.node_census()), 1);
    }

    #[test]
    fn corrupted_boundary_flag_is_caught() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 47);
        let (d, mut cs) = build_all(&f, 2);
        let ms = &mut cs[0];
        let id = ms
            .nodes
            .iter()
            .position(|n| n.alive && n.boundary)
            .expect("boundary node exists");
        ms.nodes[id].boundary = false;
        let mut r = InvariantReport::default();
        check_structural(ms, &d, &CheckOptions::default(), &mut r);
        assert!(r.boundary > 0, "{:?}", r.notes);
    }

    #[test]
    fn fingerprint_ignores_storage_order() {
        let dims = Dims::new(8, 8, 8);
        let f = msp_synth::white_noise(dims, 3);
        let (d, mut cs) = build_all(&f, 2);
        for ms in &mut cs {
            ms.compact();
        }
        let mut ab = cs[0].clone();
        msp_complex::glue::glue_all(&mut ab, &[cs[1].clone()], &d).unwrap();
        let mut ba = cs[1].clone();
        msp_complex::glue::glue_all(&mut ba, &[cs[0].clone()], &d).unwrap();
        assert_eq!(fingerprint(&ab), fingerprint(&ba), "glue is symmetric");
    }
}
