//! Deterministic fuzz-case model: generation, a replayable text format,
//! and greedy shrinking.
//!
//! A [`Case`] fully determines one differential-fuzz run: the synthetic
//! field (kind + dims + seed), the decomposition (blocks), the execution
//! shape (ranks, threads, merge schedule, injected fault) and the
//! simplification persistence. The driver in the workspace root turns a
//! case into an actual pipeline run; this module only knows how to
//! *describe* runs, so it can live below `msp-core` in the dependency
//! graph.
//!
//! The text format is line-oriented `key = value`, round-trips exactly,
//! and is what `oracle_fuzz` dumps as `.case` reproducers.

use std::fmt;
use std::str::FromStr;

/// Minimal deterministic PRNG (splitmix64). Self-contained so case
/// generation never depends on an external `rand` or on other crates'
/// private helpers.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform pick from a slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// What synthetic field the case runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldKind {
    /// Hash-based white noise: generic data, all values distinct.
    Noise,
    /// Noise quantized to `n` levels: adversarial plateaus (ties broken
    /// only by simulation of simplicity). `Plateau(1)` is all-constant.
    Plateau(u32),
    /// Saddle-heavy product-of-sines field with `c` periods per axis.
    Sinusoid(u32),
    /// `n` Gaussian bumps: smooth data with few critical cells.
    Bumps(u32),
    /// All-constant field: the fully degenerate plateau.
    Constant,
}

impl fmt::Display for FieldKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldKind::Noise => write!(f, "noise"),
            FieldKind::Plateau(n) => write!(f, "plateau:{n}"),
            FieldKind::Sinusoid(c) => write!(f, "sinusoid:{c}"),
            FieldKind::Bumps(n) => write!(f, "bumps:{n}"),
            FieldKind::Constant => write!(f, "constant"),
        }
    }
}

impl FromStr for FieldKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        let num = |a: Option<&str>| -> Result<u32, String> {
            a.ok_or_else(|| format!("field kind '{head}' needs an argument"))?
                .parse::<u32>()
                .map_err(|e| format!("bad field-kind argument in '{s}': {e}"))
        };
        match head {
            "noise" => Ok(FieldKind::Noise),
            "plateau" => Ok(FieldKind::Plateau(num(arg)?)),
            "sinusoid" => Ok(FieldKind::Sinusoid(num(arg)?)),
            "bumps" => Ok(FieldKind::Bumps(num(arg)?)),
            "constant" => Ok(FieldKind::Constant),
            _ => Err(format!("unknown field kind '{s}'")),
        }
    }
}

/// Cap on irregular block counts in generated and validated cases:
/// large enough to exercise every non-power-of-two neighbor shape the
/// contraction has to handle, small enough that fuzz iterations stay
/// cheap.
pub const MAX_IRREGULAR_BLOCKS: u32 = 12;

/// How the domain decomposes into blocks, spelled like the CLI's
/// `--decomp` flag. `msp-core` (which this crate must not depend on)
/// converts it to a `DecompMode`. Irregular modes lift the
/// power-of-two block-count and schedule-divisibility requirements:
/// the driver contracts the block neighbor graph instead of replaying
/// the fixed radix tree, so any block count is fair game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecompKind {
    /// Recursive longest-axis bisection (the historical layout).
    #[default]
    Uniform,
    /// Feature-density adaptive splitting.
    Adaptive,
    /// Seeded random irregular block tree.
    Random(u64),
}

impl DecompKind {
    pub fn is_uniform(&self) -> bool {
        matches!(self, DecompKind::Uniform)
    }
}

impl fmt::Display for DecompKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompKind::Uniform => write!(f, "uniform"),
            DecompKind::Adaptive => write!(f, "adaptive"),
            DecompKind::Random(seed) => write!(f, "random:{seed}"),
        }
    }
}

impl FromStr for DecompKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "uniform" => return Ok(DecompKind::Uniform),
            "adaptive" => return Ok(DecompKind::Adaptive),
            _ => {}
        }
        let seed = s
            .strip_prefix("random:")
            .ok_or_else(|| format!("unknown decomposition '{s}'"))?;
        seed.parse::<u64>()
            .map(DecompKind::Random)
            .map_err(|e| format!("bad random-tree seed in '{s}': {e}"))
    }
}

/// Merge schedule, as radices only. `msp-core` (which this crate must
/// not depend on) converts it to a `MergePlan`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Schedule {
    /// No merging: every block complex is an output.
    None,
    /// Merge everything into one output in one plan (`full_merge`).
    Full,
    /// Explicit per-round radices (each 2, 4 or 8; the product must
    /// divide the block count).
    Rounds(Vec<u32>),
}

impl Schedule {
    /// Number of merge rounds the schedule implies for `n_blocks`.
    pub fn n_rounds(&self, n_blocks: u32) -> u32 {
        match self {
            Schedule::None => 0,
            Schedule::Full => {
                // full_merge uses radix-8 rounds with a leftover radix
                // first; rounds = ceil(log2(n)/3) for powers of two.
                let log2 = n_blocks.trailing_zeros();
                log2.div_ceil(3)
            }
            Schedule::Rounds(v) => v.len() as u32,
        }
    }

    /// Product of the radices (the total reduction factor).
    pub fn reduction(&self, n_blocks: u32) -> u32 {
        match self {
            Schedule::None => 1,
            Schedule::Full => n_blocks,
            Schedule::Rounds(v) => v.iter().product(),
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Schedule::None => write!(f, "none"),
            Schedule::Full => write!(f, "full"),
            Schedule::Rounds(v) => {
                write!(f, "rounds:")?;
                for (i, r) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
        }
    }
}

impl FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "none" => return Ok(Schedule::None),
            "full" => return Ok(Schedule::Full),
            _ => {}
        }
        let body = s
            .strip_prefix("rounds:")
            .ok_or_else(|| format!("unknown schedule '{s}'"))?;
        let v: Result<Vec<u32>, _> = body.split(',').map(|x| x.trim().parse::<u32>()).collect();
        let v = v.map_err(|e| format!("bad schedule '{s}': {e}"))?;
        if v.is_empty() || v.iter().any(|&r| r != 2 && r != 4 && r != 8) {
            return Err(format!("schedule radices must be 2, 4 or 8 in '{s}'"));
        }
        Ok(Schedule::Rounds(v))
    }
}

/// One fully-specified differential-fuzz run.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    pub kind: FieldKind,
    pub dims: [u32; 3],
    pub seed: u64,
    pub ranks: u32,
    pub blocks: u32,
    /// Block layout. Irregular kinds allow any block count in
    /// `1..=MAX_IRREGULAR_BLOCKS` and any schedule radices.
    pub decomp: DecompKind,
    pub threads: u32,
    pub schedule: Schedule,
    pub persistence: f32,
    /// Record the cancellation hierarchy and check prefix-replay
    /// conformance (`--hierarchy`; implies segmentation).
    pub hierarchy: bool,
    /// Injected fault, e.g. `crash:1@1` = rank 1 crashes before merge
    /// round 1 (checkpointing is always enabled when a fault is set).
    pub fault: Option<String>,
}

impl Case {
    /// Internal-consistency check: a case the driver can actually run.
    pub fn validate(&self) -> Result<(), String> {
        if self.dims.iter().any(|&a| a < 2) {
            return Err(format!("dims {:?} too small", self.dims));
        }
        if self.decomp.is_uniform() {
            if !self.blocks.is_power_of_two() {
                return Err(format!("blocks {} not a power of two", self.blocks));
            }
        } else if self.blocks == 0 || self.blocks > MAX_IRREGULAR_BLOCKS {
            return Err(format!(
                "blocks {} must be in 1..={MAX_IRREGULAR_BLOCKS} for a {} decomposition",
                self.blocks, self.decomp
            ));
        }
        if self.ranks == 0 || self.ranks > self.blocks {
            return Err(format!(
                "ranks {} must be in 1..={}",
                self.ranks, self.blocks
            ));
        }
        if self.threads == 0 {
            return Err("threads must be >= 1".into());
        }
        if self.decomp.is_uniform() {
            // Irregular schedules contract the neighbor graph with the
            // radices as group-size caps, so only the uniform radix tree
            // needs the reduction to divide the block count.
            let red = self.schedule.reduction(self.blocks);
            if red == 0 || !self.blocks.is_multiple_of(red) {
                return Err(format!(
                    "schedule reduction {red} does not divide {} blocks",
                    self.blocks
                ));
            }
        }
        if !self.persistence.is_finite() || self.persistence < 0.0 {
            return Err(format!("persistence {} invalid", self.persistence));
        }
        if let Some(f) = &self.fault {
            if !self.decomp.is_uniform() {
                // The contracted round count is a property of the
                // neighbor graph, not of the schedule text, so a
                // fault's round bound cannot be validated here.
                return Err("fault injection requires a uniform decomposition".into());
            }
            let (r, k) = parse_fault(f)?;
            if self.ranks < 2 {
                return Err("fault injection needs >= 2 ranks".into());
            }
            if r == 0 || r >= self.ranks {
                return Err(format!("fault rank {r} must be in 1..{}", self.ranks));
            }
            let rounds = self.schedule.n_rounds(self.blocks);
            if k == 0 || k > rounds {
                return Err(format!("fault round {k} must be in 1..={rounds}"));
            }
        }
        match self.kind {
            FieldKind::Plateau(0) => Err("plateau needs >= 1 level".into()),
            FieldKind::Sinusoid(0) => Err("sinusoid needs >= 1 period".into()),
            FieldKind::Bumps(0) => Err("bumps needs >= 1 bump".into()),
            _ => Ok(()),
        }
    }

    /// Generate a random valid case from a PRNG.
    pub fn generate(rng: &mut SplitMix64) -> Case {
        let kind = match rng.below(5) {
            0 => FieldKind::Noise,
            1 => FieldKind::Plateau(1 + rng.below(4) as u32),
            2 => FieldKind::Sinusoid(1 + rng.below(3) as u32),
            3 => FieldKind::Bumps(1 + rng.below(5) as u32),
            _ => FieldKind::Constant,
        };
        let axis = |rng: &mut SplitMix64| 5 + rng.below(4) as u32;
        let dims = if matches!(kind, FieldKind::Sinusoid(_)) {
            let a = axis(rng);
            [a, a, a]
        } else {
            [axis(rng), axis(rng), axis(rng)]
        };
        let decomp = match rng.below(4) {
            0 | 1 => DecompKind::Uniform,
            2 => DecompKind::Adaptive,
            _ => DecompKind::Random(rng.below(1 << 16)),
        };
        let blocks = if decomp.is_uniform() {
            *rng.pick(&[1u32, 2, 4, 8])
        } else {
            // any count, deliberately including non-powers-of-two
            1 + rng.below(8) as u32
        };
        let ranks = if decomp.is_uniform() {
            let opts: Vec<u32> = [1u32, 2, 4].into_iter().filter(|&r| r <= blocks).collect();
            *rng.pick(&opts)
        } else {
            // irregular runs allow any rank count up to the block count
            1 + rng.below(blocks as u64) as u32
        };
        let threads = 1 + rng.below(4) as u32;
        let schedule = if decomp.is_uniform() {
            match rng.below(3) {
                0 => Schedule::None,
                1 if blocks > 1 => Schedule::Full,
                _ => {
                    // random radix factorization of a divisor of `blocks`
                    let mut left = blocks;
                    let mut v = Vec::new();
                    while left > 1 && rng.below(3) > 0 {
                        let r = *rng.pick(
                            &[2u32, 4, 8]
                                .into_iter()
                                .filter(|&r| left.is_multiple_of(r))
                                .collect::<Vec<_>>(),
                        );
                        v.push(r);
                        left /= r;
                    }
                    if v.is_empty() {
                        Schedule::None
                    } else {
                        Schedule::Rounds(v)
                    }
                }
            }
        } else {
            // no divisibility constraint: radices only cap group sizes
            match rng.below(3) {
                0 => Schedule::None,
                1 if blocks > 1 => Schedule::Full,
                1 => Schedule::None,
                _ => {
                    let n = 1 + rng.below(2) as usize;
                    Schedule::Rounds((0..n).map(|_| *rng.pick(&[2u32, 4, 8])).collect())
                }
            }
        };
        let persistence = *rng.pick(&[0.0f32, 0.01, 0.05, 0.2]);
        let hierarchy = rng.below(3) == 0;
        let rounds = schedule.n_rounds(blocks);
        let fault = if decomp.is_uniform() && ranks >= 2 && rounds >= 1 && rng.below(4) == 0 {
            let r = 1 + rng.below((ranks - 1) as u64) as u32;
            let k = 1 + rng.below(rounds as u64) as u32;
            Some(format!("crash:{r}@{k}"))
        } else {
            None
        };
        let case = Case {
            kind,
            dims,
            seed: rng.next_u64(),
            ranks,
            blocks,
            decomp,
            threads,
            schedule,
            persistence,
            hierarchy,
            fault,
        };
        debug_assert!(case.validate().is_ok(), "{:?}", case.validate());
        case
    }

    /// Candidate one-step simplifications of this case, most aggressive
    /// first. Each candidate is valid; the shrinker keeps a candidate if
    /// it still reproduces the failure.
    pub fn shrink_candidates(&self) -> Vec<Case> {
        let mut out = Vec::new();
        let mut push = |c: Case| {
            if c != *self && c.validate().is_ok() {
                out.push(c);
            }
        };
        if self.fault.is_some() {
            let mut c = self.clone();
            c.fault = None;
            push(c);
        }
        if self.hierarchy {
            let mut c = self.clone();
            c.hierarchy = false;
            push(c);
        }
        if self.threads > 1 {
            let mut c = self.clone();
            c.threads = 1;
            push(c);
        }
        if !self.decomp.is_uniform() {
            // most aggressive first: back to the uniform layout (fixing
            // blocks and schedule for its stricter rules), then random
            // trees down to the tamer adaptive splitter
            let mut c = self.clone();
            c.decomp = DecompKind::Uniform;
            if !c.blocks.is_power_of_two() {
                c.blocks = 1 << (31 - c.blocks.leading_zeros());
                c.ranks = c.ranks.min(c.blocks);
            }
            let red = c.schedule.reduction(c.blocks);
            if red == 0 || !c.blocks.is_multiple_of(red) {
                c.schedule = if c.blocks > 1 {
                    Schedule::Full
                } else {
                    Schedule::None
                };
            }
            push(c);
            if matches!(self.decomp, DecompKind::Random(_)) {
                let mut c = self.clone();
                c.decomp = DecompKind::Adaptive;
                push(c);
            }
        }
        if self.ranks > 1 {
            let mut c = self.clone();
            c.ranks /= 2;
            c.fault = clamp_fault(&c);
            push(c);
        }
        match &self.schedule {
            Schedule::Full => {
                let mut c = self.clone();
                c.schedule = Schedule::None;
                c.fault = None;
                push(c);
            }
            Schedule::Rounds(v) => {
                let mut c = self.clone();
                let mut v = v.clone();
                v.pop();
                c.schedule = if v.is_empty() {
                    Schedule::None
                } else {
                    Schedule::Rounds(v)
                };
                c.fault = clamp_fault(&c);
                push(c);
            }
            Schedule::None => {}
        }
        if self.blocks > 1 {
            let mut c = self.clone();
            c.blocks /= 2;
            c.ranks = c.ranks.min(c.blocks);
            if c.schedule.reduction(c.blocks) > c.blocks
                || !c
                    .blocks
                    .is_multiple_of(c.schedule.reduction(c.blocks).max(1))
            {
                c.schedule = if c.blocks > 1 {
                    Schedule::Full
                } else {
                    Schedule::None
                };
            }
            c.fault = clamp_fault(&c);
            push(c);
        }
        if !self.decomp.is_uniform() && self.blocks > 1 {
            // irregular counts can also step down by one
            let mut c = self.clone();
            c.blocks -= 1;
            c.ranks = c.ranks.min(c.blocks);
            push(c);
        }
        for a in 0..3 {
            if self.dims[a] > 5 {
                let mut c = self.clone();
                if matches!(c.kind, FieldKind::Sinusoid(_)) {
                    let s = c.dims[a] - 1;
                    c.dims = [s, s, s];
                } else {
                    c.dims[a] -= 1;
                }
                push(c);
                if matches!(self.kind, FieldKind::Sinusoid(_)) {
                    break; // cube shrink covers all axes at once
                }
            }
        }
        if self.persistence != 0.0 {
            let mut c = self.clone();
            c.persistence = 0.0;
            push(c);
        }
        if self.kind != FieldKind::Noise {
            let mut c = self.clone();
            c.kind = FieldKind::Noise;
            push(c);
        }
        out
    }
}

/// Parse `crash:R@K` into `(R, K)`.
pub fn parse_fault(s: &str) -> Result<(u32, u32), String> {
    let body = s
        .strip_prefix("crash:")
        .ok_or_else(|| format!("unknown fault '{s}'"))?;
    let (r, k) = body
        .split_once('@')
        .ok_or_else(|| format!("fault '{s}' must be crash:R@K"))?;
    let r = r
        .parse::<u32>()
        .map_err(|e| format!("bad fault rank: {e}"))?;
    let k = k
        .parse::<u32>()
        .map_err(|e| format!("bad fault round: {e}"))?;
    Ok((r, k))
}

/// Re-fit a fault spec to a (possibly shrunk) case; drop it if the case
/// can no longer host one.
fn clamp_fault(c: &Case) -> Option<String> {
    let (r, k) = parse_fault(c.fault.as_deref()?).ok()?;
    let rounds = c.schedule.n_rounds(c.blocks);
    if c.ranks < 2 || rounds == 0 {
        return None;
    }
    Some(format!(
        "crash:{}@{}",
        r.clamp(1, c.ranks - 1),
        k.clamp(1, rounds)
    ))
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kind = {}", self.kind)?;
        writeln!(
            f,
            "dims = {}x{}x{}",
            self.dims[0], self.dims[1], self.dims[2]
        )?;
        writeln!(f, "seed = {}", self.seed)?;
        writeln!(f, "ranks = {}", self.ranks)?;
        writeln!(f, "blocks = {}", self.blocks)?;
        if !self.decomp.is_uniform() {
            // only written when irregular, so historical uniform case
            // files round-trip byte-identically
            writeln!(f, "decomp = {}", self.decomp)?;
        }
        writeln!(f, "threads = {}", self.threads)?;
        writeln!(f, "schedule = {}", self.schedule)?;
        writeln!(f, "persistence = {}", self.persistence)?;
        if self.hierarchy {
            writeln!(f, "hierarchy = true")?;
        }
        if let Some(fault) = &self.fault {
            writeln!(f, "fault = {fault}")?;
        }
        Ok(())
    }
}

impl FromStr for Case {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut kind = None;
        let mut dims = None;
        let mut seed = None;
        let mut ranks = None;
        let mut blocks = None;
        let mut decomp = DecompKind::Uniform;
        let mut threads = None;
        let mut schedule = None;
        let mut persistence = None;
        let mut hierarchy = false;
        let mut fault = None;
        for (ln, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected 'key = value'", ln + 1))?;
            let (k, v) = (k.trim(), v.trim());
            let bad = |e: String| format!("line {}: {e}", ln + 1);
            match k {
                "kind" => kind = Some(v.parse::<FieldKind>().map_err(bad)?),
                "dims" => {
                    let parts: Vec<u32> = v
                        .split('x')
                        .map(|x| x.trim().parse::<u32>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| bad(format!("bad dims: {e}")))?;
                    if parts.len() != 3 {
                        return Err(bad("dims must be AxBxC".into()));
                    }
                    dims = Some([parts[0], parts[1], parts[2]]);
                }
                "seed" => seed = Some(v.parse::<u64>().map_err(|e| bad(e.to_string()))?),
                "ranks" => ranks = Some(v.parse::<u32>().map_err(|e| bad(e.to_string()))?),
                "blocks" => blocks = Some(v.parse::<u32>().map_err(|e| bad(e.to_string()))?),
                "decomp" => decomp = v.parse::<DecompKind>().map_err(bad)?,
                "threads" => threads = Some(v.parse::<u32>().map_err(|e| bad(e.to_string()))?),
                "schedule" => schedule = Some(v.parse::<Schedule>().map_err(bad)?),
                "persistence" => {
                    persistence = Some(v.parse::<f32>().map_err(|e| bad(e.to_string()))?)
                }
                "hierarchy" => hierarchy = v.parse::<bool>().map_err(|e| bad(e.to_string()))?,
                "fault" => {
                    parse_fault(v).map_err(bad)?;
                    fault = Some(v.to_string());
                }
                _ => return Err(bad(format!("unknown key '{k}'"))),
            }
        }
        let need = |name: &str| format!("missing key '{name}'");
        let case = Case {
            kind: kind.ok_or_else(|| need("kind"))?,
            dims: dims.ok_or_else(|| need("dims"))?,
            seed: seed.ok_or_else(|| need("seed"))?,
            ranks: ranks.ok_or_else(|| need("ranks"))?,
            blocks: blocks.ok_or_else(|| need("blocks"))?,
            decomp,
            threads: threads.ok_or_else(|| need("threads"))?,
            schedule: schedule.ok_or_else(|| need("schedule"))?,
            persistence: persistence.ok_or_else(|| need("persistence"))?,
            hierarchy,
            fault,
        };
        case.validate()?;
        Ok(case)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_round_trips() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..200 {
            let c = Case::generate(&mut rng);
            let text = c.to_string();
            let back: Case = text.parse().unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(c, back, "{text}");
        }
    }

    #[test]
    fn generated_cases_are_valid_and_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..500 {
            let ca = Case::generate(&mut a);
            let cb = Case::generate(&mut b);
            assert_eq!(ca, cb, "same seed, same cases");
            ca.validate().unwrap();
        }
    }

    #[test]
    fn shrink_candidates_are_valid_and_smaller() {
        let mut rng = SplitMix64::new(12345);
        for _ in 0..200 {
            let c = Case::generate(&mut rng);
            for s in c.shrink_candidates() {
                s.validate()
                    .unwrap_or_else(|e| panic!("shrink of {c:?} invalid: {e}"));
                assert_ne!(s, c);
            }
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!("".parse::<Case>().is_err());
        assert!("kind = sponge\n".parse::<Case>().is_err());
        let valid = Case {
            kind: FieldKind::Constant,
            dims: [5, 5, 5],
            seed: 1,
            ranks: 1,
            blocks: 2,
            decomp: DecompKind::Uniform,
            threads: 1,
            schedule: Schedule::Full,
            persistence: 0.0,
            hierarchy: false,
            fault: None,
        };
        valid.validate().unwrap();
        let mut bad = valid.clone();
        bad.ranks = 4; // > blocks
        assert!(bad.validate().is_err());
        let mut bad = valid.clone();
        bad.schedule = Schedule::Rounds(vec![8]); // 8 does not divide 2
        assert!(bad.validate().is_err());
    }

    #[test]
    fn irregular_cases_relax_uniform_requirements() {
        let c = Case {
            kind: FieldKind::Noise,
            dims: [6, 6, 6],
            seed: 1,
            ranks: 3,
            blocks: 6,
            decomp: DecompKind::Adaptive,
            threads: 1,
            schedule: Schedule::Full,
            persistence: 0.0,
            hierarchy: false,
            fault: None,
        };
        c.validate().unwrap();
        let text = c.to_string();
        assert!(text.contains("decomp = adaptive"), "{text}");
        let back: Case = text.parse().unwrap();
        assert_eq!(back, c);

        let mut uni = c.clone();
        uni.decomp = DecompKind::Uniform;
        assert!(
            uni.validate().is_err(),
            "6 blocks needs an irregular decomp"
        );

        let mut faulted = c.clone();
        faulted.fault = Some("crash:1@1".into());
        assert!(faulted.validate().is_err(), "faults are uniform-only");

        let mut huge = c.clone();
        huge.blocks = MAX_IRREGULAR_BLOCKS + 1;
        assert!(huge.validate().is_err(), "irregular block cap enforced");

        let rt = Case {
            decomp: DecompKind::Random(77),
            blocks: 5,
            ranks: 5,
            schedule: Schedule::Rounds(vec![8]),
            ..c
        };
        rt.validate().unwrap();
        let back: Case = rt.to_string().parse().unwrap();
        assert_eq!(back, rt);
    }

    #[test]
    fn irregular_cases_shrink_toward_uniform() {
        let c = Case {
            kind: FieldKind::Noise,
            dims: [6, 6, 6],
            seed: 3,
            ranks: 3,
            blocks: 6,
            decomp: DecompKind::Random(9),
            threads: 1,
            schedule: Schedule::Full,
            persistence: 0.0,
            hierarchy: false,
            fault: None,
        };
        c.validate().unwrap();
        let shr = c.shrink_candidates();
        let uni = shr
            .iter()
            .find(|s| s.decomp.is_uniform())
            .expect("a uniform shrink candidate");
        assert!(uni.blocks.is_power_of_two());
        assert!(
            shr.iter().any(|s| s.decomp == DecompKind::Adaptive),
            "random trees step down to adaptive"
        );
        assert!(
            shr.iter()
                .any(|s| s.decomp == c.decomp && s.blocks == c.blocks - 1),
            "irregular block counts step down by one"
        );
        assert!(shr.iter().all(|s| s.validate().is_ok()));
    }

    #[test]
    fn fault_cases_shrink_away_their_fault_first() {
        let c = Case {
            kind: FieldKind::Plateau(2),
            dims: [6, 6, 6],
            seed: 9,
            ranks: 2,
            blocks: 4,
            decomp: DecompKind::Uniform,
            threads: 2,
            schedule: Schedule::Rounds(vec![2]),
            persistence: 0.05,
            hierarchy: true,
            fault: Some("crash:1@1".into()),
        };
        c.validate().unwrap();
        let shr = c.shrink_candidates();
        assert!(shr[0].fault.is_none(), "fault dropped first");
        assert!(shr.iter().all(|s| s.validate().is_ok()));
    }
}
