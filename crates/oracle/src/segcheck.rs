//! Segmentation oracle: a naive reference labeling plus invariant
//! checks over the pipeline's Morse-Smale segmentation.
//!
//! Shares **no code** with `msp-segment`: where the production path
//! batches pointer doubling over flat successor arrays, the reference
//! walks every V-path one gradient step at a time, re-deriving the step
//! from the pairing at each cell, until it reaches a critical cell or
//! falls off the domain. Deliberately quadratic in path length —
//! obviousness over speed, like the rest of this crate.
//!
//! Two layers:
//!
//! * [`reference_segmentation`] + [`diff_segmentation`] — the raw
//!   (pre-resolution) per-block labels the local stage must produce,
//!   diffed address-by-address in the fuzz harness;
//! * [`check_segmentation_block`] + [`check_segmentation_tables`] —
//!   invariants over the *resolved* segmentation: label tables sorted
//!   and labels in range, labels constant along every V-path (one
//!   gradient step never changes the basin/mountain), and every
//!   representative a live critical cell of matching Morse index in the
//!   covering output complex (or the drain).

use crate::invariant::{CheckOptions, InvariantReport};
use msp_complex::MsComplex;
use msp_grid::{BlockBox, RCoord, RefinedDims};
use msp_morse::gradient::GradientField;
use std::collections::HashMap;

/// Sentinel address for ascending paths that exit the domain through a
/// boundary face (mirrors `msp_segment::DRAIN_ADDR` by value only).
pub const SEG_DRAIN_ADDR: u64 = u64::MAX;

/// Sentinel label-array entry for the drain (mirrors
/// `msp_segment::DRAIN_LABEL` by value only).
pub const SEG_DRAIN_LABEL: u32 = u32::MAX;

/// The naive reference segmentation of one block: the critical-cell
/// address every vertex descends to and every voxel ascends to, in
/// block-local x-fastest order ([`SEG_DRAIN_ADDR`] = off the domain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefSegmentation {
    pub vdims: [u32; 3],
    pub min_addr: Vec<u64>,
    pub max_addr: Vec<u64>,
}

/// One descending step from a non-critical vertex: across its partner
/// edge to the edge's other endpoint.
fn vertex_step(grad: &GradientField, v: RCoord) -> RCoord {
    let e = grad
        .partner(v)
        .expect("non-critical vertex is paired with an edge");
    let axis = (0..3).find(|&ax| e.get(ax) % 2 == 1).expect("edge axis");
    e.with(axis, 2 * e.get(axis) - v.get(axis))
}

/// One ascending step from a non-critical voxel: across its partner
/// quad to the quad's other voxel cofacet, or `None` when the quad lies
/// on the domain boundary (the path drains).
fn voxel_step(grad: &GradientField, refined: &RefinedDims, c: RCoord) -> Option<RCoord> {
    let q = grad
        .partner(c)
        .expect("non-critical voxel is paired with a quad");
    let axis = (0..3)
        .find(|&ax| q.get(ax).is_multiple_of(2))
        .expect("quad axis");
    let other = 2 * q.get(axis) as i64 - c.get(axis) as i64;
    let extent = [refined.rx, refined.ry, refined.rz][axis];
    if other < 0 || other as u64 >= extent {
        None
    } else {
        Some(q.with(axis, other as u32))
    }
}

/// Walk every V-path of the block one step at a time and record where
/// it ends. `refined` is the refined grid of the whole dataset (so the
/// recorded addresses are global).
pub fn reference_segmentation(
    block: &BlockBox,
    refined: &RefinedDims,
    grad: &GradientField,
) -> RefSegmentation {
    let d = block.dims();
    let lo = block.lo;
    let mut min_addr = Vec::with_capacity((d.nx * d.ny * d.nz) as usize);
    for z in 0..d.nz {
        for y in 0..d.ny {
            for x in 0..d.nx {
                let mut v = RCoord::of_vertex(lo[0] + x, lo[1] + y, lo[2] + z);
                while !grad.is_critical(v) {
                    v = vertex_step(grad, v);
                }
                min_addr.push(v.address(refined));
            }
        }
    }
    let (cx, cy, cz) = (
        d.nx.saturating_sub(1),
        d.ny.saturating_sub(1),
        d.nz.saturating_sub(1),
    );
    let mut max_addr = Vec::with_capacity((cx * cy * cz) as usize);
    for z in 0..cz {
        for y in 0..cy {
            for x in 0..cx {
                let mut c = RCoord::new(
                    2 * (lo[0] + x) + 1,
                    2 * (lo[1] + y) + 1,
                    2 * (lo[2] + z) + 1,
                );
                let addr = loop {
                    if grad.is_critical(c) {
                        break c.address(refined);
                    }
                    match voxel_step(grad, refined, c) {
                        Some(next) => c = next,
                        None => break SEG_DRAIN_ADDR,
                    }
                };
                max_addr.push(addr);
            }
        }
    }
    RefSegmentation {
        vdims: [d.nx, d.ny, d.nz],
        min_addr,
        max_addr,
    }
}

/// Diff a production block labeling (already mapped to global extremum
/// addresses) against the reference walk. Returns a description of the
/// first few mismatches, or `None` when identical.
pub fn diff_segmentation(
    got_min: &[u64],
    got_max: &[u64],
    want: &RefSegmentation,
) -> Option<String> {
    for (what, got, want) in [
        ("vertex", got_min, &want.min_addr),
        ("voxel", got_max, &want.max_addr),
    ] {
        if got.len() != want.len() {
            return Some(format!(
                "{what} label count differs: {} vs reference {}",
                got.len(),
                want.len()
            ));
        }
        let mut mismatches = 0u64;
        let mut first = String::new();
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            if g != w {
                if mismatches < 4 {
                    first.push_str(&format!(" [{what} {i}] got {g:#x} want {w:#x}"));
                }
                mismatches += 1;
            }
        }
        if mismatches > 0 {
            return Some(format!("{mismatches} {what} label(s) differ:{first}"));
        }
    }
    None
}

/// A borrowed view of one block's (resolved) segmentation, kept as
/// plain slices so this crate stays independent of `msp-segment`.
#[derive(Debug, Clone, Copy)]
pub struct SegView<'a> {
    pub block_id: u32,
    pub vdims: [u32; 3],
    /// Descending representatives (global addresses, expected sorted).
    pub mins: &'a [u64],
    /// Ascending representatives (global addresses, expected sorted).
    pub maxs: &'a [u64],
    /// Per-vertex index into `mins` ([`SEG_DRAIN_LABEL`] = drain).
    pub min_label: &'a [u32],
    /// Per-voxel index into `maxs` ([`SEG_DRAIN_LABEL`] = drain).
    pub max_label: &'a [u32],
}

/// Invariants checkable from the block alone: well-formed tables and
/// labels, and label constancy along every V-path — walking one
/// gradient step from any cell must land on a cell with the same label
/// (resolution maps roots, so constancy survives it). Violations are
/// counted into `report.segment`.
pub fn check_segmentation_block(
    seg: &SegView,
    block: &BlockBox,
    refined: &RefinedDims,
    grad: &GradientField,
    opts: &CheckOptions,
    report: &mut InvariantReport,
) {
    let d = block.dims();
    let id = seg.block_id;
    if seg.vdims != [d.nx, d.ny, d.nz] {
        report.segment += 1;
        report.note(
            opts,
            format!(
                "seg block {id}: vdims {:?} but the block is {:?}",
                seg.vdims,
                [d.nx, d.ny, d.nz]
            ),
        );
        return;
    }
    for (what, table) in [("mins", seg.mins), ("maxs", seg.maxs)] {
        if !table.windows(2).all(|w| w[0] < w[1]) {
            report.segment += 1;
            report.note(opts, format!("seg block {id}: {what} not sorted/unique"));
        }
    }
    let n_verts = (d.nx * d.ny * d.nz) as usize;
    let n_voxels =
        (d.nx.saturating_sub(1) * d.ny.saturating_sub(1) * d.nz.saturating_sub(1)) as usize;
    for (what, labels, n, table_len) in [
        ("vertex", seg.min_label, n_verts, seg.mins.len()),
        ("voxel", seg.max_label, n_voxels, seg.maxs.len()),
    ] {
        if labels.len() != n {
            report.segment += 1;
            report.note(
                opts,
                format!(
                    "seg block {id}: {} {what} labels for {n} cells",
                    labels.len()
                ),
            );
            return;
        }
        for (i, &l) in labels.iter().enumerate() {
            if l != SEG_DRAIN_LABEL && l as usize >= table_len {
                report.segment += 1;
                report.note(
                    opts,
                    format!("seg block {id}: {what} {i} label {l} out of range {table_len}"),
                );
                return;
            }
        }
    }

    // label constancy along one gradient step, for every cell
    let lo = block.lo;
    let (nx, ny) = (d.nx as usize, d.ny as usize);
    let vindex = |c: RCoord| {
        (c.x / 2 - lo[0]) as usize
            + nx * ((c.y / 2 - lo[1]) as usize + ny * ((c.z / 2 - lo[2]) as usize))
    };
    for (i, &l) in seg.min_label.iter().enumerate() {
        let (x, r) = (i % nx, i / nx);
        let (y, z) = (r % ny, r / ny);
        let v = RCoord::of_vertex(lo[0] + x as u32, lo[1] + y as u32, lo[2] + z as u32);
        if grad.is_critical(v) {
            continue;
        }
        let next = seg.min_label[vindex(vertex_step(grad, v))];
        if next != l {
            report.segment += 1;
            report.note(
                opts,
                format!("seg block {id}: vertex {i} label {l} changes to {next} one step down"),
            );
            return;
        }
    }
    let (mx, my) = (
        d.nx.saturating_sub(1) as usize,
        d.ny.saturating_sub(1) as usize,
    );
    let cindex = |c: RCoord| {
        ((c.x - 1) / 2 - lo[0]) as usize
            + mx * (((c.y - 1) / 2 - lo[1]) as usize + my * (((c.z - 1) / 2 - lo[2]) as usize))
    };
    for (i, &l) in seg.max_label.iter().enumerate() {
        let (x, r) = (i % mx.max(1), i / mx.max(1));
        let (y, z) = (r % my.max(1), r / my.max(1));
        let c = RCoord::new(
            2 * (lo[0] + x as u32) + 1,
            2 * (lo[1] + y as u32) + 1,
            2 * (lo[2] + z as u32) + 1,
        );
        if grad.is_critical(c) {
            continue;
        }
        let next = match voxel_step(grad, refined, c) {
            Some(w) => seg.max_label[cindex(w)],
            None => SEG_DRAIN_LABEL,
        };
        if next != l {
            report.segment += 1;
            report.note(
                opts,
                format!("seg block {id}: voxel {i} label {l} changes to {next} one step up"),
            );
            return;
        }
    }
}

/// Cross-structure invariant: every representative in a block's
/// extremum tables must be a **live critical node of matching Morse
/// index** (0 for mins, 3 for maxs) in the output complex covering that
/// block, or the drain. Needs the gathered run result, so it runs on
/// the driver side (`msc --check`, fuzz), not inside the pipeline.
pub fn check_segmentation_tables(
    outputs: &[MsComplex],
    tables: &[(u32, Vec<u64>, Vec<u64>)],
    opts: &CheckOptions,
    report: &mut InvariantReport,
) {
    // block id -> (live addr -> Morse index) of its covering complex
    let mut covering: HashMap<u32, usize> = HashMap::new();
    let live: Vec<HashMap<u64, u8>> = outputs
        .iter()
        .enumerate()
        .map(|(i, ms)| {
            for &b in &ms.member_blocks {
                covering.insert(b, i);
            }
            ms.nodes
                .iter()
                .filter(|n| n.alive)
                .map(|n| (n.addr, n.index))
                .collect()
        })
        .collect();
    for (block_id, mins, maxs) in tables {
        let Some(&ci) = covering.get(block_id) else {
            report.segment += 1;
            report.note(
                opts,
                format!("seg block {block_id}: no output complex covers it"),
            );
            continue;
        };
        for (what, table, want_index) in [("min", mins, 0u8), ("max", maxs, 3u8)] {
            for &addr in table {
                if addr == SEG_DRAIN_ADDR {
                    continue;
                }
                match live[ci].get(&addr) {
                    Some(&idx) if idx == want_index => {}
                    Some(&idx) => {
                        report.segment += 1;
                        report.note(
                            opts,
                            format!(
                                "seg block {block_id}: {what} rep {addr:#x} has Morse \
                                 index {idx} in the covering complex"
                            ),
                        );
                    }
                    None => {
                        report.segment += 1;
                        report.note(
                            opts,
                            format!(
                                "seg block {block_id}: {what} rep {addr:#x} is not a \
                                 live node of the covering complex"
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::{Decomposition, Dims};
    use msp_morse::assign_gradient;

    fn block_setup(dims: Dims, seed: u64) -> (Decomposition, RefinedDims, GradientField) {
        let f = msp_synth::white_noise(dims, seed);
        let d = Decomposition::bisect(dims, 1);
        let bf = f.extract_block(d.block(0));
        let grad = assign_gradient(&bf, &d);
        (d, dims.refined(), grad)
    }

    #[test]
    fn reference_walk_labels_every_cell() {
        let dims = Dims::cube(6);
        let (d, refined, grad) = block_setup(dims, 42);
        let r = reference_segmentation(d.block(0), &refined, &grad);
        assert_eq!(r.min_addr.len(), 6 * 6 * 6);
        assert_eq!(r.max_addr.len(), 5 * 5 * 5);
        // every recorded min is a critical vertex address
        let crits: Vec<u64> = grad
            .critical_cells()
            .into_iter()
            .filter(|c| c.cell_dim() == 0)
            .map(|c| c.address(&refined))
            .collect();
        for a in &r.min_addr {
            assert!(crits.contains(a), "{a:#x} not a critical vertex");
        }
    }

    #[test]
    fn reference_walk_is_step_invariant() {
        // the defining property, checked against itself: one step from
        // any non-critical vertex keeps the recorded address
        let dims = Dims::new(7, 5, 6);
        let (d, refined, grad) = block_setup(dims, 7);
        let r = reference_segmentation(d.block(0), &refined, &grad);
        for (i, &a) in r.min_addr.iter().enumerate() {
            let (x, rr) = (i % 7, i / 7);
            let (y, z) = (rr % 5, rr / 5);
            let v = RCoord::of_vertex(x as u32, y as u32, z as u32);
            if grad.is_critical(v) {
                assert_eq!(v.address(&refined), a);
            } else {
                let w = vertex_step(&grad, v);
                let wi = (w.x / 2) as usize + 7 * ((w.y / 2) as usize + 5 * (w.z / 2) as usize);
                assert_eq!(r.min_addr[wi], a, "vertex {i}");
            }
        }
    }

    #[test]
    fn block_check_accepts_the_reference_labeling() {
        let dims = Dims::cube(6);
        let (d, refined, grad) = block_setup(dims, 3);
        let r = reference_segmentation(d.block(0), &refined, &grad);
        // build tables + labels from the reference addresses
        let mut mins: Vec<u64> = r.min_addr.clone();
        mins.sort_unstable();
        mins.dedup();
        let mut maxs: Vec<u64> = r
            .max_addr
            .iter()
            .copied()
            .filter(|&a| a != SEG_DRAIN_ADDR)
            .collect();
        maxs.sort_unstable();
        maxs.dedup();
        let min_label: Vec<u32> = r
            .min_addr
            .iter()
            .map(|a| mins.binary_search(a).unwrap() as u32)
            .collect();
        let max_label: Vec<u32> = r
            .max_addr
            .iter()
            .map(|&a| {
                if a == SEG_DRAIN_ADDR {
                    SEG_DRAIN_LABEL
                } else {
                    maxs.binary_search(&a).unwrap() as u32
                }
            })
            .collect();
        let seg = SegView {
            block_id: 0,
            vdims: r.vdims,
            mins: &mins,
            maxs: &maxs,
            min_label: &min_label,
            max_label: &max_label,
        };
        let opts = CheckOptions::default();
        let mut report = InvariantReport::default();
        check_segmentation_block(&seg, d.block(0), &refined, &grad, &opts, &mut report);
        assert_eq!(report.segment, 0, "{:?}", report.notes);

        // and rejects a corrupted labeling
        let mut bad = min_label.clone();
        let flip = bad.iter().position(|&l| l != bad[0]).unwrap();
        bad[flip] = bad[0];
        let seg_bad = SegView {
            min_label: &bad,
            ..seg
        };
        let mut report = InvariantReport::default();
        check_segmentation_block(&seg_bad, d.block(0), &refined, &grad, &opts, &mut report);
        assert!(report.segment > 0, "corruption must be detected");
    }

    #[test]
    fn diff_reports_an_injected_difference() {
        let dims = Dims::cube(5);
        let (d, refined, grad) = block_setup(dims, 9);
        let r = reference_segmentation(d.block(0), &refined, &grad);
        assert_eq!(diff_segmentation(&r.min_addr, &r.max_addr, &r), None);
        let mut bad = r.min_addr.clone();
        bad[0] ^= 1;
        let msg = diff_segmentation(&bad, &r.max_addr, &r).expect("must differ");
        assert!(msg.contains("vertex"), "{msg}");
    }
}
