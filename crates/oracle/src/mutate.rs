//! Gradient mutation for checker self-tests.
//!
//! The acceptance bar for the oracle is that a *deliberately injected*
//! gradient-pairing bug is caught both by the differential diff and by
//! the invariant checker. [`drop_pairing`] is that injection: it breaks
//! the k-th gradient pair into two spurious critical cells — a bug that
//! is Euler-neutral (it adds one critical cell in two adjacent
//! dimensions), so it specifically exercises the checks that go beyond
//! counting.

use msp_grid::RCoord;
use msp_morse::gradient::GradientField;

/// Rebuild `grad` with its `k`-th pair (in address order of the tail
/// cell) dropped: both cells of the pair are marked critical instead.
/// Returns the rebuilt field and the `(tail, head)` pair that was
/// dropped, or `None` in the pair slot when the field has fewer than
/// `k + 1` pairs (the field is returned unchanged in that case).
pub fn drop_pairing(grad: &GradientField, k: usize) -> (GradientField, Option<(RCoord, RCoord)>) {
    let bbox = *grad.bbox();
    let victim = bbox
        .iter()
        .filter(|&c| grad.is_tail(c))
        .nth(k)
        .map(|t| (t, grad.partner(t).expect("tail has a partner")));
    let mut out = GradientField::new(bbox);
    for c in bbox.iter() {
        if grad.is_tail(c) {
            if victim.map(|(t, _)| t) == Some(c) {
                continue;
            }
            out.pair(c, grad.partner(c).expect("tail has a partner"));
        } else if grad.is_critical(c) {
            out.mark_critical(c);
        }
    }
    if let Some((t, h)) = victim {
        out.mark_critical(t);
        out.mark_critical(h);
    }
    (out, victim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::{Decomposition, Dims};
    use msp_morse::assign_gradient;

    #[test]
    fn dropping_a_pair_is_euler_neutral() {
        let dims = Dims::new(6, 6, 6);
        let f = msp_synth::white_noise(dims, 17);
        let d = Decomposition::bisect(dims, 1);
        let g = assign_gradient(&f.extract_block(d.block(0)), &d);
        let before = g.census();
        let (m, dropped) = drop_pairing(&g, 3);
        let (t, h) = dropped.expect("field has pairs");
        assert_eq!(h.cell_dim(), t.cell_dim() + 1);
        let after = m.census();
        let chi = |c: [u64; 4]| c[0] as i64 - c[1] as i64 + c[2] as i64 - c[3] as i64;
        assert_eq!(chi(before), chi(after), "mutation must be Euler-neutral");
        assert_eq!(
            after[t.cell_dim() as usize],
            before[t.cell_dim() as usize] + 1
        );
        assert_eq!(
            after[h.cell_dim() as usize],
            before[h.cell_dim() as usize] + 1
        );
        // untouched pairs survive verbatim
        assert_eq!(m.n_unassigned(), 0);
    }

    #[test]
    fn out_of_range_k_is_identity() {
        let dims = Dims::new(5, 5, 5);
        let f = msp_synth::white_noise(dims, 2);
        let d = Decomposition::bisect(dims, 1);
        let g = assign_gradient(&f.extract_block(d.block(0)), &d);
        let (m, dropped) = drop_pairing(&g, usize::MAX);
        assert!(dropped.is_none());
        assert_eq!(m.bytes(), g.bytes());
    }
}
