//! # msp-oracle
//!
//! Independent correctness oracle for the Morse-Smale pipeline.
//!
//! Every other test in the workspace asserts *self*-consistency
//! (parallel-vs-serial byte equality, wire round-trips, recovery
//! bit-exactness); this crate independently checks that what the
//! pipeline computes *is* a Morse-Smale complex per the paper's
//! definition, in three layers:
//!
//! * [`reference`] — a naive, obviously-correct re-implementation of the
//!   lower-star gradient and of brute-force V-path enumeration. No slab
//!   splitting, no scratch reuse, no arenas, no interior fast path:
//!   counts are recomputed from scratch every step, cells are compared
//!   by their full simulation-of-simplicity keys, owner sets always come
//!   from the decomposition. Deliberately slow, deliberately simple —
//!   the production `msp-morse` path is diffed against it bit for bit.
//! * [`invariant`] — a checker over any [`msp_complex::MsComplex`]:
//!   structural integrity, Euler characteristic, boundary-flag
//!   correctness, boundary-node preservation under simplification,
//!   V-path validity of every traced arc geometry, and glue idempotency.
//! * [`segcheck`] — a naive step-at-a-time reference segmentation (no
//!   code shared with `msp-segment`) plus invariants over the resolved
//!   labeled volumes: V-path label constancy and representative
//!   liveness in the covering complex.
//! * [`case`] + [`mutate`] — deterministic fuzz-case generation /
//!   shrinking / replay (driven by the workspace `oracle_fuzz` binary)
//!   and gradient mutation for checker self-tests.
//!
//! The crate depends only on `msp-grid`/`msp-morse`/`msp-complex`/
//! `msp-synth`; the pipeline (`msp-core`) depends on *it* to implement
//! `--check`, and the fuzz driver lives in the workspace root.

pub mod case;
pub mod invariant;
pub mod mutate;
pub mod reference;
pub mod segcheck;

pub use case::{Case, DecompKind, FieldKind, Schedule};
pub use invariant::{
    check_complex, check_glue_idempotent, check_semantic, check_structural, fingerprint,
    CheckOptions, Fingerprint, InvariantReport,
};
pub use mutate::drop_pairing;
pub use reference::{
    arcs_of_store, diff_arcs, diff_gradient, reference_arcs, reference_gradient, RefArc,
};
pub use segcheck::{
    check_segmentation_block, check_segmentation_tables, diff_segmentation, reference_segmentation,
    RefSegmentation, SegView, SEG_DRAIN_ADDR, SEG_DRAIN_LABEL,
};
