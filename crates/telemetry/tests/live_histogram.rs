//! Property tests for the live log-bucketed histogram: the quantile
//! error bound (≤ one bucket width below the exact order statistic),
//! merge associativity, and the counters' agreement with an exact
//! re-computation from the raw samples.

use msp_telemetry::{bucket_width, LiveHistogram};
use proptest::prelude::*;

/// Exact nearest-rank quantile, same rank formula the histogram uses.
fn exact_quantile(sorted: &[u64], pct: usize) -> u64 {
    sorted[(sorted.len() - 1) * pct / 100]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any sample set and any percentile, the histogram's answer is
    /// at most the exact order statistic and within one bucket width of
    /// it — the advertised error bound.
    #[test]
    fn quantile_error_bounded_by_bucket_width(
        mut samples in prop::collection::vec(0u64..2_000_000, 1..400),
        pct in 0usize..101,
    ) {
        let h = LiveHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let exact = exact_quantile(&samples, pct);
        let approx = h.quantile(pct);
        prop_assert!(approx <= exact, "approx {approx} above exact {exact}");
        prop_assert!(
            exact - approx < bucket_width(exact).max(1),
            "p{pct}: error {} >= bucket width {}",
            exact - approx,
            bucket_width(exact)
        );
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
    }

    /// Bucket-wise merging is associative and commutative: any grouping
    /// of three sample streams produces the identical snapshot.
    #[test]
    fn merge_is_associative_and_commutative(
        xs in prop::collection::vec(0u64..1_000_000, 0..200),
        ys in prop::collection::vec(0u64..1_000_000, 0..200),
        zs in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let fill = |vals: &[u64]| {
            let h = LiveHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };

        // (x + y) + z
        let left = fill(&xs);
        left.merge_from(&fill(&ys));
        left.merge_from(&fill(&zs));

        // x + (y + z)
        let inner = fill(&ys);
        inner.merge_from(&fill(&zs));
        let right = fill(&xs);
        right.merge_from(&inner);

        // z + y + x (commutativity)
        let rev = fill(&zs);
        rev.merge_from(&fill(&ys));
        rev.merge_from(&fill(&xs));

        // one histogram fed everything directly
        let all = fill(&xs);
        for &v in ys.iter().chain(zs.iter()) {
            all.record(v);
        }

        let want = all.snapshot();
        prop_assert_eq!(left.snapshot(), want.clone());
        prop_assert_eq!(right.snapshot(), want.clone());
        prop_assert_eq!(rev.snapshot(), want);
    }

    /// The cumulative (Prometheus `_bucket`) view is monotone and ends
    /// at the total count, for any sample set.
    #[test]
    fn cumulative_view_is_monotone(
        samples in prop::collection::vec(0u64..10_000_000, 0..300),
    ) {
        let h = LiveHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let cum = snap.cumulative();
        let mut prev_le = None;
        let mut prev_cum = 0u64;
        for &(le, c) in &cum {
            if let Some(p) = prev_le {
                prop_assert!(le > p, "le values must increase");
            }
            prop_assert!(c >= prev_cum, "cumulative counts must not decrease");
            prev_le = Some(le);
            prev_cum = c;
        }
        prop_assert_eq!(prev_cum, snap.count);
    }
}
