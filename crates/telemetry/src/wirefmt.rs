//! Shared helpers for the compact little-endian wire encodings used by
//! [`RankReport`](crate::RankReport) and [`RankTrace`](crate::RankTrace):
//! length-prefixed strings and a bounds-checked read cursor producing
//! contextful errors instead of panics.

/// Append a `u16`-length-prefixed UTF-8 string.
pub(crate) fn encode_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    assert!(b.len() <= u16::MAX as usize, "wire key too long");
    out.extend_from_slice(&(b.len() as u16).to_le_bytes());
    out.extend_from_slice(b);
}

/// Bounds-checked reader over an encoded buffer.
pub(crate) struct Cursor<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
    /// Label used in error messages ("rank report", "rank trace", …).
    pub(crate) what: &'static str,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8], what: &'static str) -> Cursor<'a> {
        Cursor { buf, pos: 0, what }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "{} truncated at byte {} (wanted {n} more)",
                self.what, self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn string(&mut self) -> Result<String, String> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| format!("{} key is not UTF-8", self.what))
    }

    /// Error unless the whole buffer was consumed.
    pub(crate) fn expect_end(&self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} has {} trailing byte(s)",
                self.what,
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}
