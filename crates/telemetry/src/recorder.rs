//! Per-rank recorder: nestable phase spans and counters.
//!
//! One `Recorder` lives on each rank for the duration of a run. Spans
//! are opened/closed in LIFO order ([`begin`](Recorder::begin) /
//! [`end`](Recorder::end)); the elapsed seconds of every span accumulate
//! into its phase's bucket, so a phase entered repeatedly (e.g.
//! `gradient` once per local block, `glue` once per merge group) reports
//! its summed time. Nested spans accumulate into **both** buckets: a
//! `glue` span inside `merge_round[1]` counts toward `glue` and toward
//! `merge_round[1]` — phase times are therefore *not* disjoint and do
//! not sum to `total`.
//!
//! Unbalanced instrumentation (an `end` for a phase that isn't the
//! innermost open span, or a `finish` with spans still open) is a bug in
//! the caller, but it must not take down a production run: it surfaces
//! as a [`SpanError`] from [`try_end`](Recorder::try_end) and as the
//! `unbalanced` incident count on the frozen report, never as a panic.

use crate::counter::{Counter, ALL_COUNTERS};
use crate::phase::Phase;
use crate::report::RankReport;
use crate::trace::{union_ns, TraceSink};
use std::collections::BTreeMap;
use std::time::Instant;

/// Misuse of the span API, reported instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanError {
    /// `end(phase)` with no span open at all.
    NoOpenSpan { ending: Phase },
    /// `end(phase)` while a *different* phase is the innermost open
    /// span. The stack is left untouched so the innermost span can
    /// still be closed correctly.
    Mismatch { ending: Phase, innermost: Phase },
}

impl std::fmt::Display for SpanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpanError::NoOpenSpan { ending } => {
                write!(f, "ended span {:?} but no span is open", ending)
            }
            SpanError::Mismatch { ending, innermost } => write!(
                f,
                "span nesting mismatch: ending {:?} but innermost open span is {:?}",
                ending, innermost
            ),
        }
    }
}

impl std::error::Error for SpanError {}

/// Thread-local recorder for one unit of parallel work (one block of
/// the intra-rank parallel local stage). Collects counters and
/// completed phase spans stamped against the run epoch; the owning
/// rank's [`Recorder`] merges sub-recorders deterministically at stage
/// end with [`Recorder::absorb_subs`]. A `SubRecorder` never touches a
/// clock except inside [`time`](SubRecorder::time), never locks, and is
/// plain data — safe to move across the worker threads of a stage.
#[derive(Debug)]
pub struct SubRecorder {
    counters: [u64; Counter::COUNT],
    /// Completed spans `(phase, t0_ns, t1_ns)` against the run epoch.
    spans: Vec<(Phase, u64, u64)>,
}

impl SubRecorder {
    pub fn new() -> SubRecorder {
        SubRecorder {
            counters: [0; Counter::COUNT],
            spans: Vec::new(),
        }
    }

    /// Add `n` to counter `c`.
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c.index()] += n;
    }

    /// Record a completed span with explicit epoch-relative timestamps.
    pub fn span(&mut self, phase: Phase, t0_ns: u64, t1_ns: u64) {
        self.spans.push((phase, t0_ns, t1_ns));
    }

    /// Run `f` inside a `phase` span stamped against `epoch` — the same
    /// epoch the rank's trace sink uses, so replayed spans land on the
    /// shared timeline with true concurrent timestamps.
    pub fn time<R>(&mut self, phase: Phase, epoch: Instant, f: impl FnOnce(&mut Self) -> R) -> R {
        let t0 = epoch.elapsed().as_nanos() as u64;
        let out = f(self);
        let t1 = epoch.elapsed().as_nanos() as u64;
        self.spans.push((phase, t0, t1));
        out
    }
}

impl Default for SubRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// Phase spans + counters of one rank.
#[derive(Debug)]
pub struct Recorder {
    rank: u32,
    phases: BTreeMap<Phase, f64>,
    counters: [u64; Counter::COUNT],
    stack: Vec<(Phase, Instant)>,
    /// Span-API misuse incidents (mismatched/unclosed spans).
    unbalanced: u32,
    /// Optional event tracer mirroring begin/end as timestamped spans.
    sink: Option<TraceSink>,
}

impl Recorder {
    pub fn new(rank: u32) -> Recorder {
        Recorder {
            rank,
            phases: BTreeMap::new(),
            counters: [0; Counter::COUNT],
            stack: Vec::new(),
            unbalanced: 0,
            sink: None,
        }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Mirror every span into `sink` as a timestamped trace event (the
    /// aggregate phase buckets keep accumulating as before).
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.sink = Some(sink);
    }

    /// Stop mirroring spans into the trace sink (used before the
    /// trace itself is gathered, so the gather is not self-observed).
    pub fn detach_trace(&mut self) -> Option<TraceSink> {
        self.sink.take()
    }

    /// Open a span for `phase`. Spans nest; close them in LIFO order.
    pub fn begin(&mut self, phase: Phase) {
        if let Some(sink) = &self.sink {
            sink.begin(&phase.key());
        }
        self.stack.push((phase, Instant::now()));
    }

    /// Close the innermost span, which must be `phase`. Returns the
    /// seconds of this span occurrence, or a [`SpanError`] describing
    /// the misuse (the mismatch case leaves the stack untouched).
    pub fn try_end(&mut self, phase: Phase) -> Result<f64, SpanError> {
        match self.stack.last() {
            None => Err(SpanError::NoOpenSpan { ending: phase }),
            Some((open, _)) if *open != phase => Err(SpanError::Mismatch {
                ending: phase,
                innermost: *open,
            }),
            Some(_) => {
                let (_, started) = self.stack.pop().unwrap();
                let secs = started.elapsed().as_secs_f64();
                *self.phases.entry(phase).or_insert(0.0) += secs;
                if let Some(sink) = &self.sink {
                    sink.end();
                }
                Ok(secs)
            }
        }
    }

    /// Close the innermost span, which must be `phase`. Returns the
    /// seconds of this span occurrence; on misuse records an unbalanced
    /// incident (surfaced on the report) and returns 0.
    pub fn end(&mut self, phase: Phase) -> f64 {
        match self.try_end(phase) {
            Ok(secs) => secs,
            Err(_) => {
                self.unbalanced += 1;
                0.0
            }
        }
    }

    /// Run `f` inside a `phase` span (exception-unsafe convenience: a
    /// panic in `f` leaves the span open, which is fine because the
    /// recorder dies with the rank).
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce(&mut Recorder) -> R) -> R {
        self.begin(phase);
        let out = f(self);
        self.end(phase);
        out
    }

    /// Credit `secs` to `phase` without a live span — for modeled times
    /// (the BSP sim driver) and for merging externally measured values.
    pub fn add_seconds(&mut self, phase: Phase, secs: f64) {
        *self.phases.entry(phase).or_insert(0.0) += secs;
    }

    /// Merge the thread-local sub-recorders of a parallel stage, in the
    /// deterministic order given (block order). Counters sum. Each phase
    /// bucket is credited the **interval union** of its sub-spans — the
    /// phase's wall-clock footprint, so speedup from intra-rank threads
    /// is visible in the phase stats, and a serial stage (disjoint
    /// spans) credits exactly the sum the per-block `time` calls used to
    /// produce. Every sub-span is also replayed into the attached trace
    /// sink with its original timestamps, preserving per-thread
    /// attribution on the causal timeline.
    pub fn absorb_subs(&mut self, subs: &[SubRecorder]) {
        let mut by_phase: BTreeMap<Phase, Vec<(u64, u64)>> = BTreeMap::new();
        for s in subs {
            for (i, &n) in s.counters.iter().enumerate() {
                self.counters[i] += n;
            }
            for &(p, a, b) in &s.spans {
                by_phase.entry(p).or_default().push((a, b));
                if let Some(sink) = &self.sink {
                    sink.span_at(&p.key(), a, b);
                }
            }
        }
        for (p, iv) in by_phase {
            self.add_seconds(p, union_ns(iv) as f64 * 1e-9);
        }
    }

    /// Accumulated seconds of `phase` so far.
    pub fn phase_seconds(&self, phase: Phase) -> f64 {
        self.phases.get(&phase).copied().unwrap_or(0.0)
    }

    /// Number of currently open spans.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// Span-API misuse incidents recorded so far.
    pub fn unbalanced(&self) -> u32 {
        self.unbalanced
    }

    /// Add `n` to counter `c`.
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c.index()] += n;
    }

    /// Current value of counter `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Freeze into a wire-encodable per-rank report. Spans still open
    /// are closed now (their elapsed time accumulates) and each counts
    /// as an unbalanced incident on the report.
    pub fn finish(&mut self) -> RankReport {
        while let Some((phase, started)) = self.stack.pop() {
            self.unbalanced += 1;
            *self.phases.entry(phase).or_insert(0.0) += started.elapsed().as_secs_f64();
            if let Some(sink) = &self.sink {
                sink.end();
            }
        }
        RankReport {
            rank: self.rank,
            unbalanced: self.unbalanced,
            phases: self.phases.iter().map(|(p, s)| (p.key(), *s)).collect(),
            counters: ALL_COUNTERS
                .iter()
                .map(|c| (c.key().to_string(), self.counters[c.index()]))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_accumulate_into_both_buckets() {
        let mut r = Recorder::new(3);
        r.begin(Phase::MergeRound(0));
        r.begin(Phase::Glue);
        assert_eq!(r.open_spans(), 2);
        let glue = r.end(Phase::Glue);
        r.begin(Phase::Resimplify);
        r.end(Phase::Resimplify);
        let round = r.end(Phase::MergeRound(0));
        assert_eq!(r.open_spans(), 0);
        assert!(glue >= 0.0 && round >= glue, "outer span encloses inner");
        assert!(r.phase_seconds(Phase::MergeRound(0)) >= r.phase_seconds(Phase::Glue));
        assert!(r.phase_seconds(Phase::Resimplify) >= 0.0);
    }

    #[test]
    fn repeated_spans_sum() {
        let mut r = Recorder::new(0);
        r.begin(Phase::Gradient);
        let a = r.end(Phase::Gradient);
        r.begin(Phase::Gradient);
        let b = r.end(Phase::Gradient);
        let total = r.phase_seconds(Phase::Gradient);
        assert!((total - (a + b)).abs() < 1e-12);
    }

    #[test]
    fn mismatched_end_is_typed_error_not_panic() {
        let mut r = Recorder::new(0);
        r.begin(Phase::Read);
        r.begin(Phase::Gradient);
        let err = r.try_end(Phase::Read).unwrap_err();
        assert_eq!(
            err,
            SpanError::Mismatch {
                ending: Phase::Read,
                innermost: Phase::Gradient
            }
        );
        assert!(err.to_string().contains("nesting mismatch"));
        // the stack was left intact: the correct close still works
        assert_eq!(r.open_spans(), 2);
        assert!(r.try_end(Phase::Gradient).is_ok());
        assert!(r.try_end(Phase::Read).is_ok());
        assert_eq!(r.unbalanced(), 0, "try_end does not count incidents");
    }

    #[test]
    fn end_with_no_open_span_is_flagged() {
        let mut r = Recorder::new(0);
        assert_eq!(
            r.try_end(Phase::Write).unwrap_err(),
            SpanError::NoOpenSpan {
                ending: Phase::Write
            }
        );
        assert_eq!(r.end(Phase::Write), 0.0);
        assert_eq!(r.unbalanced(), 1);
        let rep = r.finish();
        assert_eq!(rep.unbalanced, 1);
    }

    #[test]
    fn finish_with_open_span_flags_and_accumulates() {
        let mut r = Recorder::new(0);
        r.begin(Phase::Read);
        r.begin(Phase::Gradient);
        let rep = r.finish();
        assert_eq!(rep.unbalanced, 2);
        assert_eq!(r.open_spans(), 0, "finish closed the open spans");
        assert!(r.phase_seconds(Phase::Read) >= r.phase_seconds(Phase::Gradient));
        assert!(rep.phases.iter().any(|(k, _)| k == "read"));
    }

    #[test]
    fn mismatched_end_via_end_flags_but_keeps_stack() {
        let mut r = Recorder::new(0);
        r.begin(Phase::Read);
        assert_eq!(r.end(Phase::Write), 0.0, "mismatch yields zero seconds");
        assert_eq!(r.unbalanced(), 1);
        assert_eq!(r.open_spans(), 1, "mismatch leaves innermost span open");
        assert!(r.end(Phase::Read) >= 0.0);
        assert_eq!(r.finish().unbalanced, 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut r = Recorder::new(1);
        r.add(Counter::BytesSent, 10);
        r.add(Counter::BytesSent, 32);
        r.add(Counter::MsgsSent, 2);
        assert_eq!(r.counter(Counter::BytesSent), 42);
        assert_eq!(r.counter(Counter::MsgsSent), 2);
        assert_eq!(r.counter(Counter::BytesRecv), 0);
    }

    #[test]
    fn time_closure_and_finish_report() {
        let mut r = Recorder::new(7);
        let v = r.time(Phase::Write, |r| {
            r.add(Counter::MsgsSent, 1);
            99
        });
        assert_eq!(v, 99);
        r.add_seconds(Phase::Read, 1.25);
        let rep = r.finish();
        assert_eq!(rep.rank, 7);
        assert_eq!(rep.unbalanced, 0);
        // phases are in taxonomy order (BTreeMap over Phase)
        assert_eq!(rep.phases[0].0, "read");
        assert_eq!(rep.phases[1].0, "write");
        assert!((rep.phases[0].1 - 1.25).abs() < 1e-12);
        // all counters are always present
        assert_eq!(rep.counters.len(), Counter::COUNT);
        assert_eq!(rep.counter("msgs_sent"), 1);
    }

    #[test]
    fn absorb_subs_sums_counters_and_unions_spans() {
        let mut r = Recorder::new(0);
        let mut a = SubRecorder::new();
        a.add(Counter::ArcsTraced, 10);
        a.span(Phase::Gradient, 0, 100_000_000); // 0.1 s
        a.span(Phase::Trace, 100_000_000, 150_000_000); // 0.05 s
        let mut b = SubRecorder::new();
        b.add(Counter::ArcsTraced, 5);
        b.add(Counter::CriticalCells, 3);
        // concurrent with a's gradient span: overlap must not double-count
        b.span(Phase::Gradient, 50_000_000, 120_000_000);
        r.absorb_subs(&[a, b]);
        assert_eq!(r.counter(Counter::ArcsTraced), 15);
        assert_eq!(r.counter(Counter::CriticalCells), 3);
        // gradient union = [0, 0.12] s; trace disjoint = 0.05 s
        assert!((r.phase_seconds(Phase::Gradient) - 0.12).abs() < 1e-12);
        assert!((r.phase_seconds(Phase::Trace) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn absorb_subs_serial_equals_plain_sum() {
        // disjoint spans (the threads=1 shape): union == sum, so the
        // parallel bookkeeping reduces exactly to the old per-block path
        let mut r = Recorder::new(0);
        let mut subs = Vec::new();
        for i in 0..4u64 {
            let mut s = SubRecorder::new();
            s.span(Phase::Gradient, i * 100, i * 100 + 60);
            subs.push(s);
        }
        r.absorb_subs(&subs);
        assert!((r.phase_seconds(Phase::Gradient) - 240e-9).abs() < 1e-15);
    }

    #[test]
    fn absorb_subs_replays_spans_into_sink() {
        let mut r = Recorder::new(1);
        let sink = TraceSink::new(1, Instant::now());
        r.attach_trace(sink.clone());
        let mut s = SubRecorder::new();
        s.time(Phase::Gradient, Instant::now(), |s| {
            s.add(Counter::CellsPaired, 7);
        });
        s.span(Phase::Trace, 10, 20);
        r.absorb_subs(&[s]);
        let t = sink.finish();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].key, "gradient");
        assert_eq!(t.spans[1].key, "trace");
        assert_eq!(r.counter(Counter::CellsPaired), 7);
    }

    #[test]
    fn attached_sink_mirrors_spans() {
        let mut r = Recorder::new(2);
        let sink = TraceSink::new(2, Instant::now());
        r.attach_trace(sink.clone());
        r.begin(Phase::Read);
        r.begin(Phase::Gradient);
        r.end(Phase::Gradient);
        r.end(Phase::Read);
        assert!(r.detach_trace().is_some());
        r.begin(Phase::Write); // after detach: not traced
        r.end(Phase::Write);
        let t = sink.finish();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].key, "gradient");
        assert_eq!(t.spans[1].key, "read");
        assert_eq!(t.unbalanced, 0);
        // trace durations agree with recorder phase totals
        let read_trace = t.span_seconds("read");
        assert!(read_trace >= r.phase_seconds(Phase::Gradient));
        assert!((read_trace - r.phase_seconds(Phase::Read)).abs() < 0.05);
    }

    #[test]
    fn finish_closes_sink_spans_too() {
        let mut r = Recorder::new(0);
        let sink = TraceSink::new(0, Instant::now());
        r.attach_trace(sink.clone());
        r.begin(Phase::Read);
        let rep = r.finish();
        assert_eq!(rep.unbalanced, 1);
        let t = sink.finish();
        assert_eq!(t.spans.len(), 1, "sink span closed by recorder finish");
        assert_eq!(t.unbalanced, 0, "sink itself saw balanced begin/end");
    }
}
