//! Per-rank recorder: nestable phase spans and counters.
//!
//! One `Recorder` lives on each rank for the duration of a run. Spans
//! are opened/closed in LIFO order ([`begin`](Recorder::begin) /
//! [`end`](Recorder::end)); the elapsed seconds of every span accumulate
//! into its phase's bucket, so a phase entered repeatedly (e.g.
//! `gradient` once per local block, `glue` once per merge group) reports
//! its summed time. Nested spans accumulate into **both** buckets: a
//! `glue` span inside `merge_round[1]` counts toward `glue` and toward
//! `merge_round[1]` — phase times are therefore *not* disjoint and do
//! not sum to `total`.

use crate::counter::{Counter, ALL_COUNTERS};
use crate::phase::Phase;
use crate::report::RankReport;
use std::collections::BTreeMap;
use std::time::Instant;

/// Phase spans + counters of one rank.
#[derive(Debug)]
pub struct Recorder {
    rank: u32,
    phases: BTreeMap<Phase, f64>,
    counters: [u64; Counter::COUNT],
    stack: Vec<(Phase, Instant)>,
}

impl Recorder {
    pub fn new(rank: u32) -> Recorder {
        Recorder {
            rank,
            phases: BTreeMap::new(),
            counters: [0; Counter::COUNT],
            stack: Vec::new(),
        }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Open a span for `phase`. Spans nest; close them in LIFO order.
    pub fn begin(&mut self, phase: Phase) {
        self.stack.push((phase, Instant::now()));
    }

    /// Close the innermost span, which must be `phase` (panics
    /// otherwise — a mismatch is an instrumentation bug, not a data
    /// error). Returns the seconds of this span occurrence.
    pub fn end(&mut self, phase: Phase) -> f64 {
        let (open, started) = self.stack.pop().expect("Recorder::end with no open span");
        assert_eq!(
            open, phase,
            "span nesting mismatch: ending {:?} but innermost open span is {:?}",
            phase, open
        );
        let secs = started.elapsed().as_secs_f64();
        *self.phases.entry(phase).or_insert(0.0) += secs;
        secs
    }

    /// Run `f` inside a `phase` span (exception-unsafe convenience: a
    /// panic in `f` leaves the span open, which is fine because the
    /// recorder dies with the rank).
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce(&mut Recorder) -> R) -> R {
        self.begin(phase);
        let out = f(self);
        self.end(phase);
        out
    }

    /// Credit `secs` to `phase` without a live span — for modeled times
    /// (the BSP sim driver) and for merging externally measured values.
    pub fn add_seconds(&mut self, phase: Phase, secs: f64) {
        *self.phases.entry(phase).or_insert(0.0) += secs;
    }

    /// Accumulated seconds of `phase` so far.
    pub fn phase_seconds(&self, phase: Phase) -> f64 {
        self.phases.get(&phase).copied().unwrap_or(0.0)
    }

    /// Number of currently open spans.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// Add `n` to counter `c`.
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c.index()] += n;
    }

    /// Current value of counter `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Freeze into a wire-encodable per-rank report. Panics if spans are
    /// still open.
    pub fn finish(&self) -> RankReport {
        assert!(
            self.stack.is_empty(),
            "Recorder::finish with {} open span(s)",
            self.stack.len()
        );
        RankReport {
            rank: self.rank,
            phases: self.phases.iter().map(|(p, s)| (p.key(), *s)).collect(),
            counters: ALL_COUNTERS
                .iter()
                .map(|c| (c.key().to_string(), self.counters[c.index()]))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_accumulate_into_both_buckets() {
        let mut r = Recorder::new(3);
        r.begin(Phase::MergeRound(0));
        r.begin(Phase::Glue);
        assert_eq!(r.open_spans(), 2);
        let glue = r.end(Phase::Glue);
        r.begin(Phase::Resimplify);
        r.end(Phase::Resimplify);
        let round = r.end(Phase::MergeRound(0));
        assert_eq!(r.open_spans(), 0);
        assert!(glue >= 0.0 && round >= glue, "outer span encloses inner");
        assert!(r.phase_seconds(Phase::MergeRound(0)) >= r.phase_seconds(Phase::Glue));
        assert!(r.phase_seconds(Phase::Resimplify) >= 0.0);
    }

    #[test]
    fn repeated_spans_sum() {
        let mut r = Recorder::new(0);
        r.begin(Phase::Gradient);
        let a = r.end(Phase::Gradient);
        r.begin(Phase::Gradient);
        let b = r.end(Phase::Gradient);
        let total = r.phase_seconds(Phase::Gradient);
        assert!((total - (a + b)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "span nesting mismatch")]
    fn mismatched_end_panics() {
        let mut r = Recorder::new(0);
        r.begin(Phase::Read);
        r.begin(Phase::Gradient);
        r.end(Phase::Read);
    }

    #[test]
    #[should_panic(expected = "open span")]
    fn finish_with_open_span_panics() {
        let mut r = Recorder::new(0);
        r.begin(Phase::Read);
        let _ = r.finish();
    }

    #[test]
    fn counters_accumulate() {
        let mut r = Recorder::new(1);
        r.add(Counter::BytesSent, 10);
        r.add(Counter::BytesSent, 32);
        r.add(Counter::MsgsSent, 2);
        assert_eq!(r.counter(Counter::BytesSent), 42);
        assert_eq!(r.counter(Counter::MsgsSent), 2);
        assert_eq!(r.counter(Counter::BytesRecv), 0);
    }

    #[test]
    fn time_closure_and_finish_report() {
        let mut r = Recorder::new(7);
        let v = r.time(Phase::Write, |r| {
            r.add(Counter::MsgsSent, 1);
            99
        });
        assert_eq!(v, 99);
        r.add_seconds(Phase::Read, 1.25);
        let rep = r.finish();
        assert_eq!(rep.rank, 7);
        // phases are in taxonomy order (BTreeMap over Phase)
        assert_eq!(rep.phases[0].0, "read");
        assert_eq!(rep.phases[1].0, "write");
        assert!((rep.phases[0].1 - 1.25).abs() < 1e-12);
        // all counters are always present
        assert_eq!(rep.counters.len(), Counter::COUNT);
        assert_eq!(rep.counter("msgs_sent"), 1);
    }
}
