//! Minimal JSON document builder.
//!
//! The workspace registry is offline-only, so the report writer cannot
//! pull in `serde_json`; this module is the (tiny) subset we need:
//! building a tree of values and rendering it as pretty-printed,
//! deterministic JSON text. There is intentionally no parser — readers of
//! `.telemetry.json` files are external tools.

use std::fmt;

/// A JSON value. Object keys keep insertion order so reports render
/// deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite floats render as-is; NaN and infinities render as `null`
    /// (JSON has no encoding for them).
    F64(f64),
    U64(u64),
    I64(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip formatting is valid JSON
                    // except that it can omit the fraction ("1"), which is
                    // still a legal JSON number.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s, 0);
        f.write_str(&s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::U64(42).to_string(), "42");
        assert_eq!(Json::I64(-7).to_string(), "-7");
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structure_renders() {
        let v = Json::obj(vec![
            ("name", Json::str("run")),
            ("ranks", Json::Arr(vec![Json::U64(0), Json::U64(1)])),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"name\": \"run\""));
        assert!(s.contains("\"empty_obj\": {}"));
        assert!(s.contains("\"empty_arr\": []"));
        // braces balance
        assert_eq!(s.matches('{').count(), s.matches('}').count(),);
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        assert!(s.ends_with('\n'));
    }
}
