//! Minimal JSON document builder.
//!
//! The workspace registry is offline-only, so the report writer cannot
//! pull in `serde_json`; this module is the (tiny) subset we need:
//! building a tree of values, rendering it as pretty-printed
//! deterministic JSON text, and parsing it back ([`Json::parse`]) so
//! the trace self-checks can round-trip the documents we emit.

use std::fmt;

/// A JSON value. Object keys keep insertion order so reports render
/// deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite floats render as-is; NaN and infinities render as `null`
    /// (JSON has no encoding for them).
    F64(f64),
    U64(u64),
    I64(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document. Integers without fraction/exponent become
    /// [`Json::U64`]/[`Json::I64`]; all other numbers become
    /// [`Json::F64`]. Errors carry the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Render with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip formatting is valid JSON
                    // except that it can omit the fraction ("1"), which is
                    // still a legal JSON number.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s, 0);
        f.write_str(&s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Recursive-descent parser over the document bytes.
struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.b[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let e = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?,
                                16,
                            )
                            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => {
                            return Err(format!(
                                "unknown escape '\\{}' at byte {}",
                                c as char, self.pos
                            ))
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::U64(42).to_string(), "42");
        assert_eq!(Json::I64(-7).to_string(), "-7");
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structure_renders() {
        let v = Json::obj(vec![
            ("name", Json::str("run")),
            ("ranks", Json::Arr(vec![Json::U64(0), Json::U64(1)])),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"name\": \"run\""));
        assert!(s.contains("\"empty_obj\": {}"));
        assert!(s.contains("\"empty_arr\": []"));
        // braces balance
        assert_eq!(s.matches('{').count(), s.matches('}').count(),);
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj(vec![
            ("name", Json::str("run \"x\"\n")),
            ("pi", Json::F64(3.25)),
            ("n", Json::U64(42)),
            ("neg", Json::I64(-7)),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::U64(1), Json::str("two"), Json::Arr(vec![])]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parse_number_classes() {
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::F64(2000.0));
        assert_eq!(Json::parse("-0.25").unwrap(), Json::F64(-0.25));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::U64(u64::MAX)
        );
    }

    #[test]
    fn parse_escapes_and_whitespace() {
        assert_eq!(
            Json::parse("  \"a\\u0041\\n\\\"\"  ").unwrap(),
            Json::str("aA\n\"")
        );
        assert_eq!(
            Json::parse("[ 1 , 2 ]").unwrap(),
            Json::Arr(vec![Json::U64(1), Json::U64(2)])
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "\"open", "1 2", "{\"a\":}", "[,]", "nul", "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
