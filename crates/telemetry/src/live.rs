//! Live metrics: lock-light counters, gauges and log-bucketed
//! histograms for runtime introspection (DESIGN.md §13).
//!
//! The existing [`crate::Recorder`] is post-mortem: spans and counters
//! are frozen into a report once, at the end of a run. This module is
//! the complementary *live* surface a serving process needs — values
//! that can be scraped at any instant, from any thread, without
//! stalling the hot path:
//!
//! * [`LiveCounter`] — a monotonic `AtomicU64`;
//! * [`LiveGauge`] — a settable value (f64 bit pattern in an
//!   `AtomicU64`), used for byte footprints and windowed rates;
//! * [`LiveHistogram`] — an HDR-style log-bucketed histogram with a
//!   *fixed* memory footprint (`O(buckets)`, never `O(samples)`) and a
//!   quantile error of at most one bucket width (≤ 1/16 relative for
//!   values ≥ 16);
//! * [`RateWindow`] — a ring of per-second event counts for windowed
//!   QPS snapshots;
//! * [`Registry`] — named metric families with label sets, rendered as
//!   Prometheus text exposition format or a JSON snapshot. The lock is
//!   taken only for registration and rendering; recording is lock-free
//!   on the `Arc`ed handles;
//! * [`Heartbeat`] / [`ProgressState`] — a periodic progress line
//!   (phase, ranks done, bytes moved) for long pipeline or sim-driver
//!   runs, emitted as JSON lines on stderr.

use crate::json::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------

/// A monotonically increasing counter. Recording is a single relaxed
/// `fetch_add`; reads are a relaxed load.
#[derive(Debug, Default)]
pub struct LiveCounter(AtomicU64);

impl LiveCounter {
    pub fn new() -> LiveCounter {
        LiveCounter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: the last value set wins. Stored as an `f64` bit pattern so
/// fractional rates and large byte counts share one type (bytes are
/// exact up to 2^53).
#[derive(Debug)]
pub struct LiveGauge(AtomicU64);

impl Default for LiveGauge {
    fn default() -> Self {
        LiveGauge::new()
    }
}

impl LiveGauge {
    pub fn new() -> LiveGauge {
        LiveGauge(AtomicU64::new(0f64.to_bits()))
    }

    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------
// Log-bucketed histogram
// ---------------------------------------------------------------------

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile
/// error at `2^-SUB_BITS` (6.25%) for values ≥ `2^SUB_BITS`.
const SUB_BITS: u32 = 4;
const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range: the first
/// `SUB_COUNT` values exactly, then `64 - SUB_BITS` shifted octaves of
/// `SUB_COUNT` sub-buckets each.
pub const HIST_BUCKETS: usize = SUB_COUNT * (64 - SUB_BITS as usize + 1);

/// Bucket index of a value (total order, exact below `SUB_COUNT`).
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUB_COUNT as u64 - 1)) as usize;
    SUB_COUNT + shift as usize * SUB_COUNT + sub
}

/// Lowest value mapping to bucket `i` (the quantile representative).
fn bucket_low(i: usize) -> u64 {
    if i < SUB_COUNT {
        return i as u64;
    }
    let shift = ((i - SUB_COUNT) / SUB_COUNT) as u32;
    let sub = ((i - SUB_COUNT) % SUB_COUNT) as u64;
    (SUB_COUNT as u64 + sub) << shift
}

/// Width of the bucket containing `v` — the quantile error bound at
/// that magnitude.
pub fn bucket_width(v: u64) -> u64 {
    let i = bucket_index(v);
    if i + 1 >= HIST_BUCKETS {
        return u64::MAX - bucket_low(i);
    }
    bucket_low(i + 1) - bucket_low(i)
}

/// A lock-free log-bucketed histogram over `u64` samples with a fixed
/// footprint of [`HIST_BUCKETS`] atomic cells (~8 KiB). Recording is
/// one relaxed `fetch_add` per sample; quantiles, merges and renders
/// work from a consistent local snapshot of the bucket array.
#[derive(Debug)]
pub struct LiveHistogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Default for LiveHistogram {
    fn default() -> Self {
        LiveHistogram::new()
    }
}

impl LiveHistogram {
    pub fn new() -> LiveHistogram {
        LiveHistogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Consistent point-in-time copy of the bucket array (the unit the
    /// quantile/merge/render paths all work from).
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile (`pct` in 0..=100), reported as the lower
    /// bound of the containing bucket — at most one bucket width below
    /// the exact order statistic, and monotone in `pct` so p50 ≤ p99
    /// holds structurally.
    pub fn quantile(&self, pct: usize) -> u64 {
        self.snapshot().quantile(pct)
    }

    /// Fold another histogram's samples into this one. Bucket-wise
    /// addition, so merging is associative and commutative.
    pub fn merge_from(&self, other: &LiveHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// Resident size — a constant, independent of how many samples have
    /// been recorded (the bounded-memory guarantee the serve layer
    /// relies on).
    pub fn mem_bytes(&self) -> u64 {
        (std::mem::size_of::<LiveHistogram>() + self.buckets.len() * 8) as u64
    }
}

/// A frozen copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Dense per-bucket counts, length [`HIST_BUCKETS`].
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistSnapshot {
    /// Same nearest-rank quantile as [`LiveHistogram::quantile`].
    pub fn quantile(&self, pct: usize) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count - 1) * pct.min(100) as u64 / 100;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum > rank {
                return bucket_low(i);
            }
        }
        bucket_low(HIST_BUCKETS - 1)
    }

    /// `(le, cumulative_count)` pairs for every non-empty bucket, in
    /// increasing `le` order — the Prometheus `_bucket` series (the
    /// implicit `+Inf` bucket is the total count).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            // the bucket spans [low(i), low(i+1)); samples are integers,
            // so `le = low(i+1) - 1` is the inclusive upper bound
            let le = if i + 1 < HIST_BUCKETS {
                bucket_low(i + 1) - 1
            } else {
                u64::MAX
            };
            out.push((le, cum));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Windowed rates
// ---------------------------------------------------------------------

const RATE_SLOTS: usize = 64;

/// Per-second event counts in a fixed ring, for windowed QPS snapshots
/// up to `RATE_SLOTS - 1` seconds back. Recording is lock-free; a slot
/// being lazily recycled across a second boundary can drop a handful of
/// concurrent increments, which is harmless for a rate metric.
#[derive(Debug)]
pub struct RateWindow {
    started: Instant,
    /// Per slot: the second this slot currently counts (+1, so 0 means
    /// "never used") and the event count within it.
    secs: Box<[AtomicU64]>,
    counts: Box<[AtomicU64]>,
}

impl Default for RateWindow {
    fn default() -> Self {
        RateWindow::new()
    }
}

impl RateWindow {
    pub fn new() -> RateWindow {
        RateWindow {
            started: Instant::now(),
            secs: (0..RATE_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            counts: (0..RATE_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn record(&self) {
        let sec = self.started.elapsed().as_secs() + 1;
        let i = (sec % RATE_SLOTS as u64) as usize;
        if self.secs[i].load(Ordering::Relaxed) != sec {
            self.counts[i].store(0, Ordering::Relaxed);
            self.secs[i].store(sec, Ordering::Relaxed);
        }
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Events per second over the trailing `window` seconds (including
    /// the current partial second), clamped to the ring depth and to
    /// the time the window has existed.
    pub fn rate(&self, window: u64) -> f64 {
        let now = self.started.elapsed().as_secs() + 1;
        let window = window.clamp(1, RATE_SLOTS as u64 - 1);
        let lo = now.saturating_sub(window - 1);
        let mut events = 0u64;
        for i in 0..RATE_SLOTS {
            let sec = self.secs[i].load(Ordering::Relaxed);
            if sec >= lo && sec <= now {
                events += self.counts[i].load(Ordering::Relaxed);
            }
        }
        events as f64 / window.min(now) as f64
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn key(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    C(Arc<LiveCounter>),
    G(Arc<LiveGauge>),
    H(Arc<LiveHistogram>),
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    handle: Handle,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// Named metric families with label sets. The mutex guards only
/// registration and rendering; every returned handle records through
/// its own atomics. Registering the same `(name, labels)` twice returns
/// the same handle; reusing a name with a different kind panics (a
/// programmer error, like a duplicate counter key).
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<LiveCounter> {
        match self.register(name, help, Kind::Counter, labels, || {
            Handle::C(Arc::new(LiveCounter::new()))
        }) {
            Handle::C(c) => c,
            _ => unreachable!("registered as counter"),
        }
    }

    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<LiveGauge> {
        match self.register(name, help, Kind::Gauge, labels, || {
            Handle::G(Arc::new(LiveGauge::new()))
        }) {
            Handle::G(g) => g,
            _ => unreachable!("registered as gauge"),
        }
    }

    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<LiveHistogram> {
        match self.register(name, help, Kind::Histogram, labels, || {
            Handle::H(Arc::new(LiveHistogram::new()))
        }) {
            Handle::H(h) => h,
            _ => unreachable!("registered as histogram"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut fams = self.families.lock().unwrap();
        let fam = match fams.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name:?} registered as {} and {}",
                    f.kind.key(),
                    kind.key()
                );
                f
            }
            None => {
                fams.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                fams.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = fam.series.iter().find(|s| s.labels == labels) {
            return s.handle.clone();
        }
        let handle = make();
        fam.series.push(Series {
            labels,
            handle: handle.clone(),
        });
        handle
    }

    /// Prometheus text exposition format (version 0.0.4): `# HELP` /
    /// `# TYPE` headers per family, one sample line per series, and
    /// cumulative `_bucket`/`_sum`/`_count` series for histograms.
    /// Families render in registration order, series in registration
    /// order, so output is deterministic.
    pub fn render_prometheus(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut out = String::new();
        for f in fams.iter() {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.key()));
            for s in &f.series {
                match &s.handle {
                    Handle::C(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            label_text(&s.labels, None),
                            c.get()
                        ));
                    }
                    Handle::G(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            label_text(&s.labels, None),
                            fmt_number(g.get())
                        ));
                    }
                    Handle::H(h) => {
                        let snap = h.snapshot();
                        for (le, cum) in snap.cumulative() {
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                f.name,
                                label_text(&s.labels, Some(&le.to_string())),
                                cum
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            f.name,
                            label_text(&s.labels, Some("+Inf")),
                            snap.count
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            f.name,
                            label_text(&s.labels, None),
                            snap.sum
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            f.name,
                            label_text(&s.labels, None),
                            snap.count
                        ));
                    }
                }
            }
        }
        out
    }

    /// JSON snapshot: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, p50, p99}}}`, keyed by
    /// `name{label="value",...}` exactly as Prometheus renders them so
    /// the two surfaces cross-check against each other.
    pub fn snapshot_json(&self) -> Json {
        let fams = self.families.lock().unwrap();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for f in fams.iter() {
            for s in &f.series {
                let key = format!("{}{}", f.name, label_text(&s.labels, None));
                match &s.handle {
                    Handle::C(c) => counters.push((key, Json::U64(c.get()))),
                    Handle::G(g) => {
                        let v = g.get();
                        let j = if v.fract() == 0.0 && (0.0..9.0e15).contains(&v) {
                            Json::U64(v as u64)
                        } else {
                            Json::F64(v)
                        };
                        gauges.push((key, j));
                    }
                    Handle::H(h) => {
                        let snap = h.snapshot();
                        histograms.push((
                            key,
                            Json::obj(vec![
                                ("count", Json::U64(snap.count)),
                                ("sum", Json::U64(snap.sum)),
                                ("p50", Json::U64(snap.quantile(50))),
                                ("p99", Json::U64(snap.quantile(99))),
                            ]),
                        ));
                    }
                }
            }
        }
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
        ])
    }
}

/// `{label="value",...}` with an optional trailing `le`; empty label
/// sets render as nothing (bare metric name).
fn label_text(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Render a gauge value: integral values print without a fraction.
fn fmt_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------
// Progress heartbeat
// ---------------------------------------------------------------------

/// Coarse pipeline stage of one rank, for the heartbeat line. Ordinals
/// are ordered by pipeline position so the "slowest rank" is a `min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum ProgressPhase {
    Idle = 0,
    Read = 1,
    Local = 2,
    Simplify = 3,
    Merge = 4,
    SegResolve = 5,
    Hierarchy = 6,
    Write = 7,
    Check = 8,
    Done = 9,
}

impl ProgressPhase {
    pub fn label(self) -> &'static str {
        match self {
            ProgressPhase::Idle => "idle",
            ProgressPhase::Read => "read",
            ProgressPhase::Local => "local",
            ProgressPhase::Simplify => "simplify",
            ProgressPhase::Merge => "merge",
            ProgressPhase::SegResolve => "seg_resolve",
            ProgressPhase::Hierarchy => "hierarchy",
            ProgressPhase::Write => "write",
            ProgressPhase::Check => "check",
            ProgressPhase::Done => "done",
        }
    }

    fn from_ordinal(n: usize) -> ProgressPhase {
        match n {
            1 => ProgressPhase::Read,
            2 => ProgressPhase::Local,
            3 => ProgressPhase::Simplify,
            4 => ProgressPhase::Merge,
            5 => ProgressPhase::SegResolve,
            6 => ProgressPhase::Hierarchy,
            7 => ProgressPhase::Write,
            8 => ProgressPhase::Check,
            9 => ProgressPhase::Done,
            _ => ProgressPhase::Idle,
        }
    }
}

/// Shared progress state the ranks update and the heartbeat thread
/// reads: per-rank phase ordinals plus a bytes-moved accumulator.
#[derive(Debug)]
pub struct ProgressState {
    source: String,
    started: Instant,
    phases: Vec<AtomicUsize>,
    bytes_moved: AtomicU64,
}

impl ProgressState {
    pub fn new(source: &str, ranks: usize) -> ProgressState {
        ProgressState {
            source: source.to_string(),
            started: Instant::now(),
            phases: (0..ranks.max(1)).map(|_| AtomicUsize::new(0)).collect(),
            bytes_moved: AtomicU64::new(0),
        }
    }

    pub fn set_phase(&self, rank: usize, phase: ProgressPhase) {
        if let Some(p) = self.phases.get(rank) {
            p.store(phase as usize, Ordering::Relaxed);
        }
    }

    pub fn set_phase_all(&self, phase: ProgressPhase) {
        for p in &self.phases {
            p.store(phase as usize, Ordering::Relaxed);
        }
    }

    pub fn add_bytes(&self, n: u64) {
        self.bytes_moved.fetch_add(n, Ordering::Relaxed);
    }

    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved.load(Ordering::Relaxed)
    }

    pub fn ranks_done(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| p.load(Ordering::Relaxed) == ProgressPhase::Done as usize)
            .count()
    }

    /// The slowest rank's current phase — what the run is waiting on.
    pub fn min_phase(&self) -> ProgressPhase {
        self.phases
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .min()
            .map(ProgressPhase::from_ordinal)
            .unwrap_or(ProgressPhase::Idle)
    }

    /// One progress line as compact JSON (no newline).
    pub fn line(&self) -> String {
        format!(
            "{{\"event\":\"progress\",\"source\":\"{}\",\"elapsed_s\":{:.1},\
             \"phase\":\"{}\",\"ranks_done\":{},\"ranks\":{},\"bytes_moved\":{}}}",
            self.source,
            self.started.elapsed().as_secs_f64(),
            self.min_phase().label(),
            self.ranks_done(),
            self.phases.len(),
            self.bytes_moved()
        )
    }
}

/// Heartbeat interval from `MSP_PROGRESS` (seconds; `0`/unset = off).
pub fn progress_interval_from_env() -> Option<f64> {
    std::env::var("MSP_PROGRESS")
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|&s| s > 0.0 && s.is_finite())
}

/// A background thread printing [`ProgressState::line`] to stderr every
/// `interval` until dropped; dropping prints one final line so even
/// runs shorter than the interval leave a record.
#[derive(Debug)]
pub struct Heartbeat {
    state: Arc<ProgressState>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    pub fn spawn(source: &str, ranks: usize, interval: Duration) -> Heartbeat {
        let state = Arc::new(ProgressState::new(source, ranks));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let state = state.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut last = Instant::now();
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                    if last.elapsed() >= interval {
                        eprintln!("{}", state.line());
                        last = Instant::now();
                    }
                }
            })
        };
        Heartbeat {
            state,
            stop,
            handle: Some(handle),
        }
    }

    pub fn state(&self) -> Arc<ProgressState> {
        self.state.clone()
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        eprintln!("{}", self.state.line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn bucket_mapping_is_monotone_and_total() {
        // exact below SUB_COUNT
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
        }
        // every bucket's low maps back to itself, and lows increase
        let mut prev = None;
        for i in 0..HIST_BUCKETS {
            let low = bucket_low(i);
            assert_eq!(bucket_index(low), i, "bucket {i} low {low}");
            if let Some(p) = prev {
                assert!(low > p, "bucket lows must increase at {i}");
            }
            prev = Some(low);
        }
        // extremes land inside the table
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // relative error bound: width/low <= 2^-SUB_BITS for v >= 16
        for v in [16u64, 100, 1_000, 123_456, u64::MAX / 3] {
            let w = bucket_width(v);
            assert!(
                (w as f64) <= bucket_low(bucket_index(v)) as f64 / (SUB_COUNT as f64) + 1.0,
                "width {w} too wide at {v}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_bound_exact_values() {
        let h = LiveHistogram::new();
        let mut samples: Vec<u64> = (0..1000u64).map(|i| i * i % 7919 + i).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for pct in [0, 25, 50, 90, 99, 100] {
            let exact = samples[(samples.len() - 1) * pct / 100];
            let approx = h.quantile(pct);
            assert!(approx <= exact, "p{pct}: approx {approx} > exact {exact}");
            assert!(
                exact - approx < bucket_width(exact).max(1),
                "p{pct}: error {} exceeds bucket width {}",
                exact - approx,
                bucket_width(exact)
            );
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), samples.iter().sum::<u64>());
    }

    #[test]
    fn histogram_memory_is_bounded() {
        let h = LiveHistogram::new();
        let before = h.mem_bytes();
        for i in 0..100_000u64 {
            h.record(i.wrapping_mul(0x9e3779b97f4a7c15) >> 20);
        }
        assert_eq!(h.mem_bytes(), before, "recording must not allocate");
        assert!(before < 32 * 1024, "fixed footprint stays under 32 KiB");
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let (a, b, combined) = (
            LiveHistogram::new(),
            LiveHistogram::new(),
            LiveHistogram::new(),
        );
        for i in 0..500u64 {
            let v = i * 37 % 4096;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), combined.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LiveHistogram::new();
        let threads = 8;
        let per = 10_000u64;
        let barrier = Barrier::new(threads);
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = &h;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..per {
                        h.record((t as u64 * per + i) % 100_000);
                        // scrapes interleave with recording and must not
                        // block or tear
                        if i % 1000 == 0 {
                            let _ = h.quantile(99);
                        }
                    }
                });
            }
        });
        assert_eq!(h.count(), threads as u64 * per);
    }

    #[test]
    fn registry_renders_prometheus_and_json() {
        let r = Registry::new();
        let c = r.counter("test_total", "a counter", &[]);
        let g = r.gauge("test_bytes", "a gauge", &[("kind", "cache")]);
        let h = r.histogram("test_us", "a histogram", &[("class", "x")]);
        c.add(5);
        g.set_u64(4096);
        h.record(100);
        h.record(200);
        // re-registration returns the same handle
        r.counter("test_total", "a counter", &[]).add(1);
        assert_eq!(c.get(), 6);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE test_total counter"));
        assert!(text.contains("test_total 6"));
        assert!(text.contains("test_bytes{kind=\"cache\"} 4096"));
        assert!(text.contains("# TYPE test_us histogram"));
        assert!(text.contains("test_us_bucket{class=\"x\",le=\"+Inf\"} 2"));
        assert!(text.contains("test_us_sum{class=\"x\"} 300"));
        assert!(text.contains("test_us_count{class=\"x\"} 2"));
        let snap = r.snapshot_json();
        let rendered = snap.pretty();
        assert!(rendered.contains("\"test_total\": 6"));
        assert!(rendered.contains("\"test_bytes{kind=\\\"cache\\\"}\": 4096"));
        // the snapshot re-parses (valid JSON)
        assert!(Json::parse(&rendered).is_ok());
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn registry_rejects_kind_conflicts() {
        let r = Registry::new();
        r.counter("dual", "as counter", &[]);
        r.gauge("dual", "as gauge", &[]);
    }

    #[test]
    fn rate_window_counts_recent_events() {
        let w = RateWindow::new();
        for _ in 0..50 {
            w.record();
        }
        // 50 events within the first second: any window sees them all
        assert!(w.rate(1) >= 50.0);
        assert!(w.rate(10) >= 5.0);
    }

    #[test]
    fn progress_state_tracks_phases_and_bytes() {
        let p = ProgressState::new("test", 4);
        assert_eq!(p.min_phase(), ProgressPhase::Idle);
        p.set_phase_all(ProgressPhase::Read);
        p.set_phase(0, ProgressPhase::Merge);
        assert_eq!(p.min_phase(), ProgressPhase::Read);
        p.add_bytes(1234);
        for r in 0..4 {
            p.set_phase(r, ProgressPhase::Done);
        }
        assert_eq!(p.ranks_done(), 4);
        let line = p.line();
        assert!(line.contains("\"phase\":\"done\""));
        assert!(line.contains("\"bytes_moved\":1234"));
        // progress lines are valid single-line JSON
        assert!(Json::parse(&line).is_ok());
    }

    #[test]
    fn heartbeat_emits_a_final_line() {
        // can't capture stderr cheaply; just exercise spawn/drop for
        // panics and thread leaks
        let hb = Heartbeat::spawn("test", 2, Duration::from_millis(5));
        hb.state().set_phase_all(ProgressPhase::Local);
        std::thread::sleep(Duration::from_millis(30));
        drop(hb);
    }
}
