//! The fixed phase taxonomy, matching Algorithm 1 of the paper.
//!
//! Every span a [`Recorder`](crate::Recorder) opens is keyed by one of
//! these phases; stable string keys make reports comparable across runs
//! and across code versions. `MergeRound(k)` is parameterized by the
//! zero-based merge round so Table-I-style per-round breakdowns fall out
//! of the same machinery.

/// One phase of the pipeline. The derived `Ord` follows pipeline order
/// (read → gradient → trace → simplify → merge rounds → glue →
/// resimplify → write → total), which is the order phases appear in
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Collective read of the scalar blocks (§IV-B).
    Read,
    /// Discrete gradient assignment (§IV-C).
    Gradient,
    /// V-path tracing and complex construction (§IV-D).
    Trace,
    /// Per-block segmentation labeling (`--segment`): extremum label
    /// propagation along the local gradient.
    Segment,
    /// Initial local persistence simplification (§IV-E).
    Simplify,
    /// One radix-k merge round (§IV-F); zero-based round index.
    MergeRound(u16),
    /// Gluing incoming complexes onto a root (§IV-F3); nested inside a
    /// merge round.
    Glue,
    /// Re-simplification of newly interior nodes after a glue; nested
    /// inside a merge round.
    Resimplify,
    /// Distributed segmentation resolution (`--segment`): pointer-jump
    /// rounds over the forward map plus the final table rewrite.
    SegResolve,
    /// Cancellation-hierarchy recording (`--hierarchy`): global
    /// region-size aggregation plus logged full-simplification runs per
    /// output slot.
    Hierarchy,
    /// Collective write of output blocks (§IV-G).
    Write,
    /// Invariant checking of the output complexes (`--check` /
    /// `MSP_CHECK=1`); off by default.
    Check,
    /// Whole-pipeline wall time of the rank.
    Total,
}

impl Phase {
    /// Stable string key used in encoded reports and JSON output.
    pub fn key(self) -> String {
        match self {
            Phase::Read => "read".to_string(),
            Phase::Gradient => "gradient".to_string(),
            Phase::Trace => "trace".to_string(),
            Phase::Simplify => "simplify".to_string(),
            Phase::Segment => "segment".to_string(),
            Phase::MergeRound(k) => format!("merge_round[{k}]"),
            Phase::Glue => "glue".to_string(),
            Phase::Resimplify => "resimplify".to_string(),
            Phase::SegResolve => "seg_resolve".to_string(),
            Phase::Hierarchy => "hierarchy".to_string(),
            Phase::Write => "write".to_string(),
            Phase::Check => "check".to_string(),
            Phase::Total => "total".to_string(),
        }
    }

    /// Inverse of [`Phase::key`]. Unknown keys return `None` (reports
    /// from newer writers stay readable: unknown phases sort last).
    pub fn parse(key: &str) -> Option<Phase> {
        match key {
            "read" => Some(Phase::Read),
            "gradient" => Some(Phase::Gradient),
            "trace" => Some(Phase::Trace),
            "simplify" => Some(Phase::Simplify),
            "segment" => Some(Phase::Segment),
            "glue" => Some(Phase::Glue),
            "resimplify" => Some(Phase::Resimplify),
            "seg_resolve" => Some(Phase::SegResolve),
            "hierarchy" => Some(Phase::Hierarchy),
            "write" => Some(Phase::Write),
            "check" => Some(Phase::Check),
            "total" => Some(Phase::Total),
            _ => {
                let inner = key.strip_prefix("merge_round[")?.strip_suffix(']')?;
                inner.parse::<u16>().ok().map(Phase::MergeRound)
            }
        }
    }
}

/// Sort phase keys into taxonomy order; keys that do not parse sort
/// last, alphabetically.
pub fn sort_phase_keys(keys: &mut [String]) {
    keys.sort_by(|a, b| match (Phase::parse(a), Phase::parse(b)) {
        (Some(pa), Some(pb)) => pa.cmp(&pb),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a.cmp(b),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trips() {
        let all = [
            Phase::Read,
            Phase::Gradient,
            Phase::Trace,
            Phase::Segment,
            Phase::Simplify,
            Phase::MergeRound(0),
            Phase::MergeRound(13),
            Phase::Glue,
            Phase::Resimplify,
            Phase::SegResolve,
            Phase::Hierarchy,
            Phase::Write,
            Phase::Check,
            Phase::Total,
        ];
        for p in all {
            assert_eq!(Phase::parse(&p.key()), Some(p), "{}", p.key());
        }
        assert_eq!(Phase::parse("merge_round[]"), None);
        assert_eq!(Phase::parse("merge_round[x]"), None);
        assert_eq!(Phase::parse("bogus"), None);
    }

    #[test]
    fn taxonomy_order() {
        let mut keys: Vec<String> = vec![
            "write".into(),
            "merge_round[2]".into(),
            "zeta_custom".into(),
            "read".into(),
            "merge_round[0]".into(),
            "total".into(),
            "gradient".into(),
        ];
        sort_phase_keys(&mut keys);
        assert_eq!(
            keys,
            vec![
                "read".to_string(),
                "gradient".into(),
                "merge_round[0]".into(),
                "merge_round[2]".into(),
                "write".into(),
                "total".into(),
                "zeta_custom".into(),
            ]
        );
    }
}
