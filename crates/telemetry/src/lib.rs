//! # msp-telemetry
//!
//! Per-rank phase/comm observability for the parallel Morse-Smale
//! pipeline: the substrate every performance claim in this repo is
//! measured against (the paper's Table I and Figs 9/10 are exactly
//! per-phase, per-rank breakdowns of this kind).
//!
//! * [`Phase`] — the fixed span taxonomy matching Algorithm 1 (`read`,
//!   `gradient`, `trace`, `simplify`, `merge_round[k]`, `glue`,
//!   `resimplify`, `write`, `total`);
//! * [`Counter`] — monotonically-accumulating work/communication
//!   counters (cells paired … bytes/messages sent/received);
//! * [`Recorder`] — one per rank: nestable phase spans + counters;
//! * [`RankReport`] / [`RunReport`] — frozen per-rank data with a
//!   compact wire encoding, cross-rank min/mean/max/imbalance
//!   aggregation, and a versioned `.telemetry.json` writer;
//! * [`TraceSink`] / [`RankTrace`] / [`RunTrace`] — causal event
//!   tracing: timestamped spans + message stamps per rank, Chrome
//!   trace-event export for Perfetto, and critical-path analysis
//!   ([`CriticalPath`]);
//! * [`Json`] — the dependency-free JSON document builder/parser the
//!   writers use (the build is offline; no serde_json);
//! * [`live`] — the *live* (scrapeable, lock-light) metric surface:
//!   atomic counters/gauges, log-bucketed histograms with bounded
//!   memory, windowed rates, a Prometheus/JSON [`Registry`], and the
//!   pipeline progress [`Heartbeat`] (DESIGN.md §13).
//!
//! The crate is intentionally std-only so it can never constrain where
//! instrumentation is threaded.

pub mod counter;
pub mod json;
pub mod live;
pub mod phase;
pub mod recorder;
pub mod report;
pub mod trace;
pub(crate) mod wirefmt;

pub use counter::{Counter, ALL_COUNTERS};
pub use json::Json;
pub use live::{
    bucket_width, progress_interval_from_env, Heartbeat, HistSnapshot, LiveCounter, LiveGauge,
    LiveHistogram, ProgressPhase, ProgressState, RateWindow, Registry, HIST_BUCKETS,
};
pub use phase::Phase;
pub use recorder::{Recorder, SpanError, SubRecorder};
pub use report::{
    aggregate, write_named_json, Agg, CounterStat, PhaseStat, RankReport, RunReport, REPORT_VERSION,
};
pub use trace::{
    CriticalPath, FlowEdge, MatchReport, MsgStamp, PathStep, RankTrace, RunTrace, TimeoutStamp,
    TraceSink, TraceSpan, TRACE_VERSION,
};
