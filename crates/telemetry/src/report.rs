//! Per-rank reports, cross-rank aggregation, and the versioned
//! `.telemetry.json` run-report writer.
//!
//! A [`RankReport`] is the frozen output of one rank's
//! [`Recorder`](crate::Recorder). It has a compact little-endian wire
//! encoding ([`RankReport::encode`]) so ranks can ship their reports to
//! root through the same byte-oriented collectives the pipeline already
//! uses; root decodes and folds them into a [`RunReport`] with
//! min/mean/max/imbalance statistics per phase and per counter.

use crate::json::Json;
use crate::phase::sort_phase_keys;
use crate::wirefmt::{encode_str, Cursor};
use std::io;
use std::path::{Path, PathBuf};

/// Schema version written into every report (bump on breaking changes
/// to the JSON layout or the rank-report wire encoding).
///
/// v2: per-rank `unbalanced` span-misuse incident count (wire + JSON).
pub const REPORT_VERSION: u32 = 2;

/// Frozen phase times (seconds) and counters of one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct RankReport {
    pub rank: u32,
    /// Span-API misuse incidents (mismatched/unclosed spans) — nonzero
    /// means this rank's phase times are best-effort, not exact.
    pub unbalanced: u32,
    /// `(phase key, accumulated seconds)`, taxonomy-ordered.
    pub phases: Vec<(String, f64)>,
    /// `(counter key, value)`, one entry per taxonomy counter.
    pub counters: Vec<(String, u64)>,
}

impl RankReport {
    /// Accumulated seconds of a phase key, `None` if the phase never ran.
    pub fn phase_seconds(&self, key: &str) -> Option<f64> {
        self.phases.iter().find(|(k, _)| k == key).map(|(_, s)| *s)
    }

    /// Total merge-stage seconds: the sum over all `merge_round[k]`
    /// spans (0 when the run had no merge rounds).
    pub fn merge_seconds(&self) -> f64 {
        self.phases
            .iter()
            .filter(|(k, _)| k.starts_with("merge_round["))
            .map(|(_, s)| *s)
            .sum()
    }

    /// Counter value by key (0 for unknown keys — counters are
    /// monotonic from 0).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Compact little-endian encoding for shipping to root.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 24 * (self.phases.len() + self.counters.len()));
        out.extend_from_slice(&REPORT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.unbalanced.to_le_bytes());
        out.extend_from_slice(&(self.phases.len() as u32).to_le_bytes());
        for (k, secs) in &self.phases {
            encode_str(&mut out, k);
            out.extend_from_slice(&secs.to_le_bytes());
        }
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (k, v) in &self.counters {
            encode_str(&mut out, k);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Inverse of [`encode`](RankReport::encode).
    pub fn decode(buf: &[u8]) -> Result<RankReport, String> {
        let mut c = Cursor::new(buf, "rank report");
        let version = c.u32()?;
        if version != REPORT_VERSION {
            return Err(format!(
                "rank report version {version} != supported {REPORT_VERSION}"
            ));
        }
        let rank = c.u32()?;
        let unbalanced = c.u32()?;
        let n_phases = c.u32()? as usize;
        let mut phases = Vec::with_capacity(n_phases.min(4096));
        for _ in 0..n_phases {
            let k = c.string()?;
            let s = c.f64()?;
            phases.push((k, s));
        }
        let n_counters = c.u32()? as usize;
        let mut counters = Vec::with_capacity(n_counters.min(4096));
        for _ in 0..n_counters {
            let k = c.string()?;
            let v = c.u64()?;
            counters.push((k, v));
        }
        c.expect_end()?;
        Ok(RankReport {
            rank,
            unbalanced,
            phases,
            counters,
        })
    }
}

/// min/mean/max over ranks, plus the load-imbalance factor `max / mean`
/// (1.0 = perfectly balanced; the paper's strong-scaling discussion is
/// all about this ratio growing with rank count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agg {
    pub min: f64,
    pub mean: f64,
    pub max: f64,
    pub imbalance: f64,
}

/// Aggregate a per-rank series. An empty series (phase never ran
/// anywhere) is all-zero with imbalance 1.0.
pub fn aggregate(values: &[f64]) -> Agg {
    if values.is_empty() {
        return Agg {
            min: 0.0,
            mean: 0.0,
            max: 0.0,
            imbalance: 1.0,
        };
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    let mean = sum / values.len() as f64;
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    Agg {
        min,
        mean,
        max,
        imbalance,
    }
}

impl Agg {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("min", Json::F64(self.min)),
            ("mean", Json::F64(self.mean)),
            ("max", Json::F64(self.max)),
            ("imbalance", Json::F64(self.imbalance)),
        ])
    }
}

/// Cross-rank statistics of one phase.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    pub key: String,
    /// Over ranks where the phase ran; ranks that never entered the
    /// phase contribute 0 s (they waited at the next barrier).
    pub seconds: Agg,
}

/// Cross-rank statistics of one counter.
#[derive(Debug, Clone)]
pub struct CounterStat {
    pub key: String,
    pub total: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub imbalance: f64,
}

/// The aggregated run report: per-rank raw data plus cross-rank
/// statistics, written as `results/<name>.telemetry.json`.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub version: u32,
    pub name: String,
    pub n_ranks: u32,
    /// Free-form run metadata (`dims`, `blocks`, `plan`, …) rendered
    /// into the JSON `meta` object, insertion-ordered.
    pub meta: Vec<(String, Json)>,
    pub ranks: Vec<RankReport>,
    pub phase_stats: Vec<PhaseStat>,
    pub counter_stats: Vec<CounterStat>,
}

impl RunReport {
    /// Fold gathered per-rank reports into a run report with cross-rank
    /// aggregates. `ranks` must be non-empty and is sorted by rank.
    pub fn from_ranks(name: &str, mut ranks: Vec<RankReport>) -> RunReport {
        assert!(!ranks.is_empty(), "run report needs at least one rank");
        ranks.sort_by_key(|r| r.rank);

        // union of phase keys in taxonomy order
        let mut phase_keys: Vec<String> = Vec::new();
        for r in &ranks {
            for (k, _) in &r.phases {
                if !phase_keys.iter().any(|p| p == k) {
                    phase_keys.push(k.clone());
                }
            }
        }
        sort_phase_keys(&mut phase_keys);
        let phase_stats = phase_keys
            .into_iter()
            .map(|key| {
                let series: Vec<f64> = ranks
                    .iter()
                    .map(|r| r.phase_seconds(&key).unwrap_or(0.0))
                    .collect();
                PhaseStat {
                    seconds: aggregate(&series),
                    key,
                }
            })
            .collect();

        // union of counter keys, first-seen order (all ranks emit the
        // full taxonomy, so this is taxonomy order in practice)
        let mut counter_keys: Vec<String> = Vec::new();
        for r in &ranks {
            for (k, _) in &r.counters {
                if !counter_keys.iter().any(|p| p == k) {
                    counter_keys.push(k.clone());
                }
            }
        }
        let counter_stats = counter_keys
            .into_iter()
            .map(|key| {
                let series: Vec<u64> = ranks.iter().map(|r| r.counter(&key)).collect();
                let f: Vec<f64> = series.iter().map(|&v| v as f64).collect();
                let agg = aggregate(&f);
                CounterStat {
                    total: series.iter().sum(),
                    min: series.iter().copied().min().unwrap_or(0),
                    max: series.iter().copied().max().unwrap_or(0),
                    mean: agg.mean,
                    imbalance: agg.imbalance,
                    key,
                }
            })
            .collect();

        RunReport {
            version: REPORT_VERSION,
            name: name.to_string(),
            n_ranks: ranks.len() as u32,
            meta: Vec::new(),
            ranks,
            phase_stats,
            counter_stats,
        }
    }

    /// Append a metadata entry (builder-style).
    pub fn with_meta(mut self, key: &str, value: Json) -> RunReport {
        self.meta.push((key.to_string(), value));
        self
    }

    pub fn phase_stat(&self, key: &str) -> Option<&PhaseStat> {
        self.phase_stats.iter().find(|p| p.key == key)
    }

    /// Summed counter value across ranks (0 for unknown keys).
    pub fn counter_total(&self, key: &str) -> u64 {
        self.counter_stats
            .iter()
            .find(|c| c.key == key)
            .map(|c| c.total)
            .unwrap_or(0)
    }

    /// Summed span-misuse incidents across ranks — nonzero means some
    /// rank's phase times are best-effort.
    pub fn unbalanced_total(&self) -> u32 {
        self.ranks.iter().map(|r| r.unbalanced).sum()
    }

    /// The JSON document (see DESIGN.md §Telemetry for the schema).
    pub fn to_json(&self) -> Json {
        let phases = Json::Obj(
            self.phase_stats
                .iter()
                .map(|p| (p.key.clone(), p.seconds.to_json()))
                .collect(),
        );
        let counters = Json::Obj(
            self.counter_stats
                .iter()
                .map(|c| {
                    (
                        c.key.clone(),
                        Json::obj(vec![
                            ("total", Json::U64(c.total)),
                            ("min", Json::U64(c.min)),
                            ("mean", Json::F64(c.mean)),
                            ("max", Json::U64(c.max)),
                            ("imbalance", Json::F64(c.imbalance)),
                        ]),
                    )
                })
                .collect(),
        );
        let ranks = Json::Arr(
            self.ranks
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("rank", Json::U64(r.rank as u64)),
                        ("unbalanced", Json::U64(r.unbalanced as u64)),
                        (
                            "phases",
                            Json::Obj(
                                r.phases
                                    .iter()
                                    .map(|(k, s)| (k.clone(), Json::F64(*s)))
                                    .collect(),
                            ),
                        ),
                        (
                            "counters",
                            Json::Obj(
                                r.counters
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::U64(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("version", Json::U64(self.version as u64)),
            ("kind", Json::str("run")),
            ("name", Json::str(&self.name)),
            ("n_ranks", Json::U64(self.n_ranks as u64)),
            ("unbalanced", Json::U64(self.unbalanced_total() as u64)),
            ("meta", Json::Obj(self.meta.clone())),
            ("phases", phases),
            ("counters", counters),
            ("ranks", ranks),
        ])
    }

    /// Write `<dir>/<name>.telemetry.json` (creating `dir` if needed)
    /// and return the path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        write_named_json(dir, &self.name, &self.to_json())
    }
}

/// Write any JSON document as `<dir>/<name>.telemetry.json`, creating
/// `dir` if needed. Shared by [`RunReport::write`] and the bench-series
/// emitter in `msp-bench`.
pub fn write_named_json(dir: &Path, name: &str, doc: &Json) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.telemetry.json"));
    std::fs::write(&path, doc.pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_report(rank: u32, read: f64, bytes: u64) -> RankReport {
        RankReport {
            rank,
            unbalanced: 0,
            phases: vec![
                ("read".to_string(), read),
                ("total".to_string(), read * 2.0),
            ],
            counters: vec![
                ("bytes_sent".to_string(), bytes),
                ("msgs_sent".to_string(), rank as u64),
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut r = rank_report(5, 0.125, 4096);
        r.unbalanced = 3;
        let back = RankReport::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(RankReport::decode(&[]).is_err());
        assert!(RankReport::decode(&[9, 0, 0, 0]).is_err()); // bad version
        let mut good = rank_report(0, 1.0, 1).encode();
        good.push(0); // trailing byte
        assert!(RankReport::decode(&good).is_err());
        let truncated = &rank_report(0, 1.0, 1).encode()[..10];
        assert!(RankReport::decode(truncated).is_err());
    }

    #[test]
    fn aggregation_math() {
        let a = aggregate(&[1.0, 2.0, 3.0]);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.mean, 2.0);
        assert_eq!(a.max, 3.0);
        assert_eq!(a.imbalance, 1.5);

        let z = aggregate(&[0.0, 0.0]);
        assert_eq!(z.imbalance, 1.0, "all-zero series is 'balanced'");

        let e = aggregate(&[]);
        assert_eq!((e.min, e.mean, e.max, e.imbalance), (0.0, 0.0, 0.0, 1.0));

        let one = aggregate(&[4.0]);
        assert_eq!(
            (one.min, one.mean, one.max, one.imbalance),
            (4.0, 4.0, 4.0, 1.0)
        );
    }

    #[test]
    fn run_report_aggregates_and_orders() {
        let ranks = vec![
            rank_report(2, 3.0, 30),
            rank_report(0, 1.0, 10),
            rank_report(1, 2.0, 20),
        ];
        let rep = RunReport::from_ranks("unit", ranks);
        assert_eq!(rep.n_ranks, 3);
        assert_eq!(rep.ranks[0].rank, 0, "ranks sorted");
        let read = rep.phase_stat("read").unwrap();
        assert_eq!(read.seconds.min, 1.0);
        assert_eq!(read.seconds.mean, 2.0);
        assert_eq!(read.seconds.max, 3.0);
        assert_eq!(read.seconds.imbalance, 1.5);
        assert_eq!(rep.counter_total("bytes_sent"), 60);
        assert_eq!(rep.counter_total("nonexistent"), 0);
        // taxonomy order: read before total
        assert_eq!(rep.phase_stats[0].key, "read");
        assert_eq!(rep.phase_stats.last().unwrap().key, "total");
    }

    #[test]
    fn missing_phase_counts_as_zero() {
        let mut a = rank_report(0, 1.0, 0);
        a.phases.push(("write".to_string(), 0.5));
        let b = rank_report(1, 1.0, 0); // no write phase
        let rep = RunReport::from_ranks("unit", vec![a, b]);
        let w = rep.phase_stat("write").unwrap();
        assert_eq!(w.seconds.min, 0.0);
        assert_eq!(w.seconds.max, 0.5);
        assert_eq!(w.seconds.mean, 0.25);
    }

    #[test]
    fn write_and_reread_file() {
        let dir = std::env::temp_dir().join(format!("msp_telemetry_{}", std::process::id()));
        let rep = RunReport::from_ranks("t", vec![rank_report(0, 1.0, 7)])
            .with_meta("blocks", Json::U64(8));
        let path = rep.write(&dir).unwrap();
        assert!(path.ends_with("t.telemetry.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"version\": 2"));
        assert!(text.contains("\"blocks\": 8"));
        assert!(text.contains("\"bytes_sent\""));
        assert!(text.contains("\"unbalanced\": 0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unbalanced_surfaces_in_totals_and_json() {
        let mut a = rank_report(0, 1.0, 1);
        a.unbalanced = 2;
        let b = rank_report(1, 1.0, 1);
        let rep = RunReport::from_ranks("u", vec![a, b]);
        assert_eq!(rep.unbalanced_total(), 2);
        let text = rep.to_json().pretty();
        assert!(text.contains("\"unbalanced\": 2"));
    }
}
