//! Causal event tracing: per-rank timestamped span and message events,
//! cross-rank gathering, Chrome trace-event export (viewable in
//! Perfetto), and merge-tree **critical-path** analysis.
//!
//! The aggregate statistics of [`RunReport`](crate::RunReport) say how
//! much time each phase took *somewhere*; a trace says **when** each
//! span ran on **which** rank and which message made whom wait. Three
//! layers:
//!
//! * [`TraceSink`] — a cheaply-cloneable per-rank event recorder.
//!   Handles are shared between the pipeline code (span events, via
//!   [`Recorder`](crate::Recorder)) and the comm layer (message
//!   stamps), all timed against one common epoch so timestamps are
//!   comparable across ranks of a shared-memory universe;
//! * [`RankTrace`] — the frozen, wire-encodable event log of one rank.
//!   Simulated runs build these directly with virtual-clock
//!   timestamps, so real and simulated traces share every consumer;
//! * [`RunTrace`] — all ranks gathered at root: send/recv matching on
//!   `(src, dst, tag, seq)` ([`RunTrace::match_messages`]), the Chrome
//!   trace-event document ([`RunTrace::to_chrome_json`]), and the
//!   critical path ([`RunTrace::critical_path`]) — the longest
//!   causally-ordered chain of spans and messages from first read to
//!   final write.
//!
//! Timestamps are nanoseconds from the run epoch (`u64`), rendered as
//! fractional microseconds in the Chrome document (its native unit).

use crate::json::Json;
use crate::wirefmt::{encode_str, Cursor};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema version written into every encoded rank trace and every
/// `.trace.json` document.
pub const TRACE_VERSION: u32 = 1;

/// One completed span occurrence on a rank's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Phase key (`read`, `merge_round[k]`, `glue`, `recover`, …).
    pub key: String,
    pub t0_ns: u64,
    pub t1_ns: u64,
}

impl TraceSpan {
    pub fn dur_ns(&self) -> u64 {
        self.t1_ns.saturating_sub(self.t0_ns)
    }
}

/// One point-to-point message stamp (one side of a transfer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgStamp {
    pub src: u32,
    pub dst: u32,
    pub tag: u32,
    /// 1-based per-directed-link sequence number assigned by the
    /// sender and carried in the message envelope, so the two sides of
    /// a transfer pair exactly even under reordering and loss.
    pub seq: u64,
    pub bytes: u64,
    pub t_ns: u64,
}

/// A receive deadline that expired with no matching message — the
/// detection event the fault layer recovers from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeoutStamp {
    /// The peer the receiver was waiting on.
    pub src: u32,
    pub tag: u32,
    /// When the deadline expired.
    pub t_ns: u64,
    pub waited_ns: u64,
}

/// The frozen event log of one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTrace {
    pub rank: u32,
    pub spans: Vec<TraceSpan>,
    /// Messages this rank handed to the transport.
    pub sends: Vec<MsgStamp>,
    /// Messages this rank consumed from the transport.
    pub recvs: Vec<MsgStamp>,
    pub timeouts: Vec<TimeoutStamp>,
    /// Spans that were still open at finish (closed implicitly) plus
    /// unmatched `end` calls — nonzero means the instrumentation was
    /// unbalanced and durations for those spans are best-effort.
    pub unbalanced: u32,
}

impl RankTrace {
    pub fn new(rank: u32) -> RankTrace {
        RankTrace {
            rank,
            ..Default::default()
        }
    }

    /// Record a completed span with explicit timestamps (virtual-clock
    /// producers; the live path goes through [`TraceSink`]).
    pub fn span(&mut self, key: &str, t0_ns: u64, t1_ns: u64) {
        self.spans.push(TraceSpan {
            key: key.to_string(),
            t0_ns,
            t1_ns,
        });
    }

    pub fn send(&mut self, dst: u32, tag: u32, seq: u64, bytes: u64, t_ns: u64) {
        self.sends.push(MsgStamp {
            src: self.rank,
            dst,
            tag,
            seq,
            bytes,
            t_ns,
        });
    }

    pub fn recv(&mut self, src: u32, tag: u32, seq: u64, bytes: u64, t_ns: u64) {
        self.recvs.push(MsgStamp {
            src,
            dst: self.rank,
            tag,
            seq,
            bytes,
            t_ns,
        });
    }

    /// Summed duration of all spans with this key, in seconds. Under
    /// intra-rank parallelism thread-local spans overlap, so this can
    /// exceed the wall clock; consumers comparing against recorder
    /// phase totals must use [`merged_span_seconds`](Self::merged_span_seconds).
    pub fn span_seconds(&self, key: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.key == key)
            .map(|s| s.dur_ns() as f64 * 1e-9)
            .sum()
    }

    /// Interval-union duration of all spans with this key, in seconds —
    /// the wall-clock footprint of the phase on this rank's timeline.
    /// Equals [`span_seconds`](Self::span_seconds) when occurrences are
    /// disjoint (serial runs); smaller when thread-local spans ran
    /// concurrently. This is the quantity that agrees with the
    /// recorder's phase totals by construction.
    pub fn merged_span_seconds(&self, key: &str) -> f64 {
        let iv: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| s.key == key)
            .map(|s| (s.t0_ns, s.t1_ns))
            .collect();
        union_ns(iv) as f64 * 1e-9
    }

    /// Compact little-endian encoding for shipping to root.
    pub fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(64 + 40 * (self.spans.len() + self.sends.len() + self.recvs.len()));
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.unbalanced.to_le_bytes());
        out.extend_from_slice(&(self.spans.len() as u32).to_le_bytes());
        for s in &self.spans {
            encode_str(&mut out, &s.key);
            out.extend_from_slice(&s.t0_ns.to_le_bytes());
            out.extend_from_slice(&s.t1_ns.to_le_bytes());
        }
        for msgs in [&self.sends, &self.recvs] {
            out.extend_from_slice(&(msgs.len() as u32).to_le_bytes());
            for m in msgs {
                out.extend_from_slice(&m.src.to_le_bytes());
                out.extend_from_slice(&m.dst.to_le_bytes());
                out.extend_from_slice(&m.tag.to_le_bytes());
                out.extend_from_slice(&m.seq.to_le_bytes());
                out.extend_from_slice(&m.bytes.to_le_bytes());
                out.extend_from_slice(&m.t_ns.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.timeouts.len() as u32).to_le_bytes());
        for t in &self.timeouts {
            out.extend_from_slice(&t.src.to_le_bytes());
            out.extend_from_slice(&t.tag.to_le_bytes());
            out.extend_from_slice(&t.t_ns.to_le_bytes());
            out.extend_from_slice(&t.waited_ns.to_le_bytes());
        }
        out
    }

    /// Inverse of [`encode`](RankTrace::encode).
    pub fn decode(buf: &[u8]) -> Result<RankTrace, String> {
        let mut c = Cursor::new(buf, "rank trace");
        let version = c.u32()?;
        if version != TRACE_VERSION {
            return Err(format!(
                "rank trace version {version} != supported {TRACE_VERSION}"
            ));
        }
        let rank = c.u32()?;
        let unbalanced = c.u32()?;
        let n_spans = c.u32()? as usize;
        let mut spans = Vec::with_capacity(n_spans.min(65536));
        for _ in 0..n_spans {
            let key = c.string()?;
            let t0_ns = c.u64()?;
            let t1_ns = c.u64()?;
            spans.push(TraceSpan { key, t0_ns, t1_ns });
        }
        let mut msg_lists = Vec::with_capacity(2);
        for _ in 0..2 {
            let n = c.u32()? as usize;
            let mut msgs = Vec::with_capacity(n.min(65536));
            for _ in 0..n {
                msgs.push(MsgStamp {
                    src: c.u32()?,
                    dst: c.u32()?,
                    tag: c.u32()?,
                    seq: c.u64()?,
                    bytes: c.u64()?,
                    t_ns: c.u64()?,
                });
            }
            msg_lists.push(msgs);
        }
        let recvs = msg_lists.pop().unwrap();
        let sends = msg_lists.pop().unwrap();
        let n_timeouts = c.u32()? as usize;
        let mut timeouts = Vec::with_capacity(n_timeouts.min(65536));
        for _ in 0..n_timeouts {
            timeouts.push(TimeoutStamp {
                src: c.u32()?,
                tag: c.u32()?,
                t_ns: c.u64()?,
                waited_ns: c.u64()?,
            });
        }
        c.expect_end()?;
        Ok(RankTrace {
            rank,
            spans,
            sends,
            recvs,
            timeouts,
            unbalanced,
        })
    }
}

/// Total length of the union of half-open intervals `(a, b)` — the
/// merged wall clock of possibly-overlapping span occurrences.
pub(crate) fn union_ns(mut iv: Vec<(u64, u64)>) -> u64 {
    iv.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in iv {
        match &mut cur {
            Some((_, e)) if a <= *e => *e = (*e).max(b),
            _ => {
                if let Some((s, e)) = cur {
                    total += e - s;
                }
                cur = Some((a, b));
            }
        }
    }
    if let Some((s, e)) = cur {
        total += e - s;
    }
    total
}

#[derive(Debug, Default)]
struct SinkBuf {
    trace: RankTrace,
    /// Open spans: `(key, t0_ns)`, LIFO.
    stack: Vec<(String, u64)>,
}

/// Live per-rank event recorder, cheap to clone: handles share one
/// buffer, so the pipeline (spans) and the comm endpoint (message
/// stamps) write into the same timeline. All methods take `&self`;
/// the buffer is mutex-protected but only ever touched from the
/// owning rank's thread, so the lock is always uncontended.
#[derive(Debug, Clone)]
pub struct TraceSink {
    rank: u32,
    epoch: Instant,
    buf: Arc<Mutex<SinkBuf>>,
}

impl TraceSink {
    /// A sink for `rank` stamping times against `epoch`. Every rank of
    /// a universe must share the same epoch or cross-rank causality is
    /// meaningless.
    pub fn new(rank: u32, epoch: Instant) -> TraceSink {
        TraceSink {
            rank,
            epoch,
            buf: Arc::new(Mutex::new(SinkBuf {
                trace: RankTrace::new(rank),
                stack: Vec::new(),
            })),
        }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Nanoseconds since the shared epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a span; close it with [`end`](TraceSink::end) (LIFO).
    pub fn begin(&self, key: &str) {
        let now = self.now_ns();
        self.buf.lock().unwrap().stack.push((key.to_string(), now));
    }

    /// Close the innermost open span. An `end` with nothing open is
    /// recorded as an unbalanced incident instead of panicking.
    pub fn end(&self) {
        let now = self.now_ns();
        let mut b = self.buf.lock().unwrap();
        match b.stack.pop() {
            Some((key, t0_ns)) => b.trace.spans.push(TraceSpan {
                key,
                t0_ns,
                t1_ns: now,
            }),
            None => b.trace.unbalanced += 1,
        }
    }

    /// Record a completed span with explicit timestamps (recovery
    /// paths whose start predates the decision to record them).
    pub fn span_at(&self, key: &str, t0_ns: u64, t1_ns: u64) {
        self.buf.lock().unwrap().trace.span(key, t0_ns, t1_ns);
    }

    pub fn send(&self, dst: u32, tag: u32, seq: u64, bytes: u64) {
        let now = self.now_ns();
        self.buf
            .lock()
            .unwrap()
            .trace
            .send(dst, tag, seq, bytes, now);
    }

    pub fn recv(&self, src: u32, tag: u32, seq: u64, bytes: u64) {
        let now = self.now_ns();
        self.buf
            .lock()
            .unwrap()
            .trace
            .recv(src, tag, seq, bytes, now);
    }

    pub fn timeout(&self, src: u32, tag: u32, waited_ns: u64) {
        let now = self.now_ns();
        self.buf.lock().unwrap().trace.timeouts.push(TimeoutStamp {
            src,
            tag,
            t_ns: now,
            waited_ns,
        });
    }

    /// Freeze into a [`RankTrace`], draining the shared buffer. Spans
    /// still open are closed at the current time and counted as
    /// unbalanced. Clones of this sink keep working but write into a
    /// fresh, empty log.
    pub fn finish(&self) -> RankTrace {
        let now = self.now_ns();
        let mut b = self.buf.lock().unwrap();
        while let Some((key, t0_ns)) = b.stack.pop() {
            b.trace.unbalanced += 1;
            b.trace.spans.push(TraceSpan {
                key,
                t0_ns,
                t1_ns: now,
            });
        }
        let rank = self.rank;
        std::mem::replace(&mut b.trace, RankTrace::new(rank))
    }
}

/// A matched send→recv pair: one flow arrow in the Chrome document,
/// one causal edge in the critical-path DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEdge {
    pub src: u32,
    pub dst: u32,
    pub tag: u32,
    pub seq: u64,
    pub bytes: u64,
    pub t_send_ns: u64,
    pub t_recv_ns: u64,
}

/// Outcome of pairing every recv with its send on `(src, dst, tag, seq)`.
#[derive(Debug, Clone, Default)]
pub struct MatchReport {
    pub edges: Vec<FlowEdge>,
    /// Sends no one consumed: dropped in flight, or the receiver died.
    pub unmatched_sends: Vec<MsgStamp>,
    /// Recvs with no recorded send — possible only when a rank's trace
    /// was lost; a healthy gather has none.
    pub unmatched_recvs: Vec<MsgStamp>,
}

/// One step of the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    pub rank: u32,
    pub key: String,
    pub dur_ns: u64,
}

/// The longest causally-ordered chain of span time through the run.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Causal order; consecutive steps on the same `(rank, key)` are
    /// already merged.
    pub steps: Vec<PathStep>,
    /// Summed step durations (≤ `wall_ns`: idle gaps are not on the
    /// path).
    pub total_ns: u64,
    /// Last span end − first span start over all ranks.
    pub wall_ns: u64,
}

impl CriticalPath {
    /// Steps sorted by descending duration — the "where to optimize
    /// first" view the reports print.
    pub fn ranked(&self) -> Vec<PathStep> {
        let mut v = self.steps.clone();
        v.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then_with(|| a.key.cmp(&b.key)));
        v
    }

    /// Share of the wall clock a step accounts for, in percent.
    pub fn pct_of_wall(&self, step: &PathStep) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        100.0 * step.dur_ns as f64 / self.wall_ns as f64
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("wall_s", Json::F64(self.wall_ns as f64 * 1e-9)),
            ("path_s", Json::F64(self.total_ns as f64 * 1e-9)),
            (
                "steps",
                Json::Arr(
                    self.ranked()
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("rank", Json::U64(s.rank as u64)),
                                ("span", Json::str(&s.key)),
                                ("seconds", Json::F64(s.dur_ns as f64 * 1e-9)),
                                ("pct_of_wall", Json::F64(self.pct_of_wall(s))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// All ranks' traces gathered at root.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    pub ranks: Vec<RankTrace>,
}

/// A leaf segment of one rank's timeline: the innermost span covering
/// `[a, b)`, after cutting at every span boundary and message stamp.
#[derive(Debug, Clone)]
struct Seg {
    rank_ix: usize,
    key_ix: usize,
    a: u64,
    b: u64,
}

impl RunTrace {
    /// Assemble from gathered rank traces (sorted by rank).
    pub fn from_ranks(mut ranks: Vec<RankTrace>) -> RunTrace {
        ranks.sort_by_key(|r| r.rank);
        RunTrace { ranks }
    }

    /// Pair every recv with its send on `(src, dst, tag, seq)`. Under
    /// injected faults, dropped sends stay in `unmatched_sends`.
    pub fn match_messages(&self) -> MatchReport {
        use std::collections::HashMap;
        let mut sends: HashMap<(u32, u32, u32, u64), &MsgStamp> = HashMap::new();
        for r in &self.ranks {
            for m in &r.sends {
                sends.insert((m.src, m.dst, m.tag, m.seq), m);
            }
        }
        let mut report = MatchReport::default();
        for r in &self.ranks {
            for m in &r.recvs {
                match sends.remove(&(m.src, m.dst, m.tag, m.seq)) {
                    Some(s) => report.edges.push(FlowEdge {
                        src: m.src,
                        dst: m.dst,
                        tag: m.tag,
                        seq: m.seq,
                        bytes: m.bytes,
                        t_send_ns: s.t_ns,
                        t_recv_ns: m.t_ns,
                    }),
                    None => report.unmatched_recvs.push(m.clone()),
                }
            }
        }
        report.unmatched_sends = sends.into_values().cloned().collect();
        report
            .unmatched_sends
            .sort_by_key(|m| (m.t_ns, m.src, m.dst, m.tag, m.seq));
        report
            .edges
            .sort_by_key(|e| (e.t_send_ns, e.src, e.dst, e.seq));
        report
    }

    /// `(first span start, last span end)` over all ranks; `None` when
    /// the trace has no spans.
    pub fn time_bounds(&self) -> Option<(u64, u64)> {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for r in &self.ranks {
            for s in &r.spans {
                lo = lo.min(s.t0_ns);
                hi = hi.max(s.t1_ns);
            }
        }
        (lo != u64::MAX).then_some((lo, hi))
    }

    /// Cut each rank's timeline into leaf segments: breakpoints at
    /// every span boundary and every message stamp, each elementary
    /// interval attributed to the innermost covering span.
    fn segments(&self) -> (Vec<Seg>, Vec<String>) {
        let mut keys: Vec<String> = Vec::new();
        let key_ix = |k: &str, keys: &mut Vec<String>| match keys.iter().position(|x| x == k) {
            Some(i) => i,
            None => {
                keys.push(k.to_string());
                keys.len() - 1
            }
        };
        let mut segs: Vec<Seg> = Vec::new();
        for (rank_ix, r) in self.ranks.iter().enumerate() {
            let mut cuts: Vec<u64> = Vec::new();
            for s in &r.spans {
                cuts.push(s.t0_ns);
                cuts.push(s.t1_ns);
            }
            for m in r.sends.iter().chain(&r.recvs) {
                cuts.push(m.t_ns);
            }
            cuts.sort_unstable();
            cuts.dedup();
            for w in cuts.windows(2) {
                let (a, b) = (w[0], w[1]);
                // innermost covering span: shortest extent wins, then
                // latest start (deterministic under exact ties)
                let cover = r
                    .spans
                    .iter()
                    .filter(|s| s.t0_ns <= a && s.t1_ns >= b)
                    .min_by_key(|s| (s.dur_ns(), std::cmp::Reverse(s.t0_ns)));
                if let Some(s) = cover {
                    segs.push(Seg {
                        rank_ix,
                        key_ix: key_ix(&s.key, &mut keys),
                        a,
                        b,
                    });
                }
            }
        }
        segs.sort_by_key(|s| (s.a, s.rank_ix));
        (segs, keys)
    }

    /// The critical path: model the run as a DAG of leaf segments —
    /// program-order edges between consecutive segments of a rank,
    /// causal edges from the segment ending at each matched send to
    /// the segment starting at its recv — and take the maximum-weight
    /// chain, weighted by segment duration. Idle gaps carry no weight,
    /// so the result is the span time that *had* to be serial: shrink
    /// any step and the wall clock moves.
    ///
    /// Returns `None` for a trace with no spans.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let (lo, hi) = self.time_bounds()?;
        let (segs, keys) = self.segments();
        if segs.is_empty() {
            return None;
        }
        let n_ranks = self.ranks.len();
        // per-rank segment index lists, in time order
        let mut by_rank: Vec<Vec<usize>> = vec![Vec::new(); n_ranks];
        for (i, s) in segs.iter().enumerate() {
            by_rank[s.rank_ix].push(i);
        }
        // message edges: pred[v] holds u for each matched send(u)→recv(v)
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); segs.len()];
        let rank_pos = |rank: u32| self.ranks.iter().position(|r| r.rank == rank);
        for e in self.match_messages().edges {
            let (Some(sr), Some(dr)) = (rank_pos(e.src), rank_pos(e.dst)) else {
                continue;
            };
            // last segment on src ending no later than the send…
            let u = by_rank[sr]
                .iter()
                .copied()
                .take_while(|&i| segs[i].b <= e.t_send_ns)
                .last();
            // …to the first segment on dst starting no earlier than the recv
            let v = by_rank[dr]
                .iter()
                .copied()
                .find(|&i| segs[i].a >= e.t_recv_ns);
            if let (Some(u), Some(v)) = (u, v) {
                preds[v].push(u);
            }
        }
        // DP in global start-time order (valid topological order: every
        // edge u→v has segs[u].b <= segs[v].a and segments are non-empty)
        let mut best: Vec<u64> = vec![0; segs.len()];
        let mut from: Vec<Option<usize>> = vec![None; segs.len()];
        let mut prev_on_rank: Vec<Option<usize>> = vec![None; n_ranks];
        for (i, s) in segs.iter().enumerate() {
            let mut b = 0u64;
            let mut f = None;
            if let Some(p) = prev_on_rank[s.rank_ix] {
                b = best[p];
                f = Some(p);
            }
            for &p in &preds[i] {
                if best[p] > b {
                    b = best[p];
                    f = Some(p);
                }
            }
            best[i] = b + (s.b - s.a);
            from[i] = f;
            prev_on_rank[s.rank_ix] = Some(i);
        }
        let end = (0..segs.len()).max_by_key(|&i| best[i])?;
        let mut chain = Vec::new();
        let mut cur = Some(end);
        while let Some(i) = cur {
            chain.push(i);
            cur = from[i];
        }
        chain.reverse();
        // merge consecutive steps with the same (rank, key)
        let mut steps: Vec<PathStep> = Vec::new();
        for &i in &chain {
            let s = &segs[i];
            let rank = self.ranks[s.rank_ix].rank;
            match steps.last_mut() {
                Some(last) if last.rank == rank && last.key == keys[s.key_ix] => {
                    last.dur_ns += s.b - s.a;
                }
                _ => steps.push(PathStep {
                    rank,
                    key: keys[s.key_ix].clone(),
                    dur_ns: s.b - s.a,
                }),
            }
        }
        Some(CriticalPath {
            total_ns: best[end],
            steps,
            wall_ns: hi - lo,
        })
    }

    /// The Chrome trace-event document: one track (`tid`) per rank,
    /// complete events for spans, flow arrows for matched messages,
    /// instant events for orphan sends and receive timeouts. Open
    /// `chrome://tracing` or <https://ui.perfetto.dev> and load the
    /// file.
    pub fn to_chrome_json(&self, name: &str) -> Json {
        let us = |ns: u64| Json::F64(ns as f64 / 1000.0);
        let mut events: Vec<Json> = Vec::new();
        events.push(Json::obj(vec![
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::U64(0)),
            ("tid", Json::U64(0)),
            (
                "args",
                Json::obj(vec![("name", Json::str(format!("msp:{name}")))]),
            ),
        ]));
        for r in &self.ranks {
            events.push(Json::obj(vec![
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::U64(0)),
                ("tid", Json::U64(r.rank as u64)),
                (
                    "args",
                    Json::obj(vec![("name", Json::str(format!("rank {}", r.rank)))]),
                ),
            ]));
            for s in &r.spans {
                events.push(Json::obj(vec![
                    ("name", Json::str(&s.key)),
                    ("cat", Json::str("phase")),
                    ("ph", Json::str("X")),
                    ("ts", us(s.t0_ns)),
                    ("dur", us(s.dur_ns())),
                    ("pid", Json::U64(0)),
                    ("tid", Json::U64(r.rank as u64)),
                ]));
            }
            for t in &r.timeouts {
                events.push(Json::obj(vec![
                    (
                        "name",
                        Json::str(format!("recv_timeout(from {}, tag {:#x})", t.src, t.tag)),
                    ),
                    ("cat", Json::str("fault")),
                    ("ph", Json::str("i")),
                    ("s", Json::str("t")),
                    ("ts", us(t.t_ns)),
                    ("pid", Json::U64(0)),
                    ("tid", Json::U64(r.rank as u64)),
                    (
                        "args",
                        Json::obj(vec![("waited_ms", Json::F64(t.waited_ns as f64 / 1e6))]),
                    ),
                ]));
            }
        }
        let matched = self.match_messages();
        for (id, e) in matched.edges.iter().enumerate() {
            let args = Json::obj(vec![
                ("tag", Json::U64(e.tag as u64)),
                ("seq", Json::U64(e.seq)),
                ("bytes", Json::U64(e.bytes)),
            ]);
            events.push(Json::obj(vec![
                ("name", Json::str("msg")),
                ("cat", Json::str("msg")),
                ("ph", Json::str("s")),
                ("id", Json::U64(id as u64)),
                ("ts", us(e.t_send_ns)),
                ("pid", Json::U64(0)),
                ("tid", Json::U64(e.src as u64)),
                ("args", args.clone()),
            ]));
            events.push(Json::obj(vec![
                ("name", Json::str("msg")),
                ("cat", Json::str("msg")),
                ("ph", Json::str("f")),
                ("bp", Json::str("e")),
                ("id", Json::U64(id as u64)),
                ("ts", us(e.t_recv_ns)),
                ("pid", Json::U64(0)),
                ("tid", Json::U64(e.dst as u64)),
                ("args", args),
            ]));
        }
        for m in &matched.unmatched_sends {
            events.push(Json::obj(vec![
                (
                    "name",
                    Json::str(format!("orphan_send(to {}, tag {:#x})", m.dst, m.tag)),
                ),
                ("cat", Json::str("fault")),
                ("ph", Json::str("i")),
                ("s", Json::str("t")),
                ("ts", us(m.t_ns)),
                ("pid", Json::U64(0)),
                ("tid", Json::U64(m.src as u64)),
                ("args", Json::obj(vec![("bytes", Json::U64(m.bytes))])),
            ]));
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
            (
                "otherData",
                Json::obj(vec![
                    ("name", Json::str(name)),
                    ("trace_version", Json::U64(TRACE_VERSION as u64)),
                    ("n_ranks", Json::U64(self.ranks.len() as u64)),
                ]),
            ),
        ])
    }

    /// Write `<dir>/<name>.trace.json` (creating `dir` if needed) and
    /// return the path.
    pub fn write(&self, dir: &Path, name: &str) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.trace.json"));
        std::fs::write(&path, self.to_chrome_json(name).pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(src: u32, dst: u32, tag: u32, seq: u64, t_ns: u64) -> MsgStamp {
        MsgStamp {
            src,
            dst,
            tag,
            seq,
            bytes: 8,
            t_ns,
        }
    }

    #[test]
    fn sink_records_spans_and_messages() {
        let sink = TraceSink::new(3, Instant::now());
        sink.begin("read");
        sink.begin("gradient");
        sink.end();
        sink.end();
        sink.send(1, 7, 1, 64);
        sink.recv(2, 7, 1, 32);
        sink.timeout(5, 9, 1000);
        let t = sink.finish();
        assert_eq!(t.rank, 3);
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].key, "gradient", "inner span completes first");
        assert_eq!(t.spans[1].key, "read");
        assert!(t.spans[1].t0_ns <= t.spans[0].t0_ns);
        assert!(t.spans[1].t1_ns >= t.spans[0].t1_ns);
        assert_eq!(t.sends.len(), 1);
        assert_eq!((t.sends[0].src, t.sends[0].dst), (3, 1));
        assert_eq!((t.recvs[0].src, t.recvs[0].dst), (2, 3));
        assert_eq!(t.timeouts.len(), 1);
        assert_eq!(t.unbalanced, 0);
        // finish drained the buffer
        assert_eq!(sink.finish().spans.len(), 0);
    }

    #[test]
    fn sink_flags_unbalanced_instead_of_panicking() {
        let sink = TraceSink::new(0, Instant::now());
        sink.end(); // nothing open
        sink.begin("read"); // never closed
        let t = sink.finish();
        assert_eq!(t.unbalanced, 2);
        assert_eq!(t.spans.len(), 1, "open span closed at finish");
    }

    #[test]
    fn clones_share_the_buffer() {
        let a = TraceSink::new(1, Instant::now());
        let b = a.clone();
        a.begin("read");
        b.send(0, 5, 1, 10);
        a.end();
        let t = b.finish();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.sends.len(), 1);
    }

    #[test]
    fn merged_span_seconds_unions_concurrent_spans() {
        let mut t = RankTrace::new(0);
        // two concurrent thread-local gradient spans + one disjoint one
        t.span("gradient", 0, 100);
        t.span("gradient", 50, 150);
        t.span("gradient", 200, 250);
        t.span("trace", 300, 400);
        // raw sum counts the [50,100] overlap twice; the union is
        // [0,150] ∪ [200,250] = 200 ns
        assert!((t.span_seconds("gradient") - 250e-9).abs() < 1e-15);
        assert!((t.merged_span_seconds("gradient") - 200e-9).abs() < 1e-15);
        // disjoint phases are unaffected
        assert!((t.merged_span_seconds("trace") - t.span_seconds("trace")).abs() < 1e-15);
        assert_eq!(t.merged_span_seconds("missing"), 0.0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut t = RankTrace::new(5);
        t.span("read", 10, 250);
        t.span("merge_round[0]", 300, 900);
        t.send(2, 0x100007, 3, 4096, 350);
        t.recv(1, 0x100003, 1, 2048, 500);
        t.timeouts.push(TimeoutStamp {
            src: 7,
            tag: 9,
            t_ns: 800,
            waited_ns: 250,
        });
        t.unbalanced = 1;
        let back = RankTrace::decode(&t.encode()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(RankTrace::decode(&[]).is_err());
        assert!(RankTrace::decode(&[9, 9, 0, 0]).is_err()); // bad version
        let mut good = RankTrace::new(0).encode();
        good.push(0);
        assert!(RankTrace::decode(&good).is_err(), "trailing byte");
        let t = {
            let mut t = RankTrace::new(0);
            t.span("read", 0, 10);
            t
        };
        assert!(RankTrace::decode(&t.encode()[..12]).is_err(), "truncated");
    }

    #[test]
    fn message_matching_pairs_and_orphans() {
        let mut r0 = RankTrace::new(0);
        let mut r1 = RankTrace::new(1);
        r0.send(1, 7, 1, 100, 10);
        r0.send(1, 7, 2, 100, 20); // dropped in flight: no recv
        r0.send(1, 7, 3, 100, 30);
        r1.recv(0, 7, 1, 100, 50);
        r1.recv(0, 7, 3, 100, 60); // seq pairing survives the gap
        let run = RunTrace::from_ranks(vec![r1, r0]);
        assert_eq!(run.ranks[0].rank, 0, "ranks sorted");
        let m = run.match_messages();
        assert_eq!(m.edges.len(), 2);
        assert_eq!(m.edges[0].seq, 1);
        assert_eq!(m.edges[1].seq, 3);
        assert_eq!(m.edges[1].t_send_ns, 30);
        assert_eq!(m.edges[1].t_recv_ns, 60);
        assert_eq!(m.unmatched_sends.len(), 1);
        assert_eq!(m.unmatched_sends[0].seq, 2);
        assert!(m.unmatched_recvs.is_empty());
    }

    /// Hand-constructed scenario with a known longest chain:
    ///
    /// ```text
    /// rank 0: |-- a: 0..100 --| --send@100-->
    /// rank 1: |b: 0..40|           |-- c: 150..400 --|   (recv@150)
    /// ```
    ///
    /// Chains: a→c = 100+250 = 350 beats b→c = 40+250 = 290.
    #[test]
    fn critical_path_hand_constructed() {
        let mut r0 = RankTrace::new(0);
        r0.span("a", 0, 100);
        r0.send(1, 5, 1, 8, 100);
        let mut r1 = RankTrace::new(1);
        r1.span("b", 0, 40);
        r1.span("c", 150, 400);
        r1.recv(0, 5, 1, 8, 150);
        let run = RunTrace::from_ranks(vec![r0, r1]);
        let cp = run.critical_path().expect("path exists");
        assert_eq!(cp.wall_ns, 400);
        assert_eq!(cp.total_ns, 350);
        assert_eq!(
            cp.steps,
            vec![
                PathStep {
                    rank: 0,
                    key: "a".into(),
                    dur_ns: 100
                },
                PathStep {
                    rank: 1,
                    key: "c".into(),
                    dur_ns: 250
                },
            ]
        );
        let ranked = cp.ranked();
        assert_eq!(ranked[0].key, "c", "ranked view sorts by duration");
        assert!((cp.pct_of_wall(&ranked[0]) - 62.5).abs() < 1e-9);
    }

    #[test]
    fn critical_path_prefers_slow_rank_without_messages() {
        // No causal edges: the path is simply the slowest rank's spans.
        let mut r0 = RankTrace::new(0);
        r0.span("work", 0, 100);
        let mut r1 = RankTrace::new(1);
        r1.span("work", 0, 900);
        let cp = RunTrace::from_ranks(vec![r0, r1]).critical_path().unwrap();
        assert_eq!(cp.total_ns, 900);
        assert_eq!(cp.steps.len(), 1);
        assert_eq!(cp.steps[0].rank, 1);
    }

    #[test]
    fn critical_path_merges_nested_spans_to_innermost() {
        // total [0,100] wraps glue [20,80]: leaf attribution splits the
        // timeline into total/glue/total and merging keeps three steps.
        let mut r0 = RankTrace::new(0);
        r0.span("total", 0, 100);
        r0.span("glue", 20, 80);
        let cp = RunTrace::from_ranks(vec![r0]).critical_path().unwrap();
        assert_eq!(cp.total_ns, 100, "all time on path");
        let keys: Vec<&str> = cp.steps.iter().map(|s| s.key.as_str()).collect();
        assert_eq!(keys, vec!["total", "glue", "total"]);
        assert_eq!(cp.steps[1].dur_ns, 60);
    }

    #[test]
    fn empty_trace_has_no_path() {
        assert!(RunTrace::from_ranks(vec![RankTrace::new(0)])
            .critical_path()
            .is_none());
        assert!(RunTrace::default().time_bounds().is_none());
    }

    #[test]
    fn chrome_document_shape() {
        let mut r0 = RankTrace::new(0);
        r0.span("read", 0, 1000);
        r0.send(1, 7, 1, 64, 500);
        r0.send(1, 7, 2, 64, 600); // orphan
        let mut r1 = RankTrace::new(1);
        r1.span("read", 0, 2000);
        r1.recv(0, 7, 1, 64, 1500);
        r1.timeouts.push(TimeoutStamp {
            src: 0,
            tag: 7,
            t_ns: 1900,
            waited_ns: 300,
        });
        let run = RunTrace::from_ranks(vec![r0, r1]);
        let doc = run.to_chrome_json("unit").pretty();
        let parsed = Json::parse(&doc).expect("self-emitted JSON parses");
        let Json::Obj(top) = &parsed else {
            panic!("top level is an object")
        };
        let events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .unwrap();
        let Json::Arr(events) = events else {
            panic!("traceEvents is an array")
        };
        let phase_of = |e: &Json| match e {
            Json::Obj(o) => o
                .iter()
                .find(|(k, _)| k == "ph")
                .and_then(|(_, v)| match v {
                    Json::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .unwrap(),
            _ => panic!("event is an object"),
        };
        let count = |ph: &str| events.iter().filter(|e| phase_of(e) == ph).count();
        assert_eq!(count("X"), 2, "two spans");
        assert_eq!(count("s"), 1, "one flow start");
        assert_eq!(count("f"), 1, "one flow finish");
        assert_eq!(count("i"), 2, "orphan send + timeout instants");
        assert_eq!(count("M"), 3, "process + 2 thread names");
        // flow start/finish ids pair up
        let ids: Vec<&Json> = events
            .iter()
            .filter(|e| {
                let p = phase_of(e);
                p == "s" || p == "f"
            })
            .collect();
        let id_of = |e: &Json| match e {
            Json::Obj(o) => o
                .iter()
                .find(|(k, _)| k == "id")
                .map(|(_, v)| v.clone())
                .unwrap(),
            _ => unreachable!(),
        };
        assert_eq!(id_of(ids[0]), id_of(ids[1]));
    }

    #[test]
    fn write_and_reread_file() {
        let dir = std::env::temp_dir().join(format!("msp_trace_{}", std::process::id()));
        let mut r0 = RankTrace::new(0);
        r0.span("read", 0, 10);
        let path = RunTrace::from_ranks(vec![r0]).write(&dir, "t").unwrap();
        assert!(path.ends_with("t.trace.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unmatched_recv_is_reported() {
        let mut r1 = RankTrace::new(1);
        r1.recvs.push(stamp(0, 1, 7, 1, 50));
        let m = RunTrace::from_ranks(vec![r1]).match_messages();
        assert!(m.edges.is_empty());
        assert_eq!(m.unmatched_recvs.len(), 1);
    }
}
