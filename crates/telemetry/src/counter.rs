//! Monotonically-accumulating counters.
//!
//! The fixed set mirrors what the paper's evaluation reasons about:
//! local-stage work (cells paired, critical cells, arcs traced),
//! simplification work (cancellations), and merge-stage communication
//! (nodes/arcs shipped, serialized payload bytes, and raw transport
//! bytes/messages as counted by the comm layer) — plus the
//! fault-tolerance taxonomy (checkpoint volume, detection retries,
//! replayed rounds, recovery wall time, injected crashes, and blocks
//! absorbed in degraded mode) so recovery cost is first-class in every
//! run report.

/// One counter of the fixed taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Cells paired by the discrete gradient (both ends of each vector).
    CellsPaired,
    /// Critical cells found (= nodes of the block complexes).
    CriticalCells,
    /// Arcs produced by V-path tracing.
    ArcsTraced,
    /// Cancellations performed by all simplification passes.
    Cancellations,
    /// Live nodes serialized into merge messages.
    NodesShipped,
    /// Live arcs serialized into merge messages.
    ArcsShipped,
    /// Serialized wire-payload bytes shipped during merge rounds
    /// (application-level; excludes collective/control traffic).
    ShipBytes,
    /// Bytes handed to the transport by this rank (all messages).
    BytesSent,
    /// Bytes delivered by the transport to this rank.
    BytesRecv,
    /// Messages sent by this rank.
    MsgsSent,
    /// Messages received by this rank.
    MsgsRecv,
    /// Serialized checkpoint bytes written to stable storage.
    CheckpointBytes,
    /// Receive deadlines that expired and fell back to recovery.
    Retries,
    /// Merge rounds (re-)executed from checkpointed state.
    RoundsReplayed,
    /// Milliseconds spent detecting dead peers and recovering state.
    RecoveryMs,
    /// Injected rank crashes this rank suffered.
    Crashes,
    /// Blocks absorbed (dropped) by a surviving root in degraded mode.
    BlocksAbsorbed,
    /// Output complexes run through the invariant checker (`--check`).
    ChecksRun,
    /// Structural invariant violations (integrity, index steps, geometry
    /// endpoints) found by the checker.
    CheckStructural,
    /// Euler-characteristic violations found by the checker.
    CheckEuler,
    /// Boundary-flag / boundary-preservation violations found by the
    /// checker.
    CheckBoundary,
    /// Invalid-V-path violations (arc geometry not a gradient path)
    /// found by the checker.
    CheckVpath,
    /// Segmentation invariant violations (malformed label tables, labels
    /// that change along a V-path, representatives that are not live
    /// critical cells) found by the checker.
    CheckSegment,
    /// Forward entries recorded for cancelled extrema (`--segment`).
    SegForwards,
    /// Pointer-jump rounds run to reach the segmentation fixed point.
    SegRounds,
    /// Bytes exchanged by the segmentation resolution protocol (pair
    /// routing, jump queries/replies, table resolution).
    SegBoundaryBytes,
    /// Representative rewrites: pointer advances during jumping plus
    /// extremum-table entries that changed in the final resolution.
    SegRelabels,
    /// Cancellation records written into the `.msh` hierarchy artifact
    /// (`--hierarchy`), summed over orderings.
    HierarchyRecords,
    /// Hierarchy replay-conformance violations found by the checker:
    /// `materialize(t)` differing from a direct `simplify(t)` run.
    CheckHierarchy,
    /// Queries answered by `msc serve` (all classes).
    ServeQueries,
    /// Serve-cache hits (answer reused from the LRU materialization
    /// cache).
    ServeHits,
    /// Serve-cache misses (a materialization had to run).
    ServeMisses,
    /// Requests that piggybacked on an identical in-flight
    /// materialization instead of recomputing or waiting on the cache.
    ServeCoalesced,
    /// Malformed or unanswerable serve requests.
    ServeErrors,
    /// Refined cells assigned by the gradient kernel (the denominator of
    /// the `grad_cells_per_s` throughput in bench reports).
    KernelCells,
    /// Pooled kernel scratch buffers reused without a fresh allocation.
    ScratchReuse,
    /// Pooled kernel scratch buffers that had to be freshly allocated
    /// (pool misses — near zero in steady state).
    KernelAllocs,
    /// Estimated cost of the blocks assigned to this rank (feature-
    /// weight integral for adaptive runs, vertex count for other
    /// irregular modes, block count for uniform block-cyclic runs). The
    /// cross-rank min/mean/max/imbalance aggregation of this counter is
    /// the load-balance report the `balance_sweep` bench reads.
    AssignCost,
}

/// All counters, in report order.
pub const ALL_COUNTERS: [Counter; 38] = [
    Counter::CellsPaired,
    Counter::CriticalCells,
    Counter::ArcsTraced,
    Counter::Cancellations,
    Counter::NodesShipped,
    Counter::ArcsShipped,
    Counter::ShipBytes,
    Counter::BytesSent,
    Counter::BytesRecv,
    Counter::MsgsSent,
    Counter::MsgsRecv,
    Counter::CheckpointBytes,
    Counter::Retries,
    Counter::RoundsReplayed,
    Counter::RecoveryMs,
    Counter::Crashes,
    Counter::BlocksAbsorbed,
    Counter::ChecksRun,
    Counter::CheckStructural,
    Counter::CheckEuler,
    Counter::CheckBoundary,
    Counter::CheckVpath,
    Counter::CheckSegment,
    Counter::SegForwards,
    Counter::SegRounds,
    Counter::SegBoundaryBytes,
    Counter::SegRelabels,
    Counter::HierarchyRecords,
    Counter::CheckHierarchy,
    Counter::ServeQueries,
    Counter::ServeHits,
    Counter::ServeMisses,
    Counter::ServeCoalesced,
    Counter::ServeErrors,
    Counter::KernelCells,
    Counter::ScratchReuse,
    Counter::KernelAllocs,
    Counter::AssignCost,
];

impl Counter {
    pub const COUNT: usize = ALL_COUNTERS.len();

    /// Stable string key used in encoded reports and JSON output.
    pub fn key(self) -> &'static str {
        match self {
            Counter::CellsPaired => "cells_paired",
            Counter::CriticalCells => "critical_cells",
            Counter::ArcsTraced => "arcs_traced",
            Counter::Cancellations => "cancellations",
            Counter::NodesShipped => "nodes_shipped",
            Counter::ArcsShipped => "arcs_shipped",
            Counter::ShipBytes => "ship_bytes",
            Counter::BytesSent => "bytes_sent",
            Counter::BytesRecv => "bytes_recv",
            Counter::MsgsSent => "msgs_sent",
            Counter::MsgsRecv => "msgs_recv",
            Counter::CheckpointBytes => "checkpoint_bytes",
            Counter::Retries => "retries",
            Counter::RoundsReplayed => "rounds_replayed",
            Counter::RecoveryMs => "recovery_ms",
            Counter::Crashes => "crashes",
            Counter::BlocksAbsorbed => "blocks_absorbed",
            Counter::ChecksRun => "checks_run",
            Counter::CheckStructural => "check_structural",
            Counter::CheckEuler => "check_euler",
            Counter::CheckBoundary => "check_boundary",
            Counter::CheckVpath => "check_vpath",
            Counter::CheckSegment => "check_segment",
            Counter::SegForwards => "seg_forwards",
            Counter::SegRounds => "seg_rounds",
            Counter::SegBoundaryBytes => "seg_boundary_bytes",
            Counter::SegRelabels => "seg_relabels",
            Counter::HierarchyRecords => "hierarchy_records",
            Counter::CheckHierarchy => "check_hierarchy",
            Counter::ServeQueries => "serve_queries",
            Counter::ServeHits => "serve_hits",
            Counter::ServeMisses => "serve_misses",
            Counter::ServeCoalesced => "serve_coalesced",
            Counter::ServeErrors => "serve_errors",
            Counter::KernelCells => "kernel_cells",
            Counter::ScratchReuse => "scratch_reuse",
            Counter::KernelAllocs => "kernel_allocs",
            Counter::AssignCost => "assign_cost",
        }
    }

    /// Dense index into a `[u64; Counter::COUNT]` accumulator array.
    pub fn index(self) -> usize {
        ALL_COUNTERS
            .iter()
            .position(|c| *c == self)
            .expect("counter present in ALL_COUNTERS")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_unique_and_indices_dense() {
        let keys: HashSet<&str> = ALL_COUNTERS.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), Counter::COUNT);
        for (i, c) in ALL_COUNTERS.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
