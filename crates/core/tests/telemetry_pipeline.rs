//! Cross-layer accounting check: the comm-layer byte counters
//! (incremented inside `msp_vmpi::comm` on every send/recv) must agree
//! exactly with the pipeline-layer `ship_bytes` counter (summed
//! serialized wire-payload sizes at the merge sends) plus the one known
//! collective — the global min/max all-reduce.
//!
//! With no output file, a run's complete pre-telemetry traffic is:
//!
//! * `allreduce_min_max` = 2 x `allreduce_f64`, each a gather of
//!   `W - 1` 8-byte legs into rank 0 plus a broadcast of `W - 1` 8-byte
//!   legs out of it: `32 * (W - 1)` bytes, `4 * (W - 1)` messages;
//! * one serialized-complex send per non-root merge slot per round.
//!
//! The telemetry exchange itself (integer all-reduce + report gather)
//! runs after the counters are snapshotted and must not appear.

use msp_core::{run_parallel, Input, MergePlan, PipelineParams};
use msp_grid::Dims;
use std::sync::Arc;

#[test]
fn comm_counters_match_wire_payload_sizes() {
    const W: u64 = 4; // ranks == blocks
    let input = Input::Memory(Arc::new(msp_synth::white_noise(Dims::cube(9), 23)));
    let params = PipelineParams {
        plan: MergePlan::rounds(vec![2, 2]), // 4 -> 2 -> 1
        ..Default::default()
    };
    let r = run_parallel(&input, W as u32, W as u32, &params, None).unwrap();
    let tel = &r.telemetry;
    assert_eq!(tel.n_ranks as u64, W);
    assert_eq!(tel.ranks.len() as u64, W);

    // two merge rounds: blocks 1,3 ship in round 0; block 2 in round 1
    let ship_msgs = 3u64;
    let allreduce_bytes = 32 * (W - 1);
    let allreduce_msgs = 4 * (W - 1);

    let ship_bytes = tel.counter_total("ship_bytes");
    assert!(ship_bytes > 0, "merge payloads are never empty");
    assert_eq!(
        tel.counter_total("bytes_sent"),
        ship_bytes + allreduce_bytes,
        "comm bytes must equal wire payloads + the min/max all-reduce"
    );
    assert_eq!(tel.counter_total("msgs_sent"), ship_msgs + allreduce_msgs);

    // conservation: everything sent is received
    assert_eq!(
        tel.counter_total("bytes_sent"),
        tel.counter_total("bytes_recv")
    );
    assert_eq!(
        tel.counter_total("msgs_sent"),
        tel.counter_total("msgs_recv")
    );

    // shipped complexes are non-trivial
    assert!(tel.counter_total("nodes_shipped") > 0);
    assert!(tel.counter_total("arcs_shipped") > 0);

    // per-merge-round spans made it through the gather + aggregation
    for key in ["merge_round[0]", "merge_round[1]"] {
        let s = tel
            .phase_stat(key)
            .unwrap_or_else(|| panic!("{key} present"));
        assert!(s.seconds.min >= 0.0 && s.seconds.max >= s.seconds.min);
        assert!(s.seconds.imbalance >= 1.0 || s.seconds.mean == 0.0);
    }

    // cross-rank aggregates are consistent with the raw per-rank data
    for cs in &tel.counter_stats {
        let per_rank: Vec<u64> = tel.ranks.iter().map(|rk| rk.counter(&cs.key)).collect();
        assert_eq!(
            cs.total,
            per_rank.iter().sum::<u64>(),
            "total of {}",
            cs.key
        );
        assert_eq!(cs.min, *per_rank.iter().min().unwrap());
        assert_eq!(cs.max, *per_rank.iter().max().unwrap());
    }
}

#[test]
fn single_rank_run_has_no_point_to_point_traffic() {
    let input = Input::Memory(Arc::new(msp_synth::white_noise(Dims::cube(8), 7)));
    let r = run_parallel(&input, 1, 1, &PipelineParams::default(), None).unwrap();
    let tel = &r.telemetry;
    // a world of one: the all-reduce and the gather are local no-ops
    assert_eq!(tel.counter_total("bytes_sent"), 0);
    assert_eq!(tel.counter_total("msgs_sent"), 0);
    assert_eq!(tel.counter_total("ship_bytes"), 0);
    // but compute counters still flow
    assert!(tel.counter_total("critical_cells") > 0);
    assert!(tel.counter_total("cells_paired") > 0);
}
