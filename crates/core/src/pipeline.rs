//! The paper's Algorithm 1 on the **threaded backend**: a genuinely
//! parallel run with one OS thread per rank and real message passing.
//!
//! ```text
//! Decompose domain            (§IV-A)
//! Read data blocks            (§IV-B)
//! for all local blocks:
//!     compute discrete gradient (§IV-C)
//!     compute MS complex        (§IV-D)
//!     simplify MS complex       (§IV-E)
//! for each merge round:
//!     merge MS complex blocks   (§IV-F)
//! Write MS complex blocks     (§IV-G)
//! ```
//!
//! Blocks are assigned to ranks round-robin (block-cyclic), so the number
//! of blocks may exceed the number of ranks; the paper's usual
//! configuration is one block per process.
//!
//! ## Fault tolerance (DESIGN.md §9)
//!
//! The bulk-synchronous shape makes every merge-round boundary a
//! consistent cut: all messages of round *k* are matched before anyone
//! enters round *k + 1*. With a [`FaultConfig`] active, each rank saves
//! a [`Checkpoint`] of its living complexes at every cut (and once more
//! before the collective write). An injected crash destroys a rank's
//! in-memory state at the cut; the rank restarts from its own
//! checkpoint, while the roots expecting its merge messages detect the
//! failure by receive deadline and replay the lost round from the dead
//! rank's checkpoint — producing a final complex bit-identical to the
//! fault-free run. When no checkpoint exists, the run degrades instead
//! of dying: the root absorbs the orphaned block and the loss is
//! recorded in telemetry (`blocks_absorbed`).

use crate::plan::MergePlan;
use crate::sched::{feature_weights, Assignment, DecompMode, MergeSchedule};
use bytes::Bytes;
use msp_complex::glue::glue_all;
use msp_complex::{
    complex_from_gradient_mt, simplify_forwarding, simplify_with, wire, CancelOrder, MsComplex,
    SimplifyParams,
};
use msp_fault::checkpoint::CheckpointError;
use msp_fault::{Checkpoint, CheckpointStore, FaultPlan};
use msp_grid::par::{available_threads, par_map, par_map_mut};
use msp_grid::rawio::{read_block, read_raw, VolumeDType};
use msp_grid::{Decomposition, Dims, ScalarField};
use msp_hierarchy::{wire as hwire, ReplayParams, SlotHierarchy};
use msp_morse::{active_kernel, assign_gradient_kernel, TraceLimits};
use msp_segment::{
    label_block, owner_rank, wire as segwire, BlockSegmentation, ForwardMap, DRAIN_ADDR,
};
use msp_telemetry::{
    progress_interval_from_env, Counter, Heartbeat, Json, Phase, ProgressPhase, ProgressState,
    RankReport, RankTrace, Recorder, RunReport, RunTrace, TraceSink,
};
use msp_vmpi::comm::{CommError, Inject};
use msp_vmpi::fileio::{collective_write_blocks_keyed, FooterEntry};
use msp_vmpi::pairmsg::{exchange_pairs, exchange_u64s};
use msp_vmpi::{Rank, Universe};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tags of the end-of-run telemetry exchange. They live above the file-IO
/// range (9001..) and below no one: nothing else speaks after the write
/// stage.
const TAG_TELEMETRY_GATHER: u32 = 9100;
const TAG_TELEMETRY_SHIP: u32 = 9110;
const TAG_TRACE_GATHER: u32 = 9120;

/// Tags of the segmentation resolution protocol (`--segment`). They live
/// in their own high namespace, far above the merge tags (`round << 20 |
/// slot`) and below the barrier tag (`0x7FF0_0000`). Per-round tags are
/// `base | round`, so no two rounds ever share a tag.
const TAG_SEG_ROUTE: u32 = 0x4000_0000; // | merge round (forward flush)
const TAG_SEG_ROUTE_FINAL: u32 = 0x40F0_0000; // pre-resolve flush
const TAG_SEG_QUERY: u32 = 0x4100_0000; // | jump round
const TAG_SEG_REPLY: u32 = 0x4200_0000; // | jump round
const TAG_SEG_FIXED: u32 = 0x4300_0000; // | jump round << 1 (allreduce pair)
const TAG_SEG_TABLE_Q: u32 = 0x4400_0000;
const TAG_SEG_TABLE_R: u32 = 0x4500_0000;

/// Tag of the hierarchy region-size broadcast (`--hierarchy`): one
/// all-to-all after segmentation resolution, in the same high namespace.
const TAG_HIER_SIZES: u32 = 0x4600_0000;

/// Fault-tolerance configuration of a run.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Faults to inject (crashes at the pipeline layer; message
    /// drops/delays at the comm layer). `None` injects nothing.
    pub plan: Option<FaultPlan>,
    /// Checkpoint every rank's state at each merge-round boundary and
    /// before the write, enabling exact recovery.
    pub checkpoint: bool,
    /// How long a root waits for a group member's merge message before
    /// declaring it dead and recovering. Only applied while a fault
    /// config is active.
    pub deadline: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            plan: None,
            checkpoint: false,
            deadline: Duration::from_secs(5),
        }
    }
}

impl FaultConfig {
    /// Inject `plan` with checkpointing on — the standard resilient
    /// configuration.
    pub fn with_plan(plan: FaultPlan) -> Self {
        FaultConfig {
            plan: Some(plan),
            checkpoint: true,
            ..Default::default()
        }
    }

    /// Is any fault machinery (injection, checkpointing, deadlines)
    /// engaged?
    pub fn active(&self) -> bool {
        self.checkpoint || self.plan.is_some()
    }

    fn should_crash(&self, rank: u32, round: u32) -> bool {
        self.plan
            .as_ref()
            .is_some_and(|p| p.should_crash(rank as usize, round))
    }
}

/// A pipeline failure with enough context to know which stage and peer
/// was involved. Irregularities that used to abort the whole process now
/// surface here.
#[derive(Debug)]
pub enum PipelineError {
    /// Invalid run configuration (rank/block counts, merge plan).
    Config(String),
    /// A file operation failed (block read, collective write).
    Io {
        context: String,
        source: std::io::Error,
    },
    /// A communication primitive failed outside the recoverable merge
    /// path (collectives, barriers, telemetry exchange).
    Comm { context: String, source: CommError },
    /// A merge payload failed wire decoding.
    Wire {
        context: String,
        source: wire::WireError,
    },
    /// A checkpoint failed to decode during recovery.
    Checkpoint {
        context: String,
        source: CheckpointError,
    },
    /// A complex that must exist at this stage is gone and no fault
    /// config explains the loss.
    MissingComplex { slot: u32, context: &'static str },
    /// A glue stage rejected its inputs (dead or mismatched incoming
    /// complexes).
    Glue {
        context: String,
        source: msp_complex::GlueError,
    },
    /// A simplification pass rejected its input (NaN threshold or
    /// non-finite node values).
    Simplify {
        context: String,
        source: msp_complex::SimplifyError,
    },
    /// The end-of-run telemetry exchange produced garbage.
    Telemetry(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Config(msg) => write!(f, "invalid pipeline config: {msg}"),
            PipelineError::Io { context, source } => write!(f, "{context}: {source}"),
            PipelineError::Comm { context, source } => write!(f, "{context}: {source}"),
            PipelineError::Wire { context, source } => write!(f, "{context}: {source}"),
            PipelineError::Checkpoint { context, source } => write!(f, "{context}: {source}"),
            PipelineError::MissingComplex { slot, context } => {
                write!(f, "complex for slot {slot} missing at {context}")
            }
            PipelineError::Glue { context, source } => write!(f, "{context}: {source}"),
            PipelineError::Simplify { context, source } => write!(f, "{context}: {source}"),
            PipelineError::Telemetry(msg) => write!(f, "telemetry exchange: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Io { source, .. } => Some(source),
            PipelineError::Comm { source, .. } => Some(source),
            PipelineError::Wire { source, .. } => Some(source),
            PipelineError::Checkpoint { source, .. } => Some(source),
            PipelineError::Glue { source, .. } => Some(source),
            PipelineError::Simplify { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn comm_err(context: impl Into<String>) -> impl FnOnce(CommError) -> PipelineError {
    let context = context.into();
    move |source| PipelineError::Comm { context, source }
}

/// Pipeline configuration shared by all ranks.
#[derive(Debug, Clone)]
pub struct PipelineParams {
    /// Persistence threshold as a fraction of the global value range.
    pub persistence_frac: f32,
    pub plan: MergePlan,
    /// How the domain is decomposed into blocks (DESIGN.md §14). Uniform
    /// bisection keeps the historical block-cyclic assignment and fixed
    /// radix-tree schedule; irregular modes (adaptive, random trees)
    /// switch to LPT cost-balanced assignment and a greedy contraction
    /// of the block neighbor graph. Outputs are a pure function of
    /// `(decomposition, plan, threshold)` in every mode.
    pub decomp: DecompMode,
    pub trace_limits: TraceLimits,
    /// Valence guard forwarded to [`SimplifyParams`].
    pub max_new_arcs: Option<u64>,
    /// Fault injection + recovery configuration (inactive by default).
    pub fault: FaultConfig,
    /// Record a causal event trace (per-rank spans + message stamps,
    /// gathered at rank 0 into [`RunResult::trace`]). Off by default:
    /// the tracer costs a few stamps per message.
    pub trace: bool,
    /// Intra-rank threads for the local stage (read scan, gradient +
    /// trace, simplify). `None` uses the machine's available
    /// parallelism; `Some(1)` is the exact serial code path. Output is
    /// bit-identical for every value.
    pub threads: Option<usize>,
    /// Run the oracle invariant checker (crate `msp-oracle`) over every
    /// output complex after the write stage. Violations are counted in
    /// telemetry (`checks_run`, `check_structural`, `check_euler`,
    /// `check_boundary`, `check_vpath`) and described on stderr; they
    /// never abort the run (a rank returning early from inside the
    /// collective section would deadlock its peers). `MSP_CHECK=1` in
    /// the environment forces this on.
    pub check: bool,
    /// Compute the full Morse-Smale segmentation: per-vertex descending
    /// (minimum-basin) and per-voxel ascending (maximum-mountain) labels,
    /// resolved across ranks by distributed path compression (DESIGN.md
    /// §11). Adds `<out>.seg` next to the output file when one is
    /// written.
    pub segment: bool,
    /// Record the persistence hierarchy of every output complex: the
    /// full ordered cancellation sequence to persistence ∞, replayable
    /// to any threshold by `msp-hierarchy` (DESIGN.md §12). Adds
    /// `<out>.msh` next to the output file when one is written. The
    /// count (manifold-size) ordering is recorded only when
    /// [`PipelineParams::segment`] is also on (region sizes come from
    /// the label tables).
    pub hierarchy: bool,
    /// Emit a progress heartbeat (phase, ranks done, bytes moved) as a
    /// JSON line on stderr every this-many seconds — the live surface
    /// for long paper-scale runs. `None` falls back to the
    /// `MSP_PROGRESS` environment variable (seconds; unset = off).
    pub progress: Option<f64>,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            persistence_frac: 0.01,
            plan: MergePlan::none(),
            decomp: DecompMode::Uniform,
            trace_limits: TraceLimits::default(),
            // valence guard: skip cancellations that would fan out into
            // more than this many replacement arcs (degenerate lattices)
            max_new_arcs: Some(4096),
            fault: FaultConfig::default(),
            trace: false,
            threads: None,
            check: false,
            segment: false,
            hierarchy: false,
            progress: None,
        }
    }
}

/// Where the scalar data comes from.
pub enum Input {
    /// In-memory field: every rank extracts its blocks directly (stands
    /// in for an already-staged dataset).
    Memory(std::sync::Arc<ScalarField>),
    /// Raw volume file read through per-block subarray views (§IV-B).
    File {
        path: PathBuf,
        dims: Dims,
        dtype: VolumeDType,
    },
}

impl Input {
    pub fn dims(&self) -> Dims {
        match self {
            Input::Memory(f) => f.dims(),
            Input::File { dims, .. } => *dims,
        }
    }
}

/// Result of a parallel run.
pub struct RunResult {
    /// Aggregated telemetry: per-rank phase timings and counters plus
    /// cross-rank min/mean/max/imbalance statistics (gathered at rank 0).
    pub telemetry: RunReport,
    /// Output-slot complexes in ascending slot order.
    pub outputs: Vec<MsComplex>,
    /// Footer of the output file, when one was written.
    pub footer: Option<Vec<FooterEntry>>,
    /// Total serialized size of all output blocks.
    pub output_bytes: u64,
    /// The absolute persistence threshold that was applied.
    pub threshold: f32,
    /// The gathered causal event trace when [`PipelineParams::trace`]
    /// was on (write it with [`RunTrace::write`], analyze it with
    /// [`RunTrace::critical_path`]).
    pub trace: Option<RunTrace>,
    /// Resolved block segmentations in ascending block order (empty
    /// unless [`PipelineParams::segment`] was on).
    pub segmentation: Vec<BlockSegmentation>,
    /// Footer of the `<out>.seg` file, when one was written.
    pub seg_footer: Option<Vec<FooterEntry>>,
    /// Recorded cancellation hierarchies, one per output slot in
    /// ascending slot order (empty unless [`PipelineParams::hierarchy`]
    /// was on).
    pub hierarchies: Vec<SlotHierarchy>,
    /// Footer of the `<out>.msh` file, when one was written.
    pub msh_footer: Option<Vec<FooterEntry>>,
}

/// Path of the labeled-volume file written next to the complex output.
pub fn seg_output_path(output: &Path) -> PathBuf {
    let mut s = output.as_os_str().to_os_string();
    s.push(".seg");
    PathBuf::from(s)
}

/// Path of the hierarchy artifact written next to the complex output.
pub fn msh_output_path(output: &Path) -> PathBuf {
    let mut s = output.as_os_str().to_os_string();
    s.push(".msh");
    PathBuf::from(s)
}

/// Parse a persistence value from the command line: a finite,
/// non-negative fraction of the global value range. One shared helper
/// so every entry point (`msc compute`, `msc serve`, bench binaries)
/// rejects NaN and negative inputs identically instead of silently
/// simplifying with them.
pub fn parse_persistence(s: &str) -> Result<f32, String> {
    let v: f32 = s
        .trim()
        .parse()
        .map_err(|_| format!("bad persistence {s:?}: not a number"))?;
    check_persistence(v).map_err(|e| format!("bad persistence {s:?}: {e}"))
}

/// Validate an already-numeric persistence/threshold value; the
/// non-string half of [`parse_persistence`], shared with inputs that
/// arrive as numbers (serve-protocol thresholds, env overrides).
pub fn check_persistence(v: f32) -> Result<f32, String> {
    if v.is_nan() {
        return Err("NaN".to_string());
    }
    if !v.is_finite() {
        return Err("not finite".to_string());
    }
    if v < 0.0 {
        return Err("negative".to_string());
    }
    Ok(v)
}

/// Execute the full pipeline on `n_ranks` threads over `n_blocks` blocks.
pub fn run_parallel(
    input: &Input,
    n_ranks: u32,
    n_blocks: u32,
    params: &PipelineParams,
    output_path: Option<&Path>,
) -> Result<RunResult, PipelineError> {
    if n_ranks < 1 || n_blocks < n_ranks {
        return Err(PipelineError::Config(format!(
            "need >= 1 block per rank (got {n_blocks} blocks on {n_ranks} ranks)"
        )));
    }
    let red = params.plan.reduction();
    if params.decomp.is_uniform() && !n_blocks.is_multiple_of(red) {
        return Err(PipelineError::Config(format!(
            "plan reduction {red} must divide the block count {n_blocks}"
        )));
    }
    let dims = input.dims();
    // Build the decomposition and, for irregular modes, the per-block
    // cost estimates that drive the LPT assignment. The adaptive
    // splitter needs the whole field once, up front — for file inputs
    // that is one extra full read by the driver before any rank starts.
    let (decomp, costs): (Decomposition, Option<Vec<u64>>) = match params.decomp {
        DecompMode::Uniform => (Decomposition::bisect(dims, n_blocks), None),
        DecompMode::Adaptive => {
            let weights = match input {
                Input::Memory(f) => feature_weights(f),
                Input::File { path, dims, dtype } => {
                    let f = read_raw(path, *dims, *dtype).map_err(|source| PipelineError::Io {
                        context: format!("reading {} for adaptive splitting", path.display()),
                        source,
                    })?;
                    feature_weights(&f)
                }
            };
            let d = Decomposition::adaptive(dims, n_blocks, &weights);
            let c = d.block_costs(&weights);
            (d, Some(c))
        }
        DecompMode::RandomTree { seed } => {
            let d = Decomposition::random_tree(dims, n_blocks, seed);
            let c = d.blocks().iter().map(|b| b.n_verts()).collect();
            (d, Some(c))
        }
    };
    let sched = match params.decomp {
        DecompMode::Uniform => MergeSchedule::uniform(&params.plan, n_blocks),
        _ => MergeSchedule::contract(&decomp, &params.plan),
    };
    let assign = match &costs {
        None => Assignment::round_robin(n_blocks, n_ranks),
        Some(c) => Assignment::lpt(c, n_ranks),
    };

    // Stable storage stand-in shared by all ranks; populated only when
    // checkpointing is on.
    let store = CheckpointStore::new();
    let inject: Option<Arc<dyn Inject>> = params
        .fault
        .plan
        .clone()
        .map(|p| Arc::new(p) as Arc<dyn Inject>);

    // One time base for every rank's trace sink, taken before any rank
    // starts, so cross-rank timestamps are causally comparable.
    let epoch = Instant::now();
    // Progress heartbeat for long runs: a background thread prints a
    // JSON line (phase, ranks done, bytes moved) on an interval; ranks
    // update the shared state with relaxed stores, so the hot path pays
    // one atomic per phase transition.
    let heartbeat = params
        .progress
        .or_else(progress_interval_from_env)
        .filter(|&s| s > 0.0 && s.is_finite())
        .map(|secs| {
            Heartbeat::spawn(
                "pipeline",
                n_ranks as usize,
                std::time::Duration::from_secs_f64(secs),
            )
        });
    let progress = heartbeat.as_ref().map(|h| h.state());
    let results = Universe::run_with_inject(n_ranks as usize, inject, |rank| {
        run_rank(
            rank,
            input,
            &decomp,
            &sched,
            &assign,
            costs.as_deref(),
            params,
            output_path,
            &store,
            epoch,
            progress.as_deref(),
        )
    });
    drop(heartbeat);

    let mut telemetry = None;
    let mut slot_outputs: Vec<(u32, MsComplex)> = Vec::new();
    let mut footer = None;
    let mut threshold = 0.0;
    let mut trace = None;
    let mut segmentation: Vec<BlockSegmentation> = Vec::new();
    let mut seg_footer = None;
    let mut slot_hierarchies: Vec<(u32, SlotHierarchy)> = Vec::new();
    let mut msh_footer = None;
    for res in results {
        let (tel, outs, f, th, tr, segs, sf, hiers, hf) = res?;
        if tel.is_some() {
            telemetry = tel; // only rank 0 holds the gathered report
        }
        if tr.is_some() {
            trace = tr; // likewise gathered at rank 0
        }
        slot_outputs.extend(outs);
        if f.is_some() {
            footer = f;
        }
        segmentation.extend(segs);
        if sf.is_some() {
            seg_footer = sf;
        }
        slot_hierarchies.extend(hiers);
        if hf.is_some() {
            msh_footer = hf;
        }
        threshold = th; // identical on every rank (all-reduced)
    }
    segmentation.sort_by_key(|s| s.block_id);
    slot_outputs.sort_by_key(|(slot, _)| *slot);
    slot_hierarchies.sort_by_key(|(slot, _)| *slot);
    let hierarchies: Vec<SlotHierarchy> = slot_hierarchies.into_iter().map(|(_, h)| h).collect();
    let outputs: Vec<MsComplex> = slot_outputs.into_iter().map(|(_, c)| c).collect();
    let output_bytes = outputs
        .iter()
        .map(|c| wire::serialize(c).len() as u64)
        .sum();
    let telemetry = telemetry
        .ok_or_else(|| PipelineError::Telemetry("rank 0 produced no gathered report".into()))?
        .with_meta(
            "dims",
            Json::str(format!("{}x{}x{}", dims.nx, dims.ny, dims.nz)),
        )
        .with_meta("n_blocks", Json::U64(n_blocks as u64))
        .with_meta("decomp", Json::str(params.decomp.to_string()))
        .with_meta(
            "merge_radices",
            Json::Arr(
                params
                    .plan
                    .radices
                    .iter()
                    .map(|&r| Json::U64(r as u64))
                    .collect(),
            ),
        )
        .with_meta(
            "persistence_frac",
            Json::F64(params.persistence_frac as f64),
        )
        .with_meta("threshold", Json::F64(threshold as f64))
        .with_meta("output_bytes", Json::U64(output_bytes));
    // The critical path — the longest causally-ordered chain of span
    // time — rides along in the telemetry report meta.
    let telemetry = match trace.as_ref().and_then(|t| t.critical_path()) {
        Some(cp) => telemetry.with_meta("critical_path", cp.to_json()),
        None => telemetry,
    };
    Ok(RunResult {
        telemetry,
        outputs,
        footer,
        output_bytes,
        threshold,
        trace,
        segmentation,
        seg_footer,
        hierarchies,
        msh_footer,
    })
}

type RankOut = (
    Option<RunReport>,
    Vec<(u32, MsComplex)>,
    Option<Vec<FooterEntry>>,
    f32,
    Option<RunTrace>,
    Vec<BlockSegmentation>,
    Option<Vec<FooterEntry>>,
    Vec<(u32, SlotHierarchy)>,
    Option<Vec<FooterEntry>>,
);

/// Route pending forward pairs to their owner ranks (the hashed
/// [`owner_rank`] map — see msp-segment for why plain `addr % n_ranks`
/// is biased) and absorb the pairs this rank owns. Bucket contents
/// are sorted before they touch the wire, so message bytes are a pure
/// function of the pairs' content. Collective: every rank must call this
/// at the same point, pending entries or not.
fn flush_forwards(
    rank: &Rank,
    rec: &mut Recorder,
    tag: u32,
    pending: &mut Vec<(u64, u64)>,
    owned: &mut ForwardMap,
) -> Result<(), PipelineError> {
    let size = rank.size() as u64;
    let mut buckets: Vec<Vec<(u64, u64)>> = vec![Vec::new(); rank.size()];
    for &(dead, target) in pending.iter() {
        buckets[owner_rank(dead, size) as usize].push((dead, target));
    }
    for b in &mut buckets {
        b.sort_unstable();
    }
    rec.add(Counter::SegForwards, pending.len() as u64);
    pending.clear();
    let (incoming, sent) =
        exchange_pairs(rank, tag, &buckets).map_err(comm_err("routing segmentation forwards"))?;
    rec.add(Counter::SegBoundaryBytes, sent);
    for bucket in incoming {
        for (dead, target) in bucket {
            owned.insert(dead, target);
        }
    }
    Ok(())
}

/// Snapshot every living complex into the checkpoint store at merge
/// cursor `round` and account the serialized volume.
fn save_checkpoint(
    rec: &mut Recorder,
    store: &CheckpointStore,
    rank: u32,
    round: u32,
    threshold: f32,
    complexes: &HashMap<u32, MsComplex>,
) {
    let mut slots: Vec<(u32, MsComplex)> = complexes.iter().map(|(b, c)| (*b, c.clone())).collect();
    slots.sort_by_key(|(b, _)| *b);
    let ck = Checkpoint {
        rank,
        round,
        threshold,
        slots,
    };
    let encoded = ck.encode();
    rec.add(Counter::CheckpointBytes, encoded.len() as u64);
    store.save(rank, round, encoded);
}

/// Restore a rank's own state after an injected crash: reload its
/// checkpoint at `round`, except the slots in `skip` (their recovery now
/// belongs to the roots that were expecting them). Returns false when no
/// checkpoint exists — the degraded path, where the rank's blocks stay
/// lost and its peers absorb them.
fn restore_own_state(
    rec: &mut Recorder,
    store: &CheckpointStore,
    rank: u32,
    round: u32,
    skip: &[u32],
    complexes: &mut HashMap<u32, MsComplex>,
) -> Result<bool, PipelineError> {
    let t0 = Instant::now();
    let recovered = match store.load(rank, round) {
        Some(encoded) => {
            let ck = Checkpoint::decode(&encoded).map_err(|source| PipelineError::Checkpoint {
                context: format!("restoring rank {rank} at round cursor {round}"),
                source,
            })?;
            for (slot, ms) in ck.slots {
                if !skip.contains(&slot) {
                    complexes.insert(slot, ms);
                }
            }
            rec.add(Counter::RoundsReplayed, 1);
            true
        }
        None => false,
    };
    rec.add(Counter::RecoveryMs, t0.elapsed().as_millis() as u64);
    Ok(recovered)
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    rank: &mut Rank,
    input: &Input,
    decomp: &Decomposition,
    sched: &MergeSchedule,
    assign: &Assignment,
    costs: Option<&[u64]>,
    params: &PipelineParams,
    output_path: Option<&Path>,
    store: &CheckpointStore,
    epoch: Instant,
    progress: Option<&ProgressState>,
) -> Result<RankOut, PipelineError> {
    let p = rank.rank() as u32;
    let n_ranks = rank.size() as u32;
    let fault = &params.fault;
    let my_blocks: Vec<u32> = assign.blocks_of(p);
    // Estimated local-stage cost of this rank's blocks. The cross-rank
    // imbalance of this counter is the load-balance figure of merit the
    // `balance_sweep` bench gates on; uniform runs count 1 per block so
    // the same report stays meaningful for block-cyclic layouts.
    let my_cost: u64 = match costs {
        Some(c) => my_blocks.iter().map(|&b| c[b as usize].max(1)).sum(),
        None => my_blocks.len() as u64,
    };
    // One relaxed store per coarse stage keeps the heartbeat honest
    // without touching the hot paths.
    let phase = |ph: ProgressPhase| {
        if let Some(st) = progress {
            st.set_phase(p as usize, ph);
        }
    };
    let mut rec = Recorder::new(p);
    rec.add(Counter::AssignCost, my_cost);
    // Causal tracing: one sink shared by the recorder (span events) and
    // the comm endpoint (message stamps), all against the shared epoch.
    let sink = params.trace.then(|| TraceSink::new(p, epoch));
    if let Some(s) = &sink {
        rec.attach_trace(s.clone());
        rank.attach_tracer(s.clone());
    }
    rec.begin(Phase::Total);

    // Intra-rank thread budget for the local stage. `threads == 1` is
    // the single-threaded code path; larger counts produce bit-identical
    // output (deterministic block/slab merge order, see msp-morse), so
    // the budget is a scheduling hint and gets capped at host
    // parallelism — oversubscribing CPUs buys nothing and pays spawn
    // and slab-merge overhead for it.
    let threads = params
        .threads
        .unwrap_or_else(available_threads)
        .min(available_threads())
        .max(1);

    // ---- read ----
    // The min/max scan is folded into block extraction (one pass over
    // the data instead of a second full sweep); per-block f32 extrema
    // are reduced in block order, which equals the old per-value f64
    // fold exactly because f32→f64 is exact and monotone.
    phase(ProgressPhase::Read);
    rec.begin(Phase::Read);
    let loaded = par_map(threads, &my_blocks, |_, &b| match input {
        Input::Memory(f) => Ok(f.extract_block_minmax(decomp.block(b))),
        Input::File { path, dims, dtype } => {
            let bf = read_block(path, *dims, decomp.block(b), *dtype).map_err(|source| {
                PipelineError::Io {
                    context: format!("reading block {b} from {}", path.display()),
                    source,
                }
            })?;
            let (lo, hi) = bf.min_max();
            Ok((bf, lo, hi))
        }
    });
    let mut fields = HashMap::new();
    let mut local_min = f64::INFINITY;
    let mut local_max = f64::NEG_INFINITY;
    for (i, res) in loaded.into_iter().enumerate() {
        let (bf, lo, hi) = res?;
        local_min = local_min.min(lo as f64);
        local_max = local_max.max(hi as f64);
        fields.insert(my_blocks[i], bf);
    }
    // global range for the persistence threshold
    let (gmin, gmax) = rank
        .allreduce_min_max(100, local_min, local_max)
        .map_err(comm_err("all-reducing the global value range"))?;
    let threshold = params.persistence_frac * (gmax - gmin) as f32;
    rec.end(Phase::Read);

    // ---- compute: gradient assignment, then V-path tracing ----
    // Blocks run sequentially with the whole thread budget spent
    // *inside* each block: z-slab-parallel gradient, chunk-parallel
    // tracing. A block always has enough rows/critical cells to feed
    // every thread (one block per rank is the paper's usual
    // configuration), and keeping phases sequential per block means the
    // Gradient/Trace buckets measure pure phase wall clock — no
    // cross-phase overlap between concurrent block workers to inflate
    // the per-phase attribution on oversubscribed hosts.
    phase(ProgressPhase::Local);
    let mut complexes: HashMap<u32, MsComplex> = HashMap::new();
    // Block segmentations stay put on the rank that computed them (only
    // complexes travel during merges); resolved at SegResolve below.
    let mut segs: HashMap<u32, BlockSegmentation> = HashMap::new();
    let rdims = input.dims().refined();
    for &b in &my_blocks {
        let (grad, kstats) = rec.time(Phase::Gradient, |_| {
            assign_gradient_kernel(&fields[&b], decomp, threads, active_kernel())
        });
        let (ms, bstats) = rec.time(Phase::Trace, |_| {
            complex_from_gradient_mt(&fields[&b], decomp, &grad, params.trace_limits, threads)
        });
        rec.add(Counter::CellsPaired, bstats.cells_paired);
        rec.add(Counter::CriticalCells, bstats.critical_cells);
        rec.add(Counter::ArcsTraced, bstats.arcs);
        rec.add(Counter::KernelCells, kstats.cells);
        rec.add(Counter::ScratchReuse, kstats.scratch_reuse);
        rec.add(Counter::KernelAllocs, kstats.kernel_allocs);
        if params.segment {
            let seg = rec.time(Phase::Segment, |_| {
                label_block(decomp.block(b), &rdims, &grad, threads)
            });
            segs.insert(b, seg);
        }
        complexes.insert(b, ms);
    }
    drop(fields);

    // ---- local simplification ----
    phase(ProgressPhase::Simplify);
    rec.begin(Phase::Simplify);
    let sp = SimplifyParams {
        threshold,
        max_new_arcs: params.max_new_arcs,
        max_parallel_arcs: Some(2),
    };
    // Forward entries of extrema cancelled on this rank, awaiting their
    // routed flush to owner ranks (piggybacked on merge-round ends).
    let mut pending: Vec<(u64, u64)> = Vec::new();
    // The slice of the global forward map this rank owns.
    let mut owned = ForwardMap::new();
    if threads == 1 {
        for (&b, ms) in complexes.iter_mut() {
            let mut fw = params.segment.then(Vec::new);
            let st = simplify_forwarding(ms, sp, fw.as_mut()).map_err(|source| {
                PipelineError::Simplify {
                    context: format!("simplifying block {b}"),
                    source,
                }
            })?;
            rec.add(Counter::Cancellations, st.cancellations);
            ms.compact();
            if let Some(f) = fw {
                pending.extend(f);
            }
        }
    } else {
        // blocks simplify independently; collect in block order so the
        // cancellation counter accumulates deterministically
        let mut work: Vec<(u32, MsComplex)> = complexes.drain().collect();
        work.sort_by_key(|(b, _)| *b);
        let segment = params.segment;
        let results = par_map_mut(threads, &mut work, |_, (b, ms)| {
            let mut fw = segment.then(Vec::new);
            let st = simplify_forwarding(ms, sp, fw.as_mut()).map_err(|source| {
                PipelineError::Simplify {
                    context: format!("simplifying block {b}"),
                    source,
                }
            })?;
            ms.compact();
            Ok((st.cancellations, fw.unwrap_or_default()))
        });
        for r in results {
            let (n, fw) = r?;
            rec.add(Counter::Cancellations, n);
            pending.extend(fw);
        }
        complexes.extend(work);
    }
    rec.end(Phase::Simplify);

    // ---- merge rounds ----
    phase(ProgressPhase::Merge);
    for (r, round) in sched.rounds.iter().enumerate() {
        rank.barrier()
            .map_err(comm_err(format!("barrier entering merge round {r}")))?;
        rec.begin(Phase::MergeRound(r as u16));
        let groups = &round.groups;
        let tag_base = (r as u32) << 20;

        // The barrier above closed round r-1: a consistent cut. Persist
        // it before anything of round r happens.
        if fault.checkpoint {
            save_checkpoint(&mut rec, store, p, r as u32, threshold, &complexes);
        }
        // An injected crash destroys this rank's state at the cut: it
        // will ship nothing this round, and the roots expecting its
        // slots must recover them from the checkpoint just taken.
        let crashed = fault.should_crash(p, r as u32 + 1);
        if crashed {
            rec.add(Counter::Crashes, 1);
            complexes.clear();
        }

        // send phase: every non-root slot this rank owns
        let mut shipped: Vec<u32> = Vec::new();
        for (root, members) in groups {
            for &m in &members[1..] {
                if assign.rank_of(m) != p {
                    continue;
                }
                shipped.push(m);
                if crashed {
                    continue; // "down" for this round: nothing goes out
                }
                let ms = complexes.remove(&m).ok_or(PipelineError::MissingComplex {
                    slot: m,
                    context: "merge send",
                })?;
                rec.add(Counter::NodesShipped, ms.n_live_nodes());
                rec.add(Counter::ArcsShipped, ms.n_live_arcs());
                let payload = wire::serialize(&ms);
                rec.add(Counter::ShipBytes, payload.len() as u64);
                if let Some(st) = progress {
                    st.add_bytes(payload.len() as u64);
                }
                rank.send(assign.rank_of(*root) as usize, tag_base | m, payload)
                    .map_err(comm_err(format!("shipping slot {m} in round {r}")))?;
            }
        }

        // The crashed rank "reboots" from its own checkpoint — except
        // the slots it would have shipped, whose custody passed to the
        // receiving roots. Without a checkpoint its blocks stay lost.
        if crashed {
            let recover_t0 = sink.as_ref().map(|s| s.now_ns());
            restore_own_state(&mut rec, store, p, r as u32, &shipped, &mut complexes)?;
            if let (Some(s), Some(r0)) = (&sink, recover_t0) {
                s.span_at("recover", r0, s.now_ns());
            }
        }

        // receive + glue phase: every root slot this rank owns
        for (root, members) in groups {
            if assign.rank_of(*root) != p {
                continue;
            }
            if !complexes.contains_key(root) {
                // Degraded: the root slot itself was lost to an
                // unrecoverable crash. The whole group is orphaned; its
                // members' messages stay unconsumed.
                rec.add(Counter::BlocksAbsorbed, members.len() as u64);
                continue;
            }
            let mut incoming = Vec::with_capacity(members.len() - 1);
            for &m in &members[1..] {
                let owner = assign.rank_of(m);
                let deadline = fault.active().then_some(fault.deadline);
                match rank.recv_deadline(owner as usize, tag_base | m, deadline) {
                    Ok(payload) => {
                        incoming.push(wire::deserialize(&payload).map_err(|source| {
                            PipelineError::Wire {
                                context: format!("merge payload for slot {m} in round {r}"),
                                source,
                            }
                        })?);
                    }
                    Err(CommError::Timeout { waited, .. }) => {
                        // Dead group member. Promote ourselves to its
                        // recovery agent: replay the lost send from its
                        // round-boundary checkpoint, or absorb the
                        // orphaned block if there is none.
                        let t0 = Instant::now();
                        let recover_t0 = sink.as_ref().map(|s| s.now_ns());
                        rec.add(Counter::Retries, 1);
                        let recovered = match store.load(owner, r as u32) {
                            Some(encoded) => {
                                let ck = Checkpoint::decode(&encoded).map_err(|source| {
                                    PipelineError::Checkpoint {
                                        context: format!(
                                            "recovering slot {m} from rank {owner} at round {r}"
                                        ),
                                        source,
                                    }
                                })?;
                                ck.slot(m).cloned()
                            }
                            None => None,
                        };
                        match recovered {
                            Some(ms) => {
                                rec.add(Counter::RoundsReplayed, 1);
                                incoming.push(ms);
                            }
                            None => rec.add(Counter::BlocksAbsorbed, 1),
                        }
                        rec.add(
                            Counter::RecoveryMs,
                            (waited + t0.elapsed()).as_millis() as u64,
                        );
                        // Replay work happens HERE, so the trace charges
                        // the recovering rank (this root), not the dead
                        // member whose slot was replayed.
                        if let (Some(s), Some(r0)) = (&sink, recover_t0) {
                            s.span_at("recover", r0, s.now_ns());
                        }
                    }
                    Err(e) => {
                        return Err(PipelineError::Comm {
                            context: format!("receiving slot {m} in round {r}"),
                            source: e,
                        })
                    }
                }
            }
            let ms = complexes.get_mut(root).expect("checked above");
            rec.time(Phase::Glue, |_| glue_all(ms, &incoming, decomp))
                .map_err(|source| PipelineError::Glue {
                    context: format!(
                        "gluing {} member(s) into slot {root} in round {r}",
                        incoming.len()
                    ),
                    source,
                })?;
            rec.begin(Phase::Resimplify);
            let mut fw = params.segment.then(Vec::new);
            let st = simplify_forwarding(ms, sp, fw.as_mut()).map_err(|source| {
                PipelineError::Simplify {
                    context: format!("re-simplifying slot {root} after round {r}"),
                    source,
                }
            })?;
            rec.add(Counter::Cancellations, st.cancellations);
            ms.compact();
            if let Some(f) = fw {
                pending.extend(f);
            }
            rec.end(Phase::Resimplify);
        }
        // Piggybacked forward flush: the round's cancellations routed to
        // their owner ranks while everyone is synchronized anyway. Runs
        // on every rank — including one that crashed this round (the
        // thread keeps executing; segmentation state rides outside the
        // checkpoint model, so nothing of it is lost or replayed).
        if params.segment {
            flush_forwards(
                rank,
                &mut rec,
                TAG_SEG_ROUTE | r as u32,
                &mut pending,
                &mut owned,
            )?;
        }
        rec.end(Phase::MergeRound(r as u16));
    }

    // ---- segmentation resolution (DESIGN.md §11) ----
    // Compress every chain of cancelled-extremum forwards to its live
    // root by synchronized pointer jumping, then rewrite each block's
    // extremum tables through the resolved representatives. Global state
    // at every round boundary is a pure function of the forward-pair
    // content (messages sorted, jumps synchronized), so the resolved
    // labels are bit-identical for any rank count, thread count or merge
    // schedule.
    if params.segment {
        phase(ProgressPhase::SegResolve);
        rec.begin(Phase::SegResolve);
        // Flush whatever was not piggybacked on a merge round (all local
        // forwards when the plan has no rounds).
        flush_forwards(
            rank,
            &mut rec,
            TAG_SEG_ROUTE_FINAL,
            &mut pending,
            &mut owned,
        )?;
        let n_ranks_u64 = n_ranks as u64;
        let mut jump_round: u32 = 0;
        loop {
            let t0 = sink.as_ref().map(|s| s.now_ns());
            // Ask each target's owner what it currently forwards to.
            // Queries are sorted + deduplicated per owner.
            let mut qbuckets: Vec<Vec<u64>> = vec![Vec::new(); n_ranks as usize];
            for (_, target) in owned.sorted_entries() {
                if target != DRAIN_ADDR {
                    qbuckets[owner_rank(target, n_ranks_u64) as usize].push(target);
                }
            }
            for qb in &mut qbuckets {
                qb.sort_unstable();
                qb.dedup();
            }
            let (queries, qsent) = exchange_u64s(rank, TAG_SEG_QUERY | jump_round, &qbuckets)
                .map_err(comm_err("exchanging jump queries"))?;
            // Answer from the PRE-round state (replies are built before
            // this rank applies its own updates): only dead addresses
            // get an entry, live ones are absent = already resolved.
            let rbuckets: Vec<Vec<(u64, u64)>> = queries
                .iter()
                .map(|bucket| {
                    bucket
                        .iter()
                        .filter_map(|&a| owned.get(a).map(|t| (a, t)))
                        .collect()
                })
                .collect();
            let (replies, rsent) = exchange_pairs(rank, TAG_SEG_REPLY | jump_round, &rbuckets)
                .map_err(comm_err("exchanging jump replies"))?;
            rec.add(Counter::SegBoundaryBytes, qsent + rsent);
            let lookup: HashMap<u64, u64> = replies.into_iter().flatten().collect();
            let changed = owned.jump_pass(&lookup);
            rec.add(Counter::SegRelabels, changed);
            rec.add(Counter::SegRounds, 1);
            let global_changed = rank
                .allreduce_u64(TAG_SEG_FIXED | (jump_round << 1), changed, |a, b| a + b)
                .map_err(comm_err("all-reducing jump fixed point"))?;
            if let (Some(s), Some(t0)) = (&sink, t0) {
                s.span_at("seg_round", t0, s.now_ns());
            }
            jump_round += 1;
            if global_changed == 0 {
                break;
            }
        }
        // Table resolution: every extremum address in this rank's tables
        // is resolved by its owner against the now-compressed map.
        let mut addrs: Vec<u64> = segs
            .values()
            .flat_map(|s| s.mins.iter().chain(s.maxs.iter()).copied())
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        let mut tbuckets: Vec<Vec<u64>> = vec![Vec::new(); n_ranks as usize];
        for a in addrs {
            tbuckets[owner_rank(a, n_ranks_u64) as usize].push(a);
        }
        let (tqueries, tqsent) = exchange_u64s(rank, TAG_SEG_TABLE_Q, &tbuckets)
            .map_err(comm_err("exchanging table-resolution queries"))?;
        let trbuckets: Vec<Vec<(u64, u64)>> = tqueries
            .iter()
            .map(|bucket| bucket.iter().map(|&a| (a, owned.resolve(a))).collect())
            .collect();
        let (treplies, trsent) = exchange_pairs(rank, TAG_SEG_TABLE_R, &trbuckets)
            .map_err(comm_err("exchanging table-resolution replies"))?;
        rec.add(Counter::SegBoundaryBytes, tqsent + trsent);
        let resolved: HashMap<u64, u64> = treplies.into_iter().flatten().collect();
        let mut block_ids: Vec<u32> = segs.keys().copied().collect();
        block_ids.sort_unstable();
        let mut relabels = 0;
        for b in block_ids {
            let seg = segs.get_mut(&b).expect("own block");
            let rm: Vec<u64> = seg.mins.iter().map(|a| resolved[a]).collect();
            let rx: Vec<u64> = seg.maxs.iter().map(|a| resolved[a]).collect();
            relabels += seg.apply_resolution(&rm, &rx);
        }
        rec.add(Counter::SegRelabels, relabels);
        rec.end(Phase::SegResolve);
    }

    // ---- hierarchy recording (DESIGN.md §12) ----
    // Simplify each output slot once to persistence ∞ with full logging;
    // the recorded cancellation sequences replay to any threshold later
    // (compute once, query many — `msc serve`). Runs after segmentation
    // resolution so the count ordering can key on globally-summed region
    // sizes of the resolved extremum tables.
    let mut my_hier: Vec<(u32, SlotHierarchy)> = Vec::new();
    let mut global_sizes: Option<HashMap<u64, u64>> = None;
    if params.hierarchy {
        phase(ProgressPhase::Hierarchy);
        rec.begin(Phase::Hierarchy);
        if params.segment {
            // Every rank broadcasts its sorted local (extremum, count)
            // tallies and sums what it receives; addition commutes and
            // buckets arrive in rank order, so the global map is
            // identical on every rank for every schedule.
            let local = msp_hierarchy::region_sizes(segs.values());
            let mut pairs: Vec<(u64, u64)> = local.into_iter().collect();
            pairs.sort_unstable();
            let buckets: Vec<Vec<(u64, u64)>> = vec![pairs; n_ranks as usize];
            let (incoming, sent) = exchange_pairs(rank, TAG_HIER_SIZES, &buckets)
                .map_err(comm_err("broadcasting hierarchy region sizes"))?;
            rec.add(Counter::SegBoundaryBytes, sent);
            let mut sizes: HashMap<u64, u64> = HashMap::new();
            for bucket in incoming {
                for (addr, n) in bucket {
                    *sizes.entry(addr).or_insert(0) += n;
                }
            }
            global_sizes = Some(sizes);
        }
        let rp = ReplayParams {
            max_new_arcs: params.max_new_arcs,
            max_parallel_arcs: Some(2),
        };
        for &s in sched.outputs.iter().filter(|s| assign.rank_of(**s) == p) {
            // Degraded mode: a slot lost to an unrecoverable crash has
            // no hierarchy; the write stage accounts the loss.
            let Some(ms) = complexes.get(&s) else {
                continue;
            };
            let h = msp_hierarchy::record(ms, rp, global_sizes.clone()).map_err(|source| {
                PipelineError::Simplify {
                    context: format!("recording hierarchy for slot {s}"),
                    source,
                }
            })?;
            let n_records = h.difference.len() + h.count.as_ref().map_or(0, |c| c.len());
            rec.add(Counter::HierarchyRecords, n_records as u64);
            my_hier.push((s, h));
        }
        my_hier.sort_by_key(|(s, _)| *s);
        rec.end(Phase::Hierarchy);
    }

    // ---- pre-write cut ----
    // One more consistent cut after the last merge round protects the
    // fully-merged state against a crash before the collective write.
    if fault.active() {
        let cursor = sched.rounds.len() as u32;
        rank.barrier()
            .map_err(comm_err("barrier at the pre-write cut"))?;
        if fault.checkpoint {
            save_checkpoint(&mut rec, store, p, cursor, threshold, &complexes);
        }
        if fault.should_crash(p, cursor + 1) {
            rec.add(Counter::Crashes, 1);
            complexes.clear();
            // nothing ships between here and the write: a full restore
            let recover_t0 = sink.as_ref().map(|s| s.now_ns());
            restore_own_state(&mut rec, store, p, cursor, &[], &mut complexes)?;
            if let (Some(s), Some(r0)) = (&sink, recover_t0) {
                s.span_at("recover", r0, s.now_ns());
            }
        }
    }

    // ---- write ----
    phase(ProgressPhase::Write);
    rec.begin(Phase::Write);
    let mut my_outputs: Vec<(u32, MsComplex)> = Vec::new();
    for &s in sched.outputs.iter().filter(|s| assign.rank_of(**s) == p) {
        match complexes.remove(&s) {
            Some(c) => my_outputs.push((s, c)),
            // Degraded: the slot died with a rank that had no
            // checkpoint; the run completes without it.
            None if fault.active() => rec.add(Counter::BlocksAbsorbed, 1),
            None => {
                return Err(PipelineError::MissingComplex {
                    slot: s,
                    context: "output collection",
                })
            }
        }
    }
    my_outputs.sort_by_key(|(s, _)| *s);
    // Keyed by output slot: payloads land in global ascending slot order
    // and the footer records slots, not writer ranks — the file is a
    // pure function of `(decomposition, plan, threshold)` even when the
    // LPT assignment parks an output slot on a rank-count-dependent
    // rank. (For uniform full merges slot 0 lives on rank 0, so the
    // historical bytes are unchanged.)
    let footer = if let Some(path) = output_path {
        let payloads: Vec<bytes::Bytes> =
            my_outputs.iter().map(|(_, c)| wire::serialize(c)).collect();
        let keys: Vec<u64> = my_outputs.iter().map(|(s, _)| *s as u64).collect();
        let f = collective_write_blocks_keyed(rank, path, &payloads, &keys).map_err(|source| {
            PipelineError::Io {
                context: format!("collective write to {}", path.display()),
                source,
            }
        })?;
        (p == 0).then_some(f)
    } else {
        None
    };
    // Labeled-volume blocks go to `<out>.seg` through a second collective
    // write (per-link FIFO keeps its file-IO messages behind the first
    // write's). The write is keyed by block id: payloads land in global
    // ascending block-id order and the footer records keys, not writer
    // ranks, so the file is byte-identical for every rank count.
    let mut my_segs: Vec<BlockSegmentation> = segs.into_values().collect();
    my_segs.sort_by_key(|s| s.block_id);
    let seg_footer = if let (true, Some(path)) = (params.segment, output_path) {
        let seg_path = seg_output_path(path);
        let payloads: Vec<bytes::Bytes> = my_segs.iter().map(segwire::serialize).collect();
        let keys: Vec<u64> = my_segs.iter().map(|s| s.block_id as u64).collect();
        let f =
            collective_write_blocks_keyed(rank, &seg_path, &payloads, &keys).map_err(|source| {
                PipelineError::Io {
                    context: format!("collective segmentation write to {}", seg_path.display()),
                    source,
                }
            })?;
        (p == 0).then_some(f)
    } else {
        None
    };
    // The hierarchy artifact is a third keyed collective write: one
    // `MSH1` payload per output slot, landing in ascending slot order,
    // so `<out>.msh` is byte-identical across ranks/threads/schedules.
    let msh_footer = if let (true, Some(path)) = (params.hierarchy, output_path) {
        let msh_path = msh_output_path(path);
        let payloads: Vec<bytes::Bytes> =
            my_hier.iter().map(|(_, h)| hwire::serialize(h)).collect();
        let keys: Vec<u64> = my_hier.iter().map(|(s, _)| *s as u64).collect();
        let f =
            collective_write_blocks_keyed(rank, &msh_path, &payloads, &keys).map_err(|source| {
                PipelineError::Io {
                    context: format!("collective hierarchy write to {}", msh_path.display()),
                    source,
                }
            })?;
        (p == 0).then_some(f)
    } else {
        None
    };
    rec.end(Phase::Write);

    // ---- oracle check (opt-in) ----
    // Violations are recorded as telemetry counters and stderr notes,
    // never as an early return: a rank bailing out here while its peers
    // sit in the final collectives would deadlock the run. Callers gate
    // on the counters instead (see `msc --check` and `oracle_fuzz`).
    let check =
        params.check || std::env::var("MSP_CHECK").map(|v| v == "1" || v == "true") == Ok(true);
    if check {
        phase(ProgressPhase::Check);
        rec.begin(Phase::Check);
        let opts = msp_oracle::CheckOptions::default();
        for (slot, ms) in &my_outputs {
            let mut report = msp_oracle::InvariantReport::default();
            msp_oracle::check_structural(ms, decomp, &opts, &mut report);
            // The semantic tier needs the member scalar blocks back
            // (they were dropped after the local stage to bound memory).
            let mut member_fields = Vec::new();
            let mut have_fields = true;
            for &b in &ms.member_blocks {
                match input {
                    Input::Memory(f) => member_fields.push(f.extract_block(decomp.block(b))),
                    Input::File { path, dims, dtype } => {
                        match read_block(path, *dims, decomp.block(b), *dtype) {
                            Ok(bf) => member_fields.push(bf),
                            Err(e) => {
                                eprintln!(
                                    "[msp-check] rank {p} slot {slot}: cannot re-read \
                                     block {b} for the semantic tier: {e}"
                                );
                                have_fields = false;
                                break;
                            }
                        }
                    }
                }
            }
            if have_fields {
                msp_oracle::check_semantic(ms, decomp, &member_fields, &opts, &mut report);
            }
            if let Err(e) = msp_oracle::check_glue_idempotent(ms, decomp) {
                report.structural += 1;
                report.notes.push(format!("glue idempotency: {e}"));
            }
            rec.add(Counter::ChecksRun, 1);
            rec.add(Counter::CheckStructural, report.structural);
            rec.add(Counter::CheckEuler, report.euler);
            rec.add(Counter::CheckBoundary, report.boundary);
            rec.add(Counter::CheckVpath, report.vpath);
            for note in &report.notes {
                eprintln!("[msp-check] rank {p} slot {slot}: {note}");
            }
        }
        // Segmentation invariants are per original block and fully
        // local: rebuild the independent reference gradient of each
        // owned block and check the resolved labels never change along
        // a V-path. (Representative liveness needs the gathered outputs
        // and runs on the driver side — see `check_segmentation_tables`.)
        if params.segment {
            for seg in &my_segs {
                let b = decomp.block(seg.block_id);
                let bf = match input {
                    Input::Memory(f) => Some(f.extract_block(b)),
                    Input::File { path, dims, dtype } => match read_block(path, *dims, b, *dtype) {
                        Ok(bf) => Some(bf),
                        Err(e) => {
                            eprintln!(
                                "[msp-check] rank {p} seg block {}: cannot re-read \
                                     the block: {e}",
                                seg.block_id
                            );
                            None
                        }
                    },
                };
                let Some(bf) = bf else { continue };
                let grad = msp_oracle::reference_gradient(&bf, decomp);
                let view = msp_oracle::SegView {
                    block_id: seg.block_id,
                    vdims: seg.vdims,
                    mins: &seg.mins,
                    maxs: &seg.maxs,
                    min_label: &seg.min_label,
                    max_label: &seg.max_label,
                };
                let mut report = msp_oracle::InvariantReport::default();
                msp_oracle::check_segmentation_block(&view, b, &rdims, &grad, &opts, &mut report);
                rec.add(Counter::CheckSegment, report.segment);
                for note in &report.notes {
                    eprintln!("[msp-check] rank {p}: {note}");
                }
            }
        }
        // Hierarchy replay conformance: materializing a sampled
        // threshold from the recorded sequence must reproduce a direct
        // simplification of the same base bit-for-bit — wire bytes and
        // forward entries both.
        if params.hierarchy {
            for (slot, h) in &my_hier {
                let Some((_, base)) = my_outputs.iter().find(|(s, _)| s == slot) else {
                    continue;
                };
                for ordering in h.orderings() {
                    let recs = h.records(ordering).expect("listed ordering");
                    let mut thresholds = vec![f32::INFINITY];
                    if !recs.is_empty() {
                        thresholds.push(recs[recs.len() / 2].key);
                    }
                    for t in thresholds {
                        let mut fail = |note: String| {
                            rec.add(Counter::CheckHierarchy, 1);
                            eprintln!("[msp-check] rank {p} slot {slot}: {note}");
                        };
                        let got = match h.materialize(base, ordering, t) {
                            Ok(m) => m,
                            Err(e) => {
                                fail(format!("hierarchy {ordering} materialize({t}): {e}"));
                                continue;
                            }
                        };
                        let mut want = base.clone();
                        let mut order = match ordering {
                            msp_hierarchy::Ordering::Difference => CancelOrder::Difference,
                            msp_hierarchy::Ordering::Count => {
                                CancelOrder::Count(global_sizes.clone().unwrap_or_default())
                            }
                        };
                        let mut wfw = Vec::new();
                        let direct = simplify_with(
                            &mut want,
                            SimplifyParams {
                                threshold: t,
                                max_new_arcs: params.max_new_arcs,
                                max_parallel_arcs: Some(2),
                            },
                            &mut order,
                            None,
                            Some(&mut wfw),
                        );
                        if let Err(e) = direct {
                            fail(format!("hierarchy {ordering} direct simplify({t}): {e}"));
                            continue;
                        }
                        want.compact();
                        if wire::serialize(&got.complex) != wire::serialize(&want)
                            || got.forwards != wfw
                        {
                            fail(format!(
                                "hierarchy {ordering} materialize({t}) diverges from a \
                                 direct simplify run ({} record(s) replayed)",
                                got.applied
                            ));
                        }
                    }
                }
            }
        }
        rec.end(Phase::Check);
    }
    rec.end(Phase::Total);
    phase(ProgressPhase::Done);

    // Stop tracing before the telemetry/trace exchange below: the
    // gathers are bookkeeping, not pipeline work, and must not observe
    // themselves (same rule as the counter snapshot).
    rank.detach_tracer();
    rec.detach_trace();

    // Counter snapshot happens BEFORE the telemetry exchange below, so
    // the reported traffic is exactly the pipeline's own.
    let cs = rank.comm_stats();
    rec.add(Counter::BytesSent, cs.bytes_sent);
    rec.add(Counter::BytesRecv, cs.bytes_recv);
    rec.add(Counter::MsgsSent, cs.msgs_sent);
    rec.add(Counter::MsgsRecv, cs.msgs_recv);
    let report = rec.finish();

    // Exact global merge traffic via the integer all-reduce; lands in the
    // report meta on rank 0.
    let global_ship_bytes = rank
        .allreduce_u64(TAG_TELEMETRY_SHIP, report.counter("ship_bytes"), |a, b| {
            a + b
        })
        .map_err(comm_err("all-reducing global ship bytes"))?;
    let encoded = Bytes::from(report.encode());
    let gathered = rank
        .gather(0, TAG_TELEMETRY_GATHER, encoded)
        .map_err(comm_err("gathering telemetry reports"))?;
    let telemetry = match gathered {
        Some(all) => {
            let mut ranks = Vec::with_capacity(all.len());
            for b in &all {
                ranks.push(RankReport::decode(b).map_err(PipelineError::Telemetry)?);
            }
            Some(
                RunReport::from_ranks("run", ranks)
                    .with_meta("global_ship_bytes", Json::U64(global_ship_bytes)),
            )
        }
        None => None,
    };

    // Ship the frozen per-rank traces to root over the same collective
    // (a second gather on its own tag; runs only when tracing is on).
    let run_trace = match &sink {
        Some(s) => {
            let encoded = Bytes::from(s.finish().encode());
            let gathered = rank
                .gather(0, TAG_TRACE_GATHER, encoded)
                .map_err(comm_err("gathering rank traces"))?;
            match gathered {
                Some(all) => {
                    let mut traces = Vec::with_capacity(all.len());
                    for b in &all {
                        traces.push(RankTrace::decode(b).map_err(PipelineError::Telemetry)?);
                    }
                    Some(RunTrace::from_ranks(traces))
                }
                None => None,
            }
        }
        None => None,
    };
    Ok((
        telemetry, my_outputs, footer, threshold, run_trace, my_segs, seg_footer, my_hier,
        msh_footer,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn noise_input(n: u32, seed: u64) -> Input {
        Input::Memory(Arc::new(msp_synth::white_noise(Dims::cube(n), seed)))
    }

    #[test]
    fn serial_run_single_block() {
        let input = noise_input(8, 3);
        let r = run_parallel(&input, 1, 1, &PipelineParams::default(), None).unwrap();
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.telemetry.n_ranks, 1);
        assert_eq!(r.telemetry.ranks.len(), 1);
        r.outputs[0].check_integrity().unwrap();
    }

    #[test]
    fn bad_configs_are_reported_not_panicked() {
        let input = noise_input(8, 3);
        let few_blocks = run_parallel(&input, 4, 2, &PipelineParams::default(), None);
        assert!(matches!(few_blocks, Err(PipelineError::Config(_))));
        let params = PipelineParams {
            plan: MergePlan::rounds(vec![8]),
            ..Default::default()
        };
        let bad_plan = run_parallel(&input, 2, 12, &params, None);
        let msg = match bad_plan {
            Err(PipelineError::Config(m)) => m,
            other => panic!("expected config error, got {:?}", other.map(|_| ())),
        };
        assert!(msg.contains("reduction"), "contextful message: {msg}");
    }

    #[test]
    fn telemetry_covers_phases_and_counters() {
        let input = noise_input(9, 5);
        let params = PipelineParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let r = run_parallel(&input, 4, 8, &params, None).unwrap();
        let tel = &r.telemetry;
        assert_eq!(tel.n_ranks, 4);
        for key in [
            "read",
            "gradient",
            "trace",
            "simplify",
            "merge_round[0]",
            "write",
            "total",
        ] {
            let s = tel
                .phase_stat(key)
                .unwrap_or_else(|| panic!("phase {key} present"));
            assert!(s.seconds.max >= s.seconds.min);
        }
        assert!(tel.counter_total("critical_cells") > 0);
        assert!(tel.counter_total("cells_paired") > 0);
        assert!(tel.counter_total("arcs_traced") > 0);
        assert!(tel.counter_total("nodes_shipped") > 0);
        assert!(tel.counter_total("bytes_sent") > 0);
        // every byte sent is received by someone
        assert_eq!(
            tel.counter_total("bytes_sent"),
            tel.counter_total("bytes_recv")
        );
        assert_eq!(
            tel.counter_total("msgs_sent"),
            tel.counter_total("msgs_recv")
        );
        // a fault-free run reports no recovery activity
        for key in ["checkpoint_bytes", "retries", "rounds_replayed", "crashes"] {
            assert_eq!(tel.counter_total(key), 0, "{key} must be 0 without faults");
        }
        // the all-reduced global ship total matches the gathered counters
        let meta_ship = tel
            .meta
            .iter()
            .find(|(k, _)| k == "global_ship_bytes")
            .map(|(_, v)| match v {
                msp_telemetry::Json::U64(n) => *n,
                _ => panic!("global_ship_bytes must be u64"),
            })
            .expect("global_ship_bytes in meta");
        assert_eq!(meta_ship, tel.counter_total("ship_bytes"));
        assert!(meta_ship > 0);
    }

    #[test]
    fn full_merge_produces_one_block_with_no_boundary() {
        let input = noise_input(9, 5);
        let params = PipelineParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let r = run_parallel(&input, 8, 8, &params, None).unwrap();
        assert_eq!(r.outputs.len(), 1);
        let out = &r.outputs[0];
        assert_eq!(out.member_blocks, (0..8).collect::<Vec<_>>());
        assert!(out.nodes.iter().all(|n| !n.boundary));
        out.check_integrity().unwrap();
    }

    #[test]
    fn partial_merge_block_count() {
        let input = noise_input(9, 5);
        let params = PipelineParams {
            plan: MergePlan::rounds(vec![4]),
            ..Default::default()
        };
        let r = run_parallel(&input, 8, 8, &params, None).unwrap();
        assert_eq!(r.outputs.len(), 2);
    }

    #[test]
    fn more_blocks_than_ranks() {
        let input = noise_input(9, 7);
        let params = PipelineParams {
            plan: MergePlan::rounds(vec![8]),
            ..Default::default()
        };
        let r = run_parallel(&input, 2, 8, &params, None).unwrap();
        assert_eq!(r.outputs.len(), 1);
        r.outputs[0].check_integrity().unwrap();
    }

    #[test]
    fn parallel_matches_serial_on_significant_features() {
        // full merge at matching threshold must reproduce the serial
        // significant-feature census (stability, §V-A)
        let field = Arc::new(msp_synth::gaussian_bumps(Dims::cube(17), 3, 0.12, 11));
        let input = Input::Memory(field.clone());
        let params = PipelineParams {
            persistence_frac: 0.05,
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let par = run_parallel(&input, 8, 8, &params, None).unwrap();
        let ser = run_parallel(
            &input,
            1,
            1,
            &PipelineParams {
                persistence_frac: 0.05,
                plan: MergePlan::none(),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(
            par.outputs[0].node_census()[3],
            ser.outputs[0].node_census()[3],
            "maxima census must match serial"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let input = noise_input(9, 13);
        let params = PipelineParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let a = run_parallel(&input, 8, 8, &params, None).unwrap();
        let b = run_parallel(&input, 4, 8, &params, None).unwrap();
        // same output complexes regardless of rank count
        assert_eq!(a.outputs.len(), b.outputs.len());
        let sa = wire::serialize(&a.outputs[0]);
        let sb = wire::serialize(&b.outputs[0]);
        assert_eq!(sa, sb, "output must be bit-identical across rank counts");
    }

    #[test]
    fn checkpointing_alone_changes_nothing() {
        let input = noise_input(9, 13);
        let plain = PipelineParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let ckpt = PipelineParams {
            fault: FaultConfig {
                checkpoint: true,
                ..Default::default()
            },
            ..plain.clone()
        };
        let a = run_parallel(&input, 4, 8, &plain, None).unwrap();
        let b = run_parallel(&input, 4, 8, &ckpt, None).unwrap();
        assert_eq!(
            wire::serialize(&a.outputs[0]),
            wire::serialize(&b.outputs[0]),
            "checkpointing must not perturb the result"
        );
        assert!(b.telemetry.counter_total("checkpoint_bytes") > 0);
        assert_eq!(b.telemetry.counter_total("crashes"), 0);
    }

    #[test]
    fn segmentation_identical_across_ranks_and_bounded_rounds() {
        let input = noise_input(9, 13);
        let params = PipelineParams {
            plan: MergePlan::full_merge(8),
            segment: true,
            ..Default::default()
        };
        let a = run_parallel(&input, 4, 8, &params, None).unwrap();
        let b = run_parallel(&input, 1, 8, &params, None).unwrap();
        assert_eq!(a.segmentation.len(), 8);
        assert_eq!(b.segmentation.len(), 8);
        for (sa, sb) in a.segmentation.iter().zip(&b.segmentation) {
            assert_eq!(
                segwire::serialize(sa),
                segwire::serialize(sb),
                "block {} labels must be bit-identical across rank counts",
                sa.block_id
            );
        }
        // fixed point within the synchronized pointer-jumping bound
        let forwards = a.telemetry.counter_total("seg_forwards");
        let rounds = a.telemetry.ranks[0].counter("seg_rounds");
        assert!(
            rounds <= msp_segment::jump_round_bound(forwards),
            "{rounds} jump rounds for {forwards} forwards"
        );
        assert!(a.telemetry.counter_total("seg_boundary_bytes") > 0);
        // every resolved label refers to a table entry (or the drain)
        for seg in &a.segmentation {
            for &l in &seg.min_label {
                assert!((l as usize) < seg.mins.len());
            }
            for &l in &seg.max_label {
                assert!(l == msp_segment::DRAIN_LABEL || (l as usize) < seg.maxs.len());
            }
        }
    }

    #[test]
    fn segmentation_without_merge_rounds() {
        let input = noise_input(8, 3);
        let params = PipelineParams {
            segment: true,
            ..Default::default()
        };
        let r = run_parallel(&input, 1, 1, &params, None).unwrap();
        assert_eq!(r.segmentation.len(), 1);
        let seg = &r.segmentation[0];
        assert_eq!(seg.vdims, [8, 8, 8]);
        assert_eq!(seg.min_label.len(), 512);
        assert_eq!(seg.max_label.len(), 343);
        assert!(!seg.mins.is_empty());
    }

    #[test]
    fn segmentation_off_costs_nothing() {
        let input = noise_input(8, 3);
        let r = run_parallel(&input, 2, 2, &PipelineParams::default(), None).unwrap();
        assert!(r.segmentation.is_empty());
        assert!(r.seg_footer.is_none());
        for key in [
            "seg_forwards",
            "seg_rounds",
            "seg_boundary_bytes",
            "seg_relabels",
        ] {
            assert_eq!(r.telemetry.counter_total(key), 0, "{key}");
        }
    }

    #[test]
    fn persistence_parsing_rejects_junk() {
        assert_eq!(parse_persistence("0.25"), Ok(0.25));
        assert_eq!(parse_persistence(" 0 "), Ok(0.0));
        for bad in ["-0.1", "NaN", "inf", "-inf", "pct", ""] {
            assert!(parse_persistence(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn hierarchy_off_costs_nothing() {
        let input = noise_input(8, 3);
        let r = run_parallel(&input, 2, 2, &PipelineParams::default(), None).unwrap();
        assert!(r.hierarchies.is_empty());
        assert!(r.msh_footer.is_none());
        assert_eq!(r.telemetry.counter_total("hierarchy_records"), 0);
    }

    #[test]
    fn hierarchy_is_recorded_replayable_and_schedule_independent() {
        let tmp = std::env::temp_dir();
        let mk = |tag: &str| {
            let mut p = tmp.clone();
            p.push(format!("msp_core_hier_{}_{tag}.msc", std::process::id()));
            p
        };
        let input = noise_input(9, 21);
        let params = PipelineParams {
            persistence_frac: 0.0,
            plan: MergePlan::full_merge(8),
            segment: true,
            hierarchy: true,
            check: true,
            ..Default::default()
        };
        let pa = mk("a");
        let pb = mk("b");
        let a = run_parallel(&input, 4, 8, &params, Some(&pa)).unwrap();
        let b = run_parallel(&input, 1, 8, &params, Some(&pb)).unwrap();
        // one hierarchy per output slot, with both orderings recorded
        assert_eq!(a.hierarchies.len(), a.outputs.len());
        assert_eq!(a.hierarchies, b.hierarchies);
        let h = &a.hierarchies[0];
        assert!(!h.difference.is_empty());
        assert!(h.count.as_ref().is_some_and(|c| !c.is_empty()));
        assert!(a.telemetry.counter_total("hierarchy_records") > 0);
        // the conformance check ran clean under --check
        assert_eq!(a.telemetry.counter_total("check_hierarchy"), 0);
        // the artifact is byte-identical across rank counts and round-trips
        let bytes_a = std::fs::read(msh_output_path(&pa)).unwrap();
        let bytes_b = std::fs::read(msh_output_path(&pb)).unwrap();
        assert_eq!(bytes_a, bytes_b, ".msh must not depend on the schedule");
        let footer = a.msh_footer.as_ref().expect("msh footer on rank 0");
        assert_eq!(footer.len(), a.outputs.len());
        let payload =
            msp_vmpi::fileio::read_block_payload(&msh_output_path(&pa), &footer[0]).unwrap();
        let loaded = hwire::deserialize(&payload).unwrap();
        assert_eq!(&loaded, h);
        // a mid-threshold materialization from the artifact matches a
        // direct simplify run on the wire-loaded base
        let base = {
            let f = a.footer.as_ref().expect("complex footer");
            let pl = msp_vmpi::fileio::read_block_payload(&pa, &f[0]).unwrap();
            wire::deserialize(&pl).unwrap()
        };
        let t = loaded.difference[loaded.difference.len() / 2].key;
        let got = loaded
            .materialize(&base, msp_hierarchy::Ordering::Difference, t)
            .unwrap();
        let mut want = base.clone();
        simplify_forwarding(
            &mut want,
            SimplifyParams {
                threshold: t,
                max_new_arcs: params.max_new_arcs,
                max_parallel_arcs: Some(2),
            },
            None,
        )
        .unwrap();
        want.compact();
        assert_eq!(wire::serialize(&got.complex), wire::serialize(&want));
        for p in [&pa, &pb] {
            std::fs::remove_file(p).ok();
            std::fs::remove_file(seg_output_path(p)).ok();
            std::fs::remove_file(msh_output_path(p)).ok();
        }
    }

    #[test]
    fn writes_valid_output_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("msp_core_out_{}.msc", std::process::id()));
        let input = noise_input(9, 2);
        let params = PipelineParams {
            plan: MergePlan::rounds(vec![4]),
            segment: true,
            ..Default::default()
        };
        let r = run_parallel(&input, 4, 8, &params, Some(&path)).unwrap();
        let footer = r.footer.expect("footer present");
        assert_eq!(footer.len(), 2);
        // reload both blocks and compare with in-memory outputs
        for (entry, ms) in footer.iter().zip(&r.outputs) {
            let payload = msp_vmpi::fileio::read_block_payload(&path, entry).unwrap();
            let loaded = wire::deserialize(&payload).unwrap();
            assert_eq!(loaded.nodes.len(), ms.nodes.len());
            assert_eq!(loaded.member_blocks, ms.member_blocks);
        }
        // the labeled volume rides along in `<out>.seg`: one block per
        // original block, each payload round-tripping to the in-memory
        // segmentation
        let seg_path = seg_output_path(&path);
        let seg_footer = r.seg_footer.expect("seg footer present");
        assert_eq!(seg_footer.len(), 8);
        let mut loaded: Vec<BlockSegmentation> = seg_footer
            .iter()
            .map(|e| {
                let payload = msp_vmpi::fileio::read_block_payload(&seg_path, e).unwrap();
                segwire::deserialize(&payload).unwrap()
            })
            .collect();
        loaded.sort_by_key(|s| s.block_id);
        assert_eq!(loaded, r.segmentation);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&seg_path).ok();
    }
}
