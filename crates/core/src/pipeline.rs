//! The paper's Algorithm 1 on the **threaded backend**: a genuinely
//! parallel run with one OS thread per rank and real message passing.
//!
//! ```text
//! Decompose domain            (§IV-A)
//! Read data blocks            (§IV-B)
//! for all local blocks:
//!     compute discrete gradient (§IV-C)
//!     compute MS complex        (§IV-D)
//!     simplify MS complex       (§IV-E)
//! for each merge round:
//!     merge MS complex blocks   (§IV-F)
//! Write MS complex blocks     (§IV-G)
//! ```
//!
//! Blocks are assigned to ranks round-robin (block-cyclic), so the number
//! of blocks may exceed the number of ranks; the paper's usual
//! configuration is one block per process.

use crate::plan::MergePlan;
use msp_complex::glue::glue_all;
use msp_complex::{build_block_complex, simplify, wire, MsComplex, SimplifyParams};
use msp_grid::rawio::{read_block, VolumeDType};
use msp_grid::{Decomposition, Dims, ScalarField};
use msp_morse::TraceLimits;
use msp_vmpi::fileio::{collective_write_blocks, FooterEntry};
use msp_vmpi::{Rank, Universe};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Pipeline configuration shared by all ranks.
#[derive(Debug, Clone)]
pub struct PipelineParams {
    /// Persistence threshold as a fraction of the global value range.
    pub persistence_frac: f32,
    pub plan: MergePlan,
    pub trace_limits: TraceLimits,
    /// Valence guard forwarded to [`SimplifyParams`].
    pub max_new_arcs: Option<u64>,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            persistence_frac: 0.01,
            plan: MergePlan::none(),
            trace_limits: TraceLimits::default(),
            // valence guard: skip cancellations that would fan out into
            // more than this many replacement arcs (degenerate lattices)
            max_new_arcs: Some(4096),
        }
    }
}

/// Where the scalar data comes from.
pub enum Input {
    /// In-memory field: every rank extracts its blocks directly (stands
    /// in for an already-staged dataset).
    Memory(std::sync::Arc<ScalarField>),
    /// Raw volume file read through per-block subarray views (§IV-B).
    File {
        path: PathBuf,
        dims: Dims,
        dtype: VolumeDType,
    },
}

impl Input {
    pub fn dims(&self) -> Dims {
        match self {
            Input::Memory(f) => f.dims(),
            Input::File { dims, .. } => *dims,
        }
    }
}

/// Wall-clock stage times of one rank (seconds).
#[derive(Debug, Clone, Default)]
pub struct StageTimes {
    pub read: f64,
    pub compute: f64,
    pub simplify: f64,
    pub merge: f64,
    pub merge_rounds: Vec<f64>,
    pub write: f64,
    pub total: f64,
}

/// Result of a parallel run.
pub struct RunResult {
    /// Per-rank stage times, indexed by rank.
    pub times: Vec<StageTimes>,
    /// Output-slot complexes in ascending slot order.
    pub outputs: Vec<MsComplex>,
    /// Footer of the output file, when one was written.
    pub footer: Option<Vec<FooterEntry>>,
    /// Total serialized size of all output blocks.
    pub output_bytes: u64,
    /// The absolute persistence threshold that was applied.
    pub threshold: f32,
}

/// Execute the full pipeline on `n_ranks` threads over `n_blocks` blocks.
pub fn run_parallel(
    input: &Input,
    n_ranks: u32,
    n_blocks: u32,
    params: &PipelineParams,
    output_path: Option<&Path>,
) -> RunResult {
    assert!(n_ranks >= 1 && n_blocks >= n_ranks, "need >= 1 block per rank");
    let dims = input.dims();
    let decomp = Decomposition::bisect(dims, n_blocks);
    let _ = params.plan.output_blocks(n_blocks); // validate divisibility early

    let results = Universe::run(n_ranks as usize, |rank| {
        run_rank(rank, input, &decomp, n_blocks, params, output_path)
    });

    let mut times = Vec::with_capacity(results.len());
    let mut slot_outputs: Vec<(u32, MsComplex)> = Vec::new();
    let mut footer = None;
    let mut threshold = 0.0;
    for (t, outs, f, th) in results {
        times.push(t);
        slot_outputs.extend(outs);
        if f.is_some() {
            footer = f;
        }
        threshold = th; // identical on every rank (all-reduced)
    }
    slot_outputs.sort_by_key(|(slot, _)| *slot);
    let outputs: Vec<MsComplex> = slot_outputs.into_iter().map(|(_, c)| c).collect();
    let output_bytes = outputs.iter().map(|c| wire::serialize(c).len() as u64).sum();
    RunResult {
        times,
        outputs,
        footer,
        output_bytes,
        threshold,
    }
}

type RankOut = (StageTimes, Vec<(u32, MsComplex)>, Option<Vec<FooterEntry>>, f32);

fn run_rank(
    rank: &mut Rank,
    input: &Input,
    decomp: &Decomposition,
    n_blocks: u32,
    params: &PipelineParams,
    output_path: Option<&Path>,
) -> RankOut {
    let p = rank.rank() as u32;
    let n_ranks = rank.size() as u32;
    let my_blocks: Vec<u32> = (0..n_blocks).filter(|b| b % n_ranks == p).collect();
    let mut t = StageTimes::default();
    let t_start = Instant::now();

    // ---- read ----
    let t0 = Instant::now();
    let mut fields = HashMap::new();
    let mut local_min = f64::INFINITY;
    let mut local_max = f64::NEG_INFINITY;
    for &b in &my_blocks {
        let bf = match input {
            Input::Memory(f) => f.extract_block(decomp.block(b)),
            Input::File { path, dims, dtype } => {
                read_block(path, *dims, decomp.block(b), *dtype).expect("block read")
            }
        };
        for &v in bf.data() {
            local_min = local_min.min(v as f64);
            local_max = local_max.max(v as f64);
        }
        fields.insert(b, bf);
    }
    // global range for the persistence threshold
    let (gmin, gmax) = rank.allreduce_min_max(100, local_min, local_max);
    let threshold = params.persistence_frac * (gmax - gmin) as f32;
    t.read = t0.elapsed().as_secs_f64();

    // ---- compute (gradient + MS complex) ----
    let t0 = Instant::now();
    let mut complexes: HashMap<u32, MsComplex> = HashMap::new();
    for &b in &my_blocks {
        let (ms, _) = build_block_complex(&fields[&b], decomp, params.trace_limits);
        complexes.insert(b, ms);
    }
    drop(fields);
    t.compute = t0.elapsed().as_secs_f64();

    // ---- local simplification ----
    let t0 = Instant::now();
    let sp = SimplifyParams {
        threshold,
        max_new_arcs: params.max_new_arcs,
        max_parallel_arcs: Some(2),
    };
    for ms in complexes.values_mut() {
        simplify(ms, sp);
        ms.compact();
    }
    t.simplify = t0.elapsed().as_secs_f64();

    // ---- merge rounds ----
    let t_merge = Instant::now();
    for r in 0..params.plan.radices.len() {
        rank.barrier();
        let t0 = Instant::now();
        let groups = params.plan.groups(r, n_blocks);
        let tag_base = (r as u32) << 20;
        // send phase: every non-root slot this rank owns
        for (root, members) in &groups {
            for &m in &members[1..] {
                if m % n_ranks == p {
                    let ms = complexes.remove(&m).expect("member complex present");
                    let payload = wire::serialize(&ms);
                    rank.send((root % n_ranks) as usize, tag_base | m, payload);
                }
            }
        }
        // receive + glue phase: every root slot this rank owns
        for (root, members) in &groups {
            if root % n_ranks != p {
                continue;
            }
            let mut incoming = Vec::with_capacity(members.len() - 1);
            for &m in &members[1..] {
                let payload = rank.recv((m % n_ranks) as usize, tag_base | m);
                incoming.push(wire::deserialize(&payload).expect("valid complex"));
            }
            let ms = complexes.get_mut(root).expect("root complex present");
            glue_all(ms, &incoming, decomp);
            simplify(ms, sp);
            ms.compact();
        }
        t.merge_rounds.push(t0.elapsed().as_secs_f64());
    }
    t.merge = t_merge.elapsed().as_secs_f64();

    // ---- write ----
    let t0 = Instant::now();
    let out_slots = params.plan.output_slots(n_blocks);
    let mut my_outputs: Vec<(u32, MsComplex)> = out_slots
        .iter()
        .filter(|s| *s % n_ranks == p)
        .map(|&s| (s, complexes.remove(&s).expect("output complex")))
        .collect();
    my_outputs.sort_by_key(|(s, _)| *s);
    let footer = if let Some(path) = output_path {
        let payloads: Vec<bytes::Bytes> =
            my_outputs.iter().map(|(_, c)| wire::serialize(c)).collect();
        let f = collective_write_blocks(rank, path, &payloads).expect("collective write");
        (p == 0).then_some(f)
    } else {
        None
    };
    t.write = t0.elapsed().as_secs_f64();
    t.total = t_start.elapsed().as_secs_f64();
    (t, my_outputs, footer, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn noise_input(n: u32, seed: u64) -> Input {
        Input::Memory(Arc::new(msp_synth::white_noise(Dims::cube(n), seed)))
    }

    #[test]
    fn serial_run_single_block() {
        let input = noise_input(8, 3);
        let r = run_parallel(&input, 1, 1, &PipelineParams::default(), None);
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.times.len(), 1);
        r.outputs[0].check_integrity().unwrap();
    }

    #[test]
    fn full_merge_produces_one_block_with_no_boundary() {
        let input = noise_input(9, 5);
        let params = PipelineParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let r = run_parallel(&input, 8, 8, &params, None);
        assert_eq!(r.outputs.len(), 1);
        let out = &r.outputs[0];
        assert_eq!(out.member_blocks, (0..8).collect::<Vec<_>>());
        assert!(out.nodes.iter().all(|n| !n.boundary));
        out.check_integrity().unwrap();
    }

    #[test]
    fn partial_merge_block_count() {
        let input = noise_input(9, 5);
        let params = PipelineParams {
            plan: MergePlan::rounds(vec![4]),
            ..Default::default()
        };
        let r = run_parallel(&input, 8, 8, &params, None);
        assert_eq!(r.outputs.len(), 2);
    }

    #[test]
    fn more_blocks_than_ranks() {
        let input = noise_input(9, 7);
        let params = PipelineParams {
            plan: MergePlan::rounds(vec![8]),
            ..Default::default()
        };
        let r = run_parallel(&input, 2, 8, &params, None);
        assert_eq!(r.outputs.len(), 1);
        r.outputs[0].check_integrity().unwrap();
    }

    #[test]
    fn parallel_matches_serial_on_significant_features() {
        // full merge at matching threshold must reproduce the serial
        // significant-feature census (stability, §V-A)
        let field = Arc::new(msp_synth::gaussian_bumps(Dims::cube(17), 3, 0.12, 11));
        let input = Input::Memory(field.clone());
        let params = PipelineParams {
            persistence_frac: 0.05,
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let par = run_parallel(&input, 8, 8, &params, None);
        let ser = run_parallel(
            &input,
            1,
            1,
            &PipelineParams {
                persistence_frac: 0.05,
                plan: MergePlan::none(),
                ..Default::default()
            },
            None,
        );
        assert_eq!(
            par.outputs[0].node_census()[3],
            ser.outputs[0].node_census()[3],
            "maxima census must match serial"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let input = noise_input(9, 13);
        let params = PipelineParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let a = run_parallel(&input, 8, 8, &params, None);
        let b = run_parallel(&input, 4, 8, &params, None);
        // same output complexes regardless of rank count
        assert_eq!(a.outputs.len(), b.outputs.len());
        let sa = wire::serialize(&a.outputs[0]);
        let sb = wire::serialize(&b.outputs[0]);
        assert_eq!(sa, sb, "output must be bit-identical across rank counts");
    }

    #[test]
    fn writes_valid_output_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("msp_core_out_{}.msc", std::process::id()));
        let input = noise_input(9, 2);
        let params = PipelineParams {
            plan: MergePlan::rounds(vec![4]),
            ..Default::default()
        };
        let r = run_parallel(&input, 4, 8, &params, Some(&path));
        let footer = r.footer.expect("footer present");
        assert_eq!(footer.len(), 2);
        // reload both blocks and compare with in-memory outputs
        for (entry, ms) in footer.iter().zip(&r.outputs) {
            let payload = msp_vmpi::fileio::read_block_payload(&path, entry).unwrap();
            let loaded = wire::deserialize(&payload).unwrap();
            assert_eq!(loaded.nodes.len(), ms.nodes.len());
            assert_eq!(loaded.member_blocks, ms.member_blocks);
        }
        std::fs::remove_file(&path).ok();
    }
}
