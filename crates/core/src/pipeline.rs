//! The paper's Algorithm 1 on the **threaded backend**: a genuinely
//! parallel run with one OS thread per rank and real message passing.
//!
//! ```text
//! Decompose domain            (§IV-A)
//! Read data blocks            (§IV-B)
//! for all local blocks:
//!     compute discrete gradient (§IV-C)
//!     compute MS complex        (§IV-D)
//!     simplify MS complex       (§IV-E)
//! for each merge round:
//!     merge MS complex blocks   (§IV-F)
//! Write MS complex blocks     (§IV-G)
//! ```
//!
//! Blocks are assigned to ranks round-robin (block-cyclic), so the number
//! of blocks may exceed the number of ranks; the paper's usual
//! configuration is one block per process.

use crate::plan::MergePlan;
use bytes::Bytes;
use msp_complex::glue::glue_all;
use msp_complex::{complex_from_gradient, simplify, wire, MsComplex, SimplifyParams};
use msp_grid::rawio::{read_block, VolumeDType};
use msp_grid::{Decomposition, Dims, ScalarField};
use msp_morse::{assign_gradient, TraceLimits};
use msp_telemetry::{Counter, Json, Phase, RankReport, Recorder, RunReport};
use msp_vmpi::fileio::{collective_write_blocks, FooterEntry};
use msp_vmpi::{Rank, Universe};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Tags of the end-of-run telemetry exchange. They live above the file-IO
/// range (9001..) and below no one: nothing else speaks after the write
/// stage.
const TAG_TELEMETRY_GATHER: u32 = 9100;
const TAG_TELEMETRY_SHIP: u32 = 9110;

/// Pipeline configuration shared by all ranks.
#[derive(Debug, Clone)]
pub struct PipelineParams {
    /// Persistence threshold as a fraction of the global value range.
    pub persistence_frac: f32,
    pub plan: MergePlan,
    pub trace_limits: TraceLimits,
    /// Valence guard forwarded to [`SimplifyParams`].
    pub max_new_arcs: Option<u64>,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            persistence_frac: 0.01,
            plan: MergePlan::none(),
            trace_limits: TraceLimits::default(),
            // valence guard: skip cancellations that would fan out into
            // more than this many replacement arcs (degenerate lattices)
            max_new_arcs: Some(4096),
        }
    }
}

/// Where the scalar data comes from.
pub enum Input {
    /// In-memory field: every rank extracts its blocks directly (stands
    /// in for an already-staged dataset).
    Memory(std::sync::Arc<ScalarField>),
    /// Raw volume file read through per-block subarray views (§IV-B).
    File {
        path: PathBuf,
        dims: Dims,
        dtype: VolumeDType,
    },
}

impl Input {
    pub fn dims(&self) -> Dims {
        match self {
            Input::Memory(f) => f.dims(),
            Input::File { dims, .. } => *dims,
        }
    }
}

/// Result of a parallel run.
pub struct RunResult {
    /// Aggregated telemetry: per-rank phase timings and counters plus
    /// cross-rank min/mean/max/imbalance statistics (gathered at rank 0).
    pub telemetry: RunReport,
    /// Output-slot complexes in ascending slot order.
    pub outputs: Vec<MsComplex>,
    /// Footer of the output file, when one was written.
    pub footer: Option<Vec<FooterEntry>>,
    /// Total serialized size of all output blocks.
    pub output_bytes: u64,
    /// The absolute persistence threshold that was applied.
    pub threshold: f32,
}

/// Execute the full pipeline on `n_ranks` threads over `n_blocks` blocks.
pub fn run_parallel(
    input: &Input,
    n_ranks: u32,
    n_blocks: u32,
    params: &PipelineParams,
    output_path: Option<&Path>,
) -> RunResult {
    assert!(n_ranks >= 1 && n_blocks >= n_ranks, "need >= 1 block per rank");
    let dims = input.dims();
    let decomp = Decomposition::bisect(dims, n_blocks);
    let _ = params.plan.output_blocks(n_blocks); // validate divisibility early

    let results = Universe::run(n_ranks as usize, |rank| {
        run_rank(rank, input, &decomp, n_blocks, params, output_path)
    });

    let mut telemetry = None;
    let mut slot_outputs: Vec<(u32, MsComplex)> = Vec::new();
    let mut footer = None;
    let mut threshold = 0.0;
    for (tel, outs, f, th) in results {
        if tel.is_some() {
            telemetry = tel; // only rank 0 holds the gathered report
        }
        slot_outputs.extend(outs);
        if f.is_some() {
            footer = f;
        }
        threshold = th; // identical on every rank (all-reduced)
    }
    slot_outputs.sort_by_key(|(slot, _)| *slot);
    let outputs: Vec<MsComplex> = slot_outputs.into_iter().map(|(_, c)| c).collect();
    let output_bytes = outputs.iter().map(|c| wire::serialize(c).len() as u64).sum();
    let telemetry = telemetry
        .expect("rank 0 gathers the telemetry report")
        .with_meta("dims", Json::str(format!("{}x{}x{}", dims.nx, dims.ny, dims.nz)))
        .with_meta("n_blocks", Json::U64(n_blocks as u64))
        .with_meta("merge_radices", Json::Arr(
            params.plan.radices.iter().map(|&r| Json::U64(r as u64)).collect(),
        ))
        .with_meta("persistence_frac", Json::F64(params.persistence_frac as f64))
        .with_meta("threshold", Json::F64(threshold as f64))
        .with_meta("output_bytes", Json::U64(output_bytes));
    RunResult {
        telemetry,
        outputs,
        footer,
        output_bytes,
        threshold,
    }
}

type RankOut = (Option<RunReport>, Vec<(u32, MsComplex)>, Option<Vec<FooterEntry>>, f32);

fn run_rank(
    rank: &mut Rank,
    input: &Input,
    decomp: &Decomposition,
    n_blocks: u32,
    params: &PipelineParams,
    output_path: Option<&Path>,
) -> RankOut {
    let p = rank.rank() as u32;
    let n_ranks = rank.size() as u32;
    let my_blocks: Vec<u32> = (0..n_blocks).filter(|b| b % n_ranks == p).collect();
    let mut rec = Recorder::new(p);
    rec.begin(Phase::Total);

    // ---- read ----
    rec.begin(Phase::Read);
    let mut fields = HashMap::new();
    let mut local_min = f64::INFINITY;
    let mut local_max = f64::NEG_INFINITY;
    for &b in &my_blocks {
        let bf = match input {
            Input::Memory(f) => f.extract_block(decomp.block(b)),
            Input::File { path, dims, dtype } => {
                read_block(path, *dims, decomp.block(b), *dtype).expect("block read")
            }
        };
        for &v in bf.data() {
            local_min = local_min.min(v as f64);
            local_max = local_max.max(v as f64);
        }
        fields.insert(b, bf);
    }
    // global range for the persistence threshold
    let (gmin, gmax) = rank.allreduce_min_max(100, local_min, local_max);
    let threshold = params.persistence_frac * (gmax - gmin) as f32;
    rec.end(Phase::Read);

    // ---- compute: gradient assignment, then V-path tracing ----
    let mut complexes: HashMap<u32, MsComplex> = HashMap::new();
    for &b in &my_blocks {
        let grad = rec.time(Phase::Gradient, |_| assign_gradient(&fields[&b], decomp));
        let (ms, bstats) = rec.time(Phase::Trace, |_| {
            complex_from_gradient(&fields[&b], decomp, &grad, params.trace_limits)
        });
        rec.add(Counter::CellsPaired, bstats.cells_paired);
        rec.add(Counter::CriticalCells, bstats.critical_cells);
        rec.add(Counter::ArcsTraced, bstats.arcs);
        complexes.insert(b, ms);
    }
    drop(fields);

    // ---- local simplification ----
    rec.begin(Phase::Simplify);
    let sp = SimplifyParams {
        threshold,
        max_new_arcs: params.max_new_arcs,
        max_parallel_arcs: Some(2),
    };
    for ms in complexes.values_mut() {
        let st = simplify(ms, sp);
        rec.add(Counter::Cancellations, st.cancellations);
        ms.compact();
    }
    rec.end(Phase::Simplify);

    // ---- merge rounds ----
    for r in 0..params.plan.radices.len() {
        rank.barrier();
        rec.begin(Phase::MergeRound(r as u16));
        let groups = params.plan.groups(r, n_blocks);
        let tag_base = (r as u32) << 20;
        // send phase: every non-root slot this rank owns
        for (root, members) in &groups {
            for &m in &members[1..] {
                if m % n_ranks == p {
                    let ms = complexes.remove(&m).expect("member complex present");
                    rec.add(Counter::NodesShipped, ms.n_live_nodes());
                    rec.add(Counter::ArcsShipped, ms.n_live_arcs());
                    let payload = wire::serialize(&ms);
                    rec.add(Counter::ShipBytes, payload.len() as u64);
                    rank.send((root % n_ranks) as usize, tag_base | m, payload);
                }
            }
        }
        // receive + glue phase: every root slot this rank owns
        for (root, members) in &groups {
            if root % n_ranks != p {
                continue;
            }
            let mut incoming = Vec::with_capacity(members.len() - 1);
            for &m in &members[1..] {
                let payload = rank.recv((m % n_ranks) as usize, tag_base | m);
                incoming.push(wire::deserialize(&payload).expect("valid complex"));
            }
            let ms = complexes.get_mut(root).expect("root complex present");
            rec.time(Phase::Glue, |_| glue_all(ms, &incoming, decomp));
            rec.begin(Phase::Resimplify);
            let st = simplify(ms, sp);
            rec.add(Counter::Cancellations, st.cancellations);
            ms.compact();
            rec.end(Phase::Resimplify);
        }
        rec.end(Phase::MergeRound(r as u16));
    }

    // ---- write ----
    rec.begin(Phase::Write);
    let out_slots = params.plan.output_slots(n_blocks);
    let mut my_outputs: Vec<(u32, MsComplex)> = out_slots
        .iter()
        .filter(|s| *s % n_ranks == p)
        .map(|&s| (s, complexes.remove(&s).expect("output complex")))
        .collect();
    my_outputs.sort_by_key(|(s, _)| *s);
    let footer = if let Some(path) = output_path {
        let payloads: Vec<bytes::Bytes> =
            my_outputs.iter().map(|(_, c)| wire::serialize(c)).collect();
        let f = collective_write_blocks(rank, path, &payloads).expect("collective write");
        (p == 0).then_some(f)
    } else {
        None
    };
    rec.end(Phase::Write);
    rec.end(Phase::Total);

    // Counter snapshot happens BEFORE the telemetry exchange below, so
    // the reported traffic is exactly the pipeline's own.
    let cs = rank.comm_stats();
    rec.add(Counter::BytesSent, cs.bytes_sent);
    rec.add(Counter::BytesRecv, cs.bytes_recv);
    rec.add(Counter::MsgsSent, cs.msgs_sent);
    rec.add(Counter::MsgsRecv, cs.msgs_recv);
    let report = rec.finish();

    // Exact global merge traffic via the integer all-reduce; lands in the
    // report meta on rank 0.
    let global_ship_bytes =
        rank.allreduce_u64(TAG_TELEMETRY_SHIP, report.counter("ship_bytes"), |a, b| a + b);
    let encoded = Bytes::from(report.encode());
    let telemetry = rank.gather(0, TAG_TELEMETRY_GATHER, encoded).map(|all| {
        let ranks: Vec<RankReport> = all
            .iter()
            .map(|b| RankReport::decode(b).expect("valid rank report"))
            .collect();
        RunReport::from_ranks("run", ranks)
            .with_meta("global_ship_bytes", Json::U64(global_ship_bytes))
    });
    (telemetry, my_outputs, footer, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn noise_input(n: u32, seed: u64) -> Input {
        Input::Memory(Arc::new(msp_synth::white_noise(Dims::cube(n), seed)))
    }

    #[test]
    fn serial_run_single_block() {
        let input = noise_input(8, 3);
        let r = run_parallel(&input, 1, 1, &PipelineParams::default(), None);
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.telemetry.n_ranks, 1);
        assert_eq!(r.telemetry.ranks.len(), 1);
        r.outputs[0].check_integrity().unwrap();
    }

    #[test]
    fn telemetry_covers_phases_and_counters() {
        let input = noise_input(9, 5);
        let params = PipelineParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let r = run_parallel(&input, 4, 8, &params, None);
        let tel = &r.telemetry;
        assert_eq!(tel.n_ranks, 4);
        for key in ["read", "gradient", "trace", "simplify", "merge_round[0]", "write", "total"] {
            let s = tel.phase_stat(key).unwrap_or_else(|| panic!("phase {key} present"));
            assert!(s.seconds.max >= s.seconds.min);
        }
        assert!(tel.counter_total("critical_cells") > 0);
        assert!(tel.counter_total("cells_paired") > 0);
        assert!(tel.counter_total("arcs_traced") > 0);
        assert!(tel.counter_total("nodes_shipped") > 0);
        assert!(tel.counter_total("bytes_sent") > 0);
        // every byte sent is received by someone
        assert_eq!(tel.counter_total("bytes_sent"), tel.counter_total("bytes_recv"));
        assert_eq!(tel.counter_total("msgs_sent"), tel.counter_total("msgs_recv"));
        // the all-reduced global ship total matches the gathered counters
        let meta_ship = tel
            .meta
            .iter()
            .find(|(k, _)| k == "global_ship_bytes")
            .map(|(_, v)| match v {
                msp_telemetry::Json::U64(n) => *n,
                _ => panic!("global_ship_bytes must be u64"),
            })
            .expect("global_ship_bytes in meta");
        assert_eq!(meta_ship, tel.counter_total("ship_bytes"));
        assert!(meta_ship > 0);
    }

    #[test]
    fn full_merge_produces_one_block_with_no_boundary() {
        let input = noise_input(9, 5);
        let params = PipelineParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let r = run_parallel(&input, 8, 8, &params, None);
        assert_eq!(r.outputs.len(), 1);
        let out = &r.outputs[0];
        assert_eq!(out.member_blocks, (0..8).collect::<Vec<_>>());
        assert!(out.nodes.iter().all(|n| !n.boundary));
        out.check_integrity().unwrap();
    }

    #[test]
    fn partial_merge_block_count() {
        let input = noise_input(9, 5);
        let params = PipelineParams {
            plan: MergePlan::rounds(vec![4]),
            ..Default::default()
        };
        let r = run_parallel(&input, 8, 8, &params, None);
        assert_eq!(r.outputs.len(), 2);
    }

    #[test]
    fn more_blocks_than_ranks() {
        let input = noise_input(9, 7);
        let params = PipelineParams {
            plan: MergePlan::rounds(vec![8]),
            ..Default::default()
        };
        let r = run_parallel(&input, 2, 8, &params, None);
        assert_eq!(r.outputs.len(), 1);
        r.outputs[0].check_integrity().unwrap();
    }

    #[test]
    fn parallel_matches_serial_on_significant_features() {
        // full merge at matching threshold must reproduce the serial
        // significant-feature census (stability, §V-A)
        let field = Arc::new(msp_synth::gaussian_bumps(Dims::cube(17), 3, 0.12, 11));
        let input = Input::Memory(field.clone());
        let params = PipelineParams {
            persistence_frac: 0.05,
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let par = run_parallel(&input, 8, 8, &params, None);
        let ser = run_parallel(
            &input,
            1,
            1,
            &PipelineParams {
                persistence_frac: 0.05,
                plan: MergePlan::none(),
                ..Default::default()
            },
            None,
        );
        assert_eq!(
            par.outputs[0].node_census()[3],
            ser.outputs[0].node_census()[3],
            "maxima census must match serial"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let input = noise_input(9, 13);
        let params = PipelineParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let a = run_parallel(&input, 8, 8, &params, None);
        let b = run_parallel(&input, 4, 8, &params, None);
        // same output complexes regardless of rank count
        assert_eq!(a.outputs.len(), b.outputs.len());
        let sa = wire::serialize(&a.outputs[0]);
        let sb = wire::serialize(&b.outputs[0]);
        assert_eq!(sa, sb, "output must be bit-identical across rank counts");
    }

    #[test]
    fn writes_valid_output_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("msp_core_out_{}.msc", std::process::id()));
        let input = noise_input(9, 2);
        let params = PipelineParams {
            plan: MergePlan::rounds(vec![4]),
            ..Default::default()
        };
        let r = run_parallel(&input, 4, 8, &params, Some(&path));
        let footer = r.footer.expect("footer present");
        assert_eq!(footer.len(), 2);
        // reload both blocks and compare with in-memory outputs
        for (entry, ms) in footer.iter().zip(&r.outputs) {
            let payload = msp_vmpi::fileio::read_block_payload(&path, entry).unwrap();
            let loaded = wire::deserialize(&payload).unwrap();
            assert_eq!(loaded.nodes.len(), ms.nodes.len());
            assert_eq!(loaded.member_blocks, ms.member_blocks);
        }
        std::fs::remove_file(&path).ok();
    }
}
