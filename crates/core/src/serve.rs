//! `msc serve` — the query-serving layer over precomputed artifacts
//! (DESIGN.md §12).
//!
//! A compute run with `--hierarchy` is the expensive half of the
//! compute-once / query-many split; this module is the cheap half: load
//! the `.msc` complexes, the `.msh` cancellation hierarchies, and (when
//! present) the `.seg` label tables, then answer threshold queries by
//! prefix replay — never by re-running the pipeline.
//!
//! ## Protocol
//!
//! Line-delimited JSON over stdin/stdout ([`serve_lines`]) or TCP
//! ([`serve_tcp`]); one request object per line, one response object per
//! line, in request order. Requests name an `op`:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"datasets"}
//! {"op":"threshold","dataset":"d","block":0,"ordering":"difference","t":0.5}
//! {"op":"extrema","t":0.5,"kind":"max","top":5}
//! {"op":"arc-geometry","t":0.5,"arc":3}
//! {"op":"segment-stats","t":0.5}
//! {"op":"stats"}
//! {"op":"metrics"}     live-registry snapshot (counters/gauges/histograms)
//! {"op":"health"}      readiness/liveness summary
//! {"op":"quit"}        closes the connection
//! {"op":"shutdown"}    closes the connection and stops a TCP server
//! ```
//!
//! `dataset` defaults to the first loaded dataset, `block` to 0 and
//! `ordering` to `difference`. Errors come back as
//! `{"ok":false,"error":...}` and never tear the connection down.
//!
//! A TCP connection whose first bytes spell `GET ` or `HEAD` is served
//! as HTTP instead (sniffed without consuming them): `GET /metrics`
//! answers Prometheus text exposition format from the same live
//! registry, `GET /healthz` the health object — so one listener serves
//! both line-JSON clients and an ordinary scraper. HTTP scrapes are
//! counted in `serve_http_scrapes`, not as queries.
//!
//! ## Cache
//!
//! Materializations are memoized in an LRU cache keyed by `(dataset,
//! block, ordering, threshold)`. Concurrent requests for the same key
//! coalesce: the first computes, the rest block on a condition variable
//! and reuse the cached result (counted as `serve_coalesced`). The
//! cache tracks resident *bytes* per entry (capacity-based estimates) —
//! the substrate for evict-by-bytes budgeting — exported via the
//! `serve_cache_bytes` / `serve_dataset_bytes` gauges.
//!
//! ## Live metrics
//!
//! All serving state lives in an `msp_telemetry::live::Registry`:
//! atomic counters (`serve_queries` …), byte gauges, windowed QPS and
//! one log-bucketed latency histogram per query class — recording is
//! lock-free and memory is O(histogram buckets), never O(requests).
//! Requests slower than [`ServeConfig::slow_us`] emit a structured
//! `{"event":"slow_request",...}` JSON line on stderr (sampled by
//! [`ServeConfig::slow_sample`]). [`ServerCore::report`] folds the
//! counters plus a live snapshot into an `msp-telemetry` run report
//! (meta `qps`, `hit_rate`, per-class p50/p99, `live`).

use crate::pipeline::{check_persistence, msh_output_path, seg_output_path};
use msp_complex::{wire as cwire, MsComplex};
use msp_hierarchy::{
    compress_forwards, remap_tables, wire as hwire, Materialized, Ordering, SlotHierarchy,
};
use msp_segment::{wire as segwire, BlockSegmentation, DRAIN_ADDR, DRAIN_LABEL};
use msp_telemetry::{
    Counter, Json, LiveCounter, LiveGauge, LiveHistogram, RateWindow, Recorder, Registry, RunReport,
};
use msp_vmpi::fileio::{read_block_payload, read_footer};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrd};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A loading failure with enough context to name the artifact at fault.
#[derive(Debug)]
pub enum ServeError {
    Io {
        context: String,
        source: std::io::Error,
    },
    /// An artifact decoded but its content is unusable (bad wire bytes,
    /// mismatched block counts).
    Artifact { context: String, detail: String },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Artifact { context, detail } => write!(f, "{context}: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One loaded dataset: the base complexes of a compute run plus its
/// replay hierarchies and (optionally) its resolved label tables.
pub struct Dataset {
    pub name: String,
    /// Output-slot complexes in footer order.
    pub bases: Vec<MsComplex>,
    /// One hierarchy per output slot, same order.
    pub hierarchies: Vec<SlotHierarchy>,
    /// Resolved block segmentations in ascending block id; empty when
    /// the compute run had no `--segment`.
    pub segs: Vec<BlockSegmentation>,
}

impl Dataset {
    /// Estimated resident bytes of the loaded artifacts (bases +
    /// hierarchies + label tables), exported as `serve_dataset_bytes`.
    pub fn mem_bytes(&self) -> u64 {
        self.bases.iter().map(|b| b.mem_bytes()).sum::<u64>()
            + self.hierarchies.iter().map(|h| h.mem_bytes()).sum::<u64>()
            + self.segs.iter().map(|s| s.mem_bytes()).sum::<u64>()
    }
}

/// Load a dataset from `<msc_path>` + `<msc_path>.msh` (required) +
/// `<msc_path>.seg` (optional).
pub fn load_dataset(name: &str, msc_path: &Path) -> Result<Dataset, ServeError> {
    let io = |context: String| move |source: std::io::Error| ServeError::Io { context, source };
    let footer = read_footer(msc_path).map_err(io(format!("reading {}", msc_path.display())))?;
    let mut bases = Vec::with_capacity(footer.len());
    for e in &footer {
        let payload = read_block_payload(msc_path, e)
            .map_err(io(format!("reading {}", msc_path.display())))?;
        bases.push(
            cwire::deserialize(&payload).map_err(|e| ServeError::Artifact {
                context: format!("decoding {}", msc_path.display()),
                detail: e.to_string(),
            })?,
        );
    }
    let msh_path = msh_output_path(msc_path);
    let hfooter = read_footer(&msh_path).map_err(io(format!(
        "reading {} (was compute run with --hierarchy?)",
        msh_path.display()
    )))?;
    let mut hierarchies = Vec::with_capacity(hfooter.len());
    for e in &hfooter {
        let payload = read_block_payload(&msh_path, e)
            .map_err(io(format!("reading {}", msh_path.display())))?;
        hierarchies.push(
            hwire::deserialize(&payload).map_err(|e| ServeError::Artifact {
                context: format!("decoding {}", msh_path.display()),
                detail: e.to_string(),
            })?,
        );
    }
    if hierarchies.len() != bases.len() {
        return Err(ServeError::Artifact {
            context: format!("loading dataset {name:?}"),
            detail: format!(
                "{} complexes but {} hierarchies",
                bases.len(),
                hierarchies.len()
            ),
        });
    }
    let seg_path = seg_output_path(msc_path);
    let mut segs = Vec::new();
    if seg_path.exists() {
        let sfooter =
            read_footer(&seg_path).map_err(io(format!("reading {}", seg_path.display())))?;
        for e in &sfooter {
            let payload = read_block_payload(&seg_path, e)
                .map_err(io(format!("reading {}", seg_path.display())))?;
            segs.push(
                segwire::deserialize(&payload).map_err(|e| ServeError::Artifact {
                    context: format!("decoding {}", seg_path.display()),
                    detail: e,
                })?,
            );
        }
        segs.sort_by_key(|s| s.block_id);
    }
    Ok(Dataset {
        name: name.to_string(),
        bases,
        hierarchies,
        segs,
    })
}

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum cached materializations (LRU eviction beyond this).
    pub cache_capacity: usize,
    /// Worker threads of the stdio pipeline ([`serve_lines`] default).
    pub threads: usize,
    /// Requests at or above this latency (microseconds) log a
    /// `slow_request` event line on stderr; `None` disables the log.
    pub slow_us: Option<u64>,
    /// Log every Nth slow request (1 = all); sampling keeps a
    /// systematically slow deployment from flooding stderr.
    pub slow_sample: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_capacity: 32,
            threads: 4,
            slow_us: None,
            slow_sample: 1,
        }
    }
}

/// The cache key: everything a materialization depends on. Thresholds
/// key by bit pattern (NaN is rejected before a key is ever built).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    dataset: usize,
    slot: usize,
    ordering: Ordering,
    threshold_bits: u32,
}

/// Hand-rolled LRU over a `HashMap` with monotonic access stamps;
/// eviction scans for the stalest entry (capacities are tens, not
/// millions — O(n) eviction is noise next to a replay). Each entry
/// carries its estimated byte footprint so the resident total is
/// maintained incrementally — the substrate for evict-by-bytes.
struct Lru {
    capacity: usize,
    stamp: u64,
    /// Estimated resident bytes across all entries.
    bytes: u64,
    map: HashMap<CacheKey, (Arc<Materialized>, u64, u64)>,
}

impl Lru {
    fn new(capacity: usize) -> Lru {
        Lru {
            capacity: capacity.max(1),
            stamp: 0,
            bytes: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<Materialized>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.map.get_mut(key).map(|(v, s, _)| {
            *s = stamp;
            v.clone()
        })
    }

    fn put(&mut self, key: CacheKey, value: Arc<Materialized>) {
        self.stamp += 1;
        let bytes = value.mem_bytes();
        if let Some((_, _, old)) = self.map.insert(key, (value, self.stamp, bytes)) {
            self.bytes -= old;
        }
        self.bytes += bytes;
        while self.map.len() > self.capacity {
            let stalest = self
                .map
                .iter()
                .min_by_key(|(_, (_, s, _))| *s)
                .map(|(k, _)| *k)
                .expect("nonempty over capacity");
            if let Some((_, _, b)) = self.map.remove(&stalest) {
                self.bytes -= b;
            }
        }
    }
}

/// The fixed query-class taxonomy: one latency histogram per class is
/// registered up front, so recording never takes the registry lock.
const QUERY_CLASSES: [&str; 12] = [
    "arc-geometry",
    "datasets",
    "extrema",
    "health",
    "invalid",
    "metrics",
    "ping",
    "quit",
    "segment-stats",
    "shutdown",
    "stats",
    "threshold",
];

/// QPS windows exported as `serve_qps_window{window=...}` gauges.
const QPS_WINDOWS: [(u64, &str); 3] = [(1, "1s"), (10, "10s"), (60, "60s")];

/// The live serving metrics: a registry plus typed handles to every
/// series the hot path records into. All recording is lock-free
/// (atomics behind `Arc`s); the registry mutex is touched only when
/// rendering a scrape. Memory is a fixed set of counters/gauges plus
/// one bounded histogram per query class — O(buckets), not O(requests).
struct ServeMetrics {
    registry: Registry,
    queries: Arc<LiveCounter>,
    hits: Arc<LiveCounter>,
    misses: Arc<LiveCounter>,
    coalesced: Arc<LiveCounter>,
    errors: Arc<LiveCounter>,
    slow: Arc<LiveCounter>,
    scrapes: Arc<LiveCounter>,
    uptime: Arc<LiveGauge>,
    qps: Vec<(u64, Arc<LiveGauge>)>,
    cache_resident: Arc<LiveGauge>,
    cache_bytes: Arc<LiveGauge>,
    classes: Vec<(&'static str, Arc<LiveHistogram>)>,
    rate: RateWindow,
    slow_seen: AtomicU64,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        let registry = Registry::new();
        let c = |name, help| registry.counter(name, help, &[]);
        let queries = c("serve_queries", "Requests handled (all classes)");
        let hits = c("serve_hits", "Materialization cache hits");
        let misses = c("serve_misses", "Materialization cache misses (replays)");
        let coalesced = c(
            "serve_coalesced",
            "Requests that piggybacked on an in-flight replay",
        );
        let errors = c("serve_errors", "Requests answered with ok:false");
        let slow = c(
            "serve_slow_requests",
            "Requests at or above the slow threshold",
        );
        let scrapes = c(
            "serve_http_scrapes",
            "HTTP requests served (metrics/health)",
        );
        let uptime = registry.gauge(
            "serve_uptime_seconds",
            "Seconds since the server started",
            &[],
        );
        let qps = QPS_WINDOWS
            .iter()
            .map(|&(secs, label)| {
                (
                    secs,
                    registry.gauge(
                        "serve_qps_window",
                        "Queries per second over a trailing window",
                        &[("window", label)],
                    ),
                )
            })
            .collect();
        let cache_resident = registry.gauge(
            "serve_cache_resident",
            "Materializations resident in the LRU cache",
            &[],
        );
        let cache_bytes = registry.gauge(
            "serve_cache_bytes",
            "Estimated resident bytes of cached materializations",
            &[],
        );
        let classes = QUERY_CLASSES
            .iter()
            .map(|&class| {
                (
                    class,
                    registry.histogram(
                        "serve_latency_us",
                        "Request latency in microseconds (log-bucketed)",
                        &[("class", class)],
                    ),
                )
            })
            .collect();
        ServeMetrics {
            registry,
            queries,
            hits,
            misses,
            coalesced,
            errors,
            slow,
            scrapes,
            uptime,
            qps,
            cache_resident,
            cache_bytes,
            classes,
            rate: RateWindow::new(),
            slow_seen: AtomicU64::new(0),
        }
    }

    fn class_hist(&self, class: &str) -> &LiveHistogram {
        self.classes
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, h)| h.as_ref())
            .unwrap_or(&self.classes[0].1)
    }

    /// Resident footprint of the metrics layer itself — a constant,
    /// asserted by the bounded-memory test.
    fn mem_bytes(&self) -> u64 {
        std::mem::size_of::<ServeMetrics>() as u64
            + self.classes.iter().map(|(_, h)| h.mem_bytes()).sum::<u64>()
    }
}

/// The transport-independent server: datasets, cache, coalescing map,
/// live metrics. Shared across worker/connection threads by reference.
pub struct ServerCore {
    datasets: Vec<Dataset>,
    by_name: HashMap<String, usize>,
    config: ServeConfig,
    cache: Mutex<Lru>,
    inflight: Mutex<HashSet<CacheKey>>,
    inflight_cv: Condvar,
    metrics: ServeMetrics,
    started: Instant,
    shutdown: AtomicBool,
}

impl ServerCore {
    pub fn new(datasets: Vec<Dataset>, config: ServeConfig) -> ServerCore {
        let by_name = datasets
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), i))
            .collect();
        let metrics = ServeMetrics::new();
        for d in &datasets {
            metrics
                .registry
                .gauge(
                    "serve_dataset_bytes",
                    "Estimated resident bytes of a loaded dataset's artifacts",
                    &[("dataset", &d.name)],
                )
                .set_u64(d.mem_bytes());
        }
        ServerCore {
            datasets,
            by_name,
            config,
            cache: Mutex::new(Lru::new(config.cache_capacity)),
            inflight: Mutex::new(HashSet::new()),
            inflight_cv: Condvar::new(),
            metrics,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Has some connection asked the whole server to stop?
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(AtomicOrd::SeqCst)
    }

    /// Ask the server to stop, exactly as a `shutdown` op would: the
    /// TCP accept loop notices within its poll interval. Lets a signal
    /// handler (Ctrl-C in `msc serve`) drain through the same path.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, AtomicOrd::SeqCst);
    }

    /// Handle one request line. Returns the compact single-line JSON
    /// response and whether the connection should close afterwards.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        let t0 = Instant::now();
        let (class, result, close) = self.dispatch(line);
        let us = t0.elapsed().as_micros() as u64;
        let m = &self.metrics;
        m.queries.inc();
        m.rate.record();
        m.class_hist(class).record(us);
        let json = match result {
            Ok(j) => j,
            Err(msg) => {
                m.errors.inc();
                Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::str(msg))])
            }
        };
        if let Some(threshold) = self.config.slow_us {
            if us >= threshold {
                m.slow.inc();
                let seen = m.slow_seen.fetch_add(1, AtomicOrd::Relaxed);
                if seen.is_multiple_of(self.config.slow_sample.max(1)) {
                    let mut req = line.trim().to_string();
                    if req.len() > 256 {
                        let mut cut = 256;
                        while !req.is_char_boundary(cut) {
                            cut -= 1;
                        }
                        req.truncate(cut);
                    }
                    eprintln!(
                        "{}",
                        compact(&Json::obj(vec![
                            ("event", Json::str("slow_request")),
                            ("class", Json::str(class)),
                            ("us", Json::U64(us)),
                            ("request", Json::str(req)),
                        ]))
                    );
                }
            }
        }
        (compact(&json), close)
    }

    fn dispatch(&self, line: &str) -> (&'static str, Result<Json, String>, bool) {
        let req = match Json::parse(line.trim()) {
            Ok(Json::Obj(pairs)) => pairs,
            Ok(_) => {
                return (
                    "invalid",
                    Err("request must be a JSON object".to_string()),
                    false,
                )
            }
            Err(e) => return ("invalid", Err(format!("bad request: {e}")), false),
        };
        let Some(op) = get_str(&req, "op") else {
            return ("invalid", Err("missing \"op\"".to_string()), false);
        };
        match op {
            "ping" => ("ping", Ok(ok_obj("ping", vec![])), false),
            "datasets" => ("datasets", Ok(self.q_datasets()), false),
            "threshold" => ("threshold", self.q_threshold(&req), false),
            "extrema" => ("extrema", self.q_extrema(&req), false),
            "arc-geometry" => ("arc-geometry", self.q_arc_geometry(&req), false),
            "segment-stats" => ("segment-stats", self.q_segment_stats(&req), false),
            "stats" => ("stats", Ok(self.stats_json()), false),
            "metrics" => ("metrics", Ok(self.metrics_json()), false),
            "health" => ("health", Ok(self.health_json()), false),
            "quit" => ("quit", Ok(ok_obj("quit", vec![])), true),
            "shutdown" => {
                self.request_shutdown();
                ("shutdown", Ok(ok_obj("shutdown", vec![])), true)
            }
            other => ("invalid", Err(format!("unknown op {other:?}")), false),
        }
    }

    /// Resolve the `(dataset, block)` a request targets.
    fn target(&self, req: &[(String, Json)]) -> Result<(usize, usize), String> {
        let di = match get_str(req, "dataset") {
            Some(name) => *self
                .by_name
                .get(name)
                .ok_or_else(|| format!("unknown dataset {name:?}"))?,
            None => 0,
        };
        let ds = self
            .datasets
            .get(di)
            .ok_or_else(|| "no datasets loaded".to_string())?;
        let slot = get_u64(req, "block").unwrap_or(0) as usize;
        if slot >= ds.bases.len() {
            return Err(format!(
                "block {slot} out of range ({} block(s))",
                ds.bases.len()
            ));
        }
        Ok((di, slot))
    }

    fn ordering_and_t(&self, req: &[(String, Json)]) -> Result<(Ordering, f32), String> {
        let ordering: Ordering = get_str(req, "ordering").unwrap_or("difference").parse()?;
        let t = get_f64(req, "t").ok_or_else(|| "missing threshold \"t\"".to_string())? as f32;
        let t = check_persistence(t).map_err(|e| format!("bad threshold \"t\": {e}"))?;
        Ok((ordering, t))
    }

    /// The cached, coalescing materialization path.
    fn materialized(
        &self,
        di: usize,
        slot: usize,
        ordering: Ordering,
        t: f32,
    ) -> Result<Arc<Materialized>, String> {
        let key = CacheKey {
            dataset: di,
            slot,
            ordering,
            threshold_bits: t.to_bits(),
        };
        let mut waited = false;
        loop {
            if let Some(v) = self.cache.lock().unwrap().get(&key) {
                self.metrics.hits.inc();
                if waited {
                    self.metrics.coalesced.inc();
                }
                return Ok(v);
            }
            let busy = self.inflight.lock().unwrap();
            let mut busy = busy;
            if busy.insert(key) {
                break; // this request owns the computation
            }
            // An identical materialization is in flight: piggyback on it
            // instead of recomputing or spinning on the cache.
            waited = true;
            let _unused = self.inflight_cv.wait(busy).unwrap();
        }
        let ds = &self.datasets[di];
        let result = ds.hierarchies[slot]
            .materialize(&ds.bases[slot], ordering, t)
            .map_err(|e| e.to_string());
        let out = match result {
            Ok(m) => {
                let m = Arc::new(m);
                self.cache.lock().unwrap().put(key, m.clone());
                self.metrics.misses.inc();
                if waited {
                    self.metrics.coalesced.inc();
                }
                Ok(m)
            }
            Err(e) => Err(format!("materialize failed: {e}")),
        };
        let mut busy = self.inflight.lock().unwrap();
        busy.remove(&key);
        drop(busy);
        self.inflight_cv.notify_all();
        out
    }

    fn q_datasets(&self) -> Json {
        let items = self
            .datasets
            .iter()
            .map(|d| {
                let records: usize = d
                    .hierarchies
                    .iter()
                    .map(|h| h.difference.len() + h.count.as_ref().map_or(0, |c| c.len()))
                    .sum();
                let orderings = d
                    .hierarchies
                    .first()
                    .map(|h| h.orderings())
                    .unwrap_or_default();
                Json::obj(vec![
                    ("name", Json::str(d.name.clone())),
                    ("blocks", Json::U64(d.bases.len() as u64)),
                    (
                        "orderings",
                        Json::Arr(orderings.iter().map(|o| Json::str(o.key())).collect()),
                    ),
                    ("records", Json::U64(records as u64)),
                    ("segmented", Json::Bool(!d.segs.is_empty())),
                ])
            })
            .collect();
        ok_obj("datasets", vec![("datasets", Json::Arr(items))])
    }

    fn q_threshold(&self, req: &[(String, Json)]) -> Result<Json, String> {
        let (di, slot) = self.target(req)?;
        let (ordering, t) = self.ordering_and_t(req)?;
        let m = self.materialized(di, slot, ordering, t)?;
        let c = m.complex.node_census();
        Ok(ok_obj(
            "threshold",
            vec![
                ("block", Json::U64(slot as u64)),
                ("ordering", Json::str(ordering.key())),
                ("t", Json::F64(t as f64)),
                ("applied", Json::U64(m.applied as u64)),
                ("nodes", Json::U64(m.complex.n_live_nodes())),
                ("arcs", Json::U64(m.complex.n_live_arcs())),
                (
                    "census",
                    Json::Arr(c.iter().map(|&n| Json::U64(n)).collect()),
                ),
            ],
        ))
    }

    fn q_extrema(&self, req: &[(String, Json)]) -> Result<Json, String> {
        let (di, slot) = self.target(req)?;
        let (ordering, t) = self.ordering_and_t(req)?;
        let kind = get_str(req, "kind").unwrap_or("max");
        let index = match kind {
            "max" => 3u8,
            "min" => 0u8,
            other => return Err(format!("unknown kind {other:?} (want min|max)")),
        };
        let top = get_u64(req, "top").unwrap_or(10) as usize;
        let m = self.materialized(di, slot, ordering, t)?;
        let mut extrema: Vec<(u64, f32)> = m
            .complex
            .nodes
            .iter()
            .filter(|n| n.alive && n.index == index)
            .map(|n| (n.addr, n.value))
            .collect();
        // maxima strongest-first, minima deepest-first; addr breaks ties
        extrema.sort_by(|a, b| {
            let ord = a.1.partial_cmp(&b.1).expect("finite node values");
            if index == 3 {
                ord.reverse().then(a.0.cmp(&b.0))
            } else {
                ord.then(a.0.cmp(&b.0))
            }
        });
        extrema.truncate(top);
        Ok(ok_obj(
            "extrema",
            vec![
                ("block", Json::U64(slot as u64)),
                ("kind", Json::str(kind)),
                (
                    "extrema",
                    Json::Arr(
                        extrema
                            .iter()
                            .map(|&(addr, value)| {
                                Json::obj(vec![
                                    ("addr", Json::U64(addr)),
                                    ("value", Json::F64(value as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ],
        ))
    }

    fn q_arc_geometry(&self, req: &[(String, Json)]) -> Result<Json, String> {
        let (di, slot) = self.target(req)?;
        let (ordering, t) = self.ordering_and_t(req)?;
        let arc = get_u64(req, "arc").ok_or_else(|| "missing arc index \"arc\"".to_string())?;
        let m = self.materialized(di, slot, ordering, t)?;
        let a = m
            .complex
            .arcs
            .get(arc as usize)
            .filter(|a| a.alive)
            .ok_or_else(|| format!("no live arc {arc}"))?;
        let node = |id: u32| {
            let n = &m.complex.nodes[id as usize];
            Json::obj(vec![
                ("addr", Json::U64(n.addr)),
                ("index", Json::U64(n.index as u64)),
                ("value", Json::F64(n.value as f64)),
            ])
        };
        let cells = m.complex.flatten_geom(a.geom);
        Ok(ok_obj(
            "arc-geometry",
            vec![
                ("block", Json::U64(slot as u64)),
                ("arc", Json::U64(arc)),
                ("upper", node(a.upper)),
                ("lower", node(a.lower)),
                (
                    "cells",
                    Json::Arr(cells.iter().map(|&c| Json::U64(c)).collect()),
                ),
            ],
        ))
    }

    fn q_segment_stats(&self, req: &[(String, Json)]) -> Result<Json, String> {
        let (di, slot) = self.target(req)?;
        let (ordering, t) = self.ordering_and_t(req)?;
        let ds = &self.datasets[di];
        if ds.segs.is_empty() {
            return Err("dataset has no segmentation (compute run without --segment)".to_string());
        }
        let m = self.materialized(di, slot, ordering, t)?;
        // Follow the replayed cancellations through the label tables:
        // compress the prefix's forward chains, rewrite the member
        // blocks' tables, then census the surviving regions.
        let resolved = compress_forwards(&m.forwards);
        let members = &ds.bases[slot].member_blocks;
        let mut descending: HashMap<u64, u64> = HashMap::new();
        let mut ascending: HashMap<u64, u64> = HashMap::new();
        let (mut vertices, mut voxels, mut drained) = (0u64, 0u64, 0u64);
        for seg in ds.segs.iter().filter(|s| members.contains(&s.block_id)) {
            let mut seg = seg.clone();
            remap_tables(&mut seg, &resolved);
            vertices += seg.min_label.len() as u64;
            voxels += seg.max_label.len() as u64;
            for &l in &seg.min_label {
                match seg.mins.get(l as usize) {
                    Some(&a) if l != DRAIN_LABEL && a != DRAIN_ADDR => {
                        *descending.entry(a).or_insert(0) += 1;
                    }
                    _ => drained += 1,
                }
            }
            for &l in &seg.max_label {
                match seg.maxs.get(l as usize) {
                    Some(&a) if l != DRAIN_LABEL && a != DRAIN_ADDR => {
                        *ascending.entry(a).or_insert(0) += 1;
                    }
                    _ => drained += 1,
                }
            }
        }
        let largest = |m: &HashMap<u64, u64>| m.values().max().copied().unwrap_or(0);
        Ok(ok_obj(
            "segment-stats",
            vec![
                ("block", Json::U64(slot as u64)),
                ("ordering", Json::str(ordering.key())),
                ("t", Json::F64(t as f64)),
                ("descending_regions", Json::U64(descending.len() as u64)),
                ("ascending_regions", Json::U64(ascending.len() as u64)),
                ("largest_descending", Json::U64(largest(&descending))),
                ("largest_ascending", Json::U64(largest(&ascending))),
                ("vertices", Json::U64(vertices)),
                ("voxels", Json::U64(voxels)),
                ("drained", Json::U64(drained)),
            ],
        ))
    }

    /// Bring the derived gauges (uptime, windowed QPS, cache bytes) up
    /// to date; called before every scrape/snapshot so recording paths
    /// never have to maintain them.
    fn refresh_gauges(&self) {
        let m = &self.metrics;
        m.uptime.set(self.started.elapsed().as_secs_f64());
        for (secs, gauge) in &m.qps {
            gauge.set(m.rate.rate(*secs));
        }
        let cache = self.cache.lock().unwrap();
        m.cache_resident.set_u64(cache.map.len() as u64);
        m.cache_bytes.set_u64(cache.bytes);
    }

    fn counts(&self) -> (u64, u64, u64) {
        let m = &self.metrics;
        (m.queries.get(), m.hits.get(), m.misses.get())
    }

    /// Point-in-time statistics as a response object (the pre-live
    /// `stats` op shape, now derived from the registry).
    pub fn stats_json(&self) -> Json {
        let (queries, hits, misses) = self.counts();
        let elapsed = self.started.elapsed().as_secs_f64();
        let qps = if elapsed > 0.0 {
            queries as f64 / elapsed
        } else {
            0.0
        };
        let lookups = hits + misses;
        let hit_rate = if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        };
        ok_obj(
            "stats",
            vec![
                ("queries", Json::U64(queries)),
                ("hits", Json::U64(hits)),
                ("misses", Json::U64(misses)),
                ("coalesced", Json::U64(self.metrics.coalesced.get())),
                ("errors", Json::U64(self.metrics.errors.get())),
                ("qps", Json::F64(qps)),
                ("hit_rate", Json::F64(hit_rate)),
                ("classes", classes_json(&self.metrics.classes)),
            ],
        )
    }

    /// The `metrics` op: the full live-registry snapshot. Counter keys
    /// are exactly the Prometheus family names, so a scrape of
    /// `/metrics` and this reply cross-check one-to-one.
    pub fn metrics_json(&self) -> Json {
        self.refresh_gauges();
        let Json::Obj(snapshot) = self.metrics.registry.snapshot_json() else {
            unreachable!("snapshot_json returns an object")
        };
        let mut pairs = vec![
            ("ok".to_string(), Json::Bool(true)),
            ("op".to_string(), Json::str("metrics")),
        ];
        pairs.extend(snapshot);
        Json::Obj(pairs)
    }

    /// The `health` op / `GET /healthz` body: liveness plus enough
    /// context for a load balancer to act on.
    pub fn health_json(&self) -> Json {
        let stopping = self.is_shutdown();
        ok_obj(
            "health",
            vec![
                (
                    "status",
                    Json::str(if stopping { "stopping" } else { "ok" }),
                ),
                ("uptime_s", Json::F64(self.started.elapsed().as_secs_f64())),
                ("datasets", Json::U64(self.datasets.len() as u64)),
                (
                    "cache_resident",
                    Json::U64(self.cache.lock().unwrap().map.len() as u64),
                ),
            ],
        )
    }

    /// `GET /metrics` body: Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        self.refresh_gauges();
        self.metrics.registry.render_prometheus()
    }

    /// Resident footprint of the serving statistics — constant no
    /// matter how many requests have been handled.
    pub fn metrics_mem_bytes(&self) -> u64 {
        self.metrics.mem_bytes()
    }

    /// Fold the serving statistics into an `msp-telemetry` run report:
    /// `serve_*` counters on rank 0, plus `qps` / `hit_rate` /
    /// per-class latency quantiles and the full live snapshot in the
    /// meta. The quantile invariant (p50 ≤ p99 per class) is asserted
    /// here — a violation is a bug in the latency accounting, not a
    /// data property.
    pub fn report(&self, name: &str) -> RunReport {
        let (queries, hits, misses) = self.counts();
        let mut rec = Recorder::new(0);
        rec.add(Counter::ServeQueries, queries);
        rec.add(Counter::ServeHits, hits);
        rec.add(Counter::ServeMisses, misses);
        rec.add(Counter::ServeCoalesced, self.metrics.coalesced.get());
        rec.add(Counter::ServeErrors, self.metrics.errors.get());
        let rank = rec.finish();
        let elapsed = self.started.elapsed().as_secs_f64();
        let qps = if elapsed > 0.0 {
            queries as f64 / elapsed
        } else {
            0.0
        };
        let lookups = hits + misses;
        let hit_rate = if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        };
        for (class, hist) in &self.metrics.classes {
            assert!(
                hist.quantile(50) <= hist.quantile(99),
                "latency quantiles out of order for {class}"
            );
        }
        self.refresh_gauges();
        RunReport::from_ranks(name, vec![rank])
            .with_meta("qps", Json::F64(qps))
            .with_meta("hit_rate", Json::F64(hit_rate))
            .with_meta("classes", classes_json(&self.metrics.classes))
            .with_meta("live", self.metrics.registry.snapshot_json())
    }
}

/// Per-class latency summaries from the live histograms; classes the
/// server never saw are omitted (matching the pre-live shape). The
/// fixed class array is alphabetical, so rendering is deterministic.
fn classes_json(classes: &[(&'static str, Arc<LiveHistogram>)]) -> Json {
    Json::Obj(
        classes
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(name, h)| {
                let snap = h.snapshot();
                (
                    name.to_string(),
                    Json::obj(vec![
                        ("count", Json::U64(snap.count)),
                        ("p50_us", Json::U64(snap.quantile(50))),
                        ("p99_us", Json::U64(snap.quantile(99))),
                    ]),
                )
            })
            .collect(),
    )
}

fn ok_obj(op: &str, rest: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true)), ("op", Json::str(op))];
    pairs.extend(rest);
    Json::obj(pairs)
}

fn get<'a>(req: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    req.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str<'a>(req: &'a [(String, Json)], key: &str) -> Option<&'a str> {
    match get(req, key) {
        Some(Json::Str(s)) => Some(s),
        _ => None,
    }
}

fn get_u64(req: &[(String, Json)], key: &str) -> Option<u64> {
    match get(req, key) {
        Some(Json::U64(n)) => Some(*n),
        _ => None,
    }
}

fn get_f64(req: &[(String, Json)], key: &str) -> Option<f64> {
    match get(req, key) {
        Some(Json::F64(v)) => Some(*v),
        Some(Json::U64(n)) => Some(*n as f64),
        Some(Json::I64(n)) => Some(*n as f64),
        _ => None,
    }
}

/// Render a [`Json`] value on one line (the pretty renderer inserts
/// newlines, which would break line-delimited framing).
fn compact(j: &Json) -> String {
    let mut out = String::new();
    compact_into(j, &mut out);
    out
}

fn compact_into(j: &Json, out: &mut String) {
    match j {
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&Json::str(k.clone()).to_string());
                out.push(':');
                compact_into(v, out);
            }
            out.push('}');
        }
        // scalars never render with newlines
        other => out.push_str(&other.to_string()),
    }
}

/// Does this request line ask to stop reading (quit/shutdown)? Used by
/// the stdio reader so a batch ending in `{"op":"quit"}` terminates
/// without waiting for EOF.
fn wants_close(line: &str) -> bool {
    if let Ok(Json::Obj(pairs)) = Json::parse(line.trim()) {
        if let Some(op) = get_str(&pairs, "op") {
            return op == "quit" || op == "shutdown";
        }
    }
    false
}

/// State of the in-order response writer: workers finish in any order
/// but write strictly by sequence number.
struct OutState<W> {
    next: u64,
    writer: W,
    error: Option<std::io::Error>,
}

/// Serve a line-delimited session from any reader/writer pair with a
/// worker pool: the calling thread reads and sequences requests,
/// `threads` workers process them (cache coalescing happens here), and
/// responses are written in request order via a ticket on the shared
/// writer. Stops at EOF or after a `quit`/`shutdown` request.
pub fn serve_lines<R, W>(
    core: &ServerCore,
    reader: R,
    writer: W,
    threads: usize,
) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send,
{
    let threads = threads.max(1);
    type Jobs = Mutex<(VecDeque<(u64, String)>, bool)>;
    let jobs: Jobs = Mutex::new((VecDeque::new(), false));
    let jobs_cv = Condvar::new();
    let out = Mutex::new(OutState {
        next: 0,
        writer,
        error: None,
    });
    let out_cv = Condvar::new();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let job = {
                    let mut g = jobs.lock().unwrap();
                    loop {
                        if let Some(j) = g.0.pop_front() {
                            break Some(j);
                        }
                        if g.1 {
                            break None;
                        }
                        g = jobs_cv.wait(g).unwrap();
                    }
                };
                let Some((seq, line)) = job else { return };
                let (resp, _close) = core.handle_line(&line);
                let mut g = out.lock().unwrap();
                while g.next != seq {
                    g = out_cv.wait(g).unwrap();
                }
                if g.error.is_none() {
                    let r = writeln!(g.writer, "{resp}").and_then(|()| g.writer.flush());
                    if let Err(e) = r {
                        g.error = Some(e);
                    }
                }
                g.next += 1;
                out_cv.notify_all();
            });
        }
        let mut seq = 0u64;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let stop = wants_close(&line);
            jobs.lock().unwrap().0.push_back((seq, line));
            jobs_cv.notify_one();
            seq += 1;
            if stop {
                break;
            }
        }
        jobs.lock().unwrap().1 = true;
        jobs_cv.notify_all();
    });
    let out = out.into_inner().unwrap();
    match out.error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Serve TCP connections until some client sends `{"op":"shutdown"}`.
/// One thread per connection; each connection is its own line-delimited
/// session (concurrent connections still share the cache and coalesce).
pub fn serve_tcp(core: &ServerCore, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|s| loop {
        if core.is_shutdown() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                s.spawn(move || {
                    let _ = serve_connection(core, stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    })
}

fn serve_connection(core: &ServerCore, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    if sniff_http(&stream)? {
        return serve_http(core, stream);
    }
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (resp, close) = core.handle_line(&line);
        writeln!(writer, "{resp}")?;
        writer.flush()?;
        if close {
            break;
        }
    }
    Ok(())
}

/// Peek (without consuming) the connection's first bytes: `GET ` or
/// `HEAD` means an HTTP scraper, anything else stays line-JSON. Peeking
/// blocks until the client sends its first bytes — exactly as the
/// line reader would.
fn sniff_http(stream: &TcpStream) -> std::io::Result<bool> {
    let mut first = [0u8; 4];
    let got = loop {
        let n = stream.peek(&mut first)?;
        if n >= first.len() || n == 0 || first[..n].contains(&b'\n') {
            break n;
        }
        // a short first packet ("G", "{"): wait for the rest
        std::thread::sleep(Duration::from_millis(1));
    };
    Ok(got >= 4 && (&first == b"GET " || &first == b"HEAD"))
}

/// One-shot HTTP answer on a sniffed connection: `GET /metrics` is the
/// Prometheus exposition, `GET /healthz` the health object; everything
/// else is 404. Headers are read to the blank line and ignored; the
/// response always closes the connection.
fn serve_http(core: &ServerCore, mut stream: TcpStream) -> std::io::Result<()> {
    core.metrics.scrapes.inc();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    let (status, ctype, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            core.prometheus_text(),
        ),
        "/healthz" => (
            "200 OK",
            "application/json",
            compact(&core.health_json()) + "\n",
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    if method != "HEAD" {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_parallel, Input, PipelineParams};
    use crate::plan::MergePlan;
    use msp_grid::Dims;
    use std::io::{Cursor, Read};
    use std::sync::Barrier;

    /// Build a real dataset by running the pipeline with artifacts on
    /// disk, loading them back, and cleaning up.
    fn dataset(tag: &str) -> Dataset {
        let mut path = std::env::temp_dir();
        path.push(format!("msp_serve_{}_{tag}.msc", std::process::id()));
        let input = Input::Memory(std::sync::Arc::new(msp_synth::white_noise(
            Dims::cube(9),
            17,
        )));
        let params = PipelineParams {
            persistence_frac: 0.0,
            plan: MergePlan::full_merge(8),
            segment: true,
            hierarchy: true,
            ..Default::default()
        };
        run_parallel(&input, 2, 8, &params, Some(&path)).unwrap();
        let ds = load_dataset("noise", &path).unwrap();
        for p in [path.clone(), seg_output_path(&path), msh_output_path(&path)] {
            std::fs::remove_file(p).ok();
        }
        ds
    }

    fn parsed(line: &str) -> Vec<(String, Json)> {
        match Json::parse(line).unwrap() {
            Json::Obj(pairs) => pairs,
            other => panic!("response must be an object, got {other:?}"),
        }
    }

    fn field<'a>(pairs: &'a [(String, Json)], key: &str) -> &'a Json {
        get(pairs, key).unwrap_or_else(|| panic!("missing {key}"))
    }

    #[test]
    fn queries_answer_and_cache() {
        let core = ServerCore::new(vec![dataset("basic")], ServeConfig::default());
        let t = {
            let h = &core.datasets[0].hierarchies[0];
            h.difference[h.difference.len() / 2].key as f64
        };
        let q = format!("{{\"op\":\"threshold\",\"t\":{t}}}");
        let (r1, close) = core.handle_line(&q);
        assert!(!close);
        let p1 = parsed(&r1);
        assert_eq!(field(&p1, "ok"), &Json::Bool(true));
        assert!(matches!(field(&p1, "applied"), Json::U64(n) if *n > 0));
        // identical request: served from cache, byte-identical response
        let (r2, _) = core.handle_line(&q);
        assert_eq!(r1, r2);
        // distinct query classes against the same materialization
        let (re, _) = core.handle_line(&format!("{{\"op\":\"extrema\",\"t\":{t},\"top\":3}}"));
        let pe = parsed(&re);
        assert_eq!(field(&pe, "ok"), &Json::Bool(true));
        let Json::Arr(ext) = field(&pe, "extrema") else {
            panic!("extrema array")
        };
        assert!(!ext.is_empty() && ext.len() <= 3);
        let (rs, _) = core.handle_line(&format!("{{\"op\":\"segment-stats\",\"t\":{t}}}"));
        let ps = parsed(&rs);
        assert_eq!(field(&ps, "ok"), &Json::Bool(true), "{rs}");
        assert!(matches!(field(&ps, "descending_regions"), Json::U64(n) if *n > 0));
        // find a live arc index from the materialized complex, then ask
        // for its geometry
        let (_, slot) = core.target(&[]).unwrap();
        let m = core
            .materialized(0, slot, Ordering::Difference, t as f32)
            .unwrap();
        let arc = m.complex.arcs.iter().position(|a| a.alive).unwrap();
        let (ra, _) = core.handle_line(&format!(
            "{{\"op\":\"arc-geometry\",\"t\":{t},\"arc\":{arc}}}"
        ));
        let pa = parsed(&ra);
        assert_eq!(field(&pa, "ok"), &Json::Bool(true), "{ra}");
        assert!(matches!(field(&pa, "cells"), Json::Arr(c) if !c.is_empty()));
        // stats reflect the cache behavior: repeats hit
        let (rst, _) = core.handle_line("{\"op\":\"stats\"}");
        let pst = parsed(&rst);
        assert!(matches!(field(&pst, "hits"), Json::U64(n) if *n > 0));
        assert!(matches!(field(&pst, "misses"), Json::U64(n) if *n > 0));
        assert!(matches!(field(&pst, "hit_rate"), Json::F64(r) if *r > 0.0));
        // and the telemetry report carries the same counters
        let report = core.report("serve_test");
        assert!(report.counter_total("serve_queries") > 0);
        assert!(report.counter_total("serve_hits") > 0);
        assert_eq!(report.counter_total("serve_errors"), 0);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let core = ServerCore::new(vec![dataset("errs")], ServeConfig::default());
        for bad in [
            "not json at all",
            "[1,2,3]",
            "{\"no\":\"op\"}",
            "{\"op\":\"teleport\"}",
            "{\"op\":\"threshold\"}",                        // missing t
            "{\"op\":\"threshold\",\"t\":0.1,\"block\":99}", // out of range
            "{\"op\":\"threshold\",\"t\":0.1,\"ordering\":\"bogus\"}",
            "{\"op\":\"arc-geometry\",\"t\":0.1,\"arc\":123456}",
            "{\"op\":\"extrema\",\"t\":0.1,\"kind\":\"saddle\"}",
            "{\"op\":\"threshold\",\"t\":0.1,\"dataset\":\"nope\"}",
        ] {
            let (resp, close) = core.handle_line(bad);
            let p = parsed(&resp);
            assert_eq!(field(&p, "ok"), &Json::Bool(false), "{bad} -> {resp}");
            assert!(!close);
        }
        let (resp, _) = core.handle_line("{\"op\":\"stats\"}");
        let p = parsed(&resp);
        assert!(
            matches!(field(&p, "errors"), Json::U64(n) if *n == 10),
            "{resp}"
        );
        // the session survives: a good query still answers
        let (ok, _) = core.handle_line("{\"op\":\"ping\"}");
        assert_eq!(field(&parsed(&ok), "ok"), &Json::Bool(true));
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let core = ServerCore::new(vec![dataset("coalesce")], ServeConfig::default());
        let n = 8;
        let barrier = Barrier::new(n);
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| {
                    barrier.wait();
                    let m = core.materialized(0, 0, Ordering::Difference, 0.25).unwrap();
                    assert!(m.complex.n_live_nodes() > 0);
                });
            }
        });
        let (hits, misses) = (core.metrics.hits.get(), core.metrics.misses.get());
        assert_eq!(hits + misses, n as u64);
        assert_eq!(misses, 1, "one computation for {n} identical requests");
        assert_eq!(hits, n as u64 - 1);
    }

    #[test]
    fn metrics_and_health_ops_report_live_state() {
        let core = ServerCore::new(vec![dataset("metrics")], ServeConfig::default());
        let t = core.datasets[0].hierarchies[0].difference[0].key as f64;
        for _ in 0..3 {
            core.handle_line(&format!("{{\"op\":\"threshold\",\"t\":{t}}}"));
        }
        core.handle_line("{\"op\":\"bogus\"}");
        let (resp, close) = core.handle_line("{\"op\":\"metrics\"}");
        assert!(!close);
        let p = parsed(&resp);
        assert_eq!(field(&p, "ok"), &Json::Bool(true));
        let counters = field(&p, "counters");
        let Json::Obj(c) = counters else {
            panic!("counters object")
        };
        // 3 thresholds + 1 invalid; the in-flight metrics op is not yet
        // counted when its own snapshot is taken
        assert_eq!(get(c, "serve_queries"), Some(&Json::U64(4)));
        assert_eq!(get(c, "serve_errors"), Some(&Json::U64(1)));
        assert_eq!(get(c, "serve_hits"), Some(&Json::U64(2)));
        assert_eq!(get(c, "serve_misses"), Some(&Json::U64(1)));
        let Json::Obj(gauges) = field(&p, "gauges") else {
            panic!("gauges object")
        };
        // byte gauges are live and nonzero once something is cached
        assert!(
            matches!(get(gauges, "serve_cache_bytes"), Some(Json::U64(b)) if *b > 0),
            "{resp}"
        );
        assert!(
            matches!(get(gauges, "serve_dataset_bytes{dataset=\"noise\"}"),
                     Some(Json::U64(b)) if *b > 0),
            "{resp}"
        );
        let Json::Obj(hists) = field(&p, "histograms") else {
            panic!("histograms object")
        };
        let thr = get(hists, "serve_latency_us{class=\"threshold\"}").expect("threshold series");
        let Json::Obj(thr) = thr else {
            panic!("histogram entry object")
        };
        assert_eq!(get(thr, "count"), Some(&Json::U64(3)));
        // health reflects the not-yet-stopped server
        let (resp, _) = core.handle_line("{\"op\":\"health\"}");
        let p = parsed(&resp);
        assert_eq!(field(&p, "ok"), &Json::Bool(true));
        assert_eq!(field(&p, "status"), &Json::str("ok"));
        core.request_shutdown();
        let (resp, _) = core.handle_line("{\"op\":\"health\"}");
        assert_eq!(field(&parsed(&resp), "status"), &Json::str("stopping"));
        // the telemetry report agrees with the live counters and carries
        // the snapshot under meta "live"
        let report = core.report("serve_metrics_test");
        assert_eq!(report.counter_total("serve_queries"), 7);
        let json = report.to_json();
        assert!(json.pretty().contains("\"live\""));
    }

    #[test]
    fn prometheus_text_renders_and_matches_counters() {
        let core = ServerCore::new(vec![dataset("prom")], ServeConfig::default());
        let t = core.datasets[0].hierarchies[0].difference[0].key as f64;
        for _ in 0..4 {
            core.handle_line(&format!("{{\"op\":\"threshold\",\"t\":{t}}}"));
        }
        let text = core.prometheus_text();
        assert!(text.contains("# TYPE serve_queries counter"));
        assert!(text.contains("serve_queries 4"));
        assert!(text.contains("serve_hits 3"));
        assert!(text.contains("# TYPE serve_latency_us histogram"));
        assert!(text.contains("serve_latency_us_bucket{class=\"threshold\",le=\"+Inf\"} 4"));
        assert!(text.contains("serve_latency_us_count{class=\"threshold\"} 4"));
        assert!(text.contains("# TYPE serve_cache_bytes gauge"));
        // HTTP scrapes are not queries; the JSON metrics op is
        assert!(text.contains("serve_http_scrapes 0"));
    }

    #[test]
    fn serve_memory_is_bounded_in_requests() {
        // no datasets needed: ping exercises the whole accounting path
        let core = ServerCore::new(Vec::new(), ServeConfig::default());
        core.handle_line("{\"op\":\"ping\"}");
        let before = core.metrics_mem_bytes();
        for _ in 0..50_000 {
            core.handle_line("{\"op\":\"ping\"}");
        }
        assert_eq!(
            core.metrics_mem_bytes(),
            before,
            "per-request state must not grow with request count"
        );
        // and the footprint is histogram-bucket sized, not sample sized:
        // 12 classes × ~8KiB of buckets, nowhere near 50k samples × 8B
        assert!(before < 256 * 1024, "metrics footprint {before} too large");
        let (resp, _) = core.handle_line("{\"op\":\"stats\"}");
        assert!(
            matches!(field(&parsed(&resp), "queries"), Json::U64(n) if *n > 50_000),
            "{resp}"
        );
    }

    #[test]
    fn scrapes_interleave_with_recording_without_deadlock() {
        let core = ServerCore::new(vec![dataset("scrape")], ServeConfig::default());
        let keys: Vec<f32> = core.datasets[0].hierarchies[0]
            .difference
            .iter()
            .map(|r| r.key)
            .collect();
        let n = 4;
        let barrier = Barrier::new(n + 2);
        std::thread::scope(|s| {
            for i in 0..n {
                let keys = &keys;
                let core = &core;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for k in 0..20 {
                        let t = keys[(i * 20 + k) % keys.len()] as f64;
                        let (resp, _) =
                            core.handle_line(&format!("{{\"op\":\"threshold\",\"t\":{t}}}"));
                        assert!(resp.contains("\"ok\":true"), "{resp}");
                    }
                });
            }
            // two scrapers hammer every read surface while the workers
            // materialize through the coalescing condvar path
            for _ in 0..2 {
                let core = &core;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..30 {
                        let _ = core.prometheus_text();
                        let _ = core.metrics_json();
                        let _ = core.stats_json();
                        let _ = core.health_json();
                    }
                });
            }
        });
        assert_eq!(core.metrics.queries.get(), n as u64 * 20);
        assert_eq!(
            core.metrics.hits.get() + core.metrics.misses.get(),
            n as u64 * 20
        );
    }

    #[test]
    fn http_scrape_and_json_share_one_listener() {
        let core = Arc::new(ServerCore::new(
            vec![dataset("http")],
            ServeConfig::default(),
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = {
                let core = core.clone();
                s.spawn(move || serve_tcp(&core, listener))
            };
            // JSON connection first: generate some traffic
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            writeln!(stream, "{{\"op\":\"threshold\",\"t\":0.3}}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(field(&parsed(line.trim()), "ok"), &Json::Bool(true));
            drop(reader);
            drop(stream);
            // HTTP scrape on the same listener
            let mut http = TcpStream::connect(addr).unwrap();
            write!(http, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut response = String::new();
            BufReader::new(http).read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
            assert!(response.contains("# TYPE serve_queries counter"));
            assert!(response.contains("serve_queries 1"), "{response}");
            // health endpoint
            let mut http = TcpStream::connect(addr).unwrap();
            write!(http, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut response = String::new();
            BufReader::new(http).read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
            assert!(response.contains("\"status\":\"ok\""), "{response}");
            // unknown path: 404, connection still answered cleanly
            let mut http = TcpStream::connect(addr).unwrap();
            write!(http, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut response = String::new();
            BufReader::new(http).read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.1 404"), "{response}");
            // scrapes counted separately from queries
            assert_eq!(core.metrics.scrapes.get(), 3);
            assert_eq!(core.metrics.queries.get(), 1);
            // shut down via JSON
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            writeln!(stream, "{{\"op\":\"shutdown\"}}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            server.join().unwrap().unwrap();
        });
    }

    #[test]
    fn slow_request_accounting_counts_threshold_crossers() {
        let core = ServerCore::new(
            Vec::new(),
            ServeConfig {
                slow_us: Some(0),       // everything is "slow"
                slow_sample: 1_000_000, // but almost nothing is logged
                ..Default::default()
            },
        );
        for _ in 0..10 {
            core.handle_line("{\"op\":\"ping\"}");
        }
        assert_eq!(core.metrics.slow.get(), 10);
        let none = ServerCore::new(Vec::new(), ServeConfig::default());
        for _ in 0..10 {
            none.handle_line("{\"op\":\"ping\"}");
        }
        assert_eq!(
            none.metrics.slow.get(),
            0,
            "disabled threshold never counts"
        );
    }

    #[test]
    fn lru_evicts_stalest_key() {
        let mut lru = Lru::new(2);
        let key = |i: u32| CacheKey {
            dataset: 0,
            slot: 0,
            ordering: Ordering::Difference,
            threshold_bits: i,
        };
        let dummy = |applied: usize| {
            Arc::new(Materialized {
                complex: MsComplex::new(msp_grid::Dims::cube(2).refined(), vec![0]),
                forwards: Vec::new(),
                stats: Default::default(),
                applied,
            })
        };
        lru.put(key(1), dummy(1));
        lru.put(key(2), dummy(2));
        assert!(lru.get(&key(1)).is_some()); // 1 freshened; 2 now stalest
        lru.put(key(3), dummy(3));
        assert!(lru.get(&key(2)).is_none(), "stalest key evicted");
        assert!(lru.get(&key(1)).is_some());
        assert!(lru.get(&key(3)).is_some());
    }

    #[test]
    fn serve_lines_keeps_request_order_and_stops_at_quit() {
        let core = ServerCore::new(vec![dataset("lines")], ServeConfig::default());
        let batch = "\
            {\"op\":\"ping\"}\n\
            {\"op\":\"threshold\",\"t\":0.2}\n\
            {\"op\":\"threshold\",\"t\":0.2}\n\
            {\"op\":\"datasets\"}\n\
            {\"op\":\"stats\"}\n\
            {\"op\":\"quit\"}\n\
            {\"op\":\"ping\"}\n";
        let mut out = Vec::new();
        serve_lines(&core, Cursor::new(batch.as_bytes()), &mut out, 3).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // the post-quit ping is never read
        assert_eq!(lines.len(), 6, "{text}");
        let ops: Vec<String> = lines
            .iter()
            .map(|l| match field(&parsed(l), "op") {
                Json::Str(s) => s.clone(),
                other => panic!("op must be a string, got {other:?}"),
            })
            .collect();
        assert_eq!(
            ops,
            [
                "ping",
                "threshold",
                "threshold",
                "datasets",
                "stats",
                "quit"
            ]
        );
        // the two identical thresholds must answer identically
        assert_eq!(lines[1], lines[2]);
        // every response is a single line of valid JSON
        for l in &lines {
            assert!(Json::parse(l).is_ok());
        }
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let core = Arc::new(ServerCore::new(
            vec![dataset("tcp")],
            ServeConfig::default(),
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = {
                let core = core.clone();
                s.spawn(move || serve_tcp(&core, listener))
            };
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut ask = |req: &str| {
                writeln!(stream, "{req}").unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                line
            };
            let resp = ask("{\"op\":\"threshold\",\"t\":0.3}");
            assert_eq!(field(&parsed(resp.trim()), "ok"), &Json::Bool(true));
            let resp = ask("{\"op\":\"shutdown\"}");
            assert_eq!(field(&parsed(resp.trim()), "ok"), &Json::Bool(true));
            server.join().unwrap().unwrap();
        });
        assert!(core.is_shutdown());
    }
}
