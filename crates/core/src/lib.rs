//! # msp-core
//!
//! The paper's primary contribution: a two-stage, data-parallel algorithm
//! for constructing the 1-skeleton of the Morse-Smale complex of a scalar
//! field on a distributed-memory machine (Gyulassy, Pascucci, Peterka,
//! Ross — *The Parallel Computation of Morse-Smale Complexes*, IPDPS
//! 2012).
//!
//! Two execution paths share all the algorithmic code:
//!
//! * [`pipeline::run_parallel`] — real parallel execution on the
//!   threaded message-passing backend (`msp_vmpi::comm`): use for runs at
//!   workstation scale and to validate correctness end-to-end, including
//!   the collective output file.
//! * [`simdriver::simulate`] — virtual-rank execution with measured
//!   compute and modeled communication/I-O, scaling to tens of thousands
//!   of ranks on one machine: use to regenerate the paper's scaling
//!   figures and merge-strategy tables.
//!
//! [`plan::MergePlan`] encodes the configurable radix-k merge schedule
//! and the paper's radix-8-first planning heuristic.

pub mod pipeline;
pub mod plan;
pub mod redistribute;
pub mod sched;
pub mod serve;
pub mod simdriver;

pub use pipeline::{
    check_persistence, msh_output_path, parse_persistence, run_parallel, seg_output_path,
    FaultConfig, Input, PipelineError, PipelineParams, RunResult,
};
pub use plan::MergePlan;
pub use redistribute::{global_simplify_and_partition, partition_complex};
pub use sched::{feature_weights, full_merge_plan, Assignment, DecompMode, MergeSchedule};
pub use serve::{
    load_dataset, serve_lines, serve_tcp, Dataset, ServeConfig, ServeError, ServerCore,
};
pub use simdriver::{simulate, RoundReport, SimParams, SimReport};
