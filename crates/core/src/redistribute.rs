//! Global persistence simplification + redistribution — the paper's
//! stated future work (§VII-B): *"we plan to experiment with global
//! persistence simplification in the context of our parallel structure …
//! This will allow us to further reduce the size of the output data and
//! to reduce the complexity of the resulting MS complex."*
//!
//! A partial merge leaves boundary artifacts on the faces between output
//! blocks: those nodes were never candidates for cancellation. This
//! module closes the gap: merge to the global complex, simplify with no
//! boundary restriction (every artifact can now cancel), then
//! **partition** the simplified complex back into the requested number
//! of output blocks for balanced collective writing.
//!
//! Partitioning rules:
//! * a node belongs to every part that contains one of its owner blocks
//!   (nodes on a part-interface plane are replicated in both parts and
//!   flagged `boundary`, mirroring the shared-layer convention);
//! * an arc belongs to exactly one part — the one owning its upper
//!   node's first owner block; if its lower endpoint falls outside that
//!   part, a replica of the lower node is included (flagged `boundary`)
//!   so every part is a self-contained, valid complex.
//!
//! Reassembling the parts therefore requires deduplicating replicated
//! interface nodes (address equality — exactly what [`glue`] does) but
//! never duplicates arcs, because each arc is stored once.

use msp_complex::{simplify, wire, MsComplex, SimplifyParams};
use msp_grid::{Decomposition, RCoord};
use std::collections::HashMap;

/// Statistics of a global-simplify + redistribute pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct RedistributeStats {
    pub cancellations: u64,
    pub parts: u32,
    pub replicated_nodes: u64,
    pub total_bytes: u64,
}

/// Partition a (typically globally simplified) complex into one part per
/// entry of `parts`, each entry being the set of member block ids that
/// part covers. Every block of `ms.member_blocks` must appear in exactly
/// one part.
pub fn partition_complex(
    ms: &MsComplex,
    decomp: &Decomposition,
    parts: &[Vec<u32>],
) -> Vec<MsComplex> {
    // block id -> part index
    let mut part_of_block: HashMap<u32, usize> = HashMap::new();
    for (pi, blocks) in parts.iter().enumerate() {
        for &b in blocks {
            let prev = part_of_block.insert(b, pi);
            assert!(prev.is_none(), "block {b} listed in two parts");
        }
    }
    for &b in &ms.member_blocks {
        assert!(
            part_of_block.contains_key(&b),
            "member block {b} missing from the partition"
        );
    }

    let mut out: Vec<MsComplex> = parts
        .iter()
        .map(|blocks| MsComplex::new(ms.refined, blocks.clone()))
        .collect();
    // node -> (per-part local id); also the "primary" part of each node
    let mut local_ids: Vec<HashMap<usize, u32>> = vec![HashMap::new(); ms.nodes.len()];
    let mut primary_part: Vec<usize> = vec![usize::MAX; ms.nodes.len()];

    let node_parts = |addr: u64| -> Vec<usize> {
        let c = RCoord::from_address(addr, &ms.refined);
        let mut ps: Vec<usize> = decomp
            .owners(c)
            .as_slice()
            .iter()
            .filter_map(|b| part_of_block.get(b).copied())
            .collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    };

    // distribute nodes (interface nodes replicated, flagged boundary)
    for (i, n) in ms.nodes.iter().enumerate() {
        if !n.alive {
            continue;
        }
        let ps = node_parts(n.addr);
        debug_assert!(!ps.is_empty(), "node owners must map to parts");
        primary_part[i] = ps[0];
        let replicated = ps.len() > 1;
        for &p in &ps {
            let id = out[p].add_node(n.addr, n.index, n.value, n.boundary || replicated);
            local_ids[i].insert(p, id);
        }
    }

    // distribute arcs: one part each, chosen by the upper node's primary
    // part; replicate missing endpoints as boundary stubs
    let mut geom_maps: Vec<HashMap<u32, u32>> = vec![HashMap::new(); parts.len()];
    for a in ms.arcs.iter().filter(|a| a.alive) {
        let p = primary_part[a.upper as usize];
        for end in [a.upper, a.lower] {
            if !local_ids[end as usize].contains_key(&p) {
                let n = &ms.nodes[end as usize];
                let id = out[p].add_node(n.addr, n.index, n.value, true);
                local_ids[end as usize].insert(p, id);
            }
        }
        let g = ms.copy_geom_into(a.geom, &mut out[p], &mut geom_maps[p]);
        out[p].add_arc(
            local_ids[a.upper as usize][&p],
            local_ids[a.lower as usize][&p],
            g,
        );
    }
    out
}

/// Merge-free entry point used by the pipeline drivers: take the fully
/// merged complex, run **unrestricted** global simplification at
/// `threshold`, and split the result into `n_parts` contiguous
/// block-range parts.
pub fn global_simplify_and_partition(
    ms: &mut MsComplex,
    decomp: &Decomposition,
    threshold: f32,
    n_parts: u32,
    max_new_arcs: Option<u64>,
) -> (Vec<MsComplex>, RedistributeStats) {
    assert!(
        (ms.member_blocks.len() as u32).is_multiple_of(n_parts),
        "parts must evenly divide the member blocks"
    );
    ms.reflag_boundaries(decomp); // full merge ⇒ clears every flag
    let stats = simplify(
        ms,
        SimplifyParams {
            threshold,
            max_new_arcs,
            max_parallel_arcs: Some(2),
        },
    )
    .expect("redistribution input complexes are finite");
    ms.compact();
    let chunk = ms.member_blocks.len() / n_parts as usize;
    let parts: Vec<Vec<u32>> = ms.member_blocks.chunks(chunk).map(|c| c.to_vec()).collect();
    let out = partition_complex(ms, decomp, &parts);
    let replicated: u64 = out.iter().map(|c| c.n_live_nodes()).sum::<u64>() - ms.n_live_nodes();
    let total_bytes: u64 = out.iter().map(|c| wire::serialize(c).len() as u64).sum();
    (
        out,
        RedistributeStats {
            cancellations: stats.cancellations,
            parts: n_parts,
            replicated_nodes: replicated,
            total_bytes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_parallel, Input, PipelineParams};
    use crate::plan::MergePlan;
    use msp_grid::Dims;
    use std::sync::Arc;

    fn merged_complex(seed: u64) -> (MsComplex, Decomposition) {
        let field = Arc::new(msp_synth::white_noise(Dims::cube(13), seed));
        let params = PipelineParams {
            persistence_frac: 0.0,
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let r = run_parallel(&Input::Memory(field), 4, 8, &params, None).unwrap();
        (
            r.outputs.into_iter().next().unwrap(),
            Decomposition::bisect(Dims::cube(13), 8),
        )
    }

    #[test]
    fn partition_covers_every_node_and_arc() {
        let (ms, decomp) = merged_complex(5);
        let parts = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]];
        let out = partition_complex(&ms, &decomp, &parts);
        assert_eq!(out.len(), 2);
        // every arc appears exactly once across parts
        let total_arcs: u64 = out.iter().map(|c| c.n_live_arcs()).sum();
        assert_eq!(total_arcs, ms.n_live_arcs());
        // every original node appears in at least one part; total node
        // count = original + replicas
        let total_nodes: u64 = out.iter().map(|c| c.n_live_nodes()).sum();
        assert!(total_nodes >= ms.n_live_nodes());
        for c in &out {
            c.check_integrity().unwrap();
        }
        // any node carried by a part outside its own geometric region
        // (an arc-endpoint stub) must be flagged boundary so later passes
        // never cancel it
        for (pi, c) in out.iter().enumerate() {
            let members: std::collections::HashSet<u32> = parts[pi].iter().copied().collect();
            for n in c.nodes.iter().filter(|n| n.alive) {
                let coord = msp_grid::RCoord::from_address(n.addr, &c.refined);
                let geometric = decomp
                    .owners(coord)
                    .as_slice()
                    .iter()
                    .any(|b| members.contains(b));
                if !geometric {
                    assert!(n.boundary, "stub node {:#x} must be boundary", n.addr);
                }
            }
        }
    }

    #[test]
    fn global_simplify_reduces_output() {
        // partial merge baseline: artifacts on inter-output faces remain
        let field = Arc::new(msp_synth::white_noise(Dims::cube(13), 9));
        let partial = run_parallel(
            &Input::Memory(field.clone()),
            4,
            8,
            &PipelineParams {
                persistence_frac: 0.05,
                plan: MergePlan::rounds(vec![4]), // 8 -> 2 outputs
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let partial_nodes: u64 = partial.outputs.iter().map(|c| c.n_live_nodes()).sum();

        // global path: full merge, global simplify, split back into 2
        let full = run_parallel(
            &Input::Memory(field.clone()),
            4,
            8,
            &PipelineParams {
                persistence_frac: 0.05,
                plan: MergePlan::full_merge(8),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let mut ms = full.outputs.into_iter().next().unwrap();
        let decomp = Decomposition::bisect(Dims::cube(13), 8);
        let (lo, hi) = field.min_max();
        let (parts, stats) =
            global_simplify_and_partition(&mut ms, &decomp, 0.05 * (hi - lo), 2, Some(4096));
        assert_eq!(parts.len(), 2);
        let global_nodes: u64 = parts.iter().map(|c| c.n_live_nodes()).sum();
        assert!(
            global_nodes <= partial_nodes,
            "global simplification must not leave more nodes \
             ({global_nodes} vs {partial_nodes})"
        );
        assert!(stats.total_bytes <= partial.output_bytes);
        for c in &parts {
            c.check_integrity().unwrap();
        }
    }

    #[test]
    fn partition_then_reglue_round_trips_nodes() {
        use msp_complex::glue::glue_all_with;
        let (ms, decomp) = merged_complex(21);
        let parts = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]];
        let split = partition_complex(&ms, &decomp, &parts);
        let mut root = split[0].clone();
        // partitioned complexes store each arc once: no dedup on reglue
        glue_all_with(&mut root, &split[1..], &decomp, false).unwrap();
        assert_eq!(root.n_live_nodes(), ms.n_live_nodes());
        assert_eq!(root.n_live_arcs(), ms.n_live_arcs());
        root.check_integrity().unwrap();
    }

    #[test]
    #[should_panic]
    fn overlapping_parts_rejected() {
        let (ms, decomp) = merged_complex(3);
        let parts = vec![vec![0, 1, 2, 3], vec![3, 4, 5, 6, 7]];
        let _ = partition_complex(&ms, &decomp, &parts);
    }
}
