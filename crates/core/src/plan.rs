//! Merge plans: the number of rounds and the radix of each round
//! (paper §IV-F2, §VI-C).
//!
//! A merge plan is a list of radices, one per round, each in {2, 4, 8}.
//! At every round, alive *slots* (initially one per block) form
//! contiguous groups of `radix` members; the lowest slot is the root, the
//! others send their complexes to it and drop out. After all rounds the
//! number of output blocks is `n_blocks / Π radices`.
//!
//! The planner encodes the paper's guidance: *"radix-8 or the highest
//! radix possible should be selected in order to minimize the number of
//! rounds. When the optimal radix cannot be used, smaller radices should
//! be used in earlier rounds rather than later rounds."*

use serde::{Deserialize, Serialize};

/// A sequence of merge rounds described by their radices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergePlan {
    pub radices: Vec<u32>,
}

impl MergePlan {
    /// A plan with no merging at all (write local complexes directly).
    pub fn none() -> Self {
        MergePlan { radices: vec![] }
    }

    /// An explicit plan; radices must each be 2, 4 or 8.
    pub fn rounds(radices: Vec<u32>) -> Self {
        assert!(
            radices.iter().all(|r| matches!(r, 2 | 4 | 8)),
            "radices must be 2, 4 or 8"
        );
        MergePlan { radices }
    }

    /// The paper's heuristic plan to merge `n_blocks` (a power of two)
    /// down to `n_out` blocks (also a power of two dividing `n_blocks`):
    /// as many radix-8 rounds as possible, with the one leftover radix
    /// (4 or 2) placed in the **first** round.
    pub fn heuristic(n_blocks: u32, n_out: u32) -> Self {
        assert!(n_blocks.is_power_of_two(), "blocks must be a power of two");
        assert!(n_out.is_power_of_two() && n_out <= n_blocks && n_blocks.is_multiple_of(n_out));
        let e = (n_blocks / n_out).trailing_zeros();
        let rem = e % 3;
        let mut radices = Vec::new();
        if rem > 0 {
            radices.push(1 << rem); // 2 or 4, earliest round
        }
        radices.extend(std::iter::repeat_n(8, (e / 3) as usize));
        MergePlan { radices }
    }

    /// Full merge down to a single output block.
    pub fn full_merge(n_blocks: u32) -> Self {
        Self::heuristic(n_blocks, 1)
    }

    /// Product of all radices (total reduction factor).
    pub fn reduction(&self) -> u32 {
        self.radices.iter().product()
    }

    /// Number of output blocks for a given input block count.
    pub fn output_blocks(&self, n_blocks: u32) -> u32 {
        let red = self.reduction();
        assert_eq!(
            n_blocks % red,
            0,
            "plan reduction {red} must divide the block count {n_blocks}"
        );
        n_blocks / red
    }

    /// Stride of alive slots *entering* round `r` (0-based): the product
    /// of radices of earlier rounds.
    pub fn stride_before(&self, r: usize) -> u32 {
        self.radices[..r].iter().product()
    }

    /// The groups of round `r` over `n_blocks` slots: each group is
    /// `(root_slot, members)` with members listed root-first.
    pub fn groups(&self, r: usize, n_blocks: u32) -> Vec<(u32, Vec<u32>)> {
        let stride = self.stride_before(r);
        let k = self.radices[r];
        let group_span = stride * k;
        assert_eq!(n_blocks % group_span, 0, "radix must divide alive slots");
        let mut out = Vec::with_capacity((n_blocks / group_span) as usize);
        let mut root = 0;
        while root < n_blocks {
            let members: Vec<u32> = (0..k).map(|i| root + i * stride).collect();
            out.push((root, members));
            root += group_span;
        }
        out
    }

    /// Slots still alive after all rounds (the output block owners).
    pub fn output_slots(&self, n_blocks: u32) -> Vec<u32> {
        let red = self.reduction();
        (0..n_blocks).step_by(red as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_matches_paper_examples() {
        // §VI-C: full merge of 2048 blocks = rounds [4, 8, 8, 8]
        assert_eq!(MergePlan::full_merge(2048).radices, vec![4, 8, 8, 8]);
        // §VI-D1: 8192 blocks merged in five rounds [2, 8, 8, 8, 8]
        assert_eq!(MergePlan::full_merge(8192).radices, vec![2, 8, 8, 8, 8]);
        // Table II: 256 blocks -> [4, 8, 8] preferred
        assert_eq!(MergePlan::full_merge(256).radices, vec![4, 8, 8]);
        // Fig 6 runs: two rounds of radix-8 partial merge
        assert_eq!(MergePlan::heuristic(4096, 64).radices, vec![8, 8]);
    }

    #[test]
    fn reduction_and_outputs() {
        let p = MergePlan::rounds(vec![4, 8, 8]);
        assert_eq!(p.reduction(), 256);
        assert_eq!(p.output_blocks(256), 1);
        assert_eq!(p.output_blocks(512), 2);
        assert_eq!(MergePlan::none().output_blocks(64), 64);
    }

    #[test]
    fn groups_partition_slots() {
        let p = MergePlan::rounds(vec![4, 2, 8]);
        let n = 64;
        let mut alive: Vec<u32> = (0..n).collect();
        for r in 0..p.radices.len() {
            let groups = p.groups(r, n);
            // members of all groups = alive slots exactly
            let mut members: Vec<u32> =
                groups.iter().flat_map(|(_, m)| m.iter().copied()).collect();
            members.sort_unstable();
            assert_eq!(members, alive, "round {r}");
            // each group's root is its minimum
            for (root, m) in &groups {
                assert_eq!(*root, *m.iter().min().unwrap());
                assert_eq!(m.len() as u32, p.radices[r]);
            }
            alive = groups.iter().map(|(root, _)| *root).collect();
        }
        assert_eq!(alive, p.output_slots(n));
        assert_eq!(alive.len() as u32, p.output_blocks(n));
    }

    #[test]
    fn strides_accumulate() {
        let p = MergePlan::rounds(vec![2, 4, 8]);
        assert_eq!(p.stride_before(0), 1);
        assert_eq!(p.stride_before(1), 2);
        assert_eq!(p.stride_before(2), 8);
    }

    #[test]
    #[should_panic]
    fn bad_radix_rejected() {
        let _ = MergePlan::rounds(vec![3]);
    }

    #[test]
    #[should_panic]
    fn non_dividing_plan_rejected() {
        let p = MergePlan::rounds(vec![8]);
        let _ = p.output_blocks(12);
    }
}
