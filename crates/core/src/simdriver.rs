//! Scalable simulation driver: thousands of *virtual ranks* on a Rayon
//! pool, with per-rank **measured** compute times and **modeled**
//! communication and I/O times (BG/P-like torus + parallel filesystem,
//! see `msp_vmpi::netmodel`).
//!
//! The pipeline is bulk-synchronous, which makes this faithful: every
//! virtual rank carries a virtual clock; local stages advance it by the
//! measured wall time of the actual computation (performed for real),
//! gather-to-root merge rounds advance the root's clock by the modeled
//! message arrival plus the measured glue time. The result reproduces
//! the *shape* of the paper's Figs 6, 9, 10 and Tables I, II on a
//! workstation.

use crate::plan::MergePlan;
use msp_complex::glue::glue_all;
use msp_complex::{build_block_complex, simplify, wire, MsComplex, SimplifyParams};
use msp_grid::rawio::{block_bytes, VolumeDType};
use msp_grid::{Decomposition, ScalarField};
use msp_morse::TraceLimits;
use msp_telemetry::Json;
use msp_vmpi::{IoParams, NetParams, Torus};
use rayon::prelude::*;
use std::time::Instant;

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Persistence threshold as a fraction of the global value range.
    pub persistence_frac: f32,
    pub plan: MergePlan,
    pub trace_limits: TraceLimits,
    pub max_new_arcs: Option<u64>,
    pub net: NetParams,
    pub io: IoParams,
    /// Element type of the (virtual) input file, for the read model.
    pub dtype: VolumeDType,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            persistence_frac: 0.01,
            plan: MergePlan::none(),
            trace_limits: TraceLimits::default(),
            // valence guard: skip cancellations that would fan out into
            // more than this many replacement arcs (degenerate lattices)
            max_new_arcs: Some(4096),
            net: NetParams::default(),
            io: IoParams::default(),
            dtype: VolumeDType::F32,
        }
    }
}

/// Modeled + measured times of one merge round.
#[derive(Debug, Clone, Copy)]
pub struct RoundReport {
    pub radix: u32,
    /// Modeled communication time (max over groups).
    pub comm_s: f64,
    /// Measured glue + re-simplify time (max over groups).
    pub glue_s: f64,
    /// Critical-path advance of this round.
    pub round_s: f64,
    /// Total serialized bytes moved in this round.
    pub bytes_moved: u64,
}

/// Full report of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub n_ranks: u32,
    /// Modeled collective-read time.
    pub read_s: f64,
    /// Measured per-block gradient + MS-complex time (max over ranks).
    pub compute_s: f64,
    /// Measured initial local simplification (max over ranks) — the
    /// paper counts this as the start of the merge stage (Fig 3 (d)).
    pub local_simplify_s: f64,
    /// Merge-stage critical path: local simplify + all rounds.
    pub merge_s: f64,
    /// Modeled collective-write time.
    pub write_s: f64,
    /// End-to-end modeled wall time.
    pub total_s: f64,
    pub rounds: Vec<RoundReport>,
    pub output_blocks: u32,
    pub output_bytes: u64,
    pub live_nodes: u64,
    pub live_arcs: u64,
    pub threshold: f32,
}

impl SimReport {
    /// Render the report as the same versioned JSON document shape the
    /// threaded pipeline emits (`kind: "sim"`), so sim and run reports
    /// land side by side in `results/` and share tooling.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", Json::U64(msp_telemetry::REPORT_VERSION as u64)),
            ("kind", Json::str("sim")),
            ("n_ranks", Json::U64(self.n_ranks as u64)),
            (
                "phases",
                Json::obj(vec![
                    ("read", Json::F64(self.read_s)),
                    ("compute", Json::F64(self.compute_s)),
                    ("local_simplify", Json::F64(self.local_simplify_s)),
                    ("merge", Json::F64(self.merge_s)),
                    ("write", Json::F64(self.write_s)),
                    ("total", Json::F64(self.total_s)),
                ]),
            ),
            (
                "rounds",
                Json::Arr(
                    self.rounds
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("radix", Json::U64(r.radix as u64)),
                                ("comm_s", Json::F64(r.comm_s)),
                                ("glue_s", Json::F64(r.glue_s)),
                                ("round_s", Json::F64(r.round_s)),
                                ("bytes_moved", Json::U64(r.bytes_moved)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("output_blocks", Json::U64(self.output_blocks as u64)),
            ("output_bytes", Json::U64(self.output_bytes)),
            ("live_nodes", Json::U64(self.live_nodes)),
            ("live_arcs", Json::U64(self.live_arcs)),
            ("threshold", Json::F64(self.threshold as f64)),
        ])
    }
}

/// Simulate the pipeline at `n_ranks` virtual ranks (one block each).
pub fn simulate(field: &ScalarField, n_ranks: u32, params: &SimParams) -> SimReport {
    let decomp = Decomposition::bisect(field.dims(), n_ranks);
    let n_blocks = n_ranks;
    params.plan.output_blocks(n_blocks); // validate early
    let (gmin, gmax) = field.min_max();
    let threshold = params.persistence_frac * (gmax - gmin);
    let sp = SimplifyParams {
        threshold,
        max_new_arcs: params.max_new_arcs,
        max_parallel_arcs: Some(2),
    };

    // ---- read (modeled) ----
    let total_in: u64 = decomp
        .blocks()
        .iter()
        .map(|b| block_bytes(b, params.dtype))
        .sum();
    let max_in = decomp
        .blocks()
        .iter()
        .map(|b| block_bytes(b, params.dtype))
        .max()
        .unwrap();
    let read_s = params.io.collective_time(total_in, max_in, n_ranks);

    // ---- compute + local simplify (measured, per virtual rank) ----
    struct BlockOut {
        ms: MsComplex,
        t_build: f64,
        t_simplify: f64,
    }
    let mut blocks: Vec<Option<BlockOut>> = decomp
        .blocks()
        .par_iter()
        .map(|b| {
            let bf = field.extract_block(b);
            let t0 = Instant::now();
            let (mut ms, _) = build_block_complex(&bf, &decomp, params.trace_limits);
            let t_build = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            simplify(&mut ms, sp);
            ms.compact();
            let t_simplify = t1.elapsed().as_secs_f64();
            Some(BlockOut {
                ms,
                t_build,
                t_simplify,
            })
        })
        .collect();

    let compute_s = blocks
        .iter()
        .map(|b| b.as_ref().unwrap().t_build)
        .fold(0.0, f64::max);
    let local_simplify_s = blocks
        .iter()
        .map(|b| b.as_ref().unwrap().t_simplify)
        .fold(0.0, f64::max);

    // virtual clocks: collective read ends together, then local work
    let mut clocks: Vec<f64> = blocks
        .iter()
        .map(|b| {
            let b = b.as_ref().unwrap();
            read_s + b.t_build + b.t_simplify
        })
        .collect();
    let mut complexes: Vec<Option<MsComplex>> =
        blocks.iter_mut().map(|b| Some(b.take().unwrap().ms)).collect();
    drop(blocks);

    // ---- merge rounds ----
    let torus = Torus::for_ranks(n_ranks);
    let clock_after_local = clocks.iter().copied().fold(0.0, f64::max);
    let mut rounds = Vec::with_capacity(params.plan.radices.len());
    for r in 0..params.plan.radices.len() {
        let groups = params.plan.groups(r, n_blocks);
        let before = clocks.iter().copied().fold(0.0, f64::max);
        // pull out the group inputs serially, process groups in parallel
        let work: Vec<(u32, Vec<(u32, MsComplex, f64)>)> = groups
            .iter()
            .map(|(root, members)| {
                let inputs: Vec<(u32, MsComplex, f64)> = members
                    .iter()
                    .map(|&m| {
                        let ms = complexes[m as usize].take().expect("alive slot");
                        (m, ms, clocks[m as usize])
                    })
                    .collect();
                (*root, inputs)
            })
            .collect();
        let results: Vec<(u32, MsComplex, f64, f64, f64, u64)> = work
            .into_par_iter()
            .map(|(root, mut inputs)| {
                let (_, mut root_ms, root_clock) = inputs.remove(0);
                // modeled arrival: the root can start gluing once every
                // member's message has landed; the root link serializes
                // the payloads
                let mut start = root_clock;
                let mut sum_bytes = 0u64;
                for (m, ms, clk) in &inputs {
                    let bytes = wire::estimate_size(ms) as u64;
                    sum_bytes += bytes;
                    let hops = torus.hops(*m, root);
                    let arrive = clk
                        + params.net.latency_s
                        + params.net.hop_time_s * hops as f64;
                    start = start.max(arrive);
                }
                let comm = sum_bytes as f64 * params.net.byte_time_s;
                let t0 = Instant::now();
                let incoming: Vec<MsComplex> =
                    inputs.into_iter().map(|(_, ms, _)| ms).collect();
                glue_all(&mut root_ms, &incoming, &decomp);
                simplify(&mut root_ms, sp);
                root_ms.compact();
                let glue = t0.elapsed().as_secs_f64();
                (root, root_ms, start + comm + glue, comm, glue, sum_bytes)
            })
            .collect();
        let mut comm_max = 0.0f64;
        let mut glue_max = 0.0f64;
        let mut bytes_moved = 0u64;
        for (root, ms, clock, comm, glue, bytes) in results {
            comm_max = comm_max.max(comm);
            glue_max = glue_max.max(glue);
            bytes_moved += bytes;
            clocks[root as usize] = clock;
            complexes[root as usize] = Some(ms);
        }
        let after = params
            .plan
            .groups(r, n_blocks)
            .iter()
            .map(|(root, _)| clocks[*root as usize])
            .fold(0.0, f64::max);
        rounds.push(RoundReport {
            radix: params.plan.radices[r],
            comm_s: comm_max,
            glue_s: glue_max,
            round_s: after - before,
            bytes_moved,
        });
    }

    // ---- write (modeled) ----
    let out_slots = params.plan.output_slots(n_blocks);
    let payload_sizes: Vec<u64> = out_slots
        .iter()
        .map(|&s| {
            wire::serialize(complexes[s as usize].as_ref().expect("output slot")).len() as u64
        })
        .collect();
    let output_bytes: u64 = payload_sizes.iter().sum();
    let max_out = payload_sizes.iter().copied().max().unwrap_or(0);
    let write_s = if output_bytes > 0 {
        params.io.collective_time(output_bytes, max_out, n_ranks)
    } else {
        0.0
    };

    let clock_final = out_slots
        .iter()
        .map(|&s| clocks[s as usize])
        .fold(0.0, f64::max);
    let live_nodes: u64 = out_slots
        .iter()
        .map(|&s| complexes[s as usize].as_ref().unwrap().n_live_nodes())
        .sum();
    let live_arcs: u64 = out_slots
        .iter()
        .map(|&s| complexes[s as usize].as_ref().unwrap().n_live_arcs())
        .sum();

    SimReport {
        n_ranks,
        read_s,
        compute_s,
        local_simplify_s,
        merge_s: (clock_final - clock_after_local) + local_simplify_s,
        write_s,
        total_s: clock_final + write_s,
        rounds,
        output_blocks: out_slots.len() as u32,
        output_bytes,
        live_nodes,
        live_arcs,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::Dims;

    #[test]
    fn simulate_serial_baseline() {
        let f = msp_synth::white_noise(Dims::cube(9), 4);
        let r = simulate(&f, 1, &SimParams::default());
        assert_eq!(r.output_blocks, 1);
        assert!(r.compute_s > 0.0);
        assert!(r.total_s >= r.read_s + r.compute_s);
        assert!(r.rounds.is_empty());
    }

    #[test]
    fn full_merge_counts() {
        let f = msp_synth::white_noise(Dims::cube(9), 4);
        let params = SimParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let r = simulate(&f, 8, &params);
        assert_eq!(r.output_blocks, 1);
        assert_eq!(r.rounds.len(), 1);
        assert_eq!(r.rounds[0].radix, 8);
        assert!(r.rounds[0].bytes_moved > 0);
        assert!(r.output_bytes > 0);
    }

    #[test]
    fn sim_matches_threaded_pipeline_output() {
        use crate::pipeline::{run_parallel, Input, PipelineParams};
        use std::sync::Arc;
        let field = Arc::new(msp_synth::white_noise(Dims::cube(9), 10));
        let plan = MergePlan::full_merge(8);
        let sim = simulate(
            &field,
            8,
            &SimParams {
                plan: plan.clone(),
                ..Default::default()
            },
        );
        let thr = run_parallel(
            &Input::Memory(field.clone()),
            8,
            8,
            &PipelineParams {
                plan,
                ..Default::default()
            },
            None,
        );
        // identical algorithm, identical outputs
        assert_eq!(sim.live_nodes, thr.outputs[0].n_live_nodes());
        assert_eq!(sim.live_arcs, thr.outputs[0].n_live_arcs());
        assert_eq!(sim.output_bytes, thr.output_bytes);
    }

    #[test]
    fn more_ranks_less_compute_time() {
        // weak statement robust to timing noise: per-block compute at 16
        // ranks must be well below serial compute on the same field
        let f = msp_synth::sinusoid(33, 4);
        let t1 = simulate(&f, 1, &SimParams::default()).compute_s;
        let t16 = simulate(&f, 16, &SimParams::default()).compute_s;
        assert!(
            t16 < t1,
            "per-block compute must shrink with more ranks ({t16} vs {t1})"
        );
    }
}
