//! Scalable simulation driver: thousands of *virtual ranks* on a Rayon
//! pool, with per-rank **measured** compute times and **modeled**
//! communication and I/O times (BG/P-like torus + parallel filesystem,
//! see `msp_vmpi::netmodel`).
//!
//! The pipeline is bulk-synchronous, which makes this faithful: every
//! virtual rank carries a virtual clock; local stages advance it by the
//! measured wall time of the actual computation (performed for real),
//! gather-to-root merge rounds advance the root's clock by the modeled
//! message arrival plus the measured glue time. The result reproduces
//! the *shape* of the paper's Figs 6, 9, 10 and Tables I, II on a
//! workstation.
//!
//! ## Fault timing model
//!
//! With a [`FaultPlan`] in [`SimFault`], the same faults the threaded
//! backend injects for real are charged to the virtual clocks here:
//! a slowed rank's measured compute is multiplied by its factor; a
//! dropped message is re-shipped at [`NetParams::retry_time`] cost; a
//! crashed rank costs its merge root the detection deadline plus a
//! checkpoint re-ship over the torus. Checkpointing itself is charged
//! as a collective write of all live state at every round boundary.
//! The sim always models the *recovered* path (data is never actually
//! destroyed — outputs stay identical); degraded-mode data loss exists
//! only on the threaded backend.

use crate::plan::MergePlan;
use crate::sched::{feature_weights, Assignment, DecompMode, MergeSchedule};
use msp_complex::glue::glue_all;
use msp_complex::{
    complex_from_gradient, simplify, simplify_forwarding, wire, MsComplex, SimplifyParams,
};
use msp_fault::FaultPlan;
use msp_grid::rawio::{block_bytes, VolumeDType};
use msp_grid::{Decomposition, ScalarField};
use msp_morse::{assign_gradient, TraceLimits};
use msp_segment::{
    label_block, owner_rank, wire as segwire, BlockSegmentation, ForwardMap, DRAIN_ADDR,
};
use msp_telemetry::{
    progress_interval_from_env, Heartbeat, Json, ProgressPhase, RankTrace, RunTrace, TimeoutStamp,
};
use msp_vmpi::comm::{Inject, SendFate};
use msp_vmpi::{IoParams, NetParams, Torus};
use rayon::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

/// Fault configuration of a simulated run (timing model only).
#[derive(Debug, Clone)]
pub struct SimFault {
    /// Faults whose costs are charged to the virtual clocks.
    pub plan: Option<FaultPlan>,
    /// Charge a collective checkpoint write at every round boundary
    /// (and once before the output write).
    pub checkpoint: bool,
    /// Modeled failure-detection deadline a root waits before
    /// recovering a dead member from its checkpoint.
    pub deadline_s: f64,
}

impl Default for SimFault {
    fn default() -> Self {
        SimFault {
            plan: None,
            checkpoint: false,
            deadline_s: 0.25,
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Persistence threshold as a fraction of the global value range.
    pub persistence_frac: f32,
    pub plan: MergePlan,
    /// Decomposition mode (DESIGN.md §14). The sim replays exactly the
    /// schedule the threaded pipeline would run: uniform bisection keeps
    /// the fixed radix tree and block-cyclic (here: identity) rank map,
    /// irregular modes contract the block neighbor graph and assign
    /// blocks by LPT over the same per-block cost estimates.
    pub decomp: DecompMode,
    pub trace_limits: TraceLimits,
    pub max_new_arcs: Option<u64>,
    pub net: NetParams,
    pub io: IoParams,
    /// Element type of the (virtual) input file, for the read model.
    pub dtype: VolumeDType,
    /// Fault injection for the timing model (inactive by default).
    pub fault: SimFault,
    /// Build a causal event trace on the virtual clocks — the same
    /// [`RunTrace`] format the threaded backend records, so Chrome
    /// export and critical-path analysis work identically on simulated
    /// runs.
    pub trace: bool,
    /// Compute the Morse-Smale segmentation: per-block labeling is
    /// *measured*, the distributed pointer-jump resolution is replayed
    /// exactly (same owner maps, same synchronized evolution, same wire
    /// encoding — DESIGN.md §11) with *modeled* communication costs, so
    /// `seg_rounds` / `seg_forwards` / `seg_bytes` match the threaded
    /// pipeline's counters bit for bit.
    pub segment: bool,
    /// Emit a progress heartbeat (phase, virtual ranks done, bytes
    /// moved) to stderr every this-many seconds; `None` falls back to
    /// the `MSP_PROGRESS` environment variable, off when unset.
    pub progress: Option<f64>,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            persistence_frac: 0.01,
            plan: MergePlan::none(),
            decomp: DecompMode::Uniform,
            trace_limits: TraceLimits::default(),
            // valence guard: skip cancellations that would fan out into
            // more than this many replacement arcs (degenerate lattices)
            max_new_arcs: Some(4096),
            net: NetParams::default(),
            io: IoParams::default(),
            dtype: VolumeDType::F32,
            fault: SimFault::default(),
            trace: false,
            segment: false,
            progress: None,
        }
    }
}

/// A simulation failure with context, replacing the panics the driver
/// used to raise on bad configurations and internal slot bookkeeping.
#[derive(Debug)]
pub enum SimError {
    /// Invalid run configuration (rank count, merge plan).
    Config(String),
    /// A slot the plan says must be alive holds no complex — internal
    /// bookkeeping violation, reported instead of panicking.
    DeadSlot { slot: u32, stage: &'static str },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "invalid sim config: {msg}"),
            SimError::DeadSlot { slot, stage } => {
                write!(f, "slot {slot} holds no complex at {stage}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Modeled + measured times of one merge round.
#[derive(Debug, Clone, Copy)]
pub struct RoundReport {
    pub radix: u32,
    /// Modeled communication time (max over groups).
    pub comm_s: f64,
    /// Measured glue + re-simplify time (max over groups).
    pub glue_s: f64,
    /// Critical-path advance of this round.
    pub round_s: f64,
    /// Total serialized bytes moved in this round.
    pub bytes_moved: u64,
}

/// Full report of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub n_ranks: u32,
    /// Modeled collective-read time.
    pub read_s: f64,
    /// Measured per-block gradient + MS-complex time (max over ranks).
    pub compute_s: f64,
    /// Measured initial local simplification (max over ranks) — the
    /// paper counts this as the start of the merge stage (Fig 3 (d)).
    pub local_simplify_s: f64,
    /// Merge-stage critical path: local simplify + all rounds.
    pub merge_s: f64,
    /// Modeled collective-write time.
    pub write_s: f64,
    /// End-to-end modeled wall time.
    pub total_s: f64,
    pub rounds: Vec<RoundReport>,
    pub output_blocks: u32,
    pub output_bytes: u64,
    pub live_nodes: u64,
    pub live_arcs: u64,
    pub threshold: f32,
    /// Injected crashes charged to the clocks.
    pub crashes: u64,
    /// Recovery re-ships (dead members + dropped messages).
    pub retries: u64,
    /// Bytes re-shipped during recovery.
    pub retry_bytes: u64,
    /// Modeled time spent detecting failures and re-shipping state.
    pub recovery_s: f64,
    /// Modeled time spent writing round-boundary checkpoints.
    pub checkpoint_s: f64,
    /// Measured per-block segmentation labeling (max over ranks).
    pub seg_label_s: f64,
    /// Modeled communication time of the distributed resolution
    /// (forward routing + jump rounds + table rewrite).
    pub seg_resolve_s: f64,
    /// Modeled collective write of the labeled-volume file.
    pub seg_write_s: f64,
    /// Pointer-jump rounds to the fixed point, including the final
    /// observing round — exactly the pipeline's `seg_rounds` counter.
    pub seg_rounds: u64,
    /// Forward entries routed to their owners (pipeline `seg_forwards`).
    pub seg_forwards: u64,
    /// Resolution wire traffic in bytes (pipeline `seg_boundary_bytes`).
    pub seg_bytes: u64,
    /// Serialized segmentation payload bytes (`SEG1` blocks).
    pub seg_output_bytes: u64,
    /// Virtual-clock causal trace when [`SimParams::trace`] was on.
    pub trace: Option<RunTrace>,
}

impl SimReport {
    /// Render the report as the same versioned JSON document shape the
    /// threaded pipeline emits (`kind: "sim"`), so sim and run reports
    /// land side by side in `results/` and share tooling.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj(vec![
            ("version", Json::U64(msp_telemetry::REPORT_VERSION as u64)),
            ("kind", Json::str("sim")),
            ("n_ranks", Json::U64(self.n_ranks as u64)),
            (
                "phases",
                Json::obj(vec![
                    ("read", Json::F64(self.read_s)),
                    ("compute", Json::F64(self.compute_s)),
                    ("local_simplify", Json::F64(self.local_simplify_s)),
                    ("merge", Json::F64(self.merge_s)),
                    ("segment", Json::F64(self.seg_label_s)),
                    ("seg_resolve", Json::F64(self.seg_resolve_s)),
                    ("write", Json::F64(self.write_s)),
                    ("total", Json::F64(self.total_s)),
                ]),
            ),
            (
                "rounds",
                Json::Arr(
                    self.rounds
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("radix", Json::U64(r.radix as u64)),
                                ("comm_s", Json::F64(r.comm_s)),
                                ("glue_s", Json::F64(r.glue_s)),
                                ("round_s", Json::F64(r.round_s)),
                                ("bytes_moved", Json::U64(r.bytes_moved)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("output_blocks", Json::U64(self.output_blocks as u64)),
            ("output_bytes", Json::U64(self.output_bytes)),
            ("live_nodes", Json::U64(self.live_nodes)),
            ("live_arcs", Json::U64(self.live_arcs)),
            ("threshold", Json::F64(self.threshold as f64)),
            (
                "segment",
                Json::obj(vec![
                    ("label_s", Json::F64(self.seg_label_s)),
                    ("resolve_s", Json::F64(self.seg_resolve_s)),
                    ("write_s", Json::F64(self.seg_write_s)),
                    ("rounds", Json::U64(self.seg_rounds)),
                    ("forwards", Json::U64(self.seg_forwards)),
                    ("resolution_bytes", Json::U64(self.seg_bytes)),
                    ("output_bytes", Json::U64(self.seg_output_bytes)),
                ]),
            ),
            (
                "fault",
                Json::obj(vec![
                    ("crashes", Json::U64(self.crashes)),
                    ("retries", Json::U64(self.retries)),
                    ("retry_bytes", Json::U64(self.retry_bytes)),
                    ("recovery_s", Json::F64(self.recovery_s)),
                    ("checkpoint_s", Json::F64(self.checkpoint_s)),
                ]),
            ),
        ]);
        if let Some(cp) = self.trace.as_ref().and_then(|t| t.critical_path()) {
            if let Json::Obj(pairs) = &mut doc {
                pairs.push(("critical_path".to_string(), cp.to_json()));
            }
        }
        doc
    }
}

/// Per-member modeled delivery, resolved serially so link sequence
/// numbers and fault charges are deterministic.
struct MemberIn {
    ms: MsComplex,
    /// Modeled clock at which the root can consume this complex.
    arrive_s: f64,
    bytes: u64,
}

/// Fault charges accumulated while resolving deliveries.
#[derive(Default)]
struct FaultLedger {
    crashes: u64,
    retries: u64,
    retry_bytes: u64,
    recovery_s: f64,
    checkpoint_s: f64,
}

/// Route every rank's pending forwards to their owner maps, mirroring
/// the pipeline's `flush_forwards` all-to-all: each rank sends a
/// length-prefixed pair payload to every *other* rank (empty buckets
/// still cost their 4-byte count header; the self bucket is delivered
/// locally, unserialized). Pending buckets are indexed by block slot;
/// `assign` maps each slot to the virtual rank that holds it, and owners
/// are the pipeline's hashed `owner_rank` map. Returns
/// `(total_bytes, max_rank_bytes)` of the modeled exchange and bumps the
/// forward counter.
fn flush_pending(
    pending: &mut [Vec<(u64, u64)>],
    owned: &mut [ForwardMap],
    assign: &Assignment,
    forwards: &mut u64,
) -> (u64, u64) {
    let n = owned.len();
    let nl = n as u64;
    let (mut total, mut maxb) = (0u64, 0u64);
    for (src, bucket) in pending.iter_mut().enumerate() {
        let src_rank = assign.rank_of(src as u32) as usize;
        *forwards += bucket.len() as u64;
        let mut lens = vec![0u64; n];
        for &(dead, target) in bucket.iter() {
            let owner = owner_rank(dead, nl) as usize;
            lens[owner] += 1;
            owned[owner].insert(dead, target);
        }
        bucket.clear();
        let rank_bytes: u64 = lens
            .iter()
            .enumerate()
            .filter(|(dst, _)| *dst != src_rank)
            .map(|(_, &l)| 4 + 16 * l)
            .sum();
        total += rank_bytes;
        maxb = maxb.max(rank_bytes);
    }
    (total, maxb)
}

/// Simulate the pipeline at `n_ranks` virtual ranks (one block each).
pub fn simulate(
    field: &ScalarField,
    n_ranks: u32,
    params: &SimParams,
) -> Result<SimReport, SimError> {
    if n_ranks < 1 {
        return Err(SimError::Config("need at least one rank".into()));
    }
    let n_blocks = n_ranks;
    let red = params.plan.reduction();
    if params.decomp.is_uniform() && !n_blocks.is_multiple_of(red) {
        return Err(SimError::Config(format!(
            "plan reduction {red} must divide the rank count {n_ranks}"
        )));
    }
    // Heartbeat: virtual ranks advance in lockstep phases here (the
    // driver is bulk-synchronous), so every transition is a
    // `set_phase_all`; "done" ranks only diverge from the phase label
    // at the very end.
    let heartbeat = params
        .progress
        .or_else(progress_interval_from_env)
        .filter(|&s| s > 0.0 && s.is_finite())
        .map(|secs| {
            Heartbeat::spawn(
                "sim",
                n_ranks as usize,
                std::time::Duration::from_secs_f64(secs),
            )
        });
    let progress = heartbeat.as_ref().map(|h| h.state());
    let phase = |ph: ProgressPhase| {
        if let Some(st) = &progress {
            st.set_phase_all(ph);
        }
    };
    // Same (decomposition, schedule, assignment) the threaded pipeline
    // derives — all pure functions of `(decomp, plan)`, so the sim
    // replays the identical merge tree and rank layout. With one block
    // per virtual rank the LPT assignment is a permutation; clocks,
    // traces, and fault charges index by `rank_of(slot)` while the
    // complexes stay slot-indexed like the pipeline's slot maps.
    let (decomp, costs): (Decomposition, Option<Vec<u64>>) = match params.decomp {
        DecompMode::Uniform => (Decomposition::bisect(field.dims(), n_blocks), None),
        DecompMode::Adaptive => {
            let weights = feature_weights(field);
            let d = Decomposition::adaptive(field.dims(), n_blocks, &weights);
            let c = d.block_costs(&weights);
            (d, Some(c))
        }
        DecompMode::RandomTree { seed } => {
            let d = Decomposition::random_tree(field.dims(), n_blocks, seed);
            let c = d.blocks().iter().map(|b| b.n_verts()).collect();
            (d, Some(c))
        }
    };
    let sched = match params.decomp {
        DecompMode::Uniform => MergeSchedule::uniform(&params.plan, n_blocks),
        _ => MergeSchedule::contract(&decomp, &params.plan),
    };
    let assign = match &costs {
        None => Assignment::round_robin(n_blocks, n_ranks),
        Some(c) => Assignment::lpt(c, n_ranks),
    };
    let rk = |b: u32| assign.rank_of(b) as usize;
    let (gmin, gmax) = field.min_max();
    let threshold = params.persistence_frac * (gmax - gmin);
    let sp = SimplifyParams {
        threshold,
        max_new_arcs: params.max_new_arcs,
        max_parallel_arcs: Some(2),
    };
    let fplan = params.fault.plan.as_ref();
    let mut ledger = FaultLedger::default();
    // Virtual-clock trace: spans/messages stamped in modeled seconds,
    // converted to the trace's nanosecond timestamps.
    let ns = |s: f64| (s.max(0.0) * 1e9).round() as u64;
    let mut traces: Option<Vec<RankTrace>> = params
        .trace
        .then(|| (0..n_ranks).map(RankTrace::new).collect());

    // ---- read (modeled) ----
    phase(ProgressPhase::Read);
    let total_in: u64 = decomp
        .blocks()
        .iter()
        .map(|b| block_bytes(b, params.dtype))
        .sum();
    let max_in = decomp
        .blocks()
        .iter()
        .map(|b| block_bytes(b, params.dtype))
        .max()
        .unwrap_or(0);
    let read_s = params.io.collective_time(total_in, max_in, n_ranks);

    // ---- compute + local simplify (measured, per virtual rank) ----
    phase(ProgressPhase::Local);
    struct BlockOut {
        ms: MsComplex,
        seg: Option<BlockSegmentation>,
        fw: Vec<(u64, u64)>,
        t_build: f64,
        t_label: f64,
        t_simplify: f64,
    }
    let rdims = field.dims().refined();
    let blocks: Vec<BlockOut> = decomp
        .blocks()
        .par_iter()
        .map(|b| {
            let bf = field.extract_block(b);
            let t0 = Instant::now();
            let grad = assign_gradient(&bf, &decomp);
            let (mut ms, _) = complex_from_gradient(&bf, &decomp, &grad, params.trace_limits);
            let t_build = t0.elapsed().as_secs_f64();
            let (seg, t_label) = if params.segment {
                let tl = Instant::now();
                let seg = label_block(b, &rdims, &grad, 1);
                (Some(seg), tl.elapsed().as_secs_f64())
            } else {
                (None, 0.0)
            };
            let t1 = Instant::now();
            let mut fw = Vec::new();
            if params.segment {
                simplify_forwarding(&mut ms, sp, Some(&mut fw))
                    .expect("sim-driver fields are finite");
            } else {
                simplify(&mut ms, sp).expect("sim-driver fields are finite");
            }
            ms.compact();
            let t_simplify = t1.elapsed().as_secs_f64();
            BlockOut {
                ms,
                seg,
                fw,
                t_build,
                t_label,
                t_simplify,
            }
        })
        .collect();

    let compute_s = blocks.iter().map(|b| b.t_build).fold(0.0, f64::max);
    let seg_label_s = blocks.iter().map(|b| b.t_label).fold(0.0, f64::max);
    let local_simplify_s = blocks.iter().map(|b| b.t_simplify).fold(0.0, f64::max);

    // virtual clocks: collective read ends together, then local work
    // (multiplied by the rank's injected slowdown factor, if any)
    let mut clocks: Vec<f64> = vec![0.0; n_ranks as usize];
    for (i, b) in blocks.iter().enumerate() {
        let r = rk(i as u32);
        let slow = fplan.map_or(1.0, |p| p.slow_factor(r));
        clocks[r] = read_s + (b.t_build + b.t_label + b.t_simplify) * slow;
    }
    if let Some(tr) = &mut traces {
        for (i, b) in blocks.iter().enumerate() {
            let r = rk(i as u32);
            let slow = fplan.map_or(1.0, |p| p.slow_factor(r));
            let t_read_end = read_s;
            let t_compute_end = t_read_end + b.t_build * slow;
            let t_label_end = t_compute_end + b.t_label * slow;
            tr[r].span("read", 0, ns(t_read_end));
            tr[r].span("compute", ns(t_read_end), ns(t_compute_end));
            if params.segment {
                tr[r].span("segment", ns(t_compute_end), ns(t_label_end));
            }
            tr[r].span("local_simplify", ns(t_label_end), ns(clocks[r]));
        }
    }
    // Segmentation resolution state: per-slot pending forwards and
    // per-rank owner maps (the pipeline's hashed `owner_rank`), plus
    // the counters the modeled exchanges accumulate.
    let mut pending_fw: Vec<Vec<(u64, u64)>> = Vec::with_capacity(blocks.len());
    let mut segs: Vec<Option<BlockSegmentation>> = Vec::with_capacity(blocks.len());
    let mut complexes: Vec<Option<MsComplex>> = Vec::with_capacity(blocks.len());
    for b in blocks {
        pending_fw.push(b.fw);
        segs.push(b.seg);
        complexes.push(Some(b.ms));
    }
    let mut owned_fw: Vec<ForwardMap> = vec![ForwardMap::new(); n_ranks as usize];
    let mut seg_forwards = 0u64;
    let mut seg_bytes = 0u64;
    let mut seg_resolve_s = 0.0f64;

    // ---- merge rounds ----
    phase(ProgressPhase::Merge);
    let torus = Torus::for_ranks(n_ranks);
    let clock_after_local = clocks.iter().copied().fold(0.0, f64::max);
    let mut rounds = Vec::with_capacity(sched.rounds.len());
    // per-directed-link message counter, 1-based like the comm layer's
    let mut link_seq: HashMap<(usize, usize), u64> = HashMap::new();
    for (r, round) in sched.rounds.iter().enumerate() {
        let groups = &round.groups;
        let round_no = r as u32 + 1;
        let before = clocks.iter().copied().fold(0.0, f64::max);

        // Round boundary = consistent cut: charge the checkpoint write
        // of all live state as a collective over the alive slots.
        if params.fault.checkpoint {
            let alive: Vec<u32> = groups.iter().flat_map(|(_, m)| m.iter().copied()).collect();
            let sizes: Vec<u64> = alive
                .iter()
                .map(|&s| match &complexes[s as usize] {
                    Some(ms) => wire::estimate_size(ms) as u64,
                    None => 0,
                })
                .collect();
            let total: u64 = sizes.iter().sum();
            let ck = params.io.collective_time(
                total,
                sizes.iter().copied().max().unwrap_or(0),
                alive.len() as u32,
            );
            for &s in &alive {
                if let Some(tr) = &mut traces {
                    let t0 = clocks[rk(s)];
                    tr[rk(s)].span("checkpoint", ns(t0), ns(t0 + ck));
                }
                clocks[rk(s)] += ck;
            }
            ledger.checkpoint_s += ck;
        }

        // pull out the group inputs serially (deterministic link
        // sequencing + fault charges), process groups in parallel
        let mut work: Vec<(u32, MsComplex, f64, Vec<MemberIn>)> = Vec::with_capacity(groups.len());
        let mut round_entry: HashMap<u32, f64> = HashMap::new();
        for (root, members) in groups {
            let root_ms = complexes[*root as usize].take().ok_or(SimError::DeadSlot {
                slot: *root,
                stage: "merge root",
            })?;
            let mut root_clock = clocks[rk(*root)];
            round_entry.insert(*root, root_clock);
            if fplan.is_some_and(|p| p.should_crash(rk(*root), round_no)) {
                // A crashed root reboots from its own checkpoint: the
                // round replays after a reload of its full state.
                let bytes = wire::estimate_size(&root_ms) as u64;
                let reload = params.net.retry_time(bytes, 0);
                ledger.crashes += 1;
                ledger.retries += 1;
                ledger.retry_bytes += bytes;
                ledger.recovery_s += reload;
                if let Some(tr) = &mut traces {
                    tr[rk(*root)].span("recover", ns(root_clock), ns(root_clock + reload));
                }
                root_clock += reload;
                // keep root_ms: the sim models the recovered (bit-exact)
                // data path, only the clock pays
            }
            let mut inputs = Vec::with_capacity(members.len() - 1);
            for &m in &members[1..] {
                let ms = complexes[m as usize].take().ok_or(SimError::DeadSlot {
                    slot: m,
                    stage: "merge member",
                })?;
                let bytes = wire::estimate_size(&ms) as u64;
                if let Some(st) = &progress {
                    st.add_bytes(bytes);
                }
                let hops = torus.hops(rk(m) as u32, rk(*root) as u32);
                let seq = link_seq.entry((rk(m), rk(*root))).or_insert(0);
                *seq += 1;
                let tag = (round_no << 20) | m;
                let mut arrive =
                    clocks[rk(m)] + params.net.latency_s + params.net.hop_time_s * hops as f64;
                if fplan.is_some_and(|p| p.should_crash(rk(m), round_no)) {
                    // Dead member: the root burns its detection deadline,
                    // then re-ships the member's checkpoint over the
                    // torus instead of receiving its message.
                    let retry = params.net.retry_time(bytes, hops);
                    ledger.crashes += 1;
                    ledger.retries += 1;
                    ledger.retry_bytes += bytes;
                    ledger.recovery_s += params.fault.deadline_s + retry;
                    arrive = root_clock + params.fault.deadline_s + retry;
                    if let Some(tr) = &mut traces {
                        // No message left the dead member: the root's
                        // trace shows the expired deadline and the
                        // checkpoint re-ship as a recover span.
                        let expire = root_clock + params.fault.deadline_s;
                        tr[rk(*root)].timeouts.push(TimeoutStamp {
                            src: rk(m) as u32,
                            tag,
                            t_ns: ns(expire),
                            waited_ns: ns(params.fault.deadline_s),
                        });
                        tr[rk(*root)].span("recover", ns(expire), ns(arrive));
                    }
                } else if let Some(p) = fplan {
                    match p.fate(m as usize, *root as usize, *seq) {
                        SendFate::Deliver => {}
                        SendFate::Drop => {
                            // lost in flight: one retry round-trip
                            let retry = params.net.retry_time(bytes, hops);
                            ledger.retries += 1;
                            ledger.retry_bytes += bytes;
                            ledger.recovery_s += retry;
                            arrive += retry;
                        }
                        SendFate::Delay(d) => arrive += d.as_secs_f64(),
                    }
                }
                if let Some(tr) = &mut traces {
                    if !fplan.is_some_and(|p| p.should_crash(rk(m), round_no)) {
                        // One causal pair per surviving transfer: drops and
                        // delays move the arrival, they don't fork the edge.
                        tr[rk(m)].send(rk(*root) as u32, tag, *seq, bytes, ns(clocks[rk(m)]));
                        tr[rk(*root)].recv(rk(m) as u32, tag, *seq, bytes, ns(arrive));
                    }
                }
                inputs.push(MemberIn {
                    ms,
                    arrive_s: arrive,
                    bytes,
                });
            }
            work.push((*root, root_ms, root_clock, inputs));
        }
        type GlueOut = (u32, MsComplex, f64, f64, f64, u64, Vec<(u64, u64)>);
        let results: Vec<GlueOut> = work
            .into_par_iter()
            .map(|(root, mut root_ms, root_clock, inputs)| {
                // modeled arrival: the root can start gluing once every
                // member's message has landed; the root link serializes
                // the payloads
                let mut start = root_clock;
                let mut sum_bytes = 0u64;
                for m in &inputs {
                    sum_bytes += m.bytes;
                    start = start.max(m.arrive_s);
                }
                let comm = sum_bytes as f64 * params.net.byte_time_s;
                let t0 = Instant::now();
                let incoming: Vec<MsComplex> = inputs.into_iter().map(|m| m.ms).collect();
                glue_all(&mut root_ms, &incoming, &decomp)
                    .expect("sim-driver complexes glue cleanly");
                let mut fw = Vec::new();
                if params.segment {
                    simplify_forwarding(&mut root_ms, sp, Some(&mut fw))
                        .expect("sim-driver fields are finite");
                } else {
                    simplify(&mut root_ms, sp).expect("sim-driver fields are finite");
                }
                root_ms.compact();
                let glue = t0.elapsed().as_secs_f64();
                (
                    root,
                    root_ms,
                    start + comm + glue,
                    comm,
                    glue,
                    sum_bytes,
                    fw,
                )
            })
            .collect();
        let mut comm_max = 0.0f64;
        let mut glue_max = 0.0f64;
        let mut bytes_moved = 0u64;
        for (root, ms, clock, comm, glue, bytes, fw) in results {
            comm_max = comm_max.max(comm);
            glue_max = glue_max.max(glue);
            bytes_moved += bytes;
            if let Some(tr) = &mut traces {
                let entry = round_entry.get(&root).copied().unwrap_or(clock);
                tr[rk(root)].span(&format!("merge_round[{r}]"), ns(entry), ns(clock));
                tr[rk(root)].span("glue", ns(clock - glue), ns(clock));
            }
            clocks[rk(root)] = clock;
            complexes[root as usize] = Some(ms);
            pending_fw[root as usize].extend(fw);
        }
        // Piggybacked forward flush at the round boundary, mirroring the
        // pipeline: the round's cancellations route to their owner maps,
        // the exchange's wire bytes and one latency are charged.
        if params.segment {
            let (fb, fb_max) =
                flush_pending(&mut pending_fw, &mut owned_fw, &assign, &mut seg_forwards);
            seg_bytes += fb;
            if n_ranks > 1 {
                seg_resolve_s += params.net.latency_s + fb_max as f64 * params.net.byte_time_s;
            }
        }
        let after = groups
            .iter()
            .map(|(root, _)| clocks[rk(*root)])
            .fold(0.0, f64::max);
        rounds.push(RoundReport {
            radix: round.radix,
            comm_s: comm_max,
            glue_s: glue_max,
            round_s: after - before,
            bytes_moved,
        });
    }

    // ---- segmentation resolution (exact evolution, modeled comm) ----
    // The global jump evolution `new[d] = old[old[d]]` is a pure
    // function of the forward-pair content, independent of how entries
    // partition across owners — so replaying it sequentially over the
    // same owner maps yields the *true* distributed round count and
    // wire traffic, while the clocks are only charged modeled costs.
    let mut seg_rounds = 0u64;
    let mut seg_output_bytes = 0u64;
    let mut seg_write_s = 0.0f64;
    if params.segment {
        phase(ProgressPhase::SegResolve);
        let n = n_ranks as usize;
        let nl = n_ranks as u64;
        // log-tree all-reduce closes every jump round
        let allreduce_s = if n_ranks > 1 {
            params.net.latency_s * (32 - (n_ranks - 1).leading_zeros()) as f64
        } else {
            0.0
        };
        // flush whatever was not piggybacked on a merge round (all
        // local forwards when the plan has no rounds)
        let (fb, fb_max) =
            flush_pending(&mut pending_fw, &mut owned_fw, &assign, &mut seg_forwards);
        seg_bytes += fb;
        if n_ranks > 1 {
            seg_resolve_s += params.net.latency_s + fb_max as f64 * params.net.byte_time_s;
        }
        loop {
            // queries: each rank asks every target's owner, sorted and
            // deduplicated per destination
            let mut qbuckets: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); n]; n];
            for (src, map) in owned_fw.iter().enumerate() {
                for (_, target) in map.sorted_entries() {
                    if target != DRAIN_ADDR {
                        qbuckets[src][owner_rank(target, nl) as usize].push(target);
                    }
                }
                for qb in &mut qbuckets[src] {
                    qb.sort_unstable();
                    qb.dedup();
                }
            }
            // replies answer from the PRE-round state: all lookups are
            // built before any rank applies its jump pass
            let mut lookups: Vec<HashMap<u64, u64>> = vec![HashMap::new(); n];
            let mut rlens = vec![vec![0u64; n]; n];
            let (mut qtot, mut qmax) = (0u64, 0u64);
            for src in 0..n {
                let mut qb_bytes = 0u64;
                for owner in 0..n {
                    let qb = &qbuckets[src][owner];
                    if owner != src {
                        qb_bytes += 4 + 8 * qb.len() as u64;
                    }
                    for &a in qb {
                        if let Some(t) = owned_fw[owner].get(a) {
                            rlens[owner][src] += 1;
                            lookups[src].insert(a, t);
                        }
                    }
                }
                qtot += qb_bytes;
                qmax = qmax.max(qb_bytes);
            }
            let (mut rtot, mut rmax) = (0u64, 0u64);
            for (owner, lens) in rlens.iter().enumerate() {
                let b: u64 = lens
                    .iter()
                    .enumerate()
                    .filter(|(dst, _)| *dst != owner)
                    .map(|(_, &l)| 4 + 16 * l)
                    .sum();
                rtot += b;
                rmax = rmax.max(b);
            }
            seg_bytes += qtot + rtot;
            if n_ranks > 1 {
                seg_resolve_s += 2.0 * params.net.latency_s
                    + (qmax + rmax) as f64 * params.net.byte_time_s
                    + allreduce_s;
            }
            let mut changed = 0u64;
            for (src, map) in owned_fw.iter_mut().enumerate() {
                changed += map.jump_pass(&lookups[src]);
            }
            // counted exactly like the pipeline: every iteration,
            // including the final one that observes the fixed point
            seg_rounds += 1;
            if changed == 0 {
                break;
            }
        }
        // table rewrite: every extremum address in each rank's tables
        // is resolved by its owner against the compressed map
        let mut tlens = vec![vec![0u64; n]; n];
        for (slot, seg) in segs.iter_mut().enumerate() {
            let Some(seg) = seg.as_mut() else { continue };
            let src = rk(slot as u32);
            let mut addrs: Vec<u64> = seg.mins.iter().chain(seg.maxs.iter()).copied().collect();
            addrs.sort_unstable();
            addrs.dedup();
            for &a in &addrs {
                tlens[src][owner_rank(a, nl) as usize] += 1;
            }
            let rm: Vec<u64> = seg
                .mins
                .iter()
                .map(|&a| owned_fw[owner_rank(a, nl) as usize].resolve(a))
                .collect();
            let rx: Vec<u64> = seg
                .maxs
                .iter()
                .map(|&a| owned_fw[owner_rank(a, nl) as usize].resolve(a))
                .collect();
            seg.apply_resolution(&rm, &rx);
        }
        let (mut qtot, mut qmax) = (0u64, 0u64);
        let (mut rtot, mut rmax) = (0u64, 0u64);
        for (src, row) in tlens.iter().enumerate() {
            let qb: u64 = (0..n).filter(|&d| d != src).map(|d| 4 + 8 * row[d]).sum();
            let rb: u64 = (0..n)
                .filter(|&d| d != src)
                .map(|d| 4 + 16 * tlens[d][src])
                .sum();
            qtot += qb;
            qmax = qmax.max(qb);
            rtot += rb;
            rmax = rmax.max(rb);
        }
        seg_bytes += qtot + rtot;
        if n_ranks > 1 {
            seg_resolve_s +=
                2.0 * params.net.latency_s + (qmax + rmax) as f64 * params.net.byte_time_s;
        }
        // labeled-volume output: one SEG1 payload per block, written
        // collectively by all ranks
        let seg_sizes: Vec<u64> = segs
            .iter()
            .flatten()
            .map(|s| segwire::serialize(s).len() as u64)
            .collect();
        seg_output_bytes = seg_sizes.iter().sum();
        let max_seg = seg_sizes.iter().copied().max().unwrap_or(0);
        if seg_output_bytes > 0 {
            seg_write_s = params
                .io
                .collective_time(seg_output_bytes, max_seg, n_ranks);
        }
        // the resolution's all-to-alls synchronize every rank
        let t_sync = clocks.iter().copied().fold(0.0, f64::max);
        for (i, c) in clocks.iter_mut().enumerate() {
            if let Some(tr) = &mut traces {
                tr[i].span("seg_resolve", ns(*c), ns(t_sync + seg_resolve_s));
            }
            *c = t_sync + seg_resolve_s;
        }
    }

    // ---- write (modeled) ----
    phase(ProgressPhase::Write);
    let out_slots = sched.outputs.clone();
    // one final checkpoint protects the fully-merged state
    if params.fault.checkpoint {
        let sizes: Vec<u64> = out_slots
            .iter()
            .map(|&s| match &complexes[s as usize] {
                Some(ms) => wire::estimate_size(ms) as u64,
                None => 0,
            })
            .collect();
        let total: u64 = sizes.iter().sum();
        let ck = params.io.collective_time(
            total,
            sizes.iter().copied().max().unwrap_or(0),
            out_slots.len() as u32,
        );
        for &s in &out_slots {
            if let Some(tr) = &mut traces {
                let t0 = clocks[rk(s)];
                tr[rk(s)].span("checkpoint", ns(t0), ns(t0 + ck));
            }
            clocks[rk(s)] += ck;
        }
        ledger.checkpoint_s += ck;
    }
    let mut payload_sizes = Vec::with_capacity(out_slots.len());
    for &s in &out_slots {
        let ms = complexes[s as usize].as_ref().ok_or(SimError::DeadSlot {
            slot: s,
            stage: "output write",
        })?;
        payload_sizes.push(wire::serialize(ms).len() as u64);
    }
    let output_bytes: u64 = payload_sizes.iter().sum();
    let max_out = payload_sizes.iter().copied().max().unwrap_or(0);
    let write_s = if output_bytes > 0 {
        params.io.collective_time(output_bytes, max_out, n_ranks)
    } else {
        0.0
    };

    let clock_final = out_slots.iter().map(|&s| clocks[rk(s)]).fold(0.0, f64::max);
    let mut live_nodes = 0u64;
    let mut live_arcs = 0u64;
    for &s in &out_slots {
        let ms = complexes[s as usize].as_ref().ok_or(SimError::DeadSlot {
            slot: s,
            stage: "output census",
        })?;
        live_nodes += ms.n_live_nodes();
        live_arcs += ms.n_live_arcs();
    }

    if let Some(tr) = &mut traces {
        // The collective write ends the run for the ranks holding output
        // slots; every other rank's story ends at its last local clock.
        let out_ranks: Vec<usize> = out_slots.iter().map(|&s| rk(s)).collect();
        for &s in &out_slots {
            let t0 = clocks[rk(s)];
            tr[rk(s)].span("write", ns(t0), ns(t0 + write_s));
        }
        for (i, t) in tr.iter_mut().enumerate() {
            let mut end = if out_ranks.contains(&i) {
                clocks[i] + write_s
            } else {
                clocks[i]
            };
            if seg_write_s > 0.0 {
                // every rank owns a block, so every rank joins the
                // collective labeled-volume write
                t.span("seg_write", ns(end), ns(end + seg_write_s));
                end += seg_write_s;
            }
            t.span("total", 0, ns(end));
        }
    }

    phase(ProgressPhase::Done);
    drop(heartbeat);

    Ok(SimReport {
        n_ranks,
        read_s,
        compute_s,
        local_simplify_s,
        merge_s: (clock_final - clock_after_local) + local_simplify_s,
        write_s,
        total_s: clock_final + write_s + seg_write_s,
        rounds,
        output_blocks: out_slots.len() as u32,
        output_bytes,
        live_nodes,
        live_arcs,
        threshold,
        crashes: ledger.crashes,
        retries: ledger.retries,
        retry_bytes: ledger.retry_bytes,
        recovery_s: ledger.recovery_s,
        checkpoint_s: ledger.checkpoint_s,
        seg_label_s,
        seg_resolve_s,
        seg_write_s,
        seg_rounds,
        seg_forwards,
        seg_bytes,
        seg_output_bytes,
        trace: traces.map(RunTrace::from_ranks),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::Dims;

    #[test]
    fn simulate_serial_baseline() {
        let f = msp_synth::white_noise(Dims::cube(9), 4);
        let r = simulate(&f, 1, &SimParams::default()).unwrap();
        assert_eq!(r.output_blocks, 1);
        assert!(r.compute_s > 0.0);
        assert!(r.total_s >= r.read_s + r.compute_s);
        assert!(r.rounds.is_empty());
        assert_eq!(r.crashes, 0);
        assert_eq!(r.checkpoint_s, 0.0);
    }

    #[test]
    fn bad_config_is_reported_not_panicked() {
        let f = msp_synth::white_noise(Dims::cube(9), 4);
        let params = SimParams {
            plan: MergePlan::rounds(vec![8]),
            ..Default::default()
        };
        assert!(matches!(
            simulate(&f, 12, &params).err(),
            Some(SimError::Config(_))
        ));
    }

    #[test]
    fn full_merge_counts() {
        let f = msp_synth::white_noise(Dims::cube(9), 4);
        let params = SimParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let r = simulate(&f, 8, &params).unwrap();
        assert_eq!(r.output_blocks, 1);
        assert_eq!(r.rounds.len(), 1);
        assert_eq!(r.rounds[0].radix, 8);
        assert!(r.rounds[0].bytes_moved > 0);
        assert!(r.output_bytes > 0);
    }

    #[test]
    fn sim_matches_threaded_pipeline_output() {
        use crate::pipeline::{run_parallel, Input, PipelineParams};
        use std::sync::Arc;
        let field = Arc::new(msp_synth::white_noise(Dims::cube(9), 10));
        let plan = MergePlan::full_merge(8);
        let sim = simulate(
            &field,
            8,
            &SimParams {
                plan: plan.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        let thr = run_parallel(
            &Input::Memory(field.clone()),
            8,
            8,
            &PipelineParams {
                plan,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        // identical algorithm, identical outputs
        assert_eq!(sim.live_nodes, thr.outputs[0].n_live_nodes());
        assert_eq!(sim.live_arcs, thr.outputs[0].n_live_arcs());
        assert_eq!(sim.output_bytes, thr.output_bytes);
    }

    #[test]
    fn sim_segment_replays_the_pipeline_resolution_exactly() {
        use crate::pipeline::{run_parallel, Input, PipelineParams};
        use std::sync::Arc;
        let field = Arc::new(msp_synth::white_noise(Dims::cube(9), 10));
        let plan = MergePlan::full_merge(8);
        let sim = simulate(
            &field,
            8,
            &SimParams {
                plan: plan.clone(),
                segment: true,
                ..Default::default()
            },
        )
        .unwrap();
        let thr = run_parallel(
            &Input::Memory(field.clone()),
            8,
            8,
            &PipelineParams {
                plan,
                segment: true,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        // the sequential replay must reproduce the distributed
        // protocol's counters bit for bit, not just approximately
        let rk0 = &thr.telemetry.ranks[0];
        assert_eq!(sim.seg_rounds, rk0.counter("seg_rounds"));
        assert_eq!(
            sim.seg_forwards,
            thr.telemetry.counter_total("seg_forwards")
        );
        assert_eq!(
            sim.seg_bytes,
            thr.telemetry.counter_total("seg_boundary_bytes")
        );
        assert!(sim.seg_rounds <= msp_segment::jump_round_bound(sim.seg_forwards));
        assert!(sim.seg_label_s > 0.0);
        assert!(sim.seg_output_bytes > 0);
        assert!(sim.total_s >= sim.seg_write_s);
    }

    #[test]
    fn sim_replays_irregular_schedules_exactly() {
        use crate::pipeline::{run_parallel, Input, PipelineParams};
        use crate::sched::full_merge_plan;
        use std::sync::Arc;
        // A non-power-of-two adaptive run: the sim must derive the same
        // contracted merge schedule and LPT rank permutation as the
        // threaded pipeline, reproducing its outputs and segmentation
        // counters bit for bit.
        let field = Arc::new(msp_synth::white_noise(Dims::cube(9), 10));
        let plan = full_merge_plan(6);
        let sim = simulate(
            &field,
            6,
            &SimParams {
                plan: plan.clone(),
                decomp: DecompMode::Adaptive,
                segment: true,
                ..Default::default()
            },
        )
        .unwrap();
        let thr = run_parallel(
            &Input::Memory(field.clone()),
            6,
            6,
            &PipelineParams {
                plan,
                decomp: DecompMode::Adaptive,
                segment: true,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(sim.output_blocks as usize, thr.outputs.len());
        let thr_nodes: u64 = thr.outputs.iter().map(|ms| ms.n_live_nodes()).sum();
        let thr_arcs: u64 = thr.outputs.iter().map(|ms| ms.n_live_arcs()).sum();
        assert_eq!(sim.live_nodes, thr_nodes);
        assert_eq!(sim.live_arcs, thr_arcs);
        assert_eq!(sim.output_bytes, thr.output_bytes);
        let rk0 = &thr.telemetry.ranks[0];
        assert_eq!(sim.seg_rounds, rk0.counter("seg_rounds"));
        assert_eq!(
            sim.seg_forwards,
            thr.telemetry.counter_total("seg_forwards")
        );
        assert_eq!(
            sim.seg_bytes,
            thr.telemetry.counter_total("seg_boundary_bytes")
        );
    }

    #[test]
    fn sim_segment_off_reports_zeros() {
        let f = msp_synth::white_noise(Dims::cube(9), 4);
        let params = SimParams {
            plan: MergePlan::full_merge(8),
            ..Default::default()
        };
        let r = simulate(&f, 8, &params).unwrap();
        assert_eq!(r.seg_rounds, 0);
        assert_eq!(r.seg_forwards, 0);
        assert_eq!(r.seg_bytes, 0);
        assert_eq!(r.seg_output_bytes, 0);
        assert_eq!(r.seg_label_s, 0.0);
        assert_eq!(r.seg_resolve_s, 0.0);
        assert_eq!(r.seg_write_s, 0.0);
    }

    #[test]
    fn faults_charge_the_clock_but_not_the_data() {
        let f = msp_synth::white_noise(Dims::cube(9), 4);
        let plan = MergePlan::full_merge(8);
        let clean = simulate(
            &f,
            8,
            &SimParams {
                plan: plan.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        let faulty = simulate(
            &f,
            8,
            &SimParams {
                plan,
                fault: SimFault {
                    plan: Some(FaultPlan::new().crash(3, 1)),
                    checkpoint: true,
                    deadline_s: 0.5,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(faulty.crashes, 1);
        assert_eq!(faulty.retries, 1);
        assert!(faulty.retry_bytes > 0);
        assert!(faulty.recovery_s >= 0.5, "deadline must be charged");
        assert!(faulty.checkpoint_s > 0.0);
        // data path is the recovered (bit-exact) one
        assert_eq!(faulty.live_nodes, clean.live_nodes);
        assert_eq!(faulty.live_arcs, clean.live_arcs);
        assert_eq!(faulty.output_bytes, clean.output_bytes);
    }

    #[test]
    fn drops_and_delays_add_recovery_time() {
        let f = msp_synth::white_noise(Dims::cube(9), 4);
        let plan = MergePlan::full_merge(8);
        let r = simulate(
            &f,
            8,
            &SimParams {
                plan,
                fault: SimFault {
                    // first message rank 1 -> rank 0 is lost once
                    plan: Some(FaultPlan::new().drop_msg(1, 0, 1)),
                    checkpoint: false,
                    deadline_s: 0.25,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.crashes, 0);
        assert_eq!(r.retries, 1);
        assert!(r.retry_bytes > 0);
        assert!(r.recovery_s > 0.0);
    }

    #[test]
    fn more_ranks_less_compute_time() {
        // weak statement robust to timing noise: per-block compute at 16
        // ranks must be well below serial compute on the same field
        let f = msp_synth::sinusoid(33, 4);
        let t1 = simulate(&f, 1, &SimParams::default()).unwrap().compute_s;
        let t16 = simulate(&f, 16, &SimParams::default()).unwrap().compute_s;
        assert!(
            t16 < t1,
            "per-block compute must shrink with more ranks ({t16} vs {t1})"
        );
    }
}
