//! Decomposition modes, block-to-rank assignment, and generalized merge
//! scheduling over irregular block trees (DESIGN.md §14).
//!
//! The paper's merge stage assumes power-of-two uniform bisection, which
//! lets the schedule be the fixed radix tree of [`MergePlan::groups`] and
//! the assignment be block-cyclic. Irregular decompositions (the adaptive
//! feature-density splitter, random block trees from the fuzzer) break
//! both assumptions, so this module generalizes them:
//!
//! * [`DecompMode`] selects how the domain is cut into blocks;
//! * [`Assignment`] maps blocks to ranks — block-cyclic for uniform runs
//!   (bit-compatible with the historical layout) or LPT greedy over
//!   per-block cost estimates for irregular ones;
//! * [`MergeSchedule`] is the reduction over the block neighbor graph:
//!   for uniform runs it replays [`MergePlan::groups`] verbatim, for
//!   irregular ones it is a deterministic greedy contraction of the
//!   neighbor graph, one radix-k round at a time.
//!
//! Everything here is a pure function of `(decomposition, plan)` — never
//! of the rank or thread count — which is what makes irregular runs
//! byte-identical to their canonical 1-rank execution.

use crate::plan::MergePlan;
use msp_grid::{Decomposition, ScalarField};

/// How the domain is decomposed into blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecompMode {
    /// Recursive longest-axis bisection (the paper's layout). Requires
    /// the merge-plan reduction to divide the block count; blocks are
    /// assigned block-cyclically and merged on the fixed radix tree.
    #[default]
    Uniform,
    /// Feature-density-driven adaptive splitter: split planes balance
    /// the integral of a per-vertex feature weight (local extrema count
    /// extra), so feature-dense regions get more, smaller blocks.
    Adaptive,
    /// Random irregular block tree (fuzzing): random axes, random
    /// planes, random child counts, derived from the seed.
    RandomTree { seed: u64 },
}

impl DecompMode {
    pub fn is_uniform(&self) -> bool {
        matches!(self, DecompMode::Uniform)
    }

    /// Parse a command-line spelling: `uniform`, `adaptive`, or
    /// `random:<seed>`.
    pub fn parse(s: &str) -> Result<DecompMode, String> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("uniform") {
            return Ok(DecompMode::Uniform);
        }
        if s.eq_ignore_ascii_case("adaptive") {
            return Ok(DecompMode::Adaptive);
        }
        if let Some(seed) = s.strip_prefix("random:") {
            return seed
                .parse::<u64>()
                .map(|seed| DecompMode::RandomTree { seed })
                .map_err(|_| format!("bad random-tree seed {seed:?}"));
        }
        Err(format!(
            "bad decomposition mode {s:?}: expected uniform, adaptive, or random:<seed>"
        ))
    }
}

impl std::fmt::Display for DecompMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompMode::Uniform => write!(f, "uniform"),
            DecompMode::Adaptive => write!(f, "adaptive"),
            DecompMode::RandomTree { seed } => write!(f, "random:{seed}"),
        }
    }
}

/// Per-vertex feature weight for the adaptive splitter and the LPT cost
/// model: every vertex costs 1, strict local extrema of the 6-connected
/// vertex graph cost 9. Extrema are where critical cells — and the
/// V-paths that end on them — concentrate, so slab-weight integrals of
/// this proxy track where the local stage actually spends its time.
pub fn feature_weights(field: &ScalarField) -> Vec<u64> {
    let d = field.dims();
    let (nx, ny, nz) = (d.nx as i64, d.ny as i64, d.nz as i64);
    let mut w = vec![1u64; (nx * ny * nz) as usize];
    let mut i = 0usize;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = field.value(x as u32, y as u32, z as u32);
                let mut is_min = true;
                let mut is_max = true;
                for (dx, dy, dz) in [
                    (-1i64, 0i64, 0i64),
                    (1, 0, 0),
                    (0, -1, 0),
                    (0, 1, 0),
                    (0, 0, -1),
                    (0, 0, 1),
                ] {
                    let (ux, uy, uz) = (x + dx, y + dy, z + dz);
                    if ux < 0 || uy < 0 || uz < 0 || ux >= nx || uy >= ny || uz >= nz {
                        continue;
                    }
                    let u = field.value(ux as u32, uy as u32, uz as u32);
                    if u <= v {
                        is_min = false;
                    }
                    if u >= v {
                        is_max = false;
                    }
                    if !is_min && !is_max {
                        break;
                    }
                }
                if is_min || is_max {
                    w[i] = 9;
                }
                i += 1;
            }
        }
    }
    w
}

/// Block-to-rank assignment. Replaces the hard-wired `block % n_ranks`
/// throughout the pipeline; the uniform constructor reproduces that map
/// exactly, so uniform runs keep their historical rank layout (and
/// therefore their message tags, checkpoint owners, and file bytes).
#[derive(Debug, Clone)]
pub struct Assignment {
    rank_of: Vec<u32>,
}

impl Assignment {
    /// The historical block-cyclic map `rank_of(b) = b % n_ranks`.
    pub fn round_robin(n_blocks: u32, n_ranks: u32) -> Self {
        assert!(n_ranks >= 1);
        Assignment {
            rank_of: (0..n_blocks).map(|b| b % n_ranks).collect(),
        }
    }

    /// Longest-processing-time greedy over per-block cost estimates:
    /// blocks in descending cost order (ids break ties), each to the
    /// currently least-loaded rank (lowest rank breaks ties). Zero-cost
    /// blocks still count 1, so empty ranks are never starved of blocks
    /// they could absorb for free.
    pub fn lpt(costs: &[u64], n_ranks: u32) -> Self {
        assert!(n_ranks >= 1);
        let mut order: Vec<u32> = (0..costs.len() as u32).collect();
        order.sort_by_key(|&b| (std::cmp::Reverse(costs[b as usize]), b));
        let mut load = vec![0u64; n_ranks as usize];
        let mut rank_of = vec![0u32; costs.len()];
        for b in order {
            let r = (0..n_ranks).min_by_key(|&r| (load[r as usize], r)).unwrap();
            rank_of[b as usize] = r;
            load[r as usize] += costs[b as usize].max(1);
        }
        Assignment { rank_of }
    }

    pub fn rank_of(&self, block: u32) -> u32 {
        self.rank_of[block as usize]
    }

    pub fn blocks_of(&self, rank: u32) -> Vec<u32> {
        (0..self.rank_of.len() as u32)
            .filter(|&b| self.rank_of[b as usize] == rank)
            .collect()
    }

    pub fn n_blocks(&self) -> u32 {
        self.rank_of.len() as u32
    }

    /// Per-rank summed cost under this assignment (for balance reports).
    pub fn loads(&self, costs: &[u64], n_ranks: u32) -> Vec<u64> {
        let mut load = vec![0u64; n_ranks as usize];
        for (b, &r) in self.rank_of.iter().enumerate() {
            load[r as usize] += costs[b];
        }
        load
    }
}

/// One merge round: the radix it was planned at and its gather groups,
/// each `(root, members)` with the root leading its member list — the
/// same shape [`MergePlan::groups`] produces.
#[derive(Debug, Clone)]
pub struct Round {
    pub radix: u32,
    pub groups: Vec<(u32, Vec<u32>)>,
}

/// The full merge schedule: rounds plus the surviving output slots. A
/// pure function of `(decomposition, plan)`, identical on every rank.
#[derive(Debug, Clone)]
pub struct MergeSchedule {
    pub rounds: Vec<Round>,
    /// Slots still holding a complex after the last round, ascending.
    pub outputs: Vec<u32>,
}

impl MergeSchedule {
    /// The uniform radix-tree schedule: [`MergePlan::groups`] and
    /// [`MergePlan::output_slots`] verbatim, round for round.
    pub fn uniform(plan: &MergePlan, n_blocks: u32) -> Self {
        let rounds = (0..plan.radices.len())
            .map(|r| Round {
                radix: plan.radices[r],
                groups: plan.groups(r, n_blocks),
            })
            .collect();
        MergeSchedule {
            rounds,
            outputs: plan.output_slots(n_blocks),
        }
    }

    /// Greedy deterministic contraction of the block neighbor graph, one
    /// radix-k round per plan entry: alive slots are visited in
    /// ascending order; an unclaimed slot roots a group and repeatedly
    /// absorbs its smallest unclaimed alive neighbor until the group
    /// reaches the radix (groups that stall below 2 members dissolve and
    /// their root stays alive). Two slots are neighbors when any of
    /// their member blocks share a face, edge, or corner.
    ///
    /// When the plan asks for a full merge (`reduction() >= n_blocks`)
    /// extra radix-8 rounds are appended until one slot survives — the
    /// slot regions tile the domain box, so the contracted graph stays
    /// connected and every extra round makes progress.
    pub fn contract(decomp: &Decomposition, plan: &MergePlan) -> Self {
        let n = decomp.blocks().len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (a, b) in decomp.neighbor_edges() {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let full = plan.reduction() as usize >= n;
        let mut slot_of: Vec<u32> = (0..n as u32).collect();
        let mut members: Vec<Vec<u32>> = (0..n as u32).map(|b| vec![b]).collect();
        let mut alive: Vec<u32> = (0..n as u32).collect();
        let mut rounds = Vec::new();
        let mut ri = 0usize;
        loop {
            if alive.len() <= 1 {
                break;
            }
            let radix = if ri < plan.radices.len() {
                plan.radices[ri]
            } else if full {
                8
            } else {
                break;
            };
            ri += 1;
            let mut claimed = vec![false; n];
            let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
            for &s in &alive {
                if claimed[s as usize] {
                    continue;
                }
                claimed[s as usize] = true;
                let mut group = vec![s];
                while group.len() < radix as usize {
                    // smallest unclaimed alive neighbor of the group
                    let mut best: Option<u32> = None;
                    for &g in &group {
                        for &blk in &members[g as usize] {
                            for &nb in &adj[blk as usize] {
                                let t = slot_of[nb as usize];
                                if !claimed[t as usize] && best.is_none_or(|b| t < b) {
                                    best = Some(t);
                                }
                            }
                        }
                    }
                    match best {
                        Some(t) => {
                            claimed[t as usize] = true;
                            group.push(t);
                        }
                        None => break,
                    }
                }
                if group.len() >= 2 {
                    groups.push((s, group));
                }
            }
            if groups.is_empty() {
                // No slot could pair up under this plan — nothing more
                // will ever merge (partial plans on sparse graphs).
                break;
            }
            for (root, group) in &groups {
                for &m in &group[1..] {
                    let mb = std::mem::take(&mut members[m as usize]);
                    for &blk in &mb {
                        slot_of[blk as usize] = *root;
                    }
                    members[*root as usize].extend(mb);
                }
            }
            let merged: Vec<u32> = groups
                .iter()
                .flat_map(|(_, g)| g[1..].iter().copied())
                .collect();
            alive.retain(|s| !merged.contains(s));
            rounds.push(Round { radix, groups });
        }
        MergeSchedule {
            rounds,
            outputs: alive,
        }
    }

    pub fn n_rounds(&self) -> usize {
        self.rounds.len()
    }
}

/// A full-merge plan valid for any block count: the power-of-two
/// [`MergePlan::full_merge`] heuristic applied to the next power of two.
/// Under [`MergeSchedule::contract`] only the round count and radices
/// matter (the groups come from the neighbor graph), and
/// `reduction() >= n_blocks` signals the full-merge intent.
pub fn full_merge_plan(n_blocks: u32) -> MergePlan {
    MergePlan::full_merge(n_blocks.max(1).next_power_of_two())
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::Dims;

    #[test]
    fn parse_round_trips() {
        for m in [
            DecompMode::Uniform,
            DecompMode::Adaptive,
            DecompMode::RandomTree { seed: 42 },
        ] {
            assert_eq!(DecompMode::parse(&m.to_string()).unwrap(), m);
        }
        assert!(DecompMode::parse("random:x").is_err());
        assert!(DecompMode::parse("voronoi").is_err());
    }

    #[test]
    fn round_robin_matches_modulo() {
        let a = Assignment::round_robin(11, 3);
        for b in 0..11u32 {
            assert_eq!(a.rank_of(b), b % 3);
        }
        assert_eq!(a.blocks_of(2), vec![2, 5, 8]);
        assert_eq!(a.n_blocks(), 11);
    }

    #[test]
    fn lpt_balances_skewed_costs() {
        // one huge block + many small ones: LPT must not stack smalls on
        // the rank holding the huge block
        let costs = [1000u64, 10, 10, 10, 10, 10, 10];
        let a = Assignment::lpt(&costs, 2);
        let loads = a.loads(&costs, 2);
        assert_eq!(a.rank_of(0), 0, "heaviest block goes first to rank 0");
        assert_eq!(loads[1], 60, "all small blocks land opposite the huge one");
        // deterministic
        let b = Assignment::lpt(&costs, 2);
        for blk in 0..costs.len() as u32 {
            assert_eq!(a.rank_of(blk), b.rank_of(blk));
        }
    }

    #[test]
    fn lpt_spreads_zero_costs() {
        let a = Assignment::lpt(&[0, 0, 0, 0], 4);
        let mut ranks: Vec<u32> = (0..4).map(|b| a.rank_of(b)).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn uniform_schedule_replays_the_plan() {
        let plan = MergePlan::full_merge(8);
        let s = MergeSchedule::uniform(&plan, 8);
        assert_eq!(s.rounds.len(), plan.radices.len());
        for (r, round) in s.rounds.iter().enumerate() {
            assert_eq!(round.radix, plan.radices[r]);
            assert_eq!(round.groups, plan.groups(r, 8));
        }
        assert_eq!(s.outputs, plan.output_slots(8));
    }

    #[test]
    fn contract_full_merge_reaches_one_slot() {
        for n in [2u32, 3, 5, 6, 7, 11] {
            let d = Decomposition::random_tree(Dims::new(21, 17, 13), n, 7 + n as u64);
            let s = MergeSchedule::contract(&d, &full_merge_plan(n));
            assert_eq!(s.outputs, vec![0], "{n} blocks must contract to slot 0");
            // every block merged exactly once
            let mut seen = vec![0u32; n as usize];
            seen[0] += 1; // the root never ships
            for round in &s.rounds {
                for (root, group) in &round.groups {
                    assert_eq!(*root, group[0]);
                    assert!(group.len() >= 2 && group.len() <= round.radix as usize);
                    for &m in &group[1..] {
                        seen[m as usize] += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{n}: {seen:?}");
        }
    }

    #[test]
    fn contract_groups_are_neighbor_connected() {
        let d = Decomposition::random_tree(Dims::new(19, 19, 11), 9, 123);
        let edges = d.neighbor_edges();
        let s = MergeSchedule::contract(&d, &full_merge_plan(9));
        // replay the contraction, checking every absorbed slot touches
        // the group it joins
        let mut members: Vec<Vec<u32>> = (0..9u32).map(|b| vec![b]).collect();
        for round in &s.rounds {
            for (root, group) in &round.groups {
                for &m in &group[1..] {
                    let touches = members[*root as usize].iter().any(|&a| {
                        members[m as usize]
                            .iter()
                            .any(|&b| edges.contains(&(a.min(b), a.max(b))))
                    });
                    assert!(touches, "slot {m} absorbed into non-neighbor {root}");
                    let mb = std::mem::take(&mut members[m as usize]);
                    members[*root as usize].extend(mb);
                }
            }
        }
    }

    #[test]
    fn contract_partial_plan_stops_early() {
        let d = Decomposition::random_tree(Dims::new(21, 17, 13), 6, 99);
        let plan = MergePlan::rounds(vec![2]);
        let s = MergeSchedule::contract(&d, &plan);
        assert_eq!(s.rounds.len(), 1);
        assert_eq!(s.rounds[0].radix, 2);
        let merged: usize = s.rounds[0].groups.iter().map(|(_, g)| g.len() - 1).sum();
        assert_eq!(s.outputs.len(), 6 - merged);
        assert!(s.outputs.len() > 1, "radix-2 round cannot fully merge 6");
    }

    #[test]
    fn feature_weights_mark_extrema() {
        // a single interior peak on an otherwise increasing ramp
        let f = ScalarField::from_fn(Dims::new(7, 5, 5), |x, y, z| {
            if (x, y, z) == (3, 2, 2) {
                100.0
            } else {
                x as f32 + 0.1 * y as f32 + 0.01 * z as f32
            }
        });
        let w = feature_weights(&f);
        let d = f.dims();
        let idx = |x: u64, y: u64, z: u64| ((z * d.ny as u64 + y) * d.nx as u64 + x) as usize;
        assert_eq!(w[idx(3, 2, 2)], 9, "the peak is a local max");
        assert_eq!(w[idx(0, 0, 0)], 9, "the ramp corner is the global min");
        assert_eq!(w[idx(2, 2, 2)], 1, "ramp interior is regular");
        assert_eq!(w.len() as u64, d.n_verts());
    }

    #[test]
    fn full_merge_plan_covers_any_count() {
        for n in 1..20u32 {
            let p = full_merge_plan(n);
            assert!(p.reduction() >= n, "{n}");
        }
    }
}
