//! Property-based tests of the grid substrate: address codecs, box
//! arithmetic and decomposition invariants over randomized shapes.

use msp_grid::topology::{cofacets, facets, RBox};
use msp_grid::{Decomposition, Dims, RCoord};
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = Dims> {
    (2u32..12, 2u32..12, 2u32..12).prop_map(|(x, y, z)| Dims::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vertex_index_bijective(dims in arb_dims(), idx in 0u64..1000) {
        let idx = idx % dims.n_verts();
        let (x, y, z) = dims.vertex_coord(idx);
        prop_assert_eq!(dims.vertex_index(x, y, z), idx);
    }

    #[test]
    fn cell_address_bijective(dims in arb_dims(), raw in 0u64..100_000) {
        let r = dims.refined();
        let addr = raw % r.len();
        let c = RCoord::from_address(addr, &r);
        prop_assert_eq!(c.address(&r), addr);
        prop_assert!(c.cell_dim() <= 3);
    }

    #[test]
    fn facet_cofacet_duality(dims in arb_dims(), raw in 0u64..100_000) {
        let r = dims.refined();
        let bbox = RBox::new(
            RCoord::new(0, 0, 0),
            RCoord::new(r.rx as u32 - 1, r.ry as u32 - 1, r.rz as u32 - 1),
        );
        let c = RCoord::from_address(raw % r.len(), &r);
        // every facet has this cell among its cofacets and vice versa
        for (_, f) in facets(c, &bbox) {
            prop_assert_eq!(f.cell_dim() + 1, c.cell_dim());
            prop_assert!(cofacets(f, &bbox).any(|(_, cf)| cf == c));
        }
        for (_, cf) in cofacets(c, &bbox) {
            prop_assert_eq!(cf.cell_dim(), c.cell_dim() + 1);
            prop_assert!(facets(cf, &bbox).any(|(_, f)| f == c));
        }
        // facet/cofacet counts follow from the parity pattern
        let d = c.cell_dim() as usize;
        prop_assert_eq!(facets(c, &bbox).count(), 2 * d);
        prop_assert!(cofacets(c, &bbox).count() <= 2 * (3 - d));
    }

    #[test]
    fn decomposition_covers_and_partitions(dims in arb_dims(), blocks in 1u32..9) {
        let cells = (dims.nx as u64 - 1).max(1)
            * (dims.ny as u64 - 1).max(1)
            * (dims.nz as u64 - 1).max(1);
        prop_assume!(cells >= blocks as u64 * 2); // enough room to bisect
        let d = match std::panic::catch_unwind(|| Decomposition::bisect(dims, blocks)) {
            Ok(d) => d,
            Err(_) => return Ok(()), // unbisectable shapes are allowed to panic
        };
        prop_assert_eq!(d.n_blocks(), blocks);
        // block cells partition the domain exactly
        let sum: u64 = d.blocks().iter().map(|b| {
            let bd = b.dims();
            (bd.nx as u64 - 1) * (bd.ny as u64 - 1) * (bd.nz as u64 - 1)
        }).sum();
        prop_assert_eq!(sum, cells);
    }

    #[test]
    fn owners_consistent_with_boxes(dims in arb_dims(), blocks in 2u32..9, raw in 0u64..100_000) {
        let cells = (dims.nx as u64 - 1) * (dims.ny as u64 - 1) * (dims.nz as u64 - 1);
        prop_assume!(cells >= blocks as u64 * 4);
        let d = match std::panic::catch_unwind(|| Decomposition::bisect(dims, blocks)) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        let r = dims.refined();
        let c = RCoord::from_address(raw % r.len(), &r);
        let owners = d.owners(c);
        let mut brute: Vec<u32> = d
            .blocks()
            .iter()
            .filter(|b| b.refined_box().contains(c))
            .map(|b| b.id)
            .collect();
        brute.sort_unstable();
        prop_assert_eq!(owners.as_slice(), brute.as_slice());
        prop_assert!(!owners.is_empty(), "every cell has at least one owner");
    }

    #[test]
    fn rbox_local_index_bijective(
        lo in (0u32..6, 0u32..6, 0u32..6),
        ext in (1u32..6, 1u32..6, 1u32..6),
        raw in 0u64..10_000,
    ) {
        let b = RBox::new(
            RCoord::new(lo.0, lo.1, lo.2),
            RCoord::new(lo.0 + ext.0, lo.1 + ext.1, lo.2 + ext.2),
        );
        let idx = raw % b.len();
        let c = b.from_local_index(idx);
        prop_assert!(b.contains(c));
        prop_assert_eq!(b.local_index(c), idx);
    }
}
