//! Recursive-bisection domain decomposition (paper §IV-A) and the
//! *owner set* query behind boundary-restricted gradient pairing (§IV-C).
//!
//! The vertex grid is split by iteratively bisecting the longest remaining
//! axis until the requested number of blocks is reached. Adjacent blocks
//! **share one vertex layer**: if a block ends at vertex plane `x = s`,
//! its neighbour starts at `x = s`. Because of the shared layer a refined
//! coordinate can lie inside up to eight blocks; the set of blocks
//! containing it is its *owner set*. The paper's consistency rule —
//! "for a cell on the boundary of two or more blocks, we only consider
//! for pairing other cells also on the boundary of those same blocks" —
//! becomes: a gradient pair `(α, β)` is legal iff
//! `owners(α) == owners(β)`.

use crate::coord::RCoord;
use crate::dims::Dims;
use crate::topology::RBox;
use serde::{Deserialize, Serialize};

/// A block of the decomposition: an inclusive box in **vertex** space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockBox {
    pub id: u32,
    /// Inclusive lower vertex corner.
    pub lo: [u32; 3],
    /// Inclusive upper vertex corner.
    pub hi: [u32; 3],
}

impl BlockBox {
    /// Vertex-space dimensions of this block (including shared layers).
    pub fn dims(&self) -> Dims {
        Dims::new(
            self.hi[0] - self.lo[0] + 1,
            self.hi[1] - self.lo[1] + 1,
            self.hi[2] - self.lo[2] + 1,
        )
    }

    /// The block's extent on the refined grid, in **global** refined
    /// coordinates: `[2·lo, 2·hi]`.
    pub fn refined_box(&self) -> RBox {
        RBox::new(
            RCoord::new(2 * self.lo[0], 2 * self.lo[1], 2 * self.lo[2]),
            RCoord::new(2 * self.hi[0], 2 * self.hi[1], 2 * self.hi[2]),
        )
    }

    /// Number of vertices this block loads (shared layers included).
    pub fn n_verts(&self) -> u64 {
        self.dims().n_verts()
    }
}

/// Owner set of a refined coordinate: the sorted ids of every block whose
/// refined box contains it. At most 8 blocks can share a coordinate
/// (a corner where two cuts per axis meet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OwnerSet {
    ids: [u32; 8],
    len: u8,
}

impl OwnerSet {
    pub fn empty() -> Self {
        OwnerSet {
            ids: [0; 8],
            len: 0,
        }
    }

    pub fn push(&mut self, id: u32) {
        assert!((self.len as usize) < 8, "owner set overflow");
        self.ids[self.len as usize] = id;
        self.len += 1;
    }

    pub fn as_slice(&self) -> &[u32] {
        &self.ids[..self.len as usize]
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the coordinate is shared by two or more blocks.
    pub fn is_shared(&self) -> bool {
        self.len >= 2
    }

    pub fn contains(&self, id: u32) -> bool {
        self.as_slice().contains(&id)
    }

    fn sort(&mut self) {
        self.ids[..self.len as usize].sort_unstable();
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    /// Split along `axis` at vertex plane `plane`: coordinates `< plane`
    /// go left, `> plane` right, `== plane` to **both** (shared layer).
    Split {
        axis: u8,
        plane: u32,
        left: u32,
        right: u32,
    },
    Leaf {
        block: u32,
    },
}

/// A complete recursive-bisection decomposition of a vertex grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Decomposition {
    domain: Dims,
    blocks: Vec<BlockBox>,
    tree: Vec<Node>,
    root: u32,
}

impl Decomposition {
    /// Decompose `domain` into exactly `n_blocks` blocks.
    ///
    /// Splits the longest remaining axis (ties broken toward x) into two
    /// parts whose cell counts are proportional to the number of blocks
    /// assigned to each side, so non-power-of-two block counts are
    /// supported. Panics when the grid has fewer cell layers than blocks
    /// along every axis (cannot bisect further).
    pub fn bisect(domain: Dims, n_blocks: u32) -> Self {
        assert!(n_blocks >= 1, "need at least one block");
        let mut d = Decomposition {
            domain,
            blocks: Vec::with_capacity(n_blocks as usize),
            tree: Vec::new(),
            root: 0,
        };
        let full = BlockBox {
            id: u32::MAX,
            lo: [0, 0, 0],
            hi: [domain.nx - 1, domain.ny - 1, domain.nz - 1],
        };
        d.root = d.split(full, n_blocks);
        debug_assert_eq!(d.blocks.len(), n_blocks as usize);
        d
    }

    fn split(&mut self, bx: BlockBox, count: u32) -> u32 {
        if count == 1 {
            let id = self.blocks.len() as u32;
            self.blocks.push(BlockBox { id, ..bx });
            let node = self.tree.len() as u32;
            self.tree.push(Node::Leaf { block: id });
            return node;
        }
        // longest axis by cell extent
        let extents = [
            bx.hi[0] - bx.lo[0],
            bx.hi[1] - bx.lo[1],
            bx.hi[2] - bx.lo[2],
        ];
        let axis = (0..3).max_by_key(|&a| extents[a]).unwrap();
        let e = extents[axis];
        assert!(
            e >= 2,
            "cannot bisect block {:?} into {count} parts: axis {axis} has only {e} cell layer(s)",
            bx
        );
        let left_count = count / 2;
        let right_count = count - left_count;
        // proportional split in cell layers, clamped so both sides keep >= 1
        let mut s = ((e as u64 * left_count as u64 + count as u64 / 2) / count as u64) as u32;
        s = s.clamp(1, e - 1);
        let plane = bx.lo[axis] + s;
        let mut lhs = bx;
        lhs.hi[axis] = plane;
        let mut rhs = bx;
        rhs.lo[axis] = plane;
        let left = self.split(lhs, left_count);
        let right = self.split(rhs, right_count);
        let node = self.tree.len() as u32;
        self.tree.push(Node::Split {
            axis: axis as u8,
            plane,
            left,
            right,
        });
        node
    }

    /// Decompose `domain` into exactly `n_blocks` blocks, steering every
    /// split plane by a per-vertex weight field (feature density).
    ///
    /// The recursion shape matches [`Decomposition::bisect`] — longest
    /// axis, ties toward x, block counts halved — but the plane is
    /// placed where the cumulative slab weight reaches the left side's
    /// share of the total, so weight-dense regions get geometrically
    /// small (and therefore many) blocks. `weight` holds one value per
    /// domain vertex in `vertex_index` order; an all-equal field
    /// reproduces plain proportional bisection. Block ids stay dense
    /// (`0..n_blocks`), and non-power-of-two counts are supported.
    pub fn adaptive(domain: Dims, n_blocks: u32, weight: &[u64]) -> Self {
        assert!(n_blocks >= 1, "need at least one block");
        assert_eq!(
            weight.len() as u64,
            domain.n_verts(),
            "weight field must have one entry per domain vertex"
        );
        let mut d = Decomposition {
            domain,
            blocks: Vec::with_capacity(n_blocks as usize),
            tree: Vec::new(),
            root: 0,
        };
        let full = BlockBox {
            id: u32::MAX,
            lo: [0, 0, 0],
            hi: [domain.nx - 1, domain.ny - 1, domain.nz - 1],
        };
        d.root = d.split_weighted(full, n_blocks, weight);
        debug_assert_eq!(d.blocks.len(), n_blocks as usize);
        d
    }

    /// Sum of `weight` over the slab `axis == x` within `bx`.
    fn slab_weight(&self, bx: &BlockBox, axis: usize, x: u32, weight: &[u64]) -> u64 {
        let mut lo = bx.lo;
        let mut hi = bx.hi;
        lo[axis] = x;
        hi[axis] = x;
        let mut sum = 0u64;
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    sum += weight[self.domain.vertex_index(x, y, z) as usize];
                }
            }
        }
        sum
    }

    fn split_weighted(&mut self, bx: BlockBox, count: u32, weight: &[u64]) -> u32 {
        if count == 1 {
            let id = self.blocks.len() as u32;
            self.blocks.push(BlockBox { id, ..bx });
            let node = self.tree.len() as u32;
            self.tree.push(Node::Leaf { block: id });
            return node;
        }
        let extents = [
            bx.hi[0] - bx.lo[0],
            bx.hi[1] - bx.lo[1],
            bx.hi[2] - bx.lo[2],
        ];
        let axis = (0..3).max_by_key(|&a| extents[a]).unwrap();
        let e = extents[axis];
        assert!(
            e >= 2,
            "cannot split block {:?} into {count} parts: axis {axis} has only {e} cell layer(s)",
            bx
        );
        let left_count = count / 2;
        let right_count = count - left_count;
        // cumulative slab weights along the split axis; the plane goes
        // where the left prefix first reaches the left side's share
        let total: u64 = (0..=e)
            .map(|x| self.slab_weight(&bx, axis, bx.lo[axis] + x, weight))
            .sum();
        let target = total as u128 * left_count as u128 / count as u128;
        let mut s = 1u32;
        let mut prefix = self.slab_weight(&bx, axis, bx.lo[axis], weight)
            + self.slab_weight(&bx, axis, bx.lo[axis] + 1, weight);
        while s < e - 1 && (prefix as u128) < target {
            s += 1;
            prefix += self.slab_weight(&bx, axis, bx.lo[axis] + s, weight);
        }
        let plane = bx.lo[axis] + s;
        let mut lhs = bx;
        lhs.hi[axis] = plane;
        let mut rhs = bx;
        rhs.lo[axis] = plane;
        let left = self.split_weighted(lhs, left_count, weight);
        let right = self.split_weighted(rhs, right_count, weight);
        let node = self.tree.len() as u32;
        self.tree.push(Node::Split {
            axis: axis as u8,
            plane,
            left,
            right,
        });
        node
    }

    /// Decompose `domain` into a seeded *random* axis-aligned block tree:
    /// random axis among the splittable ones, random plane, random
    /// left/right block-count split. Deterministic in `seed`; block ids
    /// stay dense. This is the adversarial generator behind the
    /// irregular-decomposition fuzz dimension — it produces skewed,
    /// non-uniform trees no density heuristic would pick.
    pub fn random_tree(domain: Dims, n_blocks: u32, seed: u64) -> Self {
        assert!(n_blocks >= 1, "need at least one block");
        assert!(
            n_blocks <= 48,
            "random_tree depth bound requires <= 48 blocks"
        );
        let mut d = Decomposition {
            domain,
            blocks: Vec::with_capacity(n_blocks as usize),
            tree: Vec::new(),
            root: 0,
        };
        let full = BlockBox {
            id: u32::MAX,
            lo: [0, 0, 0],
            hi: [domain.nx - 1, domain.ny - 1, domain.nz - 1],
        };
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        d.root = d.split_random(full, n_blocks, &mut state);
        debug_assert_eq!(d.blocks.len(), n_blocks as usize);
        d
    }

    fn split_random(&mut self, bx: BlockBox, count: u32, state: &mut u64) -> u32 {
        // splitmix64 step — no external RNG dependency in this crate
        fn next(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        if count == 1 {
            let id = self.blocks.len() as u32;
            self.blocks.push(BlockBox { id, ..bx });
            let node = self.tree.len() as u32;
            self.tree.push(Node::Leaf { block: id });
            return node;
        }
        let extents = [
            bx.hi[0] - bx.lo[0],
            bx.hi[1] - bx.lo[1],
            bx.hi[2] - bx.lo[2],
        ];
        // a side that still needs k blocks must have at least k cell
        // layers available *somewhere*; keep the recursion feasible by
        // bounding each side's count by its cell capacity
        let splittable: Vec<usize> = (0..3).filter(|&a| extents[a] >= 2).collect();
        assert!(
            !splittable.is_empty(),
            "cannot split block {:?} into {count} parts: all axes have < 2 cell layers",
            bx
        );
        let axis = splittable[(next(state) % splittable.len() as u64) as usize];
        let e = extents[axis];
        let s = 1 + (next(state) % (e - 1) as u64) as u32;
        // capacity = product of cell extents, capped to avoid overflow
        let cap = |b: &BlockBox| -> u64 {
            (0..3)
                .map(|a| (b.hi[a] - b.lo[a]) as u64)
                .product::<u64>()
                .min(u32::MAX as u64)
        };
        let plane = bx.lo[axis] + s;
        let mut lhs = bx;
        lhs.hi[axis] = plane;
        let mut rhs = bx;
        rhs.lo[axis] = plane;
        let (lcap, rcap) = (cap(&lhs) as u32, cap(&rhs) as u32);
        if lcap + rcap < count {
            // this plane cannot host `count` blocks; fall back to the
            // proportional deterministic split which is always feasible
            return self.split(bx, count);
        }
        let lo = count.saturating_sub(rcap).max(1);
        let hi = (count - 1).min(lcap);
        if lo > hi {
            return self.split(bx, count);
        }
        let left_count = lo + (next(state) % (hi - lo + 1) as u64) as u32;
        let right_count = count - left_count;
        let left = self.split_random(lhs, left_count, state);
        let right = self.split_random(rhs, right_count, state);
        let node = self.tree.len() as u32;
        self.tree.push(Node::Split {
            axis: axis as u8,
            plane,
            left,
            right,
        });
        node
    }

    /// Per-block cost estimates: the sum of `weight` over each block's
    /// vertices (shared layers counted toward every block that loads
    /// them, mirroring actual work). One entry per block id.
    pub fn block_costs(&self, weight: &[u64]) -> Vec<u64> {
        assert_eq!(
            weight.len() as u64,
            self.domain.n_verts(),
            "weight field must have one entry per domain vertex"
        );
        self.blocks
            .iter()
            .map(|b| {
                let mut sum = 0u64;
                for z in b.lo[2]..=b.hi[2] {
                    for y in b.lo[1]..=b.hi[1] {
                        for x in b.lo[0]..=b.hi[0] {
                            sum += weight[self.domain.vertex_index(x, y, z) as usize];
                        }
                    }
                }
                sum
            })
            .collect()
    }

    /// Undirected neighbour edges: every pair of blocks whose refined
    /// boxes intersect (shared face, edge, or corner), as sorted
    /// `(lo_id, hi_id)` pairs in lexicographic order. This is the graph
    /// the generalized merge schedule contracts.
    pub fn neighbor_edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, a) in self.blocks.iter().enumerate() {
            for b in &self.blocks[i + 1..] {
                let touch = (0..3).all(|ax| a.lo[ax] <= b.hi[ax] && b.lo[ax] <= a.hi[ax]);
                if touch {
                    out.push((a.id, b.id));
                }
            }
        }
        out
    }

    pub fn domain(&self) -> Dims {
        self.domain
    }

    pub fn n_blocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    pub fn block(&self, id: u32) -> &BlockBox {
        &self.blocks[id as usize]
    }

    pub fn blocks(&self) -> &[BlockBox] {
        &self.blocks
    }

    /// The owner set of a global refined coordinate: sorted ids of every
    /// block whose refined box contains it. O(tree depth); at most 8 hits.
    pub fn owners(&self, c: RCoord) -> OwnerSet {
        let mut out = OwnerSet::empty();
        let mut stack = [0u32; 64];
        let mut top = 0usize;
        stack[top] = self.root;
        top += 1;
        while top > 0 {
            top -= 1;
            match &self.tree[stack[top] as usize] {
                Node::Leaf { block } => out.push(*block),
                Node::Split {
                    axis,
                    plane,
                    left,
                    right,
                } => {
                    let rp = 2 * *plane; // plane in refined coords
                    let v = c.get(*axis as usize);
                    if v <= rp {
                        stack[top] = *left;
                        top += 1;
                    }
                    if v >= rp {
                        stack[top] = *right;
                        top += 1;
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Fast path: is `c` strictly interior to block `id`'s refined box
    /// (not on its surface)? Interior coordinates always have the
    /// singleton owner set `{id}`.
    pub fn interior_to(&self, id: u32, c: RCoord) -> bool {
        let rb = self.block(id).refined_box();
        rb.contains(c) && !rb.on_surface(c)
    }

    /// Round-robin (block-cyclic) assignment of blocks to `n_procs`
    /// processes, as in §IV-A: process `p` owns blocks `p, p+P, p+2P, …`.
    pub fn assign_round_robin(&self, n_procs: u32) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); n_procs as usize];
        for b in 0..self.n_blocks() {
            out[(b % n_procs) as usize].push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(d: &Decomposition) {
        // every vertex of the domain is covered by at least one block and
        // cell layers partition: interior vertices of each block are in
        // exactly that block.
        let dom = d.domain();
        let mut covered = vec![0u32; dom.n_verts() as usize];
        for b in d.blocks() {
            for z in b.lo[2]..=b.hi[2] {
                for y in b.lo[1]..=b.hi[1] {
                    for x in b.lo[0]..=b.hi[0] {
                        covered[dom.vertex_index(x, y, z) as usize] += 1;
                    }
                }
            }
        }
        assert!(covered.iter().all(|&c| c >= 1), "blocks must cover domain");
        // total cell count must equal sum of block cell counts
        let dom_cells = (dom.nx as u64 - 1) * (dom.ny as u64 - 1) * (dom.nz as u64 - 1);
        let sum: u64 = d
            .blocks()
            .iter()
            .map(|b| {
                let bd = b.dims();
                (bd.nx as u64 - 1) * (bd.ny as u64 - 1) * (bd.nz as u64 - 1)
            })
            .sum();
        assert_eq!(dom_cells, sum, "cells must partition exactly");
    }

    #[test]
    fn bisect_basic_counts() {
        for n in [1u32, 2, 3, 4, 7, 8, 16, 15] {
            let d = Decomposition::bisect(Dims::new(33, 33, 33), n);
            assert_eq!(d.n_blocks(), n);
            check_cover(&d);
        }
    }

    #[test]
    fn bisect_splits_longest_axis_first() {
        let d = Decomposition::bisect(Dims::new(65, 17, 17), 2);
        let b0 = d.block(0);
        let b1 = d.block(1);
        // split must be along x (the longest axis), sharing one layer
        assert_eq!(b0.hi[0], b1.lo[0]);
        assert_eq!(b0.lo[1], b1.lo[1]);
        assert_eq!(b0.hi[2], b1.hi[2]);
    }

    #[test]
    fn shared_layer_between_neighbours() {
        let d = Decomposition::bisect(Dims::new(9, 9, 9), 2);
        let (a, b) = (d.block(0), d.block(1));
        // exactly one vertex plane shared
        let shared_plane = a.hi[2].min(b.hi[2]).min(a.hi[0]); // whichever axis
        let _ = shared_plane;
        let axis = (0..3)
            .find(|&ax| a.hi[ax] == b.lo[ax])
            .expect("share an axis plane");
        assert_eq!(a.hi[axis], b.lo[axis]);
    }

    #[test]
    fn owner_sets() {
        let d = Decomposition::bisect(Dims::new(9, 9, 9), 8);
        // domain corner: single owner
        let o = d.owners(RCoord::new(0, 0, 0));
        assert_eq!(o.len(), 1);
        // centre vertex shared by all 8 blocks when cuts meet there
        let c = RCoord::of_vertex(4, 4, 4);
        let o = d.owners(c);
        assert_eq!(o.len(), 8, "centre of 2x2x2 decomposition has 8 owners");
        // owner sets are sorted
        let s = o.as_slice();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn owners_matches_brute_force() {
        let d = Decomposition::bisect(Dims::new(17, 13, 11), 6);
        let r = d.domain().refined();
        for k in (0..r.rz as u32).step_by(3) {
            for j in (0..r.ry as u32).step_by(3) {
                for i in (0..r.rx as u32).step_by(3) {
                    let c = RCoord::new(i, j, k);
                    let fast = d.owners(c);
                    let mut brute: Vec<u32> = d
                        .blocks()
                        .iter()
                        .filter(|b| b.refined_box().contains(c))
                        .map(|b| b.id)
                        .collect();
                    brute.sort_unstable();
                    assert_eq!(fast.as_slice(), brute.as_slice(), "at {:?}", c);
                }
            }
        }
    }

    #[test]
    fn interior_fast_path_agrees() {
        let d = Decomposition::bisect(Dims::new(17, 17, 17), 4);
        for b in d.blocks() {
            let rb = b.refined_box();
            for c in rb.iter() {
                if d.interior_to(b.id, c) {
                    let o = d.owners(c);
                    assert_eq!(o.as_slice(), &[b.id]);
                }
            }
        }
    }

    #[test]
    fn round_robin_assignment() {
        let d = Decomposition::bisect(Dims::new(33, 33, 33), 8);
        let a = d.assign_round_robin(3);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0], vec![0, 3, 6]);
        assert_eq!(a[1], vec![1, 4, 7]);
        assert_eq!(a[2], vec![2, 5]);
    }

    #[test]
    fn adaptive_with_flat_weights_covers_and_counts() {
        let dom = Dims::new(33, 29, 17);
        let w = vec![1u64; dom.n_verts() as usize];
        for n in [1u32, 2, 3, 5, 6, 7, 8, 12] {
            let d = Decomposition::adaptive(dom, n, &w);
            assert_eq!(d.n_blocks(), n);
            check_cover(&d);
        }
    }

    #[test]
    fn adaptive_splits_toward_weight_mass() {
        // all weight in the x < 8 slab: the first split plane must land
        // left of centre so the dense half gets the small block
        let dom = Dims::new(33, 9, 9);
        let mut w = vec![0u64; dom.n_verts() as usize];
        for z in 0..9 {
            for y in 0..9 {
                for x in 0..8 {
                    w[dom.vertex_index(x, y, z) as usize] = 100;
                }
            }
        }
        let d = Decomposition::adaptive(dom, 2, &w);
        check_cover(&d);
        let b0 = d.block(0);
        assert!(
            b0.hi[0] < 16,
            "dense region should get the smaller block, split at {}",
            b0.hi[0]
        );
        // per-block costs follow the weight field
        let costs = d.block_costs(&w);
        assert_eq!(costs.len(), 2);
        assert!(costs[0] > 0);
    }

    #[test]
    fn adaptive_flat_weights_stay_balanced() {
        // an all-equal weight field must keep block volumes close to the
        // plain bisection's (rounding may shift a plane by one layer)
        let dom = Dims::new(33, 33, 17);
        let w = vec![1u64; dom.n_verts() as usize];
        for n in [2u32, 4, 6, 8] {
            let a = Decomposition::adaptive(dom, n, &w);
            check_cover(&a);
            let cells: Vec<u64> = a
                .blocks()
                .iter()
                .map(|b| {
                    let d = b.dims();
                    (d.nx as u64 - 1) * (d.ny as u64 - 1) * (d.nz as u64 - 1)
                })
                .collect();
            let (lo, hi) = (*cells.iter().min().unwrap(), *cells.iter().max().unwrap());
            assert!(hi <= 2 * lo, "n={n}: flat weights gave skew {lo}..{hi}");
        }
    }

    #[test]
    fn random_tree_covers_deterministically() {
        let dom = Dims::new(17, 13, 11);
        for n in [1u32, 2, 3, 5, 7, 9] {
            for seed in 0..4u64 {
                let d = Decomposition::random_tree(dom, n, seed);
                assert_eq!(d.n_blocks(), n);
                check_cover(&d);
                let d2 = Decomposition::random_tree(dom, n, seed);
                let a: Vec<_> = d.blocks().iter().map(|b| (b.lo, b.hi)).collect();
                let b: Vec<_> = d2.blocks().iter().map(|b| (b.lo, b.hi)).collect();
                assert_eq!(a, b, "same seed must give the same tree");
            }
        }
    }

    #[test]
    fn random_tree_owner_sets_match_brute_force() {
        let d = Decomposition::random_tree(Dims::new(17, 13, 11), 7, 42);
        let r = d.domain().refined();
        for k in (0..r.rz as u32).step_by(3) {
            for j in (0..r.ry as u32).step_by(3) {
                for i in (0..r.rx as u32).step_by(3) {
                    let c = RCoord::new(i, j, k);
                    let fast = d.owners(c);
                    let mut brute: Vec<u32> = d
                        .blocks()
                        .iter()
                        .filter(|b| b.refined_box().contains(c))
                        .map(|b| b.id)
                        .collect();
                    brute.sort_unstable();
                    assert_eq!(fast.as_slice(), brute.as_slice(), "at {:?}", c);
                }
            }
        }
    }

    #[test]
    fn neighbor_edges_match_box_intersection() {
        let d = Decomposition::bisect(Dims::new(17, 17, 17), 8);
        let edges = d.neighbor_edges();
        // 2x2x2: every pair of blocks touches at least at the centre
        assert_eq!(edges.len(), 28, "all 8C2 pairs meet at the centre layer");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "sorted lexicographic"
        );
        let d = Decomposition::random_tree(Dims::new(17, 13, 11), 6, 3);
        for (a, b) in d.neighbor_edges() {
            assert!(a < b);
            let (ba, bb) = (d.block(a), d.block(b));
            assert!((0..3).all(|ax| ba.lo[ax] <= bb.hi[ax] && bb.lo[ax] <= ba.hi[ax]));
        }
    }

    #[test]
    #[should_panic]
    fn too_many_blocks_panics() {
        // 2x2x2 grid has 1 cell: cannot split into 2 blocks
        let _ = Decomposition::bisect(Dims::new(2, 2, 2), 2);
    }
}
