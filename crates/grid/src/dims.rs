//! Grid dimensions in vertex space and refined (cell) space.

use serde::{Deserialize, Serialize};

/// Dimensions of a structured grid in **vertex** space.
///
/// A `Dims { nx, ny, nz }` grid has `nx·ny·nz` vertices and
/// `(nx−1)·(ny−1)·(nz−1)` hexahedral cells. All axes must hold at least
/// one vertex; degenerate (flat) grids with an axis of a single vertex
/// are allowed and simply carry no cells extending along that axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims {
    pub nx: u32,
    pub ny: u32,
    pub nz: u32,
}

impl Dims {
    /// New vertex-space dimensions. Panics if any axis is zero.
    pub fn new(nx: u32, ny: u32, nz: u32) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid axes must be non-zero");
        Dims { nx, ny, nz }
    }

    /// Cubic grid with `n` vertices per side.
    pub fn cube(n: u32) -> Self {
        Dims::new(n, n, n)
    }

    /// Number of vertices.
    pub fn n_verts(&self) -> u64 {
        self.nx as u64 * self.ny as u64 * self.nz as u64
    }

    /// Vertex extents as an array, indexed by axis.
    pub fn axes(&self) -> [u32; 3] {
        [self.nx, self.ny, self.nz]
    }

    /// Linear index of vertex `(x, y, z)` in x-fastest order.
    pub fn vertex_index(&self, x: u32, y: u32, z: u32) -> u64 {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x as u64 + self.nx as u64 * (y as u64 + self.ny as u64 * z as u64)
    }

    /// Inverse of [`Dims::vertex_index`].
    pub fn vertex_coord(&self, idx: u64) -> (u32, u32, u32) {
        debug_assert!(idx < self.n_verts());
        let x = (idx % self.nx as u64) as u32;
        let rest = idx / self.nx as u64;
        let y = (rest % self.ny as u64) as u32;
        let z = (rest / self.ny as u64) as u32;
        (x, y, z)
    }

    /// The refined (cell-space) dimensions: `2n − 1` entries per axis.
    pub fn refined(&self) -> RefinedDims {
        RefinedDims {
            rx: 2 * self.nx as u64 - 1,
            ry: 2 * self.ny as u64 - 1,
            rz: 2 * self.nz as u64 - 1,
        }
    }

    /// Total number of cells of all dimensions in the cubical complex.
    pub fn n_cells(&self) -> u64 {
        let r = self.refined();
        r.rx * r.ry * r.rz
    }
}

/// Dimensions of the **refined grid** holding one entry per cell of the
/// cubical complex.
///
/// Entry `(i, j, k)` with `i < rx`, `j < ry`, `k < rz` is the cell of
/// dimension `i%2 + j%2 + k%2`. The linearised index in x-fastest order is
/// the cell's *address*; on the refined grid of the full dataset this is
/// the **global address** used to match cells across blocks (§IV-F1 of
/// the paper).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RefinedDims {
    pub rx: u64,
    pub ry: u64,
    pub rz: u64,
}

impl RefinedDims {
    /// Number of refined-grid entries (= number of cells).
    pub fn len(&self) -> u64 {
        self.rx * self.ry * self.rz
    }

    /// True when the refined grid holds no entries (never for valid dims).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linearise a refined coordinate into an address.
    pub fn address(&self, i: u64, j: u64, k: u64) -> u64 {
        debug_assert!(i < self.rx && j < self.ry && k < self.rz);
        i + self.rx * (j + self.ry * k)
    }

    /// Inverse of [`RefinedDims::address`].
    pub fn coord(&self, addr: u64) -> (u64, u64, u64) {
        debug_assert!(addr < self.len());
        let i = addr % self.rx;
        let rest = addr / self.rx;
        (i, rest % self.ry, rest / self.ry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_index_round_trip() {
        let d = Dims::new(5, 7, 3);
        for z in 0..3 {
            for y in 0..7 {
                for x in 0..5 {
                    let idx = d.vertex_index(x, y, z);
                    assert_eq!(d.vertex_coord(idx), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn refined_dims_are_2n_minus_1() {
        let d = Dims::new(4, 5, 6);
        let r = d.refined();
        assert_eq!((r.rx, r.ry, r.rz), (7, 9, 11));
        assert_eq!(d.n_cells(), 7 * 9 * 11);
    }

    #[test]
    fn refined_address_round_trip() {
        let r = Dims::new(3, 4, 5).refined();
        let mut seen = std::collections::HashSet::new();
        for k in 0..r.rz {
            for j in 0..r.ry {
                for i in 0..r.rx {
                    let a = r.address(i, j, k);
                    assert_eq!(r.coord(a), (i, j, k));
                    assert!(seen.insert(a), "addresses must be unique");
                }
            }
        }
        assert_eq!(seen.len() as u64, r.len());
    }

    #[test]
    fn degenerate_axis_allowed() {
        let d = Dims::new(1, 8, 8);
        assert_eq!(d.refined().rx, 1);
        assert_eq!(d.n_verts(), 64);
    }

    #[test]
    #[should_panic]
    fn zero_axis_rejected() {
        let _ = Dims::new(0, 2, 2);
    }
}
