//! Deterministic fork-join helpers for the intra-rank parallel stages.
//!
//! The paper's local stage is embarrassingly parallel (§IV: lower stars
//! are independent, blocks are independent), but the pipeline must stay
//! **bit-exact regardless of thread count**. These helpers provide the
//! one scheduling discipline that makes this trivial to reason about:
//! workers may run in any order, but results are always *placed and
//! consumed in input order*. Built on `std::thread::scope` so the
//! parallelism is real in every build environment (the offline container
//! stubs rayon with a sequential shim — see `scripts/offline_stubs/`),
//! with zero new dependencies.
//!
//! Threads are spawned per call. A call amortizes spawn cost over a
//! whole pipeline stage (milliseconds to seconds of work), so a pool is
//! not worth its synchronization complexity here. The calling thread
//! participates as a worker itself, so `threads = n` costs `n − 1`
//! spawns — on a host with few CPUs this halves the spawn/context-switch
//! overhead of two-level (block × slab) fan-out, and `threads = 2`
//! degrades gracefully to "one spawn plus the caller".

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` OS threads, returning results
/// **in input order** regardless of execution order. Work is handed out
/// item-at-a-time from a shared counter, so uneven item costs balance.
///
/// `threads <= 1` (or a single item) runs inline on the caller's thread
/// with no spawns — the exact serial code path.
///
/// A panic in `f` is re-raised on the caller's thread.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let drain = || {
        let mut done: Vec<(usize, R)> = Vec::new();
        loop {
            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if i >= n {
                break;
            }
            done.push((i, f(i, &items[i])));
        }
        done
    };
    std::thread::scope(|scope| {
        // the caller is worker 0: spawn only workers − 1 threads and
        // drain the shared counter on this thread too
        let handles: Vec<_> = (1..workers).map(|_| scope.spawn(drain)).collect();
        for (i, r) in drain() {
            slots[i] = Some(r);
        }
        for h in handles {
            match h.join() {
                Ok(done) => {
                    for (i, r) in done {
                        slots[i] = Some(r);
                    }
                }
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("par_map: every index computed exactly once"))
        .collect()
}

/// Mutate each item in place on up to `threads` OS threads (contiguous
/// chunks) and return `f`'s outputs in input order. The mutable variant
/// of [`par_map`] for stages like per-block simplification that rewrite
/// their operand.
pub fn par_map_mut<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(workers);
    let f = &f;
    let run = move |ci: usize, ch: &mut [T]| {
        ch.iter_mut()
            .enumerate()
            .map(|(j, t)| f(ci * chunk + j, t))
            .collect::<Vec<R>>()
    };
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        // the caller works the first chunk; the rest are spawned
        let mut chunks = items.chunks_mut(chunk).enumerate();
        let first = chunks.next();
        let handles: Vec<_> = chunks
            .map(|(ci, ch)| scope.spawn(move || run(ci, ch)))
            .collect();
        if let Some((ci, ch)) = first {
            out.extend(run(ci, ch));
        }
        for h in handles {
            match h.join() {
                Ok(rs) => out.extend(rs),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(threads, &items, |i, &v| {
                assert_eq!(i as u64, v);
                v * v
            });
            assert_eq!(out.len(), items.len());
            for (i, &r) in out.iter().enumerate() {
                assert_eq!(r, (i * i) as u64, "threads={threads}");
            }
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, &empty, |_, &v| v).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &v| v + 1), vec![8]);
    }

    #[test]
    fn par_map_mut_mutates_in_place_in_order() {
        for threads in [1, 2, 5] {
            let mut items: Vec<u64> = (0..97).collect();
            let old = par_map_mut(threads, &mut items, |_, v| {
                let was = *v;
                *v += 1000;
                was
            });
            assert_eq!(old, (0..97).collect::<Vec<u64>>(), "threads={threads}");
            for (i, &v) in items.iter().enumerate() {
                assert_eq!(v, i as u64 + 1000);
            }
        }
    }

    #[test]
    fn uneven_work_still_deterministic() {
        let items: Vec<u64> = (0..64).collect();
        let a = par_map(8, &items, |_, &v| {
            // make early items much slower than late ones
            let spin = if v < 8 { 20_000 } else { 10 };
            let mut acc = v;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (v, acc)
        });
        let b = par_map(3, &items, |_, &v| {
            let spin = if v < 8 { 20_000 } else { 10 };
            let mut acc = v;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (v, acc)
        });
        assert_eq!(a, b);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
