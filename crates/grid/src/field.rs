//! Scalar fields on vertex grids, block extraction, and the total
//! vertex/cell orders used for simulation of simplicity.
//!
//! Simulation of simplicity (paper §IV-C, [11]) removes ties: vertices
//! are totally ordered by `(value, global vertex id)`, and cells of the
//! complex are ordered by the lexicographic comparison of their
//! descending-sorted vertex keys. Because the order is keyed on *global*
//! ids and the raw field values, two blocks sharing a vertex layer derive
//! exactly the same order for shared cells — the property that makes
//! block-boundary gradients bitwise identical.

use crate::coord::RCoord;
use crate::decomp::BlockBox;
use crate::dims::Dims;

/// A monotone, totally ordered encoding of an `f32`.
///
/// Finite floats map to `u32` such that `a < b ⇔ key(a) < key(b)`
/// (−0.0 and +0.0 get distinct adjacent keys, which is harmless here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrderedF32(pub u32);

impl OrderedF32 {
    pub fn new(v: f32) -> Self {
        let bits = v.to_bits();
        OrderedF32(if bits & 0x8000_0000 != 0 {
            !bits
        } else {
            bits | 0x8000_0000
        })
    }

    pub fn value(self) -> f32 {
        let bits = self.0;
        f32::from_bits(if bits & 0x8000_0000 != 0 {
            bits & 0x7fff_ffff
        } else {
            !bits
        })
    }
}

/// Total order on vertices: by value, ties broken by global vertex id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VKey {
    pub value: OrderedF32,
    pub gid: u64,
}

/// Simulation-of-simplicity key of a cell: its vertex keys sorted in
/// descending order, compared lexicographically. A cell's key is strictly
/// greater than the key of any of its faces sharing the same maximal
/// vertex (the face's key is a proper prefix), which is exactly the order
/// required by lower-star processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    keys: [VKey; 8],
    len: u8,
}

impl CellKey {
    pub fn as_slice(&self) -> &[VKey] {
        &self.keys[..self.len as usize]
    }

    /// The maximal vertex of the cell (first entry).
    pub fn max_vertex(&self) -> VKey {
        self.keys[0]
    }
}

impl PartialOrd for CellKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CellKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

/// A scalar field over a full vertex grid, values in x-fastest order.
#[derive(Debug, Clone)]
pub struct ScalarField {
    dims: Dims,
    data: Vec<f32>,
}

impl ScalarField {
    pub fn new(dims: Dims, data: Vec<f32>) -> Self {
        assert_eq!(data.len() as u64, dims.n_verts(), "field size mismatch");
        ScalarField { dims, data }
    }

    /// Build a field by evaluating `f` at every vertex.
    pub fn from_fn(dims: Dims, mut f: impl FnMut(u32, u32, u32) -> f32) -> Self {
        let mut data = Vec::with_capacity(dims.n_verts() as usize);
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    data.push(f(x, y, z));
                }
            }
        }
        ScalarField { dims, data }
    }

    pub fn dims(&self) -> Dims {
        self.dims
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn value(&self, x: u32, y: u32, z: u32) -> f32 {
        self.data[self.dims.vertex_index(x, y, z) as usize]
    }

    /// Minimum and maximum values over the whole field.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Copy out the sub-box of values a block needs (shared layers
    /// included), producing a self-contained [`BlockField`].
    pub fn extract_block(&self, block: &BlockBox) -> BlockField {
        self.extract_block_minmax(block).0
    }

    /// [`extract_block`](ScalarField::extract_block) that also folds the
    /// block's value range into the same pass over the data — the read
    /// stage needs the range for the persistence threshold and used to
    /// make a second full sweep for it.
    pub fn extract_block_minmax(&self, block: &BlockBox) -> (BlockField, f32, f32) {
        let bd = block.dims();
        let mut data = Vec::with_capacity(bd.n_verts() as usize);
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for z in block.lo[2]..=block.hi[2] {
            for y in block.lo[1]..=block.hi[1] {
                for x in block.lo[0]..=block.hi[0] {
                    let v = self.value(x, y, z);
                    lo = lo.min(v);
                    hi = hi.max(v);
                    data.push(v);
                }
            }
        }
        (
            BlockField {
                block: *block,
                domain: self.dims,
                data,
            },
            lo,
            hi,
        )
    }
}

/// The values a single block holds: its vertex sub-box (shared layers
/// included) plus enough global context (domain dims, block box) to
/// compute global vertex ids and global cell addresses.
#[derive(Debug, Clone)]
pub struct BlockField {
    block: BlockBox,
    domain: Dims,
    data: Vec<f32>,
}

impl BlockField {
    pub fn new(block: BlockBox, domain: Dims, data: Vec<f32>) -> Self {
        assert_eq!(data.len() as u64, block.dims().n_verts());
        BlockField {
            block,
            domain,
            data,
        }
    }

    pub fn block(&self) -> &BlockBox {
        &self.block
    }

    pub fn domain(&self) -> Dims {
        self.domain
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Minimum and maximum values over the block (for inputs read from
    /// file, where the range cannot fold into the decode loop).
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Value at a **global** vertex coordinate (must lie in the block).
    pub fn vertex_value(&self, x: u32, y: u32, z: u32) -> f32 {
        let bd = self.block.dims();
        debug_assert!(
            x >= self.block.lo[0] && x <= self.block.hi[0],
            "vertex outside block"
        );
        let i = bd.vertex_index(
            x - self.block.lo[0],
            y - self.block.lo[1],
            z - self.block.lo[2],
        );
        self.data[i as usize]
    }

    /// SoS key of a **global** vertex refined coordinate.
    pub fn vertex_key(&self, v: RCoord) -> VKey {
        debug_assert!(v.is_vertex());
        let (x, y, z) = (v.x / 2, v.y / 2, v.z / 2);
        VKey {
            value: OrderedF32::new(self.vertex_value(x, y, z)),
            gid: self.domain.vertex_index(x, y, z),
        }
    }

    /// SoS key of a cell at a global refined coordinate: descending-sorted
    /// vertex keys.
    pub fn cell_key(&self, c: RCoord) -> CellKey {
        let mut keys = [VKey {
            value: OrderedF32(0),
            gid: 0,
        }; 8];
        let mut len = 0usize;
        for v in c.vertices() {
            keys[len] = self.vertex_key(v);
            len += 1;
        }
        keys[..len].sort_unstable_by(|a, b| b.cmp(a));
        CellKey {
            keys,
            len: len as u8,
        }
    }

    /// Plain function value of a cell: the maximum of its vertex values
    /// (paper §IV-C — "values are assigned to higher dimensional cells as
    /// the maximum of the values at the vertices").
    pub fn cell_value(&self, c: RCoord) -> f32 {
        c.vertices()
            .map(|v| {
                let (x, y, z) = (v.x / 2, v.y / 2, v.z / 2);
                self.vertex_value(x, y, z)
            })
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// The maximal vertex (under the SoS order) of the cell at `c`.
    pub fn max_vertex_of(&self, c: RCoord) -> (VKey, RCoord) {
        let mut best: Option<(VKey, RCoord)> = None;
        for v in c.vertices() {
            let k = self.vertex_key(v);
            if best.is_none_or(|(bk, _)| k > bk) {
                best = Some((k, v));
            }
        }
        best.unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomposition;

    #[test]
    fn ordered_f32_is_monotone() {
        let vals = [-1.0e30f32, -5.0, -0.5, 0.0, 0.25, 3.5, 7.0e20];
        for w in vals.windows(2) {
            assert!(OrderedF32::new(w[0]) < OrderedF32::new(w[1]));
        }
        for v in vals {
            assert_eq!(OrderedF32::new(v).value(), v);
        }
    }

    #[test]
    fn cell_key_face_is_prefix() {
        let dims = Dims::new(3, 3, 3);
        let f = ScalarField::from_fn(dims, |x, y, z| (x + 2 * y + 4 * z) as f32);
        let d = Decomposition::bisect(dims, 1);
        let bf = f.extract_block(d.block(0));
        // edge (1,0,0) has vertices (0,0,0) and (2,0,0); its max vertex
        // is (2,0,0) with value 1, so the edge key must be greater than
        // the key of vertex (2,0,0) and the vertex key must be a prefix.
        let edge = RCoord::new(1, 0, 0);
        let vtx = RCoord::new(2, 0, 0);
        let ek = bf.cell_key(edge);
        let vk = bf.cell_key(vtx);
        assert!(ek > vk);
        assert_eq!(ek.as_slice()[0], vk.as_slice()[0]);
        assert_eq!(ek.max_vertex().gid, 1);
    }

    #[test]
    fn cell_value_is_max_of_vertices() {
        let dims = Dims::new(3, 3, 3);
        let f = ScalarField::from_fn(dims, |x, y, z| (x * 100 + y * 10 + z) as f32);
        let d = Decomposition::bisect(dims, 1);
        let bf = f.extract_block(d.block(0));
        // voxel at (1,1,1) spans vertices (0..1)^3 -> max at (1,1,1)=111
        assert_eq!(bf.cell_value(RCoord::new(1, 1, 1)), 111.0);
        // quad at (1,1,0) spans (0..1,0..1,0) -> max 110
        assert_eq!(bf.cell_value(RCoord::new(1, 1, 0)), 110.0);
    }

    #[test]
    fn block_extraction_matches_global() {
        let dims = Dims::new(9, 9, 9);
        let f = ScalarField::from_fn(dims, |x, y, z| (x as f32).sin() + (y * z) as f32);
        let d = Decomposition::bisect(dims, 4);
        for b in d.blocks() {
            let bf = f.extract_block(b);
            for z in b.lo[2]..=b.hi[2] {
                for y in b.lo[1]..=b.hi[1] {
                    for x in b.lo[0]..=b.hi[0] {
                        assert_eq!(bf.vertex_value(x, y, z), f.value(x, y, z));
                    }
                }
            }
        }
    }

    #[test]
    fn shared_layer_keys_identical_across_blocks() {
        let dims = Dims::new(9, 9, 9);
        let f = ScalarField::from_fn(dims, |x, y, z| ((x * 7 + y * 13 + z * 29) % 5) as f32);
        let d = Decomposition::bisect(dims, 2);
        let bf0 = f.extract_block(d.block(0));
        let bf1 = f.extract_block(d.block(1));
        let rb0 = d.block(0).refined_box();
        let rb1 = d.block(1).refined_box();
        for c in rb0.iter() {
            if rb1.contains(c) {
                assert_eq!(bf0.cell_key(c), bf1.cell_key(c), "shared cell {:?}", c);
            }
        }
    }

    #[test]
    fn min_max() {
        let f = ScalarField::new(Dims::new(2, 2, 1), vec![3.0, -1.0, 0.5, 2.0]);
        assert_eq!(f.min_max(), (-1.0, 3.0));
    }

    #[test]
    fn block_minmax_folds_with_extraction() {
        let dims = Dims::new(9, 9, 9);
        let f = ScalarField::from_fn(dims, |x, y, z| {
            (x as f32) - (y as f32) * 0.5 + (z as f32) * 0.25
        });
        let d = Decomposition::bisect(dims, 4);
        for b in d.blocks() {
            let (bf, lo, hi) = f.extract_block_minmax(b);
            assert_eq!((lo, hi), bf.min_max());
            let mut elo = f32::INFINITY;
            let mut ehi = f32::NEG_INFINITY;
            for &v in bf.data() {
                elo = elo.min(v);
                ehi = ehi.max(v);
            }
            assert_eq!((lo, hi), (elo, ehi));
        }
    }
}
