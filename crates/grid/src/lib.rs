//! # msp-grid
//!
//! Structured-grid substrate for the parallel Morse-Smale pipeline.
//!
//! The scalar field lives at the vertices of a regular 3D grid. Discrete
//! Morse theory operates on the induced *cubical complex*: vertices,
//! edges, quads and voxels. Following the paper (Gyulassy et al.,
//! IPDPS 2012, §IV-C), the complex is addressed through a **refined
//! grid** of dimensions `(2·Nx−1, 2·Ny−1, 2·Nz−1)`: the cell at refined
//! coordinate `(i, j, k)` has dimension `i%2 + j%2 + k%2`, so vertices sit
//! at all-even coordinates, voxels at all-odd coordinates, and edges/quads
//! in between. The linearised refined coordinate is the **global address**
//! of a cell — the key used to glue Morse-Smale complexes computed on
//! neighbouring blocks.
//!
//! The other half of this crate is the **domain decomposition**: the
//! recursive longest-axis bisection of the vertex grid into blocks that
//! share one vertex layer with each neighbour (§IV-A), together with the
//! *owner set* query that underlies the paper's boundary-restricted
//! gradient pairing rule ("for a cell on the boundary of two or more
//! blocks, only consider for pairing other cells also on the boundary of
//! those same blocks").

pub mod coord;
pub mod decomp;
pub mod dims;
pub mod field;
pub mod offsets;
pub mod par;
pub mod rawio;
pub mod topology;

pub use coord::RCoord;
pub use decomp::{BlockBox, Decomposition, OwnerSet};
pub use dims::{Dims, RefinedDims};
pub use field::{BlockField, ScalarField};
pub use topology::{CellIter, FaceDir};
