//! Precomputed 3×3×3 neighborhood offset tables for the flat lower-star
//! kernel.
//!
//! A vertex's lower star lives entirely in the 3×3×3 cube of refined
//! cells centered on the vertex. Indexing every offset `(dx, dy, dz) ∈
//! {−1, 0, 1}³` as `oi = (dx+1) + 3(dy+1) + 9(dz+1)` turns the star into
//! a 27-bit set, and the three relations the kernel needs — "which
//! vertex neighbors are a cell's corners", "which star cells are a
//! cell's facets", and "which offsets survive box clipping" — into
//! constant bitmask lookups. The same offset index serves two coordinate
//! systems at once: refined-cell offsets (`rv + δ`, one refined step)
//! and vertex-neighbor offsets (`v + δ` in vertex space, one vertex
//! step), because the box-validity condition is identical for both (see
//! [`clip_mask`]).

/// Offset index of the center (the vertex itself / the vertex cell).
pub const CENTER: usize = 13;

/// Bit over all 27 offsets.
pub const ALL_OFFSETS: u32 = (1 << 27) - 1;

/// The `(dx, dy, dz)` offset of index `oi` (each component in −1..=1).
#[inline]
pub const fn offset_of(oi: usize) -> (i32, i32, i32) {
    (
        (oi % 3) as i32 - 1,
        ((oi / 3) % 3) as i32 - 1,
        ((oi / 9) % 3) as i32 - 1,
    )
}

/// Inverse of [`offset_of`].
#[inline]
pub const fn index_of(dx: i32, dy: i32, dz: i32) -> usize {
    ((dx + 1) + 3 * (dy + 1) + 9 * (dz + 1)) as usize
}

const fn corners_mask(oi: usize) -> u32 {
    // Corner vertices of the cell at refined offset δ, as vertex-neighbor
    // offsets: every nonempty subset of δ's nonzero axes, keeping δ's
    // sign on chosen axes and 0 elsewhere. (The empty subset is the
    // center vertex itself, deliberately excluded: the kernel tests
    // "all *other* corners are below the center".)
    let (dx, dy, dz) = offset_of(oi);
    let mut mask = 0u32;
    let mut sub = 1usize; // skip 0 = empty subset
    while sub < 8 {
        let ex = if sub & 1 != 0 { dx } else { 0 };
        let ey = if sub & 2 != 0 { dy } else { 0 };
        let ez = if sub & 4 != 0 { dz } else { 0 };
        // subsets selecting a zero component collapse onto smaller
        // subsets; the bitmask dedupes them for free
        if !(ex == 0 && ey == 0 && ez == 0) {
            mask |= 1 << index_of(ex, ey, ez);
        }
        sub += 1;
    }
    mask
}

const fn facets_mask(oi: usize) -> u32 {
    // Facets of the cell at offset δ that stay inside the same lower
    // star: zero out exactly one nonzero axis. (The opposite facet along
    // that axis does not contain the center vertex.)
    let (dx, dy, dz) = offset_of(oi);
    let mut mask = 0u32;
    if dx != 0 {
        mask |= 1 << index_of(0, dy, dz);
    }
    if dy != 0 {
        mask |= 1 << index_of(dx, 0, dz);
    }
    if dz != 0 {
        mask |= 1 << index_of(dx, dy, 0);
    }
    mask
}

const fn build_corners() -> [u32; 27] {
    let mut t = [0u32; 27];
    let mut oi = 0;
    while oi < 27 {
        t[oi] = corners_mask(oi);
        oi += 1;
    }
    t
}

const fn build_facets() -> [u32; 27] {
    let mut t = [0u32; 27];
    let mut oi = 0;
    while oi < 27 {
        t[oi] = facets_mask(oi);
        oi += 1;
    }
    t
}

/// `STAR_CORNERS[oi]`: vertex-neighbor offsets that are corners of the
/// cell at offset `oi`, excluding the center vertex. A cell belongs to
/// the center's lower star iff all these corners are SoS-below the
/// center.
pub const STAR_CORNERS: [u32; 27] = build_corners();

/// `STAR_FACETS[oi]`: offsets of the facets of the cell at `oi` that lie
/// in the same lower star (one nonzero axis zeroed).
pub const STAR_FACETS: [u32; 27] = build_facets();

const fn clip(axis: usize, lo_ok: bool, hi_ok: bool) -> u32 {
    let mut mask = 0u32;
    let mut oi = 0;
    while oi < 27 {
        let (dx, dy, dz) = offset_of(oi);
        let d = [dx, dy, dz][axis];
        let ok = (d >= 0 || lo_ok) && (d <= 0 || hi_ok);
        if ok {
            mask |= 1 << oi;
        }
        oi += 1;
    }
    mask
}

const fn build_clips() -> [[[u32; 2]; 2]; 3] {
    let mut t = [[[0u32; 2]; 2]; 3];
    let mut a = 0;
    while a < 3 {
        t[a][0][0] = clip(a, false, false);
        t[a][0][1] = clip(a, false, true);
        t[a][1][0] = clip(a, true, false);
        t[a][1][1] = clip(a, true, true);
        a += 1;
    }
    t
}

const CLIPS: [[[u32; 2]; 2]; 3] = build_clips();

/// Offsets whose component along `axis` keeps them inside the box:
/// `lo_ok` permits −1 (the center is strictly above the box's low face
/// on that axis), `hi_ok` permits +1. The condition is shared by refined
/// cell offsets (`rv ± 1` with `rv` and the box faces even) and vertex
/// neighbors (`v ± 1` in vertex space): both are in range exactly when
/// the center is not on the corresponding box face.
#[inline]
pub fn clip_mask(axis: usize, lo_ok: bool, hi_ok: bool) -> u32 {
    CLIPS[axis][lo_ok as usize][hi_ok as usize]
}

const fn build_neg_gid() -> u32 {
    let mut mask = 0u32;
    let mut oi = 0;
    while oi < 27 {
        let (dx, dy, dz) = offset_of(oi);
        // global vertex ids are x-fastest, so the id delta's sign is the
        // lexicographic sign of (dz, dy, dx) for any offset that stays
        // inside the grid
        let neg = dz < 0 || (dz == 0 && (dy < 0 || (dy == 0 && dx < 0)));
        if neg {
            mask |= 1 << oi;
        }
        oi += 1;
    }
    mask
}

/// Offsets whose global vertex id is smaller than the center's (the SoS
/// tiebreak for equal values): `(dz, dy, dx)` lexicographically negative.
pub const NEG_GID: u32 = build_neg_gid();

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::RCoord;

    #[test]
    fn index_round_trip_and_center() {
        for oi in 0..27 {
            let (dx, dy, dz) = offset_of(oi);
            assert_eq!(index_of(dx, dy, dz), oi);
        }
        assert_eq!(offset_of(CENTER), (0, 0, 0));
        assert_eq!(STAR_CORNERS[CENTER], 0);
        assert_eq!(STAR_FACETS[CENTER], 0);
    }

    #[test]
    fn corners_match_rcoord_vertices() {
        // place the center vertex well inside a grid so all offsets are
        // legal, and compare against RCoord::vertices of the offset cell
        let rv = RCoord::of_vertex(5, 5, 5);
        for (oi, &corner_mask) in STAR_CORNERS.iter().enumerate() {
            let (dx, dy, dz) = offset_of(oi);
            let c = RCoord::new(
                (rv.x as i32 + dx) as u32,
                (rv.y as i32 + dy) as u32,
                (rv.z as i32 + dz) as u32,
            );
            let mut expect = 0u32;
            for v in c.vertices() {
                if v == rv {
                    continue;
                }
                // vertex offsets are ±2 in refined space = ±1 in vertex space
                let e = (
                    (v.x as i32 - rv.x as i32) / 2,
                    (v.y as i32 - rv.y as i32) / 2,
                    (v.z as i32 - rv.z as i32) / 2,
                );
                expect |= 1 << index_of(e.0, e.1, e.2);
            }
            // cells whose vertex set does not include rv are not star
            // candidates; for those the corner mask is meaningless but
            // must still only name real corners — vertices() covers the
            // star cube only when rv is a corner, so restrict the check
            if c.vertices().any(|v| v == rv) {
                assert_eq!(corner_mask, expect, "offset {oi} {:?}", (dx, dy, dz));
                assert_eq!(
                    corner_mask.count_ones() + 1,
                    1 << c.cell_dim(),
                    "corner count is 2^dim"
                );
            }
        }
    }

    #[test]
    fn every_star_cell_contains_the_center() {
        // every offset cell has the center among its vertices (that is
        // what makes the 3^3 cube the star), so the restriction in
        // corners_match_rcoord_vertices is vacuous — check it
        let rv = RCoord::of_vertex(5, 5, 5);
        for oi in 0..27 {
            let (dx, dy, dz) = offset_of(oi);
            let c = RCoord::new(
                (rv.x as i32 + dx) as u32,
                (rv.y as i32 + dy) as u32,
                (rv.z as i32 + dz) as u32,
            );
            assert!(c.vertices().any(|v| v == rv), "offset {oi}");
        }
    }

    #[test]
    fn facets_match_facet_predicate() {
        // f is a facet of c iff they differ by exactly 1 on exactly one
        // axis where c is odd — mirror of the morse-side is_facet_of
        let is_facet = |f: (i32, i32, i32), c: (i32, i32, i32)| {
            let d = [c.0 - f.0, c.1 - f.1, c.2 - f.2];
            let nd: Vec<usize> = (0..3).filter(|&a| d[a] != 0).collect();
            nd.len() == 1 && d[nd[0]].abs() == 1 && {
                // c odd on that axis ⇔ nonzero offset there (center even)
                [c.0, c.1, c.2][nd[0]] != 0
            }
        };
        for (oi, &facet_mask) in STAR_FACETS.iter().enumerate() {
            let c = offset_of(oi);
            for fi in 0..27 {
                let f = offset_of(fi);
                let in_mask = facet_mask >> fi & 1 == 1;
                assert_eq!(
                    in_mask,
                    is_facet(f, c),
                    "facet relation {fi}->{oi} ({f:?} of {c:?})"
                );
            }
        }
    }

    #[test]
    fn facets_are_strict_corner_subsets() {
        // the packed-key prefix property rests on this: a facet's corner
        // set is a strict subset of its coface's corner set
        for oi in 0..27 {
            let mut m = STAR_FACETS[oi];
            while m != 0 {
                let fi = m.trailing_zeros() as usize;
                m &= m - 1;
                let (fc, cc) = (STAR_CORNERS[fi], STAR_CORNERS[oi]);
                assert_eq!(fc & cc, fc, "facet corners ⊆ cell corners");
                assert!(fc != cc, "strict subset");
            }
        }
    }

    #[test]
    fn clip_masks_filter_by_component() {
        for axis in 0..3 {
            for lo_ok in [false, true] {
                for hi_ok in [false, true] {
                    let m = clip_mask(axis, lo_ok, hi_ok);
                    for oi in 0..27 {
                        let d = [offset_of(oi).0, offset_of(oi).1, offset_of(oi).2][axis];
                        let expect = (d >= 0 || lo_ok) && (d <= 0 || hi_ok);
                        assert_eq!(m >> oi & 1 == 1, expect);
                    }
                }
            }
        }
        // the conjunction over all axes with everything permitted is the
        // full cube
        let full = clip_mask(0, true, true) & clip_mask(1, true, true) & clip_mask(2, true, true);
        assert_eq!(full, ALL_OFFSETS);
    }

    #[test]
    fn neg_gid_is_lexicographic() {
        use crate::dims::Dims;
        // on a concrete grid, the id delta's sign must match the mask for
        // every offset that stays in bounds
        let dims = Dims::new(5, 4, 3);
        let (x, y, z) = (2u32, 2u32, 1u32);
        let gid0 = dims.vertex_index(x, y, z) as i64;
        for oi in 0..27 {
            if oi == CENTER {
                continue;
            }
            let (dx, dy, dz) = offset_of(oi);
            let (nx, ny, nz) = (x as i32 + dx, y as i32 + dy, z as i32 + dz);
            let gid = dims.vertex_index(nx as u32, ny as u32, nz as u32) as i64;
            assert_eq!(
                gid < gid0,
                NEG_GID >> oi & 1 == 1,
                "offset {:?}",
                (dx, dy, dz)
            );
        }
    }
}
