//! Raw volume files and subarray access patterns.
//!
//! Datasets are flat binary files of vertex values in x-fastest order,
//! little-endian, in one of the three element types the paper supports
//! (§IV-B): unsigned byte, `f32`, `f64`. A block reads its sub-box
//! through a *subarray view*: the list of contiguous x-rows it owns,
//! each a `(byte offset, byte length)` run — the same access pattern an
//! MPI subarray datatype describes.

use crate::decomp::BlockBox;
use crate::dims::Dims;
use crate::field::{BlockField, ScalarField};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Element type of a raw volume file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolumeDType {
    U8,
    F32,
    F64,
}

impl VolumeDType {
    pub fn size_bytes(&self) -> u64 {
        match self {
            VolumeDType::U8 => 1,
            VolumeDType::F32 => 4,
            VolumeDType::F64 => 8,
        }
    }
}

/// Write a full scalar field as a raw volume file.
pub fn write_raw(path: &Path, field: &ScalarField, dtype: VolumeDType) -> io::Result<()> {
    let mut f = File::create(path)?;
    let mut buf = Vec::with_capacity(field.data().len() * dtype.size_bytes() as usize);
    for &v in field.data() {
        match dtype {
            VolumeDType::U8 => buf.push(v.clamp(0.0, 255.0) as u8),
            VolumeDType::F32 => buf.extend_from_slice(&v.to_le_bytes()),
            VolumeDType::F64 => buf.extend_from_slice(&(v as f64).to_le_bytes()),
        }
    }
    f.write_all(&buf)
}

/// Read a full raw volume file into a scalar field.
pub fn read_raw(path: &Path, dims: Dims, dtype: VolumeDType) -> io::Result<ScalarField> {
    let mut f = File::open(path)?;
    let n = dims.n_verts() as usize;
    let mut buf = vec![0u8; n * dtype.size_bytes() as usize];
    f.read_exact(&mut buf)?;
    Ok(ScalarField::new(dims, decode(&buf, dtype)))
}

fn decode(buf: &[u8], dtype: VolumeDType) -> Vec<f32> {
    match dtype {
        VolumeDType::U8 => buf.iter().map(|&b| b as f32).collect(),
        VolumeDType::F32 => buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
        VolumeDType::F64 => buf
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]) as f32)
            .collect(),
    }
}

/// The contiguous byte runs a block's subarray view covers, as
/// `(file offset, byte length)` pairs in file order. One run per x-row of
/// the block's vertex sub-box.
pub fn block_runs(domain: Dims, block: &BlockBox, dtype: VolumeDType) -> Vec<(u64, u64)> {
    let es = dtype.size_bytes();
    let row_len = (block.hi[0] - block.lo[0] + 1) as u64 * es;
    let mut runs = Vec::with_capacity(
        ((block.hi[1] - block.lo[1] + 1) * (block.hi[2] - block.lo[2] + 1)) as usize,
    );
    for z in block.lo[2]..=block.hi[2] {
        for y in block.lo[1]..=block.hi[1] {
            let off = domain.vertex_index(block.lo[0], y, z) * es;
            runs.push((off, row_len));
        }
    }
    runs
}

/// Read one block's values from a raw volume file using its subarray runs.
pub fn read_block(
    path: &Path,
    domain: Dims,
    block: &BlockBox,
    dtype: VolumeDType,
) -> io::Result<BlockField> {
    let mut f = File::open(path)?;
    let runs = block_runs(domain, block, dtype);
    let total: u64 = runs.iter().map(|r| r.1).sum();
    let mut buf = Vec::with_capacity(total as usize);
    let mut row = vec![0u8; runs.first().map_or(0, |r| r.1 as usize)];
    for (off, len) in runs {
        f.seek(SeekFrom::Start(off))?;
        row.resize(len as usize, 0);
        f.read_exact(&mut row)?;
        buf.extend_from_slice(&row);
    }
    Ok(BlockField::new(*block, domain, decode(&buf, dtype)))
}

/// Total bytes a block reads (used by the I/O performance model).
pub fn block_bytes(block: &BlockBox, dtype: VolumeDType) -> u64 {
    block.n_verts() * dtype.size_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomposition;

    fn tempfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("msp_grid_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn raw_round_trip_f32() {
        let dims = Dims::new(5, 4, 3);
        let f = ScalarField::from_fn(dims, |x, y, z| x as f32 * 0.5 - y as f32 + z as f32 * 2.0);
        let p = tempfile("rt_f32.raw");
        write_raw(&p, &f, VolumeDType::F32).unwrap();
        let g = read_raw(&p, dims, VolumeDType::F32).unwrap();
        assert_eq!(f.data(), g.data());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn raw_round_trip_u8_quantizes() {
        let dims = Dims::new(3, 3, 3);
        let f = ScalarField::from_fn(dims, |x, _, _| x as f32 * 100.0 + 300.0); // clamps at 255
        let p = tempfile("rt_u8.raw");
        write_raw(&p, &f, VolumeDType::U8).unwrap();
        let g = read_raw(&p, dims, VolumeDType::U8).unwrap();
        assert!(g.data().iter().all(|&v| (0.0..=255.0).contains(&v)));
        assert_eq!(g.value(0, 0, 0), 255.0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn raw_round_trip_f64() {
        let dims = Dims::new(4, 2, 2);
        let f = ScalarField::from_fn(dims, |x, y, z| (x + y + z) as f32 * 0.125);
        let p = tempfile("rt_f64.raw");
        write_raw(&p, &f, VolumeDType::F64).unwrap();
        let g = read_raw(&p, dims, VolumeDType::F64).unwrap();
        assert_eq!(f.data(), g.data());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn block_read_matches_extraction() {
        let dims = Dims::new(9, 7, 5);
        let f = ScalarField::from_fn(dims, |x, y, z| (x * 31 + y * 17 + z * 3) as f32);
        let p = tempfile("block_read.raw");
        write_raw(&p, &f, VolumeDType::F32).unwrap();
        let d = Decomposition::bisect(dims, 4);
        for b in d.blocks() {
            let via_file = read_block(&p, dims, b, VolumeDType::F32).unwrap();
            let via_mem = f.extract_block(b);
            assert_eq!(via_file.data(), via_mem.data(), "block {}", b.id);
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn runs_are_disjoint_and_sized() {
        let dims = Dims::new(8, 8, 8);
        let d = Decomposition::bisect(dims, 8);
        for b in d.blocks() {
            let runs = block_runs(dims, b, VolumeDType::F32);
            let total: u64 = runs.iter().map(|r| r.1).sum();
            assert_eq!(total, block_bytes(b, VolumeDType::F32));
            for w in runs.windows(2) {
                assert!(
                    w[0].0 + w[0].1 <= w[1].0,
                    "runs must be ordered and disjoint"
                );
            }
        }
    }
}
