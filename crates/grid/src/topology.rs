//! Incidence relations of the cubical complex on the refined grid.
//!
//! All enumeration is *clipped to a refined box* so the same routines
//! serve both the global complex and a block-local complex. Boxes are
//! inclusive on both ends and live in global refined coordinates.

use crate::coord::RCoord;
use serde::{Deserialize, Serialize};

/// An axis-aligned inclusive box in refined coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RBox {
    pub lo: RCoord,
    pub hi: RCoord,
}

impl RBox {
    pub fn new(lo: RCoord, hi: RCoord) -> Self {
        assert!(lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z);
        RBox { lo, hi }
    }

    /// True when `c` lies inside the box (inclusive).
    pub fn contains(&self, c: RCoord) -> bool {
        self.lo.x <= c.x
            && c.x <= self.hi.x
            && self.lo.y <= c.y
            && c.y <= self.hi.y
            && self.lo.z <= c.z
            && c.z <= self.hi.z
    }

    /// Extent (number of refined entries) along `axis`.
    pub fn extent(&self, axis: usize) -> u64 {
        (self.hi.get(axis) - self.lo.get(axis)) as u64 + 1
    }

    /// Total number of refined entries in the box.
    pub fn len(&self) -> u64 {
        self.extent(0) * self.extent(1) * self.extent(2)
    }

    pub fn is_empty(&self) -> bool {
        false // construction enforces lo <= hi
    }

    /// Local linear index of `c` within the box (x-fastest).
    pub fn local_index(&self, c: RCoord) -> u64 {
        debug_assert!(self.contains(c));
        let i = (c.x - self.lo.x) as u64;
        let j = (c.y - self.lo.y) as u64;
        let k = (c.z - self.lo.z) as u64;
        i + self.extent(0) * (j + self.extent(1) * k)
    }

    /// Inverse of [`RBox::local_index`].
    pub fn from_local_index(&self, idx: u64) -> RCoord {
        let ex = self.extent(0);
        let ey = self.extent(1);
        let i = idx % ex;
        let rest = idx / ex;
        let j = rest % ey;
        let k = rest / ey;
        RCoord::new(
            self.lo.x + i as u32,
            self.lo.y + j as u32,
            self.lo.z + k as u32,
        )
    }

    /// Iterate over every refined coordinate in the box, x-fastest.
    pub fn iter(&self) -> CellIter {
        CellIter {
            bbox: *self,
            next: Some(self.lo),
        }
    }

    /// True when `c` lies on the surface of the box.
    pub fn on_surface(&self, c: RCoord) -> bool {
        debug_assert!(self.contains(c));
        (0..3).any(|a| c.get(a) == self.lo.get(a) || c.get(a) == self.hi.get(a))
    }
}

/// Iterator over the refined coordinates of an [`RBox`] in x-fastest order.
pub struct CellIter {
    bbox: RBox,
    next: Option<RCoord>,
}

impl Iterator for CellIter {
    type Item = RCoord;

    fn next(&mut self) -> Option<RCoord> {
        let cur = self.next?;
        let b = self.bbox;
        let mut n = cur;
        if n.x < b.hi.x {
            n.x += 1;
        } else {
            n.x = b.lo.x;
            if n.y < b.hi.y {
                n.y += 1;
            } else {
                n.y = b.lo.y;
                if n.z < b.hi.z {
                    n.z += 1;
                } else {
                    self.next = None;
                    return Some(cur);
                }
            }
        }
        self.next = Some(n);
        Some(cur)
    }
}

/// Identifies one of the six axis-aligned directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaceDir {
    /// Axis 0..3.
    pub axis: u8,
    /// `true` for the +direction, `false` for −.
    pub positive: bool,
}

impl FaceDir {
    pub const ALL: [FaceDir; 6] = [
        FaceDir {
            axis: 0,
            positive: false,
        },
        FaceDir {
            axis: 0,
            positive: true,
        },
        FaceDir {
            axis: 1,
            positive: false,
        },
        FaceDir {
            axis: 1,
            positive: true,
        },
        FaceDir {
            axis: 2,
            positive: false,
        },
        FaceDir {
            axis: 2,
            positive: true,
        },
    ];

    /// Signed unit step of this direction.
    pub fn delta(&self) -> i32 {
        if self.positive {
            1
        } else {
            -1
        }
    }

    /// Compact code 0..6 (axis*2 + positive).
    pub fn code(&self) -> u8 {
        self.axis * 2 + self.positive as u8
    }

    /// Inverse of [`FaceDir::code`].
    pub fn from_code(code: u8) -> Self {
        FaceDir {
            axis: code / 2,
            positive: code % 2 == 1,
        }
    }

    /// The opposite direction.
    pub fn flip(&self) -> Self {
        FaceDir {
            axis: self.axis,
            positive: !self.positive,
        }
    }
}

/// Enumerate the facets (codimension-1 faces) of `c` clipped to `bbox`.
///
/// A `d`-cell has `2d` facets in the unbounded complex: one step ±1 along
/// each odd-parity axis. Facet steps never leave the *global* grid (the
/// cell's own vertices bound them) but may leave a block-local box — those
/// are filtered out.
pub fn facets(c: RCoord, bbox: &RBox) -> impl Iterator<Item = (FaceDir, RCoord)> + '_ {
    FaceDir::ALL.into_iter().filter_map(move |dir| {
        let axis = dir.axis as usize;
        if c.get(axis).is_multiple_of(2) {
            return None; // flat along this axis: no facet here
        }
        let v = c.get(axis) as i64 + dir.delta() as i64;
        let f = c.with(axis, v as u32);
        bbox.contains(f).then_some((dir, f))
    })
}

/// Enumerate the cofacets (codimension-1 cofaces) of `c` clipped to `bbox`.
///
/// A `d`-cell has up to `2·(3−d)` cofacets: one step ±1 along each
/// even-parity axis, clipped to the box.
pub fn cofacets(c: RCoord, bbox: &RBox) -> impl Iterator<Item = (FaceDir, RCoord)> + '_ {
    FaceDir::ALL.into_iter().filter_map(move |dir| {
        let axis = dir.axis as usize;
        if c.get(axis) % 2 == 1 {
            return None; // already extends along this axis
        }
        let v = c.get(axis) as i64 + dir.delta() as i64;
        if v < 0 {
            return None;
        }
        let f = c.with(axis, v as u32);
        bbox.contains(f).then_some((dir, f))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_box(n: u32) -> RBox {
        RBox::new(
            RCoord::new(0, 0, 0),
            RCoord::new(2 * n - 2, 2 * n - 2, 2 * n - 2),
        )
    }

    #[test]
    fn facet_counts_interior() {
        let b = full_box(4);
        // interior voxel (3-cell) has 6 facets, quad 4, edge 2, vertex 0
        assert_eq!(facets(RCoord::new(3, 3, 3), &b).count(), 6);
        assert_eq!(facets(RCoord::new(3, 3, 2), &b).count(), 4);
        assert_eq!(facets(RCoord::new(3, 2, 2), &b).count(), 2);
        assert_eq!(facets(RCoord::new(2, 2, 2), &b).count(), 0);
    }

    #[test]
    fn cofacet_counts() {
        let b = full_box(4);
        // interior vertex has 6 cofacet edges; corner vertex has 3
        assert_eq!(cofacets(RCoord::new(2, 2, 2), &b).count(), 6);
        assert_eq!(cofacets(RCoord::new(0, 0, 0), &b).count(), 3);
        // voxel has no cofacets
        assert_eq!(cofacets(RCoord::new(3, 3, 3), &b).count(), 0);
    }

    #[test]
    fn facet_cofacet_duality() {
        let b = full_box(3);
        for c in b.iter() {
            for (_, f) in facets(c, &b) {
                assert_eq!(f.cell_dim() + 1, c.cell_dim());
                assert!(
                    cofacets(f, &b).any(|(_, cf)| cf == c),
                    "facet relation must be symmetric"
                );
            }
        }
    }

    #[test]
    fn box_iter_covers_all() {
        let b = RBox::new(RCoord::new(2, 0, 4), RCoord::new(5, 3, 6));
        let v: Vec<_> = b.iter().collect();
        assert_eq!(v.len() as u64, b.len());
        let mut uniq = std::collections::HashSet::new();
        for c in &v {
            assert!(b.contains(*c));
            assert!(uniq.insert(*c));
        }
        // local_index round trip and x-fastest ordering
        for (i, c) in v.iter().enumerate() {
            assert_eq!(b.local_index(*c), i as u64);
            assert_eq!(b.from_local_index(i as u64), *c);
        }
    }

    #[test]
    fn face_dir_codes() {
        for d in FaceDir::ALL {
            assert_eq!(FaceDir::from_code(d.code()), d);
            assert_eq!(d.flip().flip(), d);
            assert_ne!(d.flip().code(), d.code());
        }
    }

    #[test]
    fn vertices_of_cell_are_faces_closure() {
        let b = full_box(3);
        let c = RCoord::new(1, 1, 1); // voxel
        let mut verts: Vec<_> = c.vertices().collect();
        verts.sort();
        assert_eq!(verts.len(), 8);
        // every facet's vertex set is a subset
        for (_, f) in facets(c, &b) {
            for v in f.vertices() {
                assert!(verts.contains(&v));
            }
        }
    }
}
