//! Refined-grid coordinates.

use crate::dims::RefinedDims;
use serde::{Deserialize, Serialize};

/// A coordinate on the refined grid of the **full dataset**.
///
/// The parity of each component determines whether the cell extends along
/// that axis: even ⇒ flat (vertex-aligned), odd ⇒ extends. Component
/// values fit comfortably in `u32` (a 1152³ dataset has refined extent
/// 2303 per axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RCoord {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl RCoord {
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        RCoord { x, y, z }
    }

    /// Coordinate of the refined-grid entry for vertex `(x, y, z)`.
    pub fn of_vertex(x: u32, y: u32, z: u32) -> Self {
        RCoord::new(2 * x, 2 * y, 2 * z)
    }

    /// Dimension of the cell at this coordinate (count of odd components).
    pub fn cell_dim(&self) -> u8 {
        (self.x % 2 + self.y % 2 + self.z % 2) as u8
    }

    /// True if this coordinate is a vertex (all components even).
    pub fn is_vertex(&self) -> bool {
        self.cell_dim() == 0
    }

    /// Component along `axis` (0 = x, 1 = y, 2 = z).
    pub fn get(&self, axis: usize) -> u32 {
        match axis {
            0 => self.x,
            1 => self.y,
            _ => self.z,
        }
    }

    /// Copy with `axis` set to `v`.
    pub fn with(&self, axis: usize, v: u32) -> Self {
        let mut c = *self;
        match axis {
            0 => c.x = v,
            1 => c.y = v,
            _ => c.z = v,
        }
        c
    }

    /// Offset by `d ∈ {−1, +1}` along `axis`; `None` when it would leave
    /// `[0, extent)` bounds given by `dims`.
    pub fn step(&self, axis: usize, d: i32, dims: &RefinedDims) -> Option<Self> {
        let extent = [dims.rx, dims.ry, dims.rz][axis];
        let v = self.get(axis) as i64 + d as i64;
        if v < 0 || v as u64 >= extent {
            None
        } else {
            Some(self.with(axis, v as u32))
        }
    }

    /// Global address of this cell on the refined grid `dims`.
    pub fn address(&self, dims: &RefinedDims) -> u64 {
        dims.address(self.x as u64, self.y as u64, self.z as u64)
    }

    /// Inverse of [`RCoord::address`].
    pub fn from_address(addr: u64, dims: &RefinedDims) -> Self {
        let (i, j, k) = dims.coord(addr);
        RCoord::new(i as u32, j as u32, k as u32)
    }

    /// The vertices (even-parity corners) of this cell, lowest-coordinate
    /// first. A `d`-cell has `2^d` vertices.
    pub fn vertices(&self) -> impl Iterator<Item = RCoord> + '_ {
        let base = *self;
        let odd = [self.x % 2 == 1, self.y % 2 == 1, self.z % 2 == 1];
        (0..8u32).filter_map(move |mask| {
            let mut c = base;
            for (axis, &o) in odd.iter().enumerate() {
                let bit = (mask >> axis) & 1;
                if o {
                    let v = c.get(axis);
                    c = c.with(axis, if bit == 1 { v + 1 } else { v - 1 });
                } else if bit == 1 {
                    return None; // even axis has no choice; dedupe
                }
            }
            Some(c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims;

    #[test]
    fn cell_dim_matches_parity() {
        assert_eq!(RCoord::new(0, 0, 0).cell_dim(), 0);
        assert_eq!(RCoord::new(1, 0, 0).cell_dim(), 1);
        assert_eq!(RCoord::new(1, 1, 0).cell_dim(), 2);
        assert_eq!(RCoord::new(1, 1, 1).cell_dim(), 3);
    }

    #[test]
    fn vertices_count_is_2_pow_dim() {
        for c in [
            RCoord::new(2, 2, 2),
            RCoord::new(3, 2, 2),
            RCoord::new(3, 3, 2),
            RCoord::new(3, 3, 3),
        ] {
            let n = c.vertices().count();
            assert_eq!(n, 1 << c.cell_dim());
            for v in c.vertices() {
                assert!(v.is_vertex());
                // each vertex is within distance 1 of the cell coord
                assert!((v.x as i64 - c.x as i64).abs() <= 1);
                assert!((v.y as i64 - c.y as i64).abs() <= 1);
                assert!((v.z as i64 - c.z as i64).abs() <= 1);
            }
        }
    }

    #[test]
    fn address_round_trip() {
        let dims = Dims::new(4, 4, 4).refined();
        for k in 0..dims.rz as u32 {
            for j in 0..dims.ry as u32 {
                for i in 0..dims.rx as u32 {
                    let c = RCoord::new(i, j, k);
                    assert_eq!(RCoord::from_address(c.address(&dims), &dims), c);
                }
            }
        }
    }

    #[test]
    fn step_bounds() {
        let dims = Dims::new(3, 3, 3).refined(); // extent 5
        let c = RCoord::new(0, 4, 2);
        assert_eq!(c.step(0, -1, &dims), None);
        assert_eq!(c.step(0, 1, &dims), Some(RCoord::new(1, 4, 2)));
        assert_eq!(c.step(1, 1, &dims), None);
        assert_eq!(c.step(2, -1, &dims), Some(RCoord::new(0, 4, 1)));
    }
}
