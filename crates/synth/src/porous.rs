//! Porous-material distance-field analogue (Fig 1 scenario).
//!
//! The original is "a signed volumetric distance field from an uncertain
//! interface demarcating the interior and exterior" of a simulated porous
//! material, whose MS complex 1-skeleton traces filament structures
//! (3D ridge lines). We use the classic triply-periodic Schwarz-P level
//! function `cos x + cos y + cos z` as a smooth signed-distance proxy —
//! its ridges form exactly the kind of connected filament network the
//! paper extracts via 2-saddle→maximum arcs — plus a small deterministic
//! perturbation standing in for interface uncertainty.

use crate::basic::hash_unit;
use msp_grid::{Dims, ScalarField};
use std::f32::consts::PI;

/// Generate the porous-solid field: `periods` pore cells per side, and
/// `roughness` ∈ [0, 1) perturbation amplitude.
pub fn porous(n: u32, periods: u32, roughness: f32, seed: u64) -> ScalarField {
    let dims = Dims::cube(n);
    let k = 2.0 * PI * periods as f32 / (n - 1) as f32;
    ScalarField::from_fn(dims, |x, y, z| {
        let base = (k * x as f32).cos() + (k * y as f32).cos() + (k * z as f32).cos();
        let jitter = hash_unit(seed, dims.vertex_index(x, y, z)) - 0.5;
        base + roughness * jitter
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = porous(24, 3, 0.1, 2);
        let b = porous(24, 3, 0.1, 2);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn periodic_structure() {
        let f = porous(33, 2, 0.0, 0);
        // with 2 periods over 32 cells, value at 0 and 16 should agree
        assert!((f.value(0, 0, 0) - f.value(16, 0, 0)).abs() < 1e-4);
        // maxima of the level function at lattice points: value 3
        assert!((f.value(0, 0, 0) - 3.0).abs() < 1e-4);
        // minima at half-period offsets: value -3
        assert!((f.value(8, 8, 8) - (-3.0)).abs() < 1e-4);
    }

    #[test]
    fn roughness_perturbs() {
        let a = porous(16, 2, 0.0, 7);
        let b = porous(16, 2, 0.2, 7);
        assert_ne!(a.data(), b.data());
        // but only slightly
        let max_diff = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff <= 0.1 + 1e-6);
    }
}
