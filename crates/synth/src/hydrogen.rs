//! Analytic stand-in for the Fig 4 dataset: "spatial probability density
//! of a hydrogen atom residing in a strong magnetic field", byte-valued.
//!
//! The essential structure the stability study needs (paper §V-A):
//! * several aligned maxima on the field axis ("three stable maxima
//!   connected by stable arcs in a line"),
//! * a toroidal ridge around the axis ("the loop representing the
//!   toroidal region"),
//! * a large constant-value (zero) exterior where critical points are
//!   *unstable* and may shift with the blocking.
//!
//! We build it from Gaussian lobes along the z axis plus a Gaussian tube
//! around a circle in the mid-plane, then quantize to bytes so the
//! exterior becomes an exactly-flat plateau, as in the original data.

use msp_grid::{Dims, ScalarField};

/// The hydrogen-like test field on a cubic grid of `n` vertices per side.
pub fn hydrogen(n: u32) -> ScalarField {
    let dims = Dims::cube(n);
    let c = (n - 1) as f32 / 2.0; // centre
    let s = (n - 1) as f32; // scale
    let lobe_sigma = 0.055 * s;
    let ring_r = 0.27 * s;
    let ring_sigma = 0.05 * s;
    // three lobes along z, as in the "three stable maxima in a line"
    let lobes = [-0.3f32, 0.0, 0.3];
    ScalarField::from_fn(dims, |x, y, z| {
        let (fx, fy, fz) = (x as f32 - c, y as f32 - c, z as f32 - c);
        let r_cyl = (fx * fx + fy * fy).sqrt();
        let mut v = 0.0f32;
        for (i, dz) in lobes.iter().enumerate() {
            let zz = fz - dz * s;
            let d2 = fx * fx + fy * fy + zz * zz;
            let amp = if i == 1 { 1.0 } else { 0.8 };
            v += amp * (-d2 / (2.0 * lobe_sigma * lobe_sigma)).exp();
        }
        // toroidal ridge in the mid-plane
        let dr = r_cyl - ring_r;
        let d2 = dr * dr + fz * fz;
        v += 0.65 * (-d2 / (2.0 * ring_sigma * ring_sigma)).exp();
        // byte quantization: flat zero plateau outside, like the original
        (v * 255.0).round().clamp(0.0, 255.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_flat_exterior_plateau() {
        let f = hydrogen(33);
        // corners are deep in the plateau
        assert_eq!(f.value(0, 0, 0), 0.0);
        assert_eq!(f.value(32, 32, 32), 0.0);
        assert_eq!(f.value(0, 32, 0), 0.0);
    }

    #[test]
    fn has_central_maximum() {
        let f = hydrogen(33);
        let c = 16;
        assert!(f.value(c, c, c) > 200.0, "central lobe should be bright");
        // lobes above and below
        assert!(f.value(c, c, c + 10) > 100.0);
        assert!(f.value(c, c, c - 10) > 100.0);
    }

    #[test]
    fn ring_is_brighter_than_between() {
        let f = hydrogen(65);
        let c = 32u32;
        let ring_x = c + (0.27 * 64.0) as u32; // on the ring
        let gap_x = c + (0.45 * 64.0) as u32; // outside the ring
        assert!(f.value(ring_x, c, c) > 100.0, "ring should be bright");
        assert!(f.value(gap_x, c, c) < 20.0, "outside ring should be dark");
    }

    #[test]
    fn byte_valued() {
        let f = hydrogen(17);
        for &v in f.data() {
            assert!((0.0..=255.0).contains(&v));
            assert_eq!(v, v.round(), "values must be integral (byte data)");
        }
    }
}
