//! Turbulent-jet mixture-fraction analogue of the JET dataset (Fig 9).
//!
//! The original is a DNS of a temporally-evolving turbulent CO/H₂ jet
//! flame on a 768×896×512 grid; "dissipation elements … are centered
//! around minima of mixture fraction". What the strong-scaling study
//! actually exercises is (a) the grid size and (b) a feature population
//! that is dense inside a shear layer and sparse outside. We reproduce
//! that with a planar-jet mean profile (two tanh shear layers in `y`)
//! modulated by a band-limited sum of random Fourier modes whose
//! amplitude is confined to the shear layers — yielding the minima-rich
//! mixing region the paper analyses.

use msp_grid::{Dims, ScalarField};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::f32::consts::PI;

struct Mode {
    k: [f32; 3],
    phase: f32,
    amp: f32,
}

/// Generate the jet-like mixture-fraction field.
///
/// `dims` follows the paper's 768×896×512 aspect when scaled (x is
/// streamwise, y is cross-stream). `modes` controls turbulence richness
/// (the default used by the benchmarks is 160).
pub fn jet(dims: Dims, modes: usize, seed: u64) -> ScalarField {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let modes: Vec<Mode> = (0..modes)
        .map(|_| {
            // band-limited wavenumbers: features a few cells across
            let kmag = rng.gen_range(4.0..24.0);
            let theta = rng.gen_range(0.0..PI);
            let phi = rng.gen_range(0.0..2.0 * PI);
            Mode {
                k: [
                    kmag * theta.sin() * phi.cos(),
                    kmag * theta.sin() * phi.sin(),
                    kmag * theta.cos(),
                ],
                phase: rng.gen_range(0.0..2.0 * PI),
                amp: rng.gen_range(0.3..1.0) / kmag.sqrt(),
            }
        })
        .collect();
    let norm: f32 = modes.iter().map(|m| m.amp).sum::<f32>().max(1.0);
    let half_width = 0.18f32; // jet half-width as fraction of y extent

    ScalarField::from_fn(dims, |x, y, z| {
        let u = x as f32 / (dims.nx - 1).max(1) as f32;
        let v = y as f32 / (dims.ny - 1).max(1) as f32;
        let w = z as f32 / (dims.nz - 1).max(1) as f32;
        // mean mixture fraction: 1 in the core, 0 outside, tanh edges
        let d = (v - 0.5).abs();
        let mean = 0.5 * (1.0 - ((d - half_width) / 0.04).tanh());
        // shear-layer indicator peaks where the gradient of `mean` peaks
        let layer = (-(d - half_width).powi(2) / (2.0 * 0.06f32.powi(2))).exp();
        let mut turb = 0.0f32;
        for m in &modes {
            turb += m.amp * (2.0 * PI * (m.k[0] * u + m.k[1] * v + m.k[2] * w) + m.phase).sin();
        }
        (mean + 0.35 * layer * turb / norm * modes.len() as f32 / 16.0).clamp(-0.2, 1.2)
    })
}

/// The paper's grid dimensions for the JET dataset, scaled by `1/s`.
pub fn jet_dims(scale_down: u32) -> Dims {
    let s = scale_down.max(1);
    Dims::new((768 / s).max(8), (896 / s).max(8), (512 / s).max(8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = jet(Dims::new(24, 28, 16), 32, 7);
        let b = jet(Dims::new(24, 28, 16), 32, 7);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn core_rich_exterior_poor() {
        let d = Dims::new(32, 64, 32);
        let f = jet(d, 64, 3);
        // core (y mid) has high mixture fraction, edges near zero
        let core: f32 = (0..32).map(|x| f.value(x, 32, 16)).sum::<f32>() / 32.0;
        let edge: f32 = (0..32).map(|x| f.value(x, 2, 16)).sum::<f32>() / 32.0;
        assert!(core > 0.7, "core mean {core}");
        assert!(edge < 0.2, "edge mean {edge}");
    }

    #[test]
    fn shear_layer_has_local_minima() {
        // minima of mixture fraction inside the layer = dissipation-element
        // analogues; count strict 1D minima along a line in the layer
        let d = Dims::new(96, 64, 32);
        let f = jet(d, 96, 11);
        let layer_y = (0.5 - 0.18) * 63.0; // lower shear layer
        let y = layer_y as u32;
        let mut minima = 0;
        for x in 1..95 {
            let (a, b, c) = (
                f.value(x - 1, y, 16),
                f.value(x, y, 16),
                f.value(x + 1, y, 16),
            );
            if b < a && b < c {
                minima += 1;
            }
        }
        assert!(minima >= 3, "expected several layer minima, got {minima}");
    }

    #[test]
    fn jet_dims_aspect() {
        let d = jet_dims(8);
        assert_eq!((d.nx, d.ny, d.nz), (96, 112, 64));
    }
}
