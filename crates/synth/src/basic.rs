//! Elementary test fields: ramps, constants, Gaussian-bump mixtures and
//! reproducible white noise.

use msp_grid::{Dims, ScalarField};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A ramp assigning each vertex its linear index — strictly increasing in
/// x-fastest scan order, so it has exactly one minimum and one maximum on
/// a box and no saddles of positive persistence.
pub fn ramp(dims: Dims) -> ScalarField {
    ScalarField::from_fn(dims, |x, y, z| dims.vertex_index(x, y, z) as f32)
}

/// A constant field — the degenerate flat case that simulation of
/// simplicity must resolve to a single critical vertex per box.
pub fn constant(dims: Dims, v: f32) -> ScalarField {
    ScalarField::from_fn(dims, |_, _, _| v)
}

/// A sum of isotropic Gaussian bumps at reproducible random positions.
///
/// With well-separated bumps the field has exactly `count` significant
/// maxima, making critical-point counts predictable in tests.
pub fn gaussian_bumps(dims: Dims, count: usize, sigma_frac: f32, seed: u64) -> ScalarField {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = dims.nx.max(dims.ny).max(dims.nz) as f32;
    let sigma = (sigma_frac * n).max(1.0);
    let centers: Vec<[f32; 3]> = (0..count)
        .map(|_| {
            [
                rng.gen_range(0.15..0.85) * (dims.nx - 1) as f32,
                rng.gen_range(0.15..0.85) * (dims.ny - 1) as f32,
                rng.gen_range(0.15..0.85) * (dims.nz - 1) as f32,
            ]
        })
        .collect();
    ScalarField::from_fn(dims, |x, y, z| {
        let p = [x as f32, y as f32, z as f32];
        centers
            .iter()
            .map(|c| {
                let d2 = (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2) + (p[2] - c[2]).powi(2);
                (-d2 / (2.0 * sigma * sigma)).exp()
            })
            .sum()
    })
}

/// Reproducible white noise in `[0, 1)`, keyed on the **global** vertex
/// id so any sub-box regenerates identical values.
pub fn white_noise(dims: Dims, seed: u64) -> ScalarField {
    ScalarField::from_fn(dims, |x, y, z| hash_unit(seed, dims.vertex_index(x, y, z)))
}

/// White noise quantized to `levels` flat steps — an adversarial plateau
/// field where every value ties with many neighbours, stressing the
/// simulation-of-simplicity tie-breaking end to end. `levels = 1`
/// degenerates to a constant field.
pub fn plateau(dims: Dims, seed: u64, levels: u32) -> ScalarField {
    let levels = levels.max(1);
    ScalarField::from_fn(dims, |x, y, z| {
        (hash_unit(seed, dims.vertex_index(x, y, z)) * levels as f32).floor()
    })
}

/// SplitMix64-style hash of `(seed, id)` mapped to `[0, 1)`.
pub fn hash_unit(seed: u64, id: u64) -> f32 {
    let mut v = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    v ^= v >> 30;
    v = v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    v ^= v >> 27;
    v = v.wrapping_mul(0x94D0_49BB_1331_11EB);
    v ^= v >> 31;
    (v >> 40) as f32 / (1u64 << 24) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_is_monotone() {
        let f = ramp(Dims::new(4, 4, 4));
        assert!(f.value(0, 0, 0) < f.value(1, 0, 0));
        assert!(f.value(3, 3, 2) < f.value(0, 0, 3));
        assert_eq!(f.min_max().0, f.value(0, 0, 0));
        assert_eq!(f.min_max().1, f.value(3, 3, 3));
    }

    #[test]
    fn constant_is_flat() {
        let f = constant(Dims::new(3, 3, 3), 7.5);
        assert_eq!(f.min_max(), (7.5, 7.5));
    }

    #[test]
    fn noise_is_reproducible_and_spread() {
        let a = white_noise(Dims::new(8, 8, 8), 42);
        let b = white_noise(Dims::new(8, 8, 8), 42);
        assert_eq!(a.data(), b.data());
        let c = white_noise(Dims::new(8, 8, 8), 43);
        assert_ne!(a.data(), c.data());
        let (lo, hi) = a.min_max();
        assert!(hi - lo > 0.5, "noise should span most of [0,1)");
    }

    #[test]
    fn bumps_deterministic() {
        let a = gaussian_bumps(Dims::new(16, 16, 16), 3, 0.08, 1);
        let b = gaussian_bumps(Dims::new(16, 16, 16), 3, 0.08, 1);
        assert_eq!(a.data(), b.data());
        assert!(a.min_max().1 > 0.5, "bump peaks should be near 1");
    }
}
