//! Rayleigh-Taylor mixing-front density analogue (Fig 10 dataset).
//!
//! The original is the density field of a 1152³ Rayleigh-Taylor
//! instability simulation: a heavy fluid over a light one, with rising
//! bubbles and falling spikes along a turbulent interface. "The
//! 1-skeleton of the MS complex can detect when isolated bits of one
//! fluid penetrate the other." The analogue: a vertical density ramp
//! crossed by a multi-scale perturbed interface, with density
//! fluctuations (entrained blobs) confined to the mixing layer.

use msp_grid::{Dims, ScalarField};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::f32::consts::PI;

struct Wave {
    kx: f32,
    ky: f32,
    phase: f32,
    amp: f32,
}

/// Generate the RT-like density field on an `n³` grid.
///
/// `waves` controls how many interface perturbation modes are summed
/// (multi-scale, amplitudes ∝ 1/k); `seed` fixes all randomness.
pub fn rayleigh_taylor(n: u32, waves: usize, seed: u64) -> ScalarField {
    rayleigh_taylor_dims(Dims::cube(n), waves, seed)
}

/// Anisotropic-grid variant of [`rayleigh_taylor`].
pub fn rayleigh_taylor_dims(dims: Dims, waves: usize, seed: u64) -> ScalarField {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let interface: Vec<Wave> = (0..waves)
        .map(|i| {
            // multi-scale: early modes long-wavelength, later ones short
            let kmag = 1.5f32 + (i as f32 / waves.max(1) as f32) * 14.0;
            let dir = rng.gen_range(0.0..2.0 * PI);
            Wave {
                kx: kmag * dir.cos(),
                ky: kmag * dir.sin(),
                phase: rng.gen_range(0.0..2.0 * PI),
                amp: rng.gen_range(0.5..1.0) / kmag,
            }
        })
        .collect();
    // small-scale blobs inside the mixing layer
    let blobs: Vec<Wave> = (0..waves * 2)
        .map(|_| {
            let kmag = rng.gen_range(6.0..28.0);
            let dir = rng.gen_range(0.0..2.0 * PI);
            Wave {
                kx: kmag * dir.cos(),
                ky: kmag * dir.sin(),
                phase: rng.gen_range(0.0..2.0 * PI),
                amp: rng.gen_range(0.3..1.0) / kmag.sqrt(),
            }
        })
        .collect();
    let blob_kz: Vec<f32> = (0..blobs.len()).map(|_| rng.gen_range(4.0..20.0)).collect();
    let layer_halfwidth = 0.16f32;

    ScalarField::from_fn(dims, |x, y, z| {
        let u = x as f32 / (dims.nx - 1).max(1) as f32;
        let v = y as f32 / (dims.ny - 1).max(1) as f32;
        let w = z as f32 / (dims.nz - 1).max(1) as f32;
        // interface height perturbation around mid-plane
        let mut h = 0.0f32;
        for wv in &interface {
            h += wv.amp * (2.0 * PI * (wv.kx * u + wv.ky * v) + wv.phase).sin();
        }
        let zi = 0.5 + 0.05 * h; // perturbed interface height
                                 // heavy fluid (density 2) above, light (1) below, tanh transition
        let mut rho = 1.5 + 0.5 * ((w - zi) / 0.03).tanh();
        // mixing-layer fluctuations: entrained pockets of the other fluid
        let layer = (-(w - 0.5).powi(2) / (2.0 * layer_halfwidth.powi(2))).exp();
        let mut fluct = 0.0f32;
        for (b, kz) in blobs.iter().zip(&blob_kz) {
            fluct += b.amp * (2.0 * PI * (b.kx * u + b.ky * v + kz * w) + b.phase).sin();
        }
        rho += 0.25 * layer * fluct;
        rho
    })
}

/// The paper's 1152³ grid scaled by `1/s`.
pub fn rt_dims(scale_down: u32) -> Dims {
    let s = scale_down.max(1);
    Dims::cube((1152 / s).max(8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = rayleigh_taylor(24, 16, 5);
        let b = rayleigh_taylor(24, 16, 5);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn heavy_above_light_below() {
        let f = rayleigh_taylor(48, 24, 9);
        let bottom: f32 = (0..48).map(|x| f.value(x, 24, 2)).sum::<f32>() / 48.0;
        let top: f32 = (0..48).map(|x| f.value(x, 24, 45)).sum::<f32>() / 48.0;
        assert!(bottom < 1.2, "bottom should be light fluid, got {bottom}");
        assert!(top > 1.8, "top should be heavy fluid, got {top}");
    }

    #[test]
    fn mixing_layer_has_structure() {
        let f = rayleigh_taylor(64, 32, 13);
        // variance at mid-plane should exceed variance near the bottom
        let var = |z: u32| {
            let vals: Vec<f32> = (0..64)
                .flat_map(|x| (0..64).map(move |y| (x, y)))
                .map(|(x, y)| f.value(x, y, z))
                .collect();
            let m = vals.iter().sum::<f32>() / vals.len() as f32;
            vals.iter().map(|v| (v - m).powi(2)).sum::<f32>() / vals.len() as f32
        };
        assert!(var(32) > 10.0 * var(3), "mid-plane should be turbulent");
    }

    #[test]
    fn rt_dims_scaling() {
        assert_eq!(rt_dims(4).nx, 288);
        assert_eq!(rt_dims(1).nx, 1152);
    }
}
