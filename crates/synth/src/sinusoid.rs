//! The synthetic size × complexity family of the paper's §VI-B.
//!
//! "The complexity, or number of features per side, is how many times the
//! sine function has a ±1 value along the length of one side of the
//! volume." We use a separable product of sines: `complexity = c` gives
//! `sin(c·π·t)` per axis for `t ∈ [0, 1]`, which attains ±1 exactly `c`
//! times along a side. The product field has on the order of `c³`
//! extrema, so doubling the complexity per side multiplies the feature
//! count by 8 — matching the volume renderings of Fig 5.

use msp_grid::{Dims, ScalarField};
use std::f32::consts::PI;

/// Generate the sinusoidal test field with `points` vertices per side and
/// `complexity` features per side.
pub fn sinusoid(points: u32, complexity: u32) -> ScalarField {
    sinusoid_dims(Dims::cube(points), complexity)
}

/// Anisotropic variant used where the paper's grids are non-cubic.
pub fn sinusoid_dims(dims: Dims, complexity: u32) -> ScalarField {
    assert!(complexity >= 1, "complexity must be at least 1");
    let c = complexity as f32;
    let sx = c * PI / (dims.nx.max(2) - 1) as f32;
    let sy = c * PI / (dims.ny.max(2) - 1) as f32;
    let sz = c * PI / (dims.nz.max(2) - 1) as f32;
    ScalarField::from_fn(dims, |x, y, z| {
        (sx * x as f32).sin() * (sy * y as f32).sin() * (sz * z as f32).sin()
    })
}

/// The number of interior local maxima the separable sinusoid is expected
/// to have: `⌈c/2⌉³` cells of positive sign per axis combination — used
/// as a ground-truth bound in tests.
pub fn expected_extrema(complexity: u32) -> u64 {
    // per axis the sine has `complexity` points of |sin|=1, split between
    // maxima and minima of the 1D factor; the 3D product has one extremum
    // per combination of 1D extremum triples: c^3 in total (maxima+minima
    // of the product field combined).
    (complexity as u64).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_is_plus_minus_one() {
        let f = sinusoid(33, 4);
        let (lo, hi) = f.min_max();
        assert!((-1.0..-0.9).contains(&lo), "lo = {lo}");
        assert!((0.9..=1.0).contains(&hi), "hi = {hi}");
    }

    #[test]
    fn complexity_counts_axis_extrema() {
        // along one side (y=z at first interior max plane), the 1D factor
        // sin(c·π·t) has c points of |f|=1
        let n = 129u32;
        let c = 4u32;
        let f = sinusoid(n, c);
        // scan the x-axis at a fixed y,z where sin factors are ~1
        let yz = (n - 1) / (2 * c); // first 1D max of y and z factors
        let mut extrema = 0;
        for x in 1..n - 1 {
            let a = f.value(x - 1, yz, yz);
            let b = f.value(x, yz, yz);
            let d = f.value(x + 1, yz, yz);
            if (b > a && b > d) || (b < a && b < d) {
                extrema += 1;
            }
        }
        assert_eq!(extrema, c, "1D extrema along a side must equal complexity");
    }

    #[test]
    fn deterministic() {
        let a = sinusoid(17, 2);
        let b = sinusoid(17, 2);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn feature_count_grows_cubically() {
        assert_eq!(expected_extrema(4), 64);
        assert_eq!(expected_extrema(8), 512);
        assert_eq!(expected_extrema(16) / expected_extrema(8), 8);
    }
}
