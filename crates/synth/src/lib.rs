//! # msp-synth
//!
//! Synthetic scalar-field generators. These stand in for the datasets of
//! the paper's evaluation (see DESIGN.md §2 for the substitution
//! rationale):
//!
//! * [`sinusoid`] — the size × complexity family of §VI-B (Figs 5, 6):
//!   a product-of-sines field whose *complexity* parameter is the number
//!   of ±1 extrema of the sine along one side of the volume.
//! * [`hydrogen`] — an analytic stand-in for the hydrogen-atom
//!   probability-density field of Fig 4: aligned maxima lobes, a toroidal
//!   ridge, and a large constant-value exterior plateau (byte-quantized,
//!   as the original).
//! * [`jet`] — a turbulent-jet mixture-fraction analogue for the JET
//!   strong-scaling study (Fig 9): minima-rich shear-layer turbulence.
//! * [`rayleigh_taylor`] — a mixing-front density analogue for the
//!   Rayleigh-Taylor strong-scaling study (Fig 10).
//! * [`porous`] — a periodic-surface signed-distance analogue of the
//!   porous-material field of Fig 1, for filament extraction.
//! * [`basic`] — ramps, constants, Gaussian-bump mixtures and white noise
//!   used throughout the test suites.
//!
//! All generators are deterministic: random fields take an explicit seed
//! and derive per-mode parameters from a seeded ChaCha stream, so repeated
//! generation (including per-block regeneration of shared layers) is
//! bitwise reproducible.

pub mod basic;
pub mod hydrogen;
pub mod jet;
pub mod porous;
pub mod rayleigh_taylor;
pub mod sinusoid;

pub use basic::{constant, gaussian_bumps, plateau, ramp, white_noise};
pub use hydrogen::hydrogen;
pub use jet::jet;
pub use porous::porous;
pub use rayleigh_taylor::rayleigh_taylor;
pub use sinusoid::{sinusoid, sinusoid_dims};
