//! # msp-segment
//!
//! The full Morse-Smale **segmentation**: per-vertex descending-manifold
//! labels (which minimum's basin a vertex drains to) and per-voxel
//! ascending-manifold labels (which maximum's mountain a voxel climbs
//! to), computed along the already-assigned discrete gradient.
//!
//! The computation is split the same way the paper splits the complex
//! construction (and the same way Will et al. split PL segmentations in
//! "Distributed Path Compression for Piecewise Linear Morse-Smale
//! Segmentations"):
//!
//! 1. a **local stage** ([`label_block`]) that propagates extremum
//!    labels along the owner-restricted gradient inside one block —
//!    because pairings never cross owner sets, every V-path stays inside
//!    its block and the stage needs no communication;
//! 2. a **distributed resolution stage** (in `msp-core::pipeline`) that
//!    pointer-jumps the [`ForwardMap`] of cancelled extrema to a fixed
//!    point across ranks and rewrites each block's extremum tables to
//!    the surviving representatives.
//!
//! The local stage is batched pointer doubling over flat `Vec<u32>`
//! successor arrays (no per-vertex recursion), chunked over
//! `msp_grid::par` slabs: results are placed in input order, so output
//! is bit-identical for every thread count.

pub mod label;
pub mod wire;

pub use label::{label_block, BlockSegmentation};

use std::collections::HashMap;

/// Sentinel address for an ascending path that exits the domain through
/// a boundary face instead of reaching a critical voxel (possible
/// whenever a voxel's paired quad lies on the domain boundary, e.g. on
/// ramp or constant fields whose restricted gradient has no interior
/// maximum).
pub const DRAIN_ADDR: u64 = u64::MAX;

/// Sentinel label-array entry for [`DRAIN_ADDR`].
pub const DRAIN_LABEL: u32 = u32::MAX;

/// Forward entries of cancelled extrema: dead extremum address →
/// representative it merged into (which may itself die later — the
/// distributed resolution stage compresses chains to live roots).
#[derive(Debug, Clone, Default)]
pub struct ForwardMap {
    map: HashMap<u64, u64>,
}

impl ForwardMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `dead → target`. Every extremum is cancelled at most once
    /// globally, so a duplicate insert indicates a protocol bug.
    pub fn insert(&mut self, dead: u64, target: u64) {
        debug_assert!(
            !self.map.contains_key(&dead),
            "extremum {dead:#x} forwarded twice"
        );
        self.map.insert(dead, target);
    }

    pub fn get(&self, addr: u64) -> Option<u64> {
        self.map.get(&addr).copied()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries in deterministic (sorted-by-key) order — the only way the
    /// map's contents may enter a wire message.
    pub fn sorted_entries(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.map.iter().map(|(&k, &t)| (k, t)).collect();
        v.sort_unstable();
        v
    }

    /// One synchronized pointer-jump pass over the owned entries:
    /// `lookup` must answer "what does address `t` currently forward
    /// to?" against the *pre-pass* global state (`None` = live). Returns
    /// the number of entries that advanced.
    pub fn jump_pass(&mut self, lookup: &HashMap<u64, u64>) -> u64 {
        let mut changed = 0;
        for target in self.map.values_mut() {
            if *target == DRAIN_ADDR {
                continue;
            }
            if let Some(&next) = lookup.get(target) {
                *target = next;
                changed += 1;
            }
        }
        changed
    }

    /// Fully resolve `addr` against this (already-compressed) map.
    pub fn resolve(&self, addr: u64) -> u64 {
        self.get(addr).unwrap_or(addr)
    }
}

/// The rank that owns (resolves forwards and serves table lookups for)
/// an extremum address.
///
/// The naive map `addr % n_ranks` is structurally biased: descending
/// labels are **vertex** addresses (always even on the refined grid) and
/// ascending labels are **voxel** addresses (always odd), so with an
/// even rank count the naive map routes every minimum to an even rank
/// and every maximum to an odd one. It also bakes in the assumption
/// that addresses — and the block ids folded into them — are dense and
/// contiguous, which irregular block trees break. Mixing the address
/// through a splitmix64 finalizer first spreads any structured address
/// set (parity-skewed, strided, or sparse) evenly over the ranks.
///
/// Every participant in the resolution protocol must use this one
/// function: the fixed point itself is partition-independent, but rounds
/// are synchronized, so routing must agree across ranks and drivers.
pub fn owner_rank(addr: u64, n_ranks: u64) -> u64 {
    debug_assert!(n_ranks >= 1);
    let mut z = addr.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z % n_ranks
}

/// Upper bound on the number of pointer-jump rounds needed to reach the
/// fixed point, plus the one extra round that observes it: chains can be
/// no longer than the global forward-entry count, and synchronized
/// jumping doubles the compressed distance each round.
pub fn jump_round_bound(forwards: u64) -> u64 {
    let f = forwards.max(2);
    (64 - (f - 1).leading_zeros()) as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_map_jump_compresses_chains() {
        // chain a -> b -> c -> d (live)
        let mut m = ForwardMap::new();
        m.insert(1, 2);
        m.insert(2, 3);
        m.insert(3, 4);
        let mut rounds = 0;
        loop {
            rounds += 1;
            let lookup: HashMap<u64, u64> = m.sorted_entries().into_iter().collect();
            if m.jump_pass(&lookup) == 0 {
                break;
            }
        }
        assert_eq!(m.resolve(1), 4);
        assert_eq!(m.resolve(2), 4);
        assert_eq!(m.resolve(3), 4);
        assert_eq!(m.resolve(9), 9, "unknown addresses are live");
        assert!(rounds as u64 <= jump_round_bound(3), "{rounds} rounds");
    }

    #[test]
    fn drain_targets_are_absorbing() {
        let mut m = ForwardMap::new();
        m.insert(7, DRAIN_ADDR);
        let lookup: HashMap<u64, u64> = m.sorted_entries().into_iter().collect();
        assert_eq!(m.jump_pass(&lookup), 0);
        assert_eq!(m.resolve(7), DRAIN_ADDR);
    }

    #[test]
    fn owner_rank_spreads_structured_address_sets() {
        // regression: the naive `addr % n_ranks` map sends all-even
        // (vertex/minima) addresses to even ranks only when n_ranks is
        // even, and collapses strided id patterns onto few ranks. The
        // hashed map must hit every rank with a reasonable share for
        // each structured set.
        let sets: Vec<Vec<u64>> = vec![
            (0..4096u64).map(|i| i * 2).collect(),     // all even (minima)
            (0..4096u64).map(|i| i * 2 + 1).collect(), // all odd (maxima)
            (0..4096u64).map(|i| i * 6).collect(),     // strided
            (0..4096u64).map(|i| (i << 40) | 0x5).collect(), // sparse block-id-style
        ];
        for n_ranks in [2u64, 3, 4, 6, 8] {
            for (si, set) in sets.iter().enumerate() {
                let mut hist = vec![0u64; n_ranks as usize];
                for &a in set {
                    hist[owner_rank(a, n_ranks) as usize] += 1;
                }
                let expect = set.len() as u64 / n_ranks;
                for (r, &h) in hist.iter().enumerate() {
                    assert!(
                        h > expect / 2 && h < expect * 2,
                        "set {si}, {n_ranks} ranks: rank {r} got {h} of ~{expect}"
                    );
                }
            }
        }
        // demonstrate the bias being fixed: naive mod-2 on even addrs
        let evens: Vec<u64> = (0..128u64).map(|i| i * 2).collect();
        assert!(evens.iter().all(|a| a % 2 == 0), "naive map: one rank idle");
        assert!(evens.iter().any(|&a| owner_rank(a, 2) == 1));
    }

    #[test]
    fn owner_rank_is_deterministic_and_in_range() {
        for n in 1..9u64 {
            for a in [0u64, 1, 7, u64::MAX, DRAIN_ADDR, 1 << 63] {
                let r = owner_rank(a, n);
                assert!(r < n);
                assert_eq!(r, owner_rank(a, n));
            }
        }
    }

    #[test]
    fn round_bound_shape() {
        assert_eq!(jump_round_bound(0), 2);
        assert_eq!(jump_round_bound(1), 2);
        assert_eq!(jump_round_bound(2), 2);
        assert_eq!(jump_round_bound(4), 3);
        assert_eq!(jump_round_bound(5), 4);
        assert_eq!(jump_round_bound(1024), 11);
    }
}
