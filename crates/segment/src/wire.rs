//! Canonical serialization of a block segmentation (`SEG1`).
//!
//! The encoding is a pure function of the segmentation content — tables
//! sorted, labels in block-local x-fastest order — so two runs that
//! computed the same labeled volume produce byte-identical payloads
//! regardless of rank count, thread count or merge schedule. This is
//! the byte-identity contract the proptests and the verify smoke gate
//! on.
//!
//! ```text
//! "SEG1"                       magic
//! u32  block_id
//! u32 ×3 vdims                 vertex-grid dims
//! u32 ×3 origin                block origin (vertex coords, full grid)
//! u32  n_mins, u64 ×n          descending representatives (sorted)
//! u32  n_maxs, u64 ×n          ascending representatives (sorted)
//! u32 ×n_verts  min_label
//! u32 ×n_voxels max_label      (u32::MAX = drain)
//! ```

use crate::BlockSegmentation;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"SEG1";

/// Encode one block segmentation.
pub fn serialize(seg: &BlockSegmentation) -> Bytes {
    let mut b = BytesMut::with_capacity(
        40 + 8 * (seg.mins.len() + seg.maxs.len())
            + 4 * (seg.min_label.len() + seg.max_label.len()),
    );
    b.put_slice(MAGIC);
    b.put_u32_le(seg.block_id);
    for d in seg.vdims {
        b.put_u32_le(d);
    }
    for o in seg.origin {
        b.put_u32_le(o);
    }
    b.put_u32_le(seg.mins.len() as u32);
    for &a in &seg.mins {
        b.put_u64_le(a);
    }
    b.put_u32_le(seg.maxs.len() as u32);
    for &a in &seg.maxs {
        b.put_u64_le(a);
    }
    for &l in &seg.min_label {
        b.put_u32_le(l);
    }
    for &l in &seg.max_label {
        b.put_u32_le(l);
    }
    b.freeze()
}

/// Decode a `SEG1` payload.
pub fn deserialize(mut b: &[u8]) -> Result<BlockSegmentation, String> {
    let need = |b: &[u8], n: usize, what: &str| {
        if b.len() < n {
            Err(format!("truncated SEG1 payload reading {what}"))
        } else {
            Ok(())
        }
    };
    need(b, 4, "magic")?;
    if &b[..4] != MAGIC {
        return Err("bad SEG1 magic".into());
    }
    b.advance(4);
    need(b, 28, "header")?;
    let block_id = b.get_u32_le();
    let vdims = [b.get_u32_le(), b.get_u32_le(), b.get_u32_le()];
    let origin = [b.get_u32_le(), b.get_u32_le(), b.get_u32_le()];
    let n_verts = vdims.iter().map(|&d| d as usize).product::<usize>();
    let n_voxels = vdims
        .iter()
        .map(|&d| d.saturating_sub(1) as usize)
        .product::<usize>();
    let read_table = |b: &mut &[u8]| -> Result<Vec<u64>, String> {
        need(b, 4, "table length")?;
        let n = b.get_u32_le() as usize;
        need(b, 8 * n, "table")?;
        Ok((0..n).map(|_| b.get_u64_le()).collect())
    };
    let mins = read_table(&mut b)?;
    let maxs = read_table(&mut b)?;
    let read_labels = |b: &mut &[u8], n: usize| -> Result<Vec<u32>, String> {
        need(b, 4 * n, "labels")?;
        Ok((0..n).map(|_| b.get_u32_le()).collect())
    };
    let min_label = read_labels(&mut b, n_verts)?;
    let max_label = read_labels(&mut b, n_voxels)?;
    if !b.is_empty() {
        return Err(format!("{} trailing byte(s) in SEG1 payload", b.len()));
    }
    Ok(BlockSegmentation {
        block_id,
        vdims,
        origin,
        mins,
        maxs,
        min_label,
        max_label,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BlockSegmentation {
        BlockSegmentation {
            block_id: 3,
            vdims: [2, 2, 2],
            origin: [4, 0, 2],
            mins: vec![0, 9],
            maxs: vec![13],
            min_label: vec![0, 0, 1, 1, 0, 0, 1, 1],
            max_label: vec![u32::MAX],
        }
    }

    #[test]
    fn round_trip() {
        let s = sample();
        let enc = serialize(&s);
        assert_eq!(deserialize(&enc).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(deserialize(b"nope").is_err());
        assert!(deserialize(b"").is_err());
        let enc = serialize(&sample());
        assert!(deserialize(&enc[..enc.len() - 1]).is_err());
        let mut extra = enc.to_vec();
        extra.push(0);
        assert!(deserialize(&extra).is_err());
    }
}
