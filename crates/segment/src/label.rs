//! Per-block label propagation: batched pointer doubling over flat
//! successor arrays.
//!
//! Two forests are extracted from the block's discrete gradient:
//!
//! * the **vertex forest** — every non-critical vertex is the tail of
//!   exactly one vertex→edge pairing; its successor is the other
//!   endpoint of the partner edge; roots are the critical vertices
//!   (minima of the owner-restricted gradient);
//! * the **voxel forest** — every non-critical voxel is the head of
//!   exactly one quad→voxel pairing; its successor is the other voxel
//!   cofacet of the partner quad; roots are the critical voxels
//!   (maxima). A partner quad on the domain boundary has no second
//!   cofacet: the path drains off the domain ([`DRAIN_LABEL`]).
//!
//! Owner-restricted pairing guarantees both forests are closed inside
//! the block (a pairing never crosses an owner-set change), so the
//! whole stage is communication-free and its result is independent of
//! how the domain is distributed over ranks.
//!
//! Plateau tie-breaking needs no extra rule here: successors follow the
//! gradient's own pairings, which were chosen under the production
//! two-heap comparison order (simulation of simplicity), so flat
//! regions inherit exactly the same deterministic owners the complex
//! construction sees.

use crate::{DRAIN_ADDR, DRAIN_LABEL};
use msp_grid::par::par_map;
use msp_grid::{BlockBox, RCoord, RefinedDims};
use msp_morse::GradientField;
use std::collections::HashMap;

/// The segmentation of one block: extremum tables (global refined-grid
/// addresses, sorted) and flat label arrays indexing into them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSegmentation {
    pub block_id: u32,
    /// Vertex-grid dimensions of the block (shared layers included).
    pub vdims: [u32; 3],
    /// Block origin in vertex coordinates of the full dataset.
    pub origin: [u32; 3],
    /// Descending-manifold representatives: addresses of the minima the
    /// vertex labels refer to. Sorted, unique.
    pub mins: Vec<u64>,
    /// Ascending-manifold representatives: addresses of the maxima the
    /// voxel labels refer to. Sorted, unique.
    pub maxs: Vec<u64>,
    /// Per-vertex index into `mins`, x-fastest block-local order.
    pub min_label: Vec<u32>,
    /// Per-voxel index into `maxs` ([`DRAIN_LABEL`] = drains off the
    /// domain boundary), x-fastest block-local order over the
    /// `(vdims-1)^3` voxel grid.
    pub max_label: Vec<u32>,
}

impl BlockSegmentation {
    /// Estimated resident heap footprint in bytes (capacity-based, for
    /// the serve layer's per-dataset byte gauges).
    pub fn mem_bytes(&self) -> u64 {
        use std::mem::size_of;
        (size_of::<BlockSegmentation>()
            + (self.mins.capacity() + self.maxs.capacity()) * size_of::<u64>()
            + (self.min_label.capacity() + self.max_label.capacity()) * size_of::<u32>())
            as u64
    }

    /// Voxel-grid dimensions (`vdims - 1` per axis, saturating).
    pub fn cdims(&self) -> [u32; 3] {
        [
            self.vdims[0].saturating_sub(1),
            self.vdims[1].saturating_sub(1),
            self.vdims[2].saturating_sub(1),
        ]
    }

    /// The address a vertex label stands for.
    pub fn min_addr(&self, label: u32) -> u64 {
        self.mins[label as usize]
    }

    /// The address a voxel label stands for ([`DRAIN_ADDR`] for drains).
    pub fn max_addr(&self, label: u32) -> u64 {
        if label == DRAIN_LABEL {
            DRAIN_ADDR
        } else {
            self.maxs[label as usize]
        }
    }

    /// Distinct regions actually referenced: `(descending, ascending,
    /// drained voxels)`.
    pub fn census(&self) -> (usize, usize, u64) {
        let drained = self.max_label.iter().filter(|&&l| l == DRAIN_LABEL).count() as u64;
        (self.mins.len(), self.maxs.len(), drained)
    }

    /// Rewrite both extremum tables through their resolved
    /// representatives (`resolved_*[i]` replaces table entry `i`;
    /// [`DRAIN_ADDR`] sends a region to the drain), dedup + re-sort the
    /// tables, and remap the label arrays. Returns how many table
    /// entries actually moved.
    pub fn apply_resolution(&mut self, resolved_mins: &[u64], resolved_maxs: &[u64]) -> u64 {
        assert_eq!(resolved_mins.len(), self.mins.len());
        assert_eq!(resolved_maxs.len(), self.maxs.len());
        let mut moved = 0;
        moved += remap_table(&mut self.mins, &mut self.min_label, resolved_mins);
        moved += remap_table(&mut self.maxs, &mut self.max_label, resolved_maxs);
        moved
    }
}

/// Replace `table` by the sorted dedup of `resolved` (drains excluded)
/// and rewrite `labels` accordingly. Returns the number of table entries
/// whose representative changed.
fn remap_table(table: &mut Vec<u64>, labels: &mut [u32], resolved: &[u64]) -> u64 {
    let moved = table
        .iter()
        .zip(resolved)
        .filter(|(old, new)| old != new)
        .count() as u64;
    if moved == 0 {
        return 0;
    }
    let mut new_table: Vec<u64> = resolved
        .iter()
        .copied()
        .filter(|&a| a != DRAIN_ADDR)
        .collect();
    new_table.sort_unstable();
    new_table.dedup();
    // old table index -> new label (or drain)
    let relabel: Vec<u32> = resolved
        .iter()
        .map(|&a| {
            if a == DRAIN_ADDR {
                DRAIN_LABEL
            } else {
                new_table.binary_search(&a).expect("resolved addr in table") as u32
            }
        })
        .collect();
    for l in labels.iter_mut() {
        if *l != DRAIN_LABEL {
            *l = relabel[*l as usize];
        }
    }
    *table = new_table;
    moved
}

/// Split `0..n` into at most `threads` contiguous ranges.
fn chunk_ranges(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let workers = threads.clamp(1, n.max(1));
    let per = n.div_ceil(workers);
    (0..workers)
        .map(|w| (w * per, ((w + 1) * per).min(n)))
        .filter(|(a, b)| a < b)
        .collect()
}

/// One synchronized pointer-doubling pass: `new[i] = old[old[i]]`
/// (drains are absorbing). Returns whether anything moved.
fn double_pass(succ: &mut Vec<u32>, threads: usize) -> bool {
    let old = std::mem::take(succ);
    let chunks = chunk_ranges(old.len(), threads);
    let parts = par_map(threads, &chunks, |_, &(a, b)| {
        let mut out = Vec::with_capacity(b - a);
        let mut changed = false;
        for &s in &old[a..b] {
            let n = if s == DRAIN_LABEL {
                DRAIN_LABEL
            } else {
                old[s as usize]
            };
            changed |= n != s;
            out.push(n);
        }
        (out, changed)
    });
    let mut changed = false;
    let mut merged = Vec::with_capacity(old.len());
    for (part, c) in parts {
        merged.extend(part);
        changed |= c;
    }
    *succ = merged;
    changed
}

/// Pointer-double until every entry is a root (or a drain). V-paths are
/// acyclic, so this converges in `O(log chain-length)` passes.
fn compress(succ: &mut Vec<u32>, threads: usize) {
    while double_pass(succ, threads) {}
}

/// Compute the block's segmentation from its assigned gradient.
/// `refined` is the **domain** refined grid (node addresses are global).
/// Bit-identical output for every `threads` value.
pub fn label_block(
    block: &BlockBox,
    refined: &RefinedDims,
    grad: &GradientField,
    threads: usize,
) -> BlockSegmentation {
    let d = block.dims();
    let vdims = [d.nx, d.ny, d.nz];
    let (nx, ny, nz) = (d.nx as usize, d.ny as usize, d.nz as usize);
    let (mx, my, mz) = (
        nx.saturating_sub(1),
        ny.saturating_sub(1),
        nz.saturating_sub(1),
    );
    let lo = block.lo;

    // ---- vertex forest ----
    let n_verts = nx * ny * nz;
    let vcoord = |i: usize| {
        let (x, r) = (i % nx, i / nx);
        let (y, z) = (r % ny, r / ny);
        RCoord::of_vertex(lo[0] + x as u32, lo[1] + y as u32, lo[2] + z as u32)
    };
    let vindex = |c: RCoord| {
        let x = (c.x / 2 - lo[0]) as usize;
        let y = (c.y / 2 - lo[1]) as usize;
        let z = (c.z / 2 - lo[2]) as usize;
        x + nx * (y + ny * z)
    };
    let vchunks = chunk_ranges(n_verts, threads);
    let mut vsucc: Vec<u32> = par_map(threads, &vchunks, |_, &(a, b)| {
        let mut out = Vec::with_capacity(b - a);
        for i in a..b {
            let v = vcoord(i);
            if grad.is_critical(v) {
                out.push(i as u32);
                continue;
            }
            let e = grad
                .partner(v)
                .expect("non-critical vertex is paired with an edge");
            let axis = (0..3).find(|&ax| e.get(ax) % 2 == 1).expect("edge axis");
            let w = e.with(axis, 2 * e.get(axis) - v.get(axis));
            out.push(vindex(w) as u32);
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    compress(&mut vsucc, threads);

    // ---- voxel forest ----
    let n_cells = mx * my * mz;
    let ccoord = |i: usize| {
        let (x, r) = (i % mx.max(1), i / mx.max(1));
        let (y, z) = (r % my.max(1), r / my.max(1));
        RCoord::new(
            2 * (lo[0] + x as u32) + 1,
            2 * (lo[1] + y as u32) + 1,
            2 * (lo[2] + z as u32) + 1,
        )
    };
    let cindex = |c: RCoord| {
        let x = ((c.x - 1) / 2 - lo[0]) as usize;
        let y = ((c.y - 1) / 2 - lo[1]) as usize;
        let z = ((c.z - 1) / 2 - lo[2]) as usize;
        x + mx * (y + my * z)
    };
    let rb = block.refined_box();
    let cchunks = chunk_ranges(n_cells, threads);
    let mut csucc: Vec<u32> = par_map(threads, &cchunks, |_, &(a, b)| {
        let mut out = Vec::with_capacity(b - a);
        for i in a..b {
            let c = ccoord(i);
            if grad.is_critical(c) {
                out.push(i as u32);
                continue;
            }
            let q = grad
                .partner(c)
                .expect("non-critical voxel is paired with a quad");
            let axis = (0..3)
                .find(|&ax| q.get(ax).is_multiple_of(2))
                .expect("quad axis");
            // the partner quad's other voxel cofacet; a domain-boundary
            // quad has none and the path drains
            let other = 2 * q.get(axis) as i64 - c.get(axis) as i64;
            let extent = [refined.rx, refined.ry, refined.rz][axis];
            if other < 0 || other as u64 >= extent {
                out.push(DRAIN_LABEL);
                continue;
            }
            let w = q.with(axis, other as u32);
            debug_assert!(rb.contains(w), "owner-restricted pairing left the block");
            out.push(cindex(w) as u32);
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    compress(&mut csucc, threads);

    // ---- extremum tables ----
    let mut mins: Vec<u64> = Vec::new();
    let mut maxs: Vec<u64> = Vec::new();
    let mut min_of: HashMap<u32, u32> = HashMap::new();
    let mut max_of: HashMap<u32, u32> = HashMap::new();
    for c in grad.critical_cells() {
        match c.cell_dim() {
            0 => {
                min_of.insert(vindex(c) as u32, mins.len() as u32);
                mins.push(c.address(refined));
            }
            3 => {
                max_of.insert(cindex(c) as u32, maxs.len() as u32);
                maxs.push(c.address(refined));
            }
            _ => {}
        }
    }
    // critical_cells scans the box in address order, so the tables come
    // out sorted; the labels below rely on that only via the maps.
    debug_assert!(mins.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(maxs.windows(2).all(|w| w[0] < w[1]));

    let min_label: Vec<u32> = vsucc
        .into_iter()
        .map(|root| *min_of.get(&root).expect("vertex root is a critical vertex"))
        .collect();
    let max_label: Vec<u32> = csucc
        .into_iter()
        .map(|root| {
            if root == DRAIN_LABEL {
                DRAIN_LABEL
            } else {
                *max_of.get(&root).expect("voxel root is a critical voxel")
            }
        })
        .collect();

    BlockSegmentation {
        block_id: block.id,
        vdims,
        origin: lo,
        mins,
        maxs,
        min_label,
        max_label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::{Decomposition, Dims};
    use msp_morse::assign_gradient;

    fn segment_field(field: &msp_grid::ScalarField, threads: usize) -> Vec<BlockSegmentation> {
        let decomp = Decomposition::bisect(field.dims(), 1);
        let refined = field.dims().refined();
        decomp
            .blocks()
            .iter()
            .map(|b| {
                let bf = field.extract_block(b);
                let grad = assign_gradient(&bf, &decomp);
                label_block(b, &refined, &grad, threads)
            })
            .collect()
    }

    #[test]
    fn every_vertex_and_voxel_is_labeled() {
        let f = msp_synth::white_noise(Dims::cube(7), 11);
        let segs = segment_field(&f, 1);
        let s = &segs[0];
        assert_eq!(s.min_label.len(), 7 * 7 * 7);
        assert_eq!(s.max_label.len(), 6 * 6 * 6);
        assert!(!s.mins.is_empty());
        for &l in &s.min_label {
            assert!((l as usize) < s.mins.len());
        }
        for &l in &s.max_label {
            assert!(l == DRAIN_LABEL || (l as usize) < s.maxs.len());
        }
    }

    #[test]
    fn labels_bit_identical_across_thread_counts() {
        let f = msp_synth::white_noise(Dims::cube(9), 3);
        let base = segment_field(&f, 1);
        for threads in [2, 3, 5, 8] {
            assert_eq!(segment_field(&f, threads), base, "threads = {threads}");
        }
    }

    #[test]
    fn constant_field_has_one_descending_region() {
        // Simulation of simplicity turns a constant field into a ramp by
        // global vertex id: one minimum owns every vertex, and the
        // plateau owners are fully deterministic.
        let f = msp_synth::constant(Dims::cube(6), 0.5);
        let segs = segment_field(&f, 1);
        let s = &segs[0];
        let (n_min, _, _) = s.census();
        assert_eq!(n_min, 1);
        assert!(s.min_label.iter().all(|&l| l == 0));
    }

    #[test]
    fn label_is_constant_one_gradient_step_down() {
        // walking a vertex one step along its partner edge must not
        // change its basin — the defining segmentation invariant
        let f = msp_synth::white_noise(Dims::cube(8), 21);
        let decomp = Decomposition::bisect(f.dims(), 1);
        let refined = f.dims().refined();
        let b = decomp.block(0);
        let bf = f.extract_block(b);
        let grad = assign_gradient(&bf, &decomp);
        let s = label_block(b, &refined, &grad, 1);
        let d = b.dims();
        for i in 0..s.min_label.len() {
            let (x, r) = (i % d.nx as usize, i / d.nx as usize);
            let (y, z) = (r % d.ny as usize, r / d.ny as usize);
            let v = RCoord::of_vertex(x as u32, y as u32, z as u32);
            if grad.is_critical(v) {
                continue;
            }
            let e = grad.partner(v).unwrap();
            let axis = (0..3).find(|&ax| e.get(ax) % 2 == 1).unwrap();
            let w = e.with(axis, 2 * e.get(axis) - v.get(axis));
            let wi = (w.x / 2) as usize
                + d.nx as usize * ((w.y / 2) as usize + d.ny as usize * (w.z / 2) as usize);
            assert_eq!(s.min_label[i], s.min_label[wi], "vertex {i}");
        }
    }
}
