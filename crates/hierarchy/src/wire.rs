//! `MSH1` wire serialization of a [`SlotHierarchy`].
//!
//! One payload per output slot, written through the same keyed
//! collective write as the `.seg` artifact so the `<out>.msh` file is
//! byte-identical across rank/thread/schedule choices. Layout (all
//! little-endian):
//!
//! ```text
//! "MSH1"
//! u64 max_new_arcs        (u64::MAX = unlimited)
//! u32 max_parallel_arcs   (u32::MAX = unlimited)
//! u8  n_sequences
//! per sequence:
//!   u8  ordering tag      (0 = difference, 1 = count)
//!   u64 n_records
//!   per record:
//!     u64 upper_addr, u64 lower_addr, f32 persistence, f32 key,
//!     u8 has_forward, [u64 dead, u64 target]
//! ```

use crate::{Ordering, ReplayParams, SlotHierarchy};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use msp_complex::CancelRecord;

/// Format magic + version.
const MAGIC: &[u8; 4] = b"MSH1";

/// Serialize a hierarchy to its `MSH1` payload.
pub fn serialize(h: &SlotHierarchy) -> Bytes {
    let n_records = h.difference.len() + h.count.as_ref().map_or(0, |c| c.len());
    let mut buf = BytesMut::with_capacity(4 + 13 + 9 * 2 + 41 * n_records);
    buf.put_slice(MAGIC);
    buf.put_u64_le(h.params.max_new_arcs.unwrap_or(u64::MAX));
    buf.put_u32_le(h.params.max_parallel_arcs.unwrap_or(u32::MAX));
    let seqs: Vec<(u8, &[CancelRecord])> = [
        Some((0u8, h.difference.as_slice())),
        h.count.as_deref().map(|c| (1u8, c)),
    ]
    .into_iter()
    .flatten()
    .collect();
    buf.put_u8(seqs.len() as u8);
    for (tag, recs) in seqs {
        buf.put_u8(tag);
        buf.put_u64_le(recs.len() as u64);
        for r in recs {
            buf.put_u64_le(r.upper_addr);
            buf.put_u64_le(r.lower_addr);
            buf.put_f32_le(r.persistence);
            buf.put_f32_le(r.key);
            match r.forward {
                Some((dead, target)) => {
                    buf.put_u8(1);
                    buf.put_u64_le(dead);
                    buf.put_u64_le(target);
                }
                None => buf.put_u8(0),
            }
        }
    }
    buf.freeze()
}

/// Errors from [`deserialize`].
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    BadMagic,
    Truncated,
    Corrupt(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad magic (not an MSH1 payload)"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Deserialize an `MSH1` payload.
pub fn deserialize(data: &[u8]) -> Result<SlotHierarchy, WireError> {
    let mut buf = data;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    buf.advance(4);
    let need = |n: usize, buf: &&[u8]| -> Result<(), WireError> {
        if buf.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    };
    need(13, &buf)?;
    let max_new_arcs = match buf.get_u64_le() {
        u64::MAX => None,
        n => Some(n),
    };
    let max_parallel_arcs = match buf.get_u32_le() {
        u32::MAX => None,
        n => Some(n),
    };
    let n_seqs = buf.get_u8() as usize;
    if n_seqs > Ordering::ALL.len() {
        return Err(WireError::Corrupt("too many sequences"));
    }
    let mut difference: Option<Vec<CancelRecord>> = None;
    let mut count: Option<Vec<CancelRecord>> = None;
    for _ in 0..n_seqs {
        need(9, &buf)?;
        let tag = buf.get_u8();
        let n = buf.get_u64_le() as usize;
        let mut recs = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            need(25, &buf)?;
            let upper_addr = buf.get_u64_le();
            let lower_addr = buf.get_u64_le();
            let persistence = buf.get_f32_le();
            let key = buf.get_f32_le();
            let forward = match buf.get_u8() {
                0 => None,
                1 => {
                    need(16, &buf)?;
                    Some((buf.get_u64_le(), buf.get_u64_le()))
                }
                _ => return Err(WireError::Corrupt("bad forward flag")),
            };
            if persistence.is_nan() || key.is_nan() {
                return Err(WireError::Corrupt("NaN record key"));
            }
            recs.push(CancelRecord {
                upper_addr,
                lower_addr,
                persistence,
                key,
                forward,
            });
        }
        let slot = match tag {
            0 => &mut difference,
            1 => &mut count,
            _ => return Err(WireError::Corrupt("unknown ordering tag")),
        };
        if slot.replace(recs).is_some() {
            return Err(WireError::Corrupt("duplicate ordering sequence"));
        }
    }
    Ok(SlotHierarchy {
        params: ReplayParams {
            max_new_arcs,
            max_parallel_arcs,
        },
        difference: difference.ok_or(WireError::Corrupt("missing difference sequence"))?,
        count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(with_count: bool) -> SlotHierarchy {
        let rec = |i: u64, key: f32, fwd: Option<(u64, u64)>| CancelRecord {
            upper_addr: 100 + i,
            lower_addr: 200 + i,
            persistence: 0.25 * key,
            key,
            forward: fwd,
        };
        SlotHierarchy {
            params: ReplayParams {
                max_new_arcs: Some(4096),
                max_parallel_arcs: Some(2),
            },
            difference: vec![rec(0, 0.1, Some((5, 6))), rec(1, 0.7, None)],
            count: with_count.then(|| vec![rec(2, 12.0, Some((9, u64::MAX)))]),
        }
    }

    #[test]
    fn round_trip_both_shapes() {
        for with_count in [false, true] {
            let h = sample(with_count);
            let bytes = serialize(&h);
            let back = deserialize(&bytes).unwrap();
            assert_eq!(back, h);
        }
    }

    #[test]
    fn unlimited_params_round_trip() {
        let mut h = sample(false);
        h.params = ReplayParams {
            max_new_arcs: None,
            max_parallel_arcs: None,
        };
        assert_eq!(deserialize(&serialize(&h)).unwrap().params, h.params);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(deserialize(b"nope").unwrap_err(), WireError::BadMagic);
        let bytes = serialize(&sample(true));
        for cut in [5, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                deserialize(&bytes[..cut]).unwrap_err(),
                WireError::Truncated | WireError::Corrupt(_)
            ));
        }
    }
}
