//! # msp-hierarchy
//!
//! The compute-once / query-many layer: run simplification **once** at
//! persistence 0 with full logging, keep the ordered cancellation
//! sequence as a [`SlotHierarchy`], and materialize *any* threshold later
//! by replaying a prefix — no recompute of the parallel pipeline.
//!
//! Two orderings are recorded (in the style of topopy's simplification
//! hierarchies):
//!
//! * [`Ordering::Difference`] — classic persistence `|f(u) − f(l)|`;
//! * [`Ordering::Count`] — manifold size: the cancelled extremum's
//!   region size (vertex/voxel counts from the `msp-segment` label
//!   tables), merged sizes accumulating onto the surviving extremum.
//!
//! **Replay is positional, not filtered.** A threshold-`t` simplification
//! executes identically to the threshold-∞ recording run up to the first
//! processed heap pop whose key exceeds `t` (same heap, same state, same
//! code), so [`SlotHierarchy::materialize`] replays records `0..k` where
//! `k` is the position of the *first* record with `key > t` — later
//! records may carry smaller keys (arcs created by a cancellation can
//! form lower-key pairs) and must **not** be replayed. Both the recorder
//! and the replayer run `msp_complex`'s shared cancellation body, which
//! is what makes the materialized complex (and its segmentation forward
//! entries) bit-identical to a direct `simplify` run at `t`.
//!
//! The on-disk artifact is the versioned `MSH1` format ([`wire`]); the
//! pipeline writes one payload per output slot via the collective write,
//! so `<out>.msh` is byte-identical across ranks/threads/schedules.

pub mod wire;

use msp_complex::{
    replay_cancellation, simplify_with, CancelOrder, CancelRecord, MsComplex, ReplayError,
    SimplifyError, SimplifyParams, SimplifyStats,
};
use msp_segment::{BlockSegmentation, DRAIN_ADDR, DRAIN_LABEL};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// Which recorded cancellation sequence to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ordering {
    /// Persistence `|f(u) − f(l)|`; thresholds are function-value deltas.
    Difference,
    /// Manifold size; thresholds are region vertex/voxel counts.
    Count,
}

impl Ordering {
    pub const ALL: [Ordering; 2] = [Ordering::Difference, Ordering::Count];

    pub fn key(self) -> &'static str {
        match self {
            Ordering::Difference => "difference",
            Ordering::Count => "count",
        }
    }
}

impl fmt::Display for Ordering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

impl FromStr for Ordering {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "difference" => Ok(Ordering::Difference),
            "count" => Ok(Ordering::Count),
            other => Err(format!(
                "unknown ordering {other:?} (want difference|count)"
            )),
        }
    }
}

/// The simplification knobs a replay must repeat exactly — recorded into
/// the artifact so materialization cannot silently diverge from the run
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayParams {
    /// Valence guard used while recording (`SimplifyParams::max_new_arcs`).
    pub max_new_arcs: Option<u64>,
    /// Parallel-arc cap (`SimplifyParams::max_parallel_arcs`).
    pub max_parallel_arcs: Option<u32>,
}

impl Default for ReplayParams {
    fn default() -> Self {
        ReplayParams {
            max_new_arcs: None,
            max_parallel_arcs: Some(2),
        }
    }
}

/// The recorded cancellation sequences for one output complex ("slot").
#[derive(Debug, Clone, PartialEq)]
pub struct SlotHierarchy {
    pub params: ReplayParams,
    /// Difference-ordered sequence (always present).
    pub difference: Vec<CancelRecord>,
    /// Count-ordered sequence, present when the recording run had
    /// segmentation region sizes available.
    pub count: Option<Vec<CancelRecord>>,
}

/// A materialized threshold: the simplified complex plus everything the
/// segmentation needs to follow it.
#[derive(Debug, Clone)]
pub struct Materialized {
    /// The compacted complex, bit-identical to a direct `simplify` run.
    pub complex: MsComplex,
    /// Forward entries `(dead extremum, survivor)` of the replayed
    /// prefix, in cancellation order.
    pub forwards: Vec<(u64, u64)>,
    pub stats: SimplifyStats,
    /// Number of records replayed.
    pub applied: usize,
}

impl Materialized {
    /// Estimated resident heap footprint in bytes — the unit the serve
    /// cache's byte gauges (and the future evict-by-bytes budget) count.
    pub fn mem_bytes(&self) -> u64 {
        (std::mem::size_of::<Materialized>()
            + self.forwards.capacity() * std::mem::size_of::<(u64, u64)>()) as u64
            + self.complex.mem_bytes()
    }
}

/// Errors from materialization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HierarchyError {
    /// The artifact has no sequence for this ordering (count was not
    /// recorded because the run had no segmentation).
    MissingOrdering(Ordering),
    /// `materialize_k` beyond the recorded sequence.
    PrefixOutOfRange { k: usize, len: usize },
    /// NaN threshold — no prefix is defined.
    NanThreshold,
    /// A record failed to re-execute: the base complex does not match
    /// the one the hierarchy was recorded from.
    Replay { index: usize, source: ReplayError },
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::MissingOrdering(o) => {
                write!(f, "hierarchy has no {o} sequence")
            }
            HierarchyError::PrefixOutOfRange { k, len } => {
                write!(f, "prefix length {k} out of range (sequence has {len})")
            }
            HierarchyError::NanThreshold => write!(f, "materialization threshold is NaN"),
            HierarchyError::Replay { index, source } => {
                write!(f, "record {index} does not apply to this base: {source}")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

/// Record the full hierarchy of `base`: simplify a clone to persistence
/// ∞ under each ordering, logging every cancellation. `sizes` (extremum
/// address → global region size) enables the count ordering. The base
/// complex itself is untouched.
pub fn record(
    base: &MsComplex,
    params: ReplayParams,
    sizes: Option<HashMap<u64, u64>>,
) -> Result<SlotHierarchy, SimplifyError> {
    let sp = SimplifyParams {
        threshold: f32::INFINITY,
        max_new_arcs: params.max_new_arcs,
        max_parallel_arcs: params.max_parallel_arcs,
    };
    let mut difference = Vec::new();
    let mut work = base.clone();
    simplify_with(
        &mut work,
        sp,
        &mut CancelOrder::Difference,
        Some(&mut difference),
        None,
    )?;
    let count = match sizes {
        Some(s) => {
            let mut log = Vec::new();
            let mut work = base.clone();
            simplify_with(
                &mut work,
                sp,
                &mut CancelOrder::Count(s),
                Some(&mut log),
                None,
            )?;
            Some(log)
        }
        None => None,
    };
    Ok(SlotHierarchy {
        params,
        difference,
        count,
    })
}

impl SlotHierarchy {
    /// The recorded sequence for an ordering, if present.
    pub fn records(&self, ordering: Ordering) -> Option<&[CancelRecord]> {
        match ordering {
            Ordering::Difference => Some(&self.difference),
            Ordering::Count => self.count.as_deref(),
        }
    }

    /// Orderings this hierarchy can materialize.
    pub fn orderings(&self) -> Vec<Ordering> {
        Ordering::ALL
            .into_iter()
            .filter(|&o| self.records(o).is_some())
            .collect()
    }

    /// Estimated resident heap footprint in bytes (capacity-based, for
    /// the serve layer's byte gauges).
    pub fn mem_bytes(&self) -> u64 {
        use std::mem::size_of;
        let rec = size_of::<CancelRecord>();
        (size_of::<SlotHierarchy>()
            + self.difference.capacity() * rec
            + self.count.as_ref().map_or(0, |c| c.capacity() * rec)) as u64
    }

    /// Length of the replay prefix for `threshold`: the position of the
    /// first record with `key > threshold` (positional stop — see the
    /// crate docs for why filtering by key would be wrong).
    pub fn prefix_len(&self, ordering: Ordering, threshold: f32) -> Result<usize, HierarchyError> {
        if threshold.is_nan() {
            return Err(HierarchyError::NanThreshold);
        }
        let recs = self
            .records(ordering)
            .ok_or(HierarchyError::MissingOrdering(ordering))?;
        Ok(recs
            .iter()
            .position(|r| r.key > threshold)
            .unwrap_or(recs.len()))
    }

    /// Materialize the simplification at `threshold` by prefix replay on
    /// `base` (which must be the complex the hierarchy was recorded
    /// from, or its wire round-trip).
    pub fn materialize(
        &self,
        base: &MsComplex,
        ordering: Ordering,
        threshold: f32,
    ) -> Result<Materialized, HierarchyError> {
        let k = self.prefix_len(ordering, threshold)?;
        self.materialize_k(base, ordering, k)
    }

    /// Materialize by replaying exactly the first `k` records.
    pub fn materialize_k(
        &self,
        base: &MsComplex,
        ordering: Ordering,
        k: usize,
    ) -> Result<Materialized, HierarchyError> {
        let recs = self
            .records(ordering)
            .ok_or(HierarchyError::MissingOrdering(ordering))?;
        if k > recs.len() {
            return Err(HierarchyError::PrefixOutOfRange { k, len: recs.len() });
        }
        let mut ms = base.clone();
        let mut stats = SimplifyStats::default();
        let mut forwards = Vec::new();
        for (i, r) in recs[..k].iter().enumerate() {
            let fwd = replay_cancellation(
                &mut ms,
                r.upper_addr,
                r.lower_addr,
                self.params.max_parallel_arcs,
                &mut stats,
            )
            .map_err(|source| HierarchyError::Replay { index: i, source })?;
            debug_assert_eq!(fwd, r.forward, "record {i} diverged on replay");
            if let Some(e) = fwd {
                forwards.push(e);
            }
            // same cadence as the live loop; no observable effect, just
            // keeps incidence scans at live degree on long prefixes
            if (i + 1) % 512 == 0 {
                ms.prune_dead_adjacency();
            }
        }
        ms.compact();
        Ok(Materialized {
            complex: ms,
            forwards,
            stats,
            applied: k,
        })
    }
}

/// Path-compress a forward-entry sequence: every dead extremum maps to
/// its live root (or [`DRAIN_ADDR`]). The serial equivalent of the
/// pipeline's distributed pointer jumping, for single-process replay.
pub fn compress_forwards(forwards: &[(u64, u64)]) -> HashMap<u64, u64> {
    let map: HashMap<u64, u64> = forwards.iter().copied().collect();
    let mut resolved: HashMap<u64, u64> = HashMap::with_capacity(map.len());
    for &dead in map.keys() {
        let mut cur = dead;
        let mut hops = 0usize;
        while let Some(&next) = map.get(&cur) {
            cur = next;
            hops += 1;
            assert!(hops <= map.len(), "forward cycle at {dead:#x}");
            if cur == DRAIN_ADDR {
                break;
            }
        }
        resolved.insert(dead, cur);
    }
    resolved
}

/// Rewrite a block's extremum tables through a compressed forward map —
/// the serial equivalent of the pipeline's table rewrite after
/// resolution. Label arrays are untouched: labels index the tables.
pub fn remap_tables(seg: &mut BlockSegmentation, resolved: &HashMap<u64, u64>) {
    for addr in seg.mins.iter_mut().chain(seg.maxs.iter_mut()) {
        if let Some(&t) = resolved.get(addr) {
            *addr = t;
        }
    }
}

/// Per-extremum region sizes from label arrays: how many vertices drain
/// to each minimum and how many voxels climb to each maximum. These are
/// *local* counts — the pipeline sums them across ranks before recording
/// the count ordering.
pub fn region_sizes<'a>(
    segs: impl IntoIterator<Item = &'a BlockSegmentation>,
) -> HashMap<u64, u64> {
    let mut sizes: HashMap<u64, u64> = HashMap::new();
    for seg in segs {
        for &l in &seg.min_label {
            if l != DRAIN_LABEL {
                *sizes.entry(seg.mins[l as usize]).or_insert(0) += 1;
            }
        }
        for &l in &seg.max_label {
            if l != DRAIN_LABEL {
                *sizes.entry(seg.maxs[l as usize]).or_insert(0) += 1;
            }
        }
    }
    sizes.remove(&DRAIN_ADDR);
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_complex::build::build_block_complex;
    use msp_complex::{simplify_forwarding, wire as cwire};
    use msp_grid::{Decomposition, Dims, ScalarField};
    use msp_morse::TraceLimits;

    fn base_complex(seed: u64) -> MsComplex {
        let f = msp_synth::white_noise(Dims::new(9, 9, 9), seed);
        serial(&f)
    }

    fn serial(f: &ScalarField) -> MsComplex {
        let d = Decomposition::bisect(f.dims(), 1);
        let (mut ms, _) =
            build_block_complex(&f.extract_block(d.block(0)), &d, TraceLimits::default());
        ms.compact();
        ms
    }

    fn synthetic_sizes(base: &MsComplex) -> HashMap<u64, u64> {
        base.nodes
            .iter()
            .filter(|n| n.alive && (n.index == 0 || n.index == 3))
            .map(|n| (n.addr, 1 + (n.addr % 53)))
            .collect()
    }

    #[test]
    fn materialize_matches_direct_simplify_bitwise() {
        let base = base_complex(11);
        let h = record(&base, ReplayParams::default(), None).unwrap();
        assert!(h.difference.len() > 4);
        let mid = h.difference[h.difference.len() / 2].key;
        for t in [0.0f32, mid, f32::INFINITY] {
            let got = h.materialize(&base, Ordering::Difference, t).unwrap();
            let mut want = base.clone();
            let mut wfw = Vec::new();
            simplify_forwarding(&mut want, SimplifyParams::up_to(t), Some(&mut wfw)).unwrap();
            want.compact();
            assert_eq!(
                cwire::serialize(&got.complex),
                cwire::serialize(&want),
                "threshold {t}"
            );
            assert_eq!(got.forwards, wfw, "threshold {t}");
        }
    }

    #[test]
    fn materialize_from_wire_round_tripped_base_is_identical() {
        // serving loads the base from the .msc artifact, not from the
        // in-memory pipeline output — the replay must not care
        let base = base_complex(29);
        let loaded = cwire::deserialize(&cwire::serialize(&base)).unwrap();
        let h = record(&base, ReplayParams::default(), None).unwrap();
        let t = h.difference[h.difference.len() / 3].key;
        let a = h.materialize(&base, Ordering::Difference, t).unwrap();
        let b = h.materialize(&loaded, Ordering::Difference, t).unwrap();
        assert_eq!(cwire::serialize(&a.complex), cwire::serialize(&b.complex));
        assert_eq!(a.forwards, b.forwards);
    }

    #[test]
    fn count_ordering_records_and_replays() {
        let base = base_complex(37);
        let sizes = synthetic_sizes(&base);
        let h = record(&base, ReplayParams::default(), Some(sizes.clone())).unwrap();
        let recs = h.records(Ordering::Count).unwrap();
        assert!(!recs.is_empty());
        // count keys are region sizes, not persistences
        assert!(recs
            .iter()
            .any(|r| r.forward.is_some() && r.key != r.persistence));
        // materializing at a mid count threshold == direct keyed run
        let mid = recs[recs.len() / 2].key;
        let got = h.materialize(&base, Ordering::Count, mid).unwrap();
        let mut want = base.clone();
        simplify_with(
            &mut want,
            SimplifyParams {
                threshold: mid,
                max_new_arcs: None,
                max_parallel_arcs: Some(2),
            },
            &mut CancelOrder::Count(sizes),
            None,
            None,
        )
        .unwrap();
        want.compact();
        assert_eq!(cwire::serialize(&got.complex), cwire::serialize(&want));
    }

    #[test]
    fn prefix_len_is_positional_not_filtered() {
        let h = SlotHierarchy {
            params: ReplayParams::default(),
            // non-monotone keys: a later record with a smaller key must
            // not extend the prefix
            difference: [0.1f32, 0.3, 0.2, 0.5]
                .iter()
                .enumerate()
                .map(|(i, &k)| CancelRecord {
                    upper_addr: 10 + i as u64,
                    lower_addr: 20 + i as u64,
                    persistence: k,
                    key: k,
                    forward: None,
                })
                .collect(),
            count: None,
        };
        assert_eq!(h.prefix_len(Ordering::Difference, 0.25).unwrap(), 1);
        assert_eq!(h.prefix_len(Ordering::Difference, 0.05).unwrap(), 0);
        assert_eq!(
            h.prefix_len(Ordering::Difference, f32::INFINITY).unwrap(),
            4
        );
        assert_eq!(
            h.prefix_len(Ordering::Difference, f32::NAN),
            Err(HierarchyError::NanThreshold)
        );
        assert_eq!(
            h.prefix_len(Ordering::Count, 1.0),
            Err(HierarchyError::MissingOrdering(Ordering::Count))
        );
    }

    #[test]
    fn replay_on_mismatched_base_is_typed_error() {
        let base = base_complex(11);
        let other = base_complex(5150);
        let h = record(&base, ReplayParams::default(), None).unwrap();
        let err = h
            .materialize(&other, Ordering::Difference, f32::INFINITY)
            .unwrap_err();
        assert!(matches!(err, HierarchyError::Replay { .. }), "{err}");
    }

    #[test]
    fn compress_and_remap_follow_chains() {
        let forwards = vec![(1u64, 2u64), (2, 3), (7, DRAIN_ADDR)];
        let resolved = compress_forwards(&forwards);
        assert_eq!(resolved[&1], 3);
        assert_eq!(resolved[&2], 3);
        assert_eq!(resolved[&7], DRAIN_ADDR);
    }

    #[test]
    fn ordering_round_trips_through_strings() {
        for o in Ordering::ALL {
            assert_eq!(o.key().parse::<Ordering>().unwrap(), o);
        }
        assert!("probability".parse::<Ordering>().is_err());
    }
}
