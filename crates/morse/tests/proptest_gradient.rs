//! Property-based tests of the discrete gradient: on arbitrary small
//! random fields and decompositions, the assignment must be a valid
//! acyclic matching with χ = 1 per block, owner-respecting pairs, and
//! bitwise-identical shared-face bytes across blocks.

use msp_grid::{Decomposition, Dims, ScalarField};
use msp_morse::lower_star::{assign_gradient, assign_gradient_par};
use msp_morse::validate::{
    boundary_consistent, check_valid, euler_characteristic, pairs_respect_owners,
};
use msp_morse::{assign_gradient_kernel, trace_all_arcs, trace_all_arcs_kernel};
use msp_morse::{Kernel, TraceLimits};
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = ScalarField> {
    ((3u32..8, 3u32..8, 3u32..8), 0u64..1_000_000)
        .prop_map(|((x, y, z), seed)| msp_synth::white_noise(Dims::new(x, y, z), seed))
}

/// Smooth analytic fields: many regular cells, few critical ones — the
/// opposite stress profile from noise.
fn arb_sinusoid_field() -> impl Strategy<Value = ScalarField> {
    ((4u32..9, 4u32..9, 4u32..9), 1u32..4).prop_map(|((x, y, z), complexity)| {
        msp_synth::sinusoid_dims(Dims::new(x, y, z), complexity)
    })
}

/// Union of the three field families the flat-vs-heap contract must hold
/// on: white noise (dense criticality), quantized plateaus (SoS
/// tie-breaking), smooth sinusoids (long V-paths).
fn arb_any_field() -> impl Strategy<Value = ScalarField> {
    prop_oneof![arb_field(), arb_plateau_field(), arb_sinusoid_field()]
}

/// Quantized fields create plateaus, stressing simulation of simplicity.
fn arb_plateau_field() -> impl Strategy<Value = ScalarField> {
    ((3u32..8, 3u32..8, 3u32..8), 0u64..1_000_000, 2u32..5).prop_map(|((x, y, z), seed, levels)| {
        let dims = Dims::new(x, y, z);
        let noise = msp_synth::white_noise(dims, seed);
        let data: Vec<f32> = noise
            .data()
            .iter()
            .map(|v| (v * levels as f32).floor())
            .collect();
        ScalarField::new(dims, data)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serial_gradient_valid(field in arb_field()) {
        let d = Decomposition::bisect(field.dims(), 1);
        let g = assign_gradient(&field.extract_block(d.block(0)), &d);
        let report = check_valid(&g);
        prop_assert!(report.is_ok(), "{:?}", report);
        prop_assert_eq!(euler_characteristic(&g), 1);
    }

    #[test]
    fn plateau_gradient_valid(field in arb_plateau_field()) {
        let d = Decomposition::bisect(field.dims(), 1);
        let g = assign_gradient(&field.extract_block(d.block(0)), &d);
        let report = check_valid(&g);
        prop_assert!(report.is_ok(), "{:?}", report);
        prop_assert_eq!(euler_characteristic(&g), 1);
    }

    #[test]
    fn blocked_gradient_valid_and_consistent(
        field in arb_field(),
        blocks in 2u32..5,
    ) {
        let dims = field.dims();
        let cells = (dims.nx as u64 - 1) * (dims.ny as u64 - 1) * (dims.nz as u64 - 1);
        prop_assume!(cells >= blocks as u64 * 4);
        let d = match std::panic::catch_unwind(|| Decomposition::bisect(dims, blocks)) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        let grads: Vec<_> = d
            .blocks()
            .iter()
            .map(|b| assign_gradient(&field.extract_block(b), &d))
            .collect();
        for (i, g) in grads.iter().enumerate() {
            let report = check_valid(g);
            prop_assert!(report.is_ok(), "block {i}: {:?}", report);
            prop_assert_eq!(euler_characteristic(g), 1, "block {}", i);
            prop_assert!(pairs_respect_owners(g, &d), "block {}", i);
        }
        for a in 0..grads.len() {
            for b in (a + 1)..grads.len() {
                prop_assert!(
                    boundary_consistent(&grads[a], &grads[b]),
                    "blocks {a} and {b} disagree on shared cells"
                );
            }
        }
    }

    #[test]
    fn gradient_deterministic(field in arb_field()) {
        let d = Decomposition::bisect(field.dims(), 1);
        let bf = field.extract_block(d.block(0));
        let g1 = assign_gradient(&bf, &d);
        let g2 = assign_gradient(&bf, &d);
        for c in g1.bbox().iter() {
            prop_assert_eq!(g1.raw(c), g2.raw(c));
        }
    }

    #[test]
    fn parallel_gradient_bit_identical_to_serial(
        field in arb_field(),
        blocks in 1u32..5,
        threads in 2usize..9,
    ) {
        let dims = field.dims();
        let cells = (dims.nx as u64 - 1) * (dims.ny as u64 - 1) * (dims.nz as u64 - 1);
        prop_assume!(cells >= blocks as u64 * 4);
        let d = match std::panic::catch_unwind(|| Decomposition::bisect(dims, blocks)) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        for b in d.blocks() {
            let bf = field.extract_block(b);
            let serial = assign_gradient(&bf, &d);
            let par = assign_gradient_par(&bf, &d, threads);
            // raw gradient bytes, critical cells and traced arcs (with
            // geometry) must all be byte-identical to the serial path
            prop_assert_eq!(
                par.bytes(), serial.bytes(),
                "block {} with {} threads diverged from serial", b.id, threads
            );
            prop_assert_eq!(par.critical_cells(), serial.critical_cells());
            let (arcs_s, st_s) = trace_all_arcs(&serial, TraceLimits::default());
            let (arcs_p, st_p) = trace_all_arcs(&par, TraceLimits::default());
            prop_assert_eq!(arcs_s, arcs_p, "arc stores diverged");
            prop_assert_eq!(st_s.arcs, st_p.arcs);
            prop_assert_eq!(st_s.path_cells_total, st_p.path_cells_total);
        }
    }

    #[test]
    fn flat_kernel_bit_identical_to_heap(
        field in arb_any_field(),
        blocks in 1u32..4,
        threads in 1usize..9,
    ) {
        // the rework contract: the flat SoA kernels reproduce the
        // two-heap gradient bytes and the recursive tracer's arc store
        // exactly, on every block and under every slab split
        let dims = field.dims();
        let cells = (dims.nx as u64 - 1) * (dims.ny as u64 - 1) * (dims.nz as u64 - 1);
        prop_assume!(cells >= blocks as u64 * 4);
        let d = match std::panic::catch_unwind(|| Decomposition::bisect(dims, blocks)) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        for b in d.blocks() {
            let bf = field.extract_block(b);
            let (heap, _) = assign_gradient_kernel(&bf, &d, 1, Kernel::Heap);
            let (flat, stats) = assign_gradient_kernel(&bf, &d, threads, Kernel::Flat);
            prop_assert_eq!(
                flat.bytes(), heap.bytes(),
                "block {} flat kernel with {} threads diverged from heap", b.id, threads
            );
            prop_assert_eq!(stats.cells, heap.bbox().len());
            let (arcs_h, st_h) = trace_all_arcs_kernel(
                &heap, TraceLimits::default(), 1, Kernel::Heap);
            let (arcs_f, st_f) = trace_all_arcs_kernel(
                &flat, TraceLimits::default(), threads, Kernel::Flat);
            prop_assert_eq!(arcs_h, arcs_f, "block {} arc stores diverged", b.id);
            prop_assert_eq!(st_h.arcs, st_f.arcs);
            prop_assert_eq!(st_h.path_cells_total, st_f.path_cells_total);
            prop_assert_eq!(st_h.truncated_nodes, st_f.truncated_nodes);
        }
    }

    #[test]
    fn flat_kernel_respects_trace_truncation(
        field in arb_field(),
        cap in 1usize..4,
    ) {
        // truncation limits must bind identically in both tracers
        let d = Decomposition::bisect(field.dims(), 1);
        let bf = field.extract_block(d.block(0));
        let limits = TraceLimits { max_paths_per_node: cap };
        let (heap, _) = assign_gradient_kernel(&bf, &d, 1, Kernel::Heap);
        let (arcs_h, st_h) = trace_all_arcs_kernel(&heap, limits, 1, Kernel::Heap);
        let (arcs_f, st_f) = trace_all_arcs_kernel(&heap, limits, 4, Kernel::Flat);
        prop_assert_eq!(arcs_h, arcs_f);
        prop_assert_eq!(st_h.arcs, st_f.arcs);
        prop_assert_eq!(st_h.truncated_nodes, st_f.truncated_nodes);
    }

    #[test]
    fn parallel_gradient_bit_identical_on_plateaus(
        field in arb_plateau_field(),
        threads in 2usize..9,
    ) {
        // plateaus exercise the SoS tie-breaking; slab splits must not
        // perturb it
        let d = Decomposition::bisect(field.dims(), 1);
        let bf = field.extract_block(d.block(0));
        let serial = assign_gradient(&bf, &d);
        let par = assign_gradient_par(&bf, &d, threads);
        prop_assert_eq!(par.bytes(), serial.bytes());
    }
}
