//! Property-based tests of the discrete gradient: on arbitrary small
//! random fields and decompositions, the assignment must be a valid
//! acyclic matching with χ = 1 per block, owner-respecting pairs, and
//! bitwise-identical shared-face bytes across blocks.

use msp_grid::{Decomposition, Dims, ScalarField};
use msp_morse::lower_star::{assign_gradient, assign_gradient_par};
use msp_morse::validate::{
    boundary_consistent, check_valid, euler_characteristic, pairs_respect_owners,
};
use msp_morse::{trace_all_arcs, TraceLimits};
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = ScalarField> {
    ((3u32..8, 3u32..8, 3u32..8), 0u64..1_000_000)
        .prop_map(|((x, y, z), seed)| msp_synth::white_noise(Dims::new(x, y, z), seed))
}

/// Quantized fields create plateaus, stressing simulation of simplicity.
fn arb_plateau_field() -> impl Strategy<Value = ScalarField> {
    ((3u32..8, 3u32..8, 3u32..8), 0u64..1_000_000, 2u32..5).prop_map(|((x, y, z), seed, levels)| {
        let dims = Dims::new(x, y, z);
        let noise = msp_synth::white_noise(dims, seed);
        let data: Vec<f32> = noise
            .data()
            .iter()
            .map(|v| (v * levels as f32).floor())
            .collect();
        ScalarField::new(dims, data)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serial_gradient_valid(field in arb_field()) {
        let d = Decomposition::bisect(field.dims(), 1);
        let g = assign_gradient(&field.extract_block(d.block(0)), &d);
        let report = check_valid(&g);
        prop_assert!(report.is_ok(), "{:?}", report);
        prop_assert_eq!(euler_characteristic(&g), 1);
    }

    #[test]
    fn plateau_gradient_valid(field in arb_plateau_field()) {
        let d = Decomposition::bisect(field.dims(), 1);
        let g = assign_gradient(&field.extract_block(d.block(0)), &d);
        let report = check_valid(&g);
        prop_assert!(report.is_ok(), "{:?}", report);
        prop_assert_eq!(euler_characteristic(&g), 1);
    }

    #[test]
    fn blocked_gradient_valid_and_consistent(
        field in arb_field(),
        blocks in 2u32..5,
    ) {
        let dims = field.dims();
        let cells = (dims.nx as u64 - 1) * (dims.ny as u64 - 1) * (dims.nz as u64 - 1);
        prop_assume!(cells >= blocks as u64 * 4);
        let d = match std::panic::catch_unwind(|| Decomposition::bisect(dims, blocks)) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        let grads: Vec<_> = d
            .blocks()
            .iter()
            .map(|b| assign_gradient(&field.extract_block(b), &d))
            .collect();
        for (i, g) in grads.iter().enumerate() {
            let report = check_valid(g);
            prop_assert!(report.is_ok(), "block {i}: {:?}", report);
            prop_assert_eq!(euler_characteristic(g), 1, "block {}", i);
            prop_assert!(pairs_respect_owners(g, &d), "block {}", i);
        }
        for a in 0..grads.len() {
            for b in (a + 1)..grads.len() {
                prop_assert!(
                    boundary_consistent(&grads[a], &grads[b]),
                    "blocks {a} and {b} disagree on shared cells"
                );
            }
        }
    }

    #[test]
    fn gradient_deterministic(field in arb_field()) {
        let d = Decomposition::bisect(field.dims(), 1);
        let bf = field.extract_block(d.block(0));
        let g1 = assign_gradient(&bf, &d);
        let g2 = assign_gradient(&bf, &d);
        for c in g1.bbox().iter() {
            prop_assert_eq!(g1.raw(c), g2.raw(c));
        }
    }

    #[test]
    fn parallel_gradient_bit_identical_to_serial(
        field in arb_field(),
        blocks in 1u32..5,
        threads in 2usize..9,
    ) {
        let dims = field.dims();
        let cells = (dims.nx as u64 - 1) * (dims.ny as u64 - 1) * (dims.nz as u64 - 1);
        prop_assume!(cells >= blocks as u64 * 4);
        let d = match std::panic::catch_unwind(|| Decomposition::bisect(dims, blocks)) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        for b in d.blocks() {
            let bf = field.extract_block(b);
            let serial = assign_gradient(&bf, &d);
            let par = assign_gradient_par(&bf, &d, threads);
            // raw gradient bytes, critical cells and traced arcs (with
            // geometry) must all be byte-identical to the serial path
            prop_assert_eq!(
                par.bytes(), serial.bytes(),
                "block {} with {} threads diverged from serial", b.id, threads
            );
            prop_assert_eq!(par.critical_cells(), serial.critical_cells());
            let (arcs_s, st_s) = trace_all_arcs(&serial, TraceLimits::default());
            let (arcs_p, st_p) = trace_all_arcs(&par, TraceLimits::default());
            prop_assert_eq!(arcs_s, arcs_p, "arc stores diverged");
            prop_assert_eq!(st_s.arcs, st_p.arcs);
            prop_assert_eq!(st_s.path_cells_total, st_p.path_cells_total);
        }
    }

    #[test]
    fn parallel_gradient_bit_identical_on_plateaus(
        field in arb_plateau_field(),
        threads in 2usize..9,
    ) {
        // plateaus exercise the SoS tie-breaking; slab splits must not
        // perturb it
        let d = Decomposition::bisect(field.dims(), 1);
        let bf = field.extract_block(d.block(0));
        let serial = assign_gradient(&bf, &d);
        let par = assign_gradient_par(&bf, &d, threads);
        prop_assert_eq!(par.bytes(), serial.bytes());
    }
}
