//! 2D (flat-grid) support: the refined-grid machinery is dimension
//! generic, so an `nz = 1` grid yields the 2D Morse-Smale complex the
//! paper's background section (Fig 2) illustrates — minima, saddles and
//! maxima of a height field connected by arcs. These tests pin that down.

use msp_grid::{Decomposition, Dims, ScalarField};
use msp_morse::validate::{boundary_consistent, check_valid, euler_characteristic};
use msp_morse::{assign_gradient, trace_all_arcs, TraceLimits};

fn terrain(n: u32) -> ScalarField {
    ScalarField::from_fn(Dims::new(n, n, 1), |x, y, _| {
        let (u, v) = (x as f32 / (n - 1) as f32, y as f32 / (n - 1) as f32);
        (3.2 * std::f32::consts::PI * u).sin() * (2.7 * std::f32::consts::PI * v).cos()
            + 0.001 * ((x * 31 + y * 17) % 13) as f32
    })
}

#[test]
fn two_dimensional_fields_work() {
    let dims = Dims::new(9, 9, 1);
    let f = ScalarField::from_fn(dims, |x, y, _| {
        ((x as f32 * 0.9).sin() * (y as f32 * 0.8).cos()) + 0.01 * (x + y) as f32
    });
    let d = Decomposition::bisect(dims, 2);
    for b in d.blocks() {
        let g = assign_gradient(&f.extract_block(b), &d);
        let r = check_valid(&g);
        assert!(r.is_ok(), "{:?}", r);
        assert_eq!(euler_characteristic(&g), 1);
        let c = g.census();
        assert_eq!(c[3], 0, "no voxels in 2D");
    }
}

#[test]
fn terrain_has_2d_morse_structure() {
    let f = terrain(25);
    let d = Decomposition::bisect(f.dims(), 1);
    let g = assign_gradient(&f.extract_block(d.block(0)), &d);
    let c = g.census();
    // a wavy terrain has multiple maxima (2-cells) and saddles (1-cells)
    assert!(c[2] >= 2, "expected interior maxima: {:?}", c);
    assert!(c[1] >= 2, "expected saddles: {:?}", c);
    assert_eq!(c[3], 0);
    assert_eq!(euler_characteristic(&g), 1);
    // arcs alternate saddle-extremum correctly in 2D
    let (arcs, _) = trace_all_arcs(&g, TraceLimits::default());
    assert!(!arcs.is_empty());
    for a in arcs.iter() {
        assert!(a.upper.cell_dim() <= 2);
        assert_eq!(a.upper.cell_dim(), a.lower.cell_dim() + 1);
    }
}

#[test]
fn two_d_blocked_boundary_consistency() {
    let f = terrain(17);
    let d = Decomposition::bisect(f.dims(), 4);
    let grads: Vec<_> = d
        .blocks()
        .iter()
        .map(|b| assign_gradient(&f.extract_block(b), &d))
        .collect();
    for a in 0..grads.len() {
        assert!(check_valid(&grads[a]).is_ok());
        for b in (a + 1)..grads.len() {
            assert!(boundary_consistent(&grads[a], &grads[b]));
        }
    }
}

#[test]
fn two_d_pipeline_end_to_end() {
    use msp_complex::build::build_block_complex;
    use msp_complex::glue::glue_all;
    use msp_complex::{simplify, SimplifyParams};

    let f = terrain(17);
    let d = Decomposition::bisect(f.dims(), 4);
    let mut cs: Vec<_> = d
        .blocks()
        .iter()
        .map(|b| {
            let (mut ms, _) = build_block_complex(&f.extract_block(b), &d, TraceLimits::default());
            simplify(&mut ms, SimplifyParams::up_to(0.01)).unwrap();
            ms.compact();
            ms
        })
        .collect();
    let mut root = cs.remove(0);
    let rest = std::mem::take(&mut cs);
    glue_all(&mut root, &rest, &d).unwrap();
    simplify(&mut root, SimplifyParams::up_to(0.01)).unwrap();
    root.check_integrity().unwrap();
    let c = root.node_census();
    assert_eq!(c[0] as i64 - c[1] as i64 + c[2] as i64 - c[3] as i64, 1);
    assert!(root.nodes.iter().filter(|n| n.alive).all(|n| !n.boundary));
}
