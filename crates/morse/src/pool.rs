//! Process-wide free lists for the local stage's large scratch buffers.
//!
//! The slab-parallel gradient allocates one byte buffer per slab per
//! block per run (plus one `u32` key array per block for the flat
//! kernel). `par_map` spawns fresh scoped threads each call, so
//! thread-locals die with them — a small mutex-guarded global free list
//! is what actually survives across calls. The mutex is touched twice
//! per *slab* (take/put around a multi-millisecond sweep), so contention
//! is unmeasurable; in exchange the threads≥2 path stops paying a fresh
//! `vec![0; plane·rows]` (page faults included) per slab per run, which
//! was the single largest cause of the threads=2 regression recorded in
//! `results/BENCH_local.json` before this rework.
//!
//! Buffers are handed out zeroed (`u8`) or cleared (`u32`), and the pool
//! is capped so pathological fan-outs cannot hoard memory.

use std::sync::Mutex;

const POOL_CAP: usize = 64;

static U8_POOL: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());
static U32_POOL: Mutex<Vec<Vec<u32>>> = Mutex::new(Vec::new());

/// A zeroed byte buffer of exactly `len`. The flag reports whether a
/// pooled buffer's capacity sufficed (no allocation happened).
pub(crate) fn take_u8(len: usize) -> (Vec<u8>, bool) {
    let pooled = U8_POOL.lock().expect("u8 pool poisoned").pop();
    match pooled {
        Some(mut v) => {
            let fit = v.capacity() >= len;
            v.clear();
            v.resize(len, 0);
            (v, fit)
        }
        None => (vec![0; len], false),
    }
}

/// Return a byte buffer to the pool (dropped if the pool is full).
pub(crate) fn put_u8(v: Vec<u8>) {
    let mut p = U8_POOL.lock().expect("u8 pool poisoned");
    if p.len() < POOL_CAP {
        p.push(v);
    }
}

/// A cleared (length-0) `u32` buffer; the caller fills it. The flag
/// reports whether a pooled buffer's capacity covered `len`.
pub(crate) fn take_u32(len: usize) -> (Vec<u32>, bool) {
    let pooled = U32_POOL.lock().expect("u32 pool poisoned").pop();
    match pooled {
        Some(mut v) => {
            let fit = v.capacity() >= len;
            v.clear();
            v.reserve(len);
            (v, fit)
        }
        None => (Vec::with_capacity(len), false),
    }
}

/// Return a `u32` buffer to the pool (dropped if the pool is full).
pub(crate) fn put_u32(v: Vec<u32>) {
    let mut p = U32_POOL.lock().expect("u32 pool poisoned");
    if p.len() < POOL_CAP {
        p.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_round_trip_reuses_and_zeroes() {
        let (mut a, _) = take_u8(64);
        a.iter_mut().for_each(|b| *b = 0xff);
        let cap = a.capacity();
        put_u8(a);
        // immediately taking a same-or-smaller buffer must reuse and be
        // zeroed; other tests share the pool, so accept any reused buffer
        let (b, _reused) = take_u8(32);
        assert_eq!(b.len(), 32);
        assert!(
            b.iter().all(|&x| x == 0),
            "pooled buffer must come back zeroed"
        );
        assert!(cap >= 32);
        put_u8(b);
    }

    #[test]
    fn u32_round_trip_clears() {
        let (mut a, _) = take_u32(16);
        a.extend_from_slice(&[1, 2, 3]);
        put_u32(a);
        let (b, _) = take_u32(8);
        assert!(b.is_empty(), "u32 buffers are handed out cleared");
        assert!(b.capacity() >= 8);
        put_u32(b);
    }
}
