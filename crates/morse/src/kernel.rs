//! Gradient/trace kernel selection and per-call statistics.
//!
//! Two implementations of the local stage coexist: the original
//! two-priority-queue lower-star expansion plus recursive tracing
//! (`heap`), kept as a differential reference, and the flat
//! structure-of-arrays kernels (`flat`, the default) that compute the
//! same bytes without heaps, `CellKey` materialization or per-vertex
//! allocation. `MSP_KERNEL=heap` switches every dispatching entry point
//! back to the old path for one release; the proptest suite pins the two
//! bit-identical.

use std::sync::OnceLock;

/// Which implementation of the hot local-stage kernels to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Flat SoA kernels: branch-light lower-star membership over
    /// precomputed offset tables, packed-u64 in-star keys, batched
    /// iterative V-path tracing. The production default.
    #[default]
    Flat,
    /// The original two-heap lower-star expansion and one-path-at-a-time
    /// recursive tracing, kept runnable as a differential reference.
    Heap,
}

impl Kernel {
    /// Stable name used in bench tables and JSON documents.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Flat => "flat",
            Kernel::Heap => "heap",
        }
    }
}

static ACTIVE: OnceLock<Kernel> = OnceLock::new();

/// The process-wide kernel selection: `MSP_KERNEL=heap` re-enables the
/// old path, anything else (including unset) means [`Kernel::Flat`].
/// Read once and cached — benches that want both sides in one process
/// pass an explicit [`Kernel`] to the `*_kernel` entry points instead.
pub fn active_kernel() -> Kernel {
    *ACTIVE.get_or_init(|| match std::env::var("MSP_KERNEL") {
        Ok(v) if v == "heap" => Kernel::Heap,
        Ok(v) if v == "flat" || v.is_empty() => Kernel::Flat,
        Ok(v) => {
            eprintln!("MSP_KERNEL={v:?} not recognized (expected flat|heap); using flat");
            Kernel::Flat
        }
        Err(_) => Kernel::Flat,
    })
}

/// Allocation/throughput accounting for one gradient-kernel call, fed
/// into the telemetry counters (`kernel_cells`, `scratch_reuse`,
/// `kernel_allocs`) by the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Refined cells assigned (the throughput denominator for
    /// `grad_cells_per_s`).
    pub cells: u64,
    /// Pooled scratch buffers reused without a fresh allocation.
    pub scratch_reuse: u64,
    /// Pooled scratch buffers that had to be allocated (pool misses —
    /// zero in steady state).
    pub kernel_allocs: u64,
}

impl KernelStats {
    /// Record one pool take: `reused` says whether an existing buffer's
    /// capacity sufficed.
    pub(crate) fn tally(&mut self, reused: bool) {
        if reused {
            self.scratch_reuse += 1;
        } else {
            self.kernel_allocs += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Kernel::Flat.name(), "flat");
        assert_eq!(Kernel::Heap.name(), "heap");
        assert_eq!(Kernel::default(), Kernel::Flat);
    }

    #[test]
    fn stats_tally() {
        let mut s = KernelStats::default();
        s.tally(true);
        s.tally(true);
        s.tally(false);
        assert_eq!(s.scratch_reuse, 2);
        assert_eq!(s.kernel_allocs, 1);
    }
}
