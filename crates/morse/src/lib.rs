//! # msp-morse
//!
//! Discrete-Morse-theory substrate: computing a discrete gradient vector
//! field on a block of a structured grid and tracing its V-paths.
//!
//! The paper (§IV-C) computes the gradient with the approach of Gyulassy
//! et al. [10], pairing cells in the direction of steepest descent with
//! simulation of simplicity, and **restricts pairing on shared block
//! faces** so that neighbouring blocks produce identical boundary
//! gradients — the property that later lets Morse-Smale complexes be
//! glued. This crate provides:
//!
//! * [`gradient::GradientField`] — the paper's one-byte-per-cell refined
//!   grid encoding of pairing direction, criticality and assignment;
//! * [`lower_star::assign_gradient`] — the production algorithm:
//!   per-vertex lower-star homotopy expansion, stratified by the owner
//!   sets of the decomposition (the boundary restriction);
//! * [`flat`] (internal) — the flat structure-of-arrays kernel behind
//!   the default [`Kernel::Flat`] path: branch-light lower-star
//!   membership over precomputed offset tables, packed-`u64` in-star
//!   keys, zero allocations per vertex;
//! * [`kernel`] — kernel selection (`MSP_KERNEL=flat|heap`) and the
//!   [`KernelStats`] fed into telemetry;
//! * [`greedy::assign_gradient_greedy`] — the dimension-sorted greedy
//!   assignment of [10], kept as an ablation baseline;
//! * [`trace`] — V-path tracing from critical cells, producing the arcs
//!   and geometric embeddings that the MS complex is built from;
//! * [`validate`] — structural validity checks (pairing legality,
//!   acyclicity, Euler characteristic, cross-block boundary equality)
//!   used heavily by the test suites.

mod flat;
pub mod gradient;
pub mod greedy;
pub mod kernel;
pub mod lower_star;
mod pool;
pub mod trace;
pub mod validate;

pub use gradient::GradientField;
pub use kernel::{active_kernel, Kernel, KernelStats};
pub use lower_star::{assign_gradient, assign_gradient_kernel, assign_gradient_par};
pub use trace::{
    trace_all_arcs, trace_all_arcs_kernel, ArcStore, TraceLimits, TraceStats, TracedArc,
};
