//! Dimension-agnostic greedy gradient assignment (ablation baseline).
//!
//! This is a queue-driven variant of the classic greedy construction of
//! Gyulassy et al. [10] (a coreduction-style matching): cells are visited
//! in increasing simulation-of-simplicity order; a cell is paired as the
//! head of a vector as soon as it has exactly one unassigned facet (the
//! steepest available expansion), and the smallest cell with no pairing
//! move left becomes critical. The same owner-set restriction as the
//! production algorithm applies, so block-boundary consistency holds for
//! this baseline too.
//!
//! Compared with the stratified lower-star algorithm
//! ([`crate::lower_star::assign_gradient`]) this variant keeps one global
//! priority queue over all cells of the block instead of 27-cell local
//! queues, which costs `O(n log n)` with a much larger constant — the
//! `gradient` Criterion bench quantifies the gap.

use crate::gradient::GradientField;
use msp_grid::decomp::Decomposition;
use msp_grid::field::{BlockField, CellKey};
use msp_grid::topology::{cofacets, facets};
use msp_grid::RCoord;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Compute the discrete gradient with the greedy global-queue baseline.
pub fn assign_gradient_greedy(field: &BlockField, decomp: &Decomposition) -> GradientField {
    let block = *field.block();
    let bbox = block.refined_box();
    let block_id = block.id;
    let mut grad = GradientField::new(bbox);

    let same_group = |a: RCoord, b: RCoord| -> bool {
        // fast path: both interior to the block
        if decomp.interior_to(block_id, a) && decomp.interior_to(block_id, b) {
            return true;
        }
        decomp.owners(a) == decomp.owners(b)
    };
    // A pair must stay within one lower star (equal maximal vertex):
    // this is the steepest-descent constraint of [10] — without it the
    // matching would collapse across level sets and lose real features.
    let same_star = |a: RCoord, b: RCoord| -> bool {
        field.cell_key(a).max_vertex() == field.cell_key(b).max_vertex()
    };
    let count_unassigned = |grad: &GradientField, c: RCoord| -> usize {
        facets(c, &bbox)
            .filter(|&(_, f)| !grad.is_assigned(f) && same_group(c, f) && same_star(c, f))
            .count()
    };

    let mut pq_one: BinaryHeap<Reverse<(CellKey, RCoord)>> = BinaryHeap::new();
    let mut pq_zero: BinaryHeap<Reverse<(CellKey, RCoord)>> = BinaryHeap::new();
    for c in bbox.iter() {
        let key = field.cell_key(c);
        if count_unassigned(&grad, c) == 1 {
            pq_one.push(Reverse((key, c)));
        } else {
            pq_zero.push(Reverse((key, c)));
        }
    }

    let notify =
        |grad: &GradientField, pq_one: &mut BinaryHeap<Reverse<(CellKey, RCoord)>>, c: RCoord| {
            for (_, cf) in cofacets(c, &bbox) {
                if !grad.is_assigned(cf)
                    && same_group(c, cf)
                    && same_star(c, cf)
                    && count_unassigned(grad, cf) == 1
                {
                    pq_one.push(Reverse((field.cell_key(cf), cf)));
                }
            }
        };

    loop {
        if let Some(Reverse((key, c))) = pq_one.pop() {
            if grad.is_assigned(c) {
                continue;
            }
            let cnt = count_unassigned(&grad, c);
            if cnt == 0 {
                pq_zero.push(Reverse((key, c)));
                continue;
            }
            debug_assert_eq!(cnt, 1);
            let alpha = facets(c, &bbox)
                .map(|(_, f)| f)
                .find(|&f| !grad.is_assigned(f) && same_group(c, f) && same_star(c, f))
                .unwrap();
            grad.pair(alpha, c);
            notify(&grad, &mut pq_one, c);
            notify(&grad, &mut pq_one, alpha);
            continue;
        }
        if let Some(Reverse((key, c))) = pq_zero.pop() {
            if grad.is_assigned(c) {
                continue;
            }
            let cnt = count_unassigned(&grad, c);
            if cnt == 1 {
                pq_one.push(Reverse((key, c)));
                continue;
            }
            // By the time pq_one is drained, the popped minimum unassigned
            // cell cannot have an unassigned facet: a facet's key is a
            // strict lexicographic prefix-subset of its cofacet's key, so
            // any unassigned facet would have popped first.
            assert_eq!(
                cnt, 0,
                "zero-queue popped a cell with unassigned facets — \
                 the SoS cell order was violated"
            );
            grad.mark_critical(c);
            notify(&grad, &mut pq_one, c);
            continue;
        }
        break;
    }
    debug_assert_eq!(grad.n_unassigned(), 0);
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{boundary_consistent, check_valid, euler_characteristic};
    use msp_grid::Dims;

    #[test]
    fn greedy_valid_on_noise() {
        let dims = Dims::new(7, 7, 7);
        let f = msp_synth::white_noise(dims, 13);
        let d = Decomposition::bisect(dims, 1);
        let g = assign_gradient_greedy(&f.extract_block(d.block(0)), &d);
        let report = check_valid(&g);
        assert!(report.is_ok(), "{:?}", report);
        assert_eq!(euler_characteristic(&g), 1);
    }

    #[test]
    fn greedy_boundary_consistent() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 77);
        let d = Decomposition::bisect(dims, 4);
        let grads: Vec<_> = d
            .blocks()
            .iter()
            .map(|b| assign_gradient_greedy(&f.extract_block(b), &d))
            .collect();
        for a in 0..grads.len() {
            for b in (a + 1)..grads.len() {
                assert!(boundary_consistent(&grads[a], &grads[b]));
            }
        }
    }

    #[test]
    fn greedy_and_lower_star_agree_on_census_scale() {
        // the two algorithms need not produce identical gradients, but
        // both must satisfy chi = 1 and have comparable critical counts
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::gaussian_bumps(dims, 2, 0.15, 3);
        let d = Decomposition::bisect(dims, 1);
        let bf = f.extract_block(d.block(0));
        let ls = crate::lower_star::assign_gradient(&bf, &d);
        let gr = assign_gradient_greedy(&bf, &d);
        assert_eq!(euler_characteristic(&ls), 1);
        assert_eq!(euler_characteristic(&gr), 1);
        let (a, b): (u64, u64) = (ls.census().iter().sum(), gr.census().iter().sum());
        assert!(a <= b * 4 && b <= a * 4, "census scale: {a} vs {b}");
    }
}
