//! V-path tracing: extracting the arcs of the MS complex 1-skeleton from
//! a discrete gradient field (paper §IV-D).
//!
//! "The finest-scale MS complex is computed by tracing V-paths in the
//! discrete gradient field from critical cells. … V-paths are traced
//! downwards from each node, and an arc is added to the MS complex for
//! every path terminating at a critical cell. The list of cells in the
//! V-path forms the geometric embedding of the arc."
//!
//! Paths are guaranteed to terminate inside the block because the
//! boundary restriction prevents gradient arrows from crossing block
//! faces outward. Tracing branches (a descending path may split at every
//! head cell), so one critical cell can produce many arcs, including
//! multiple arcs to the *same* destination — the multiplicity matters for
//! cancellation legality and is preserved.

use crate::gradient::GradientField;
use msp_grid::RCoord;

/// One traced arc: from a critical `upper` cell of index `d` down to a
/// critical `lower` cell of index `d − 1`, with the full V-path as its
/// geometric embedding (`geom[0] == upper`, `geom.last() == lower`).
/// A borrowed view into an [`ArcStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedArc<'a> {
    pub upper: RCoord,
    pub lower: RCoord,
    pub geom: &'a [RCoord],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ArcRec {
    upper: RCoord,
    lower: RCoord,
    start: u32,
    len: u32,
}

/// Arena-backed storage for traced arcs: all path geometry lives in one
/// shared `Vec<RCoord>`, each arc holding only a `(start, len)` window.
/// A noise block traces tens of thousands of short paths; storing each as
/// its own `Vec` made allocation the dominant cost of the trace phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArcStore {
    recs: Vec<ArcRec>,
    geom: Vec<RCoord>,
}

impl ArcStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.recs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// The arc at index `i` as a borrowed view.
    pub fn get(&self, i: usize) -> TracedArc<'_> {
        let r = self.recs[i];
        TracedArc {
            upper: r.upper,
            lower: r.lower,
            geom: &self.geom[r.start as usize..(r.start + r.len) as usize],
        }
    }

    /// Iterate arcs in emission order.
    pub fn iter(&self) -> impl Iterator<Item = TracedArc<'_>> {
        (0..self.recs.len()).map(move |i| self.get(i))
    }

    /// Append one arc, copying `path` into the arena.
    pub fn push(&mut self, upper: RCoord, lower: RCoord, path: &[RCoord]) {
        let start = u32::try_from(self.geom.len()).expect("arc arena exceeds u32 addressing");
        self.geom.extend_from_slice(path);
        self.recs.push(ArcRec {
            upper,
            lower,
            start,
            len: path.len() as u32,
        });
    }
}

/// Safety limits for tracing (pathological fields can have very many
/// paths; real data does not come close).
#[derive(Debug, Clone, Copy)]
pub struct TraceLimits {
    /// Maximum number of arcs emitted per critical cell.
    pub max_paths_per_node: usize,
}

impl Default for TraceLimits {
    fn default() -> Self {
        TraceLimits {
            max_paths_per_node: 1_000_000,
        }
    }
}

/// Counters reported by a tracing pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceStats {
    pub arcs: u64,
    pub truncated_nodes: u64,
    pub path_cells_total: u64,
}

/// Trace every descending V-path from every critical cell of positive
/// index, returning all arcs of the block's MS complex 1-skeleton.
pub fn trace_all_arcs(grad: &GradientField, limits: TraceLimits) -> (ArcStore, TraceStats) {
    let mut arcs = ArcStore::new();
    let mut stats = TraceStats::default();
    for c in grad.critical_cells() {
        if c.cell_dim() == 0 {
            continue;
        }
        trace_from(grad, c, limits, &mut arcs, &mut stats);
    }
    (arcs, stats)
}

/// Trace all descending paths from one critical cell.
pub fn trace_from(
    grad: &GradientField,
    from: RCoord,
    limits: TraceLimits,
    arcs: &mut ArcStore,
    stats: &mut TraceStats,
) {
    debug_assert!(grad.is_critical(from));
    debug_assert!(from.cell_dim() >= 1);
    let bbox = *grad.bbox();
    let mut emitted = 0usize;

    // Explicit DFS. The path alternates (d−1)-cells and d-cells; `path`
    // holds the current prefix; frames record (cell to expand, depth to
    // truncate the path to before expanding).
    let mut path: Vec<RCoord> = vec![from];
    let mut stack: Vec<(RCoord, usize)> = Vec::new();
    for (_, f) in msp_grid::topology::facets(from, &bbox) {
        stack.push((f, 1));
    }
    while let Some((alpha, depth)) = stack.pop() {
        path.truncate(depth);
        path.push(alpha);
        if grad.is_critical(alpha) {
            if emitted >= limits.max_paths_per_node {
                stats.truncated_nodes += 1;
                break;
            }
            emitted += 1;
            stats.arcs += 1;
            stats.path_cells_total += path.len() as u64;
            arcs.push(from, alpha, &path);
            continue;
        }
        if !grad.is_tail(alpha) {
            continue; // head cell: flow does not continue through it
        }
        let beta = grad.partner(alpha).expect("tail has a partner");
        if beta.cell_dim() != from.cell_dim() {
            continue; // paired upward out of our tracing dimension
        }
        path.push(beta);
        let next_depth = path.len();
        for (_, f2) in msp_grid::topology::facets(beta, &bbox) {
            if f2 != alpha {
                stack.push((f2, next_depth));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_star::assign_gradient;
    use msp_grid::decomp::Decomposition;
    use msp_grid::{Dims, ScalarField};

    fn grad_of(f: &ScalarField) -> GradientField {
        let d = Decomposition::bisect(f.dims(), 1);
        assign_gradient(&f.extract_block(d.block(0)), &d)
    }

    #[test]
    fn ramp_has_no_arcs() {
        let f = msp_synth::ramp(Dims::new(5, 5, 5));
        let g = grad_of(&f);
        let (arcs, stats) = trace_all_arcs(&g, TraceLimits::default());
        assert!(arcs.is_empty(), "a fully collapsed field has no arcs");
        assert_eq!(stats.arcs, 0);
    }

    #[test]
    fn arcs_connect_adjacent_indices() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 4);
        let g = grad_of(&f);
        let (arcs, _) = trace_all_arcs(&g, TraceLimits::default());
        assert!(!arcs.is_empty());
        for a in arcs.iter() {
            assert_eq!(a.upper.cell_dim(), a.lower.cell_dim() + 1);
            assert!(g.is_critical(a.upper));
            assert!(g.is_critical(a.lower));
            assert_eq!(a.geom[0], a.upper);
            assert_eq!(*a.geom.last().unwrap(), a.lower);
        }
    }

    #[test]
    fn path_is_valid_v_path() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 11);
        let g = grad_of(&f);
        let (arcs, _) = trace_all_arcs(&g, TraceLimits::default());
        for a in arcs.iter() {
            // geometry alternates d, d-1, d, d-1, ..., d-1
            let d = a.upper.cell_dim();
            for (i, c) in a.geom.iter().enumerate() {
                let expect = if i % 2 == 0 { d } else { d - 1 };
                assert_eq!(c.cell_dim(), expect, "alternating dims in path");
            }
            // interior (d-1)-cells are tails paired with the next d-cell
            for w in a.geom.windows(2).skip(1).step_by(2) {
                assert_eq!(g.partner(w[0]), Some(w[1]));
            }
        }
    }

    #[test]
    fn two_bump_field_has_saddle_between_maxima() {
        // two bumps => two maxima separated by a 2-saddle; the 2-saddle
        // must have arcs to both maxima
        let dims = Dims::new(17, 9, 9);
        let f = ScalarField::from_fn(dims, |x, y, z| {
            let b1 =
                (-((x as f32 - 4.0).powi(2) + (y as f32 - 4.0).powi(2) + (z as f32 - 4.0).powi(2))
                    / 6.0)
                    .exp();
            let b2 = (-((x as f32 - 12.0).powi(2)
                + (y as f32 - 4.0).powi(2)
                + (z as f32 - 4.0).powi(2))
                / 6.0)
                .exp();
            b1 + b2
        });
        let g = grad_of(&f);
        let census = g.census();
        assert_eq!(census[3], 2, "two maxima: {:?}", census);
        let (arcs, _) = trace_all_arcs(&g, TraceLimits::default());
        // find 2-saddle -> max arcs; some saddle must reach two distinct maxima
        use std::collections::HashMap;
        let mut reach: HashMap<RCoord, std::collections::HashSet<RCoord>> = HashMap::new();
        for a in arcs.iter() {
            if a.upper.cell_dim() == 3 {
                // descending from maxima to 2-saddles: group by lower
                reach.entry(a.lower).or_default().insert(a.upper);
            }
        }
        assert!(
            reach.values().any(|s| s.len() == 2),
            "a 2-saddle should connect the two maxima"
        );
    }

    #[test]
    fn truncation_limit_respected() {
        let f = msp_synth::white_noise(Dims::new(10, 10, 10), 5);
        let g = grad_of(&f);
        let (full, _) = trace_all_arcs(&g, TraceLimits::default());
        let (limited, stats) = trace_all_arcs(
            &g,
            TraceLimits {
                max_paths_per_node: 1,
            },
        );
        assert!(limited.len() <= full.len());
        if limited.len() < full.len() {
            assert!(stats.truncated_nodes > 0);
        }
    }
}
