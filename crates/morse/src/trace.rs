//! V-path tracing: extracting the arcs of the MS complex 1-skeleton from
//! a discrete gradient field (paper §IV-D).
//!
//! "The finest-scale MS complex is computed by tracing V-paths in the
//! discrete gradient field from critical cells. … V-paths are traced
//! downwards from each node, and an arc is added to the MS complex for
//! every path terminating at a critical cell. The list of cells in the
//! V-path forms the geometric embedding of the arc."
//!
//! Paths are guaranteed to terminate inside the block because the
//! boundary restriction prevents gradient arrows from crossing block
//! faces outward. Tracing branches (a descending path may split at every
//! head cell), so one critical cell can produce many arcs, including
//! multiple arcs to the *same* destination — the multiplicity matters for
//! cancellation legality and is preserved.
//!
//! Two tracers exist behind the [`Kernel`](crate::Kernel) switch. The
//! original coordinate-at-a-time DFS (`trace_from`) recomputes a strided
//! byte index and re-derives facet coordinates for every step; the flat
//! tracer ([`trace_all_arcs_kernel`] with `Kernel::Flat`, the default)
//! walks the same DFS over **linear byte indices** — facet neighbors are
//! `± stride` hops, cell state is one pooled byte read — and batches the
//! address-ordered critical list into contiguous chunks traced on
//! separate threads into per-chunk [`ArcStore`] arenas that are
//! concatenated in chunk order, making the emitted arc sequence (and
//! therefore the stores' bytes) identical to the serial trace for every
//! thread count.

use crate::gradient::{GradientField, CRITICAL, DIR_MASK, PAIRED, TAIL};
use crate::kernel::{active_kernel, Kernel};
use msp_grid::RCoord;

/// One traced arc: from a critical `upper` cell of index `d` down to a
/// critical `lower` cell of index `d − 1`, with the full V-path as its
/// geometric embedding (`geom[0] == upper`, `geom.last() == lower`).
/// A borrowed view into an [`ArcStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedArc<'a> {
    pub upper: RCoord,
    pub lower: RCoord,
    pub geom: &'a [RCoord],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ArcRec {
    upper: RCoord,
    lower: RCoord,
    start: u32,
    len: u32,
}

/// Arena-backed storage for traced arcs: all path geometry lives in one
/// shared `Vec<RCoord>`, each arc holding only a `(start, len)` window.
/// A noise block traces tens of thousands of short paths; storing each as
/// its own `Vec` made allocation the dominant cost of the trace phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArcStore {
    recs: Vec<ArcRec>,
    geom: Vec<RCoord>,
}

impl ArcStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.recs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// The arc at index `i` as a borrowed view.
    pub fn get(&self, i: usize) -> TracedArc<'_> {
        let r = self.recs[i];
        TracedArc {
            upper: r.upper,
            lower: r.lower,
            geom: &self.geom[r.start as usize..(r.start + r.len) as usize],
        }
    }

    /// Iterate arcs in emission order.
    pub fn iter(&self) -> impl Iterator<Item = TracedArc<'_>> {
        (0..self.recs.len()).map(move |i| self.get(i))
    }

    /// Append one arc, copying `path` into the arena.
    pub fn push(&mut self, upper: RCoord, lower: RCoord, path: &[RCoord]) {
        let start = u32::try_from(self.geom.len()).expect("arc arena exceeds u32 addressing");
        self.geom.extend_from_slice(path);
        self.recs.push(ArcRec {
            upper,
            lower,
            start,
            len: path.len() as u32,
        });
    }

    /// Concatenate another store onto this one, preserving both emission
    /// orders: `other`'s arcs follow this store's, with their arena
    /// windows shifted past this arena. Appending per-chunk stores in
    /// chunk order therefore reproduces exactly the store a single
    /// serial trace over the concatenated input would have built.
    pub fn append(&mut self, mut other: ArcStore) {
        let shift = u32::try_from(self.geom.len() + other.geom.len())
            .map(|_| self.geom.len() as u32)
            .expect("arc arena exceeds u32 addressing");
        self.geom.append(&mut other.geom);
        self.recs.extend(other.recs.into_iter().map(|mut r| {
            r.start += shift;
            r
        }));
    }
}

/// Safety limits for tracing (pathological fields can have very many
/// paths; real data does not come close).
#[derive(Debug, Clone, Copy)]
pub struct TraceLimits {
    /// Maximum number of arcs emitted per critical cell.
    pub max_paths_per_node: usize,
}

impl Default for TraceLimits {
    fn default() -> Self {
        TraceLimits {
            max_paths_per_node: 1_000_000,
        }
    }
}

/// Counters reported by a tracing pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceStats {
    pub arcs: u64,
    pub truncated_nodes: u64,
    pub path_cells_total: u64,
}

/// Trace every descending V-path from every critical cell of positive
/// index, returning all arcs of the block's MS complex 1-skeleton.
/// Serial, dispatching to the process-wide kernel selection.
pub fn trace_all_arcs(grad: &GradientField, limits: TraceLimits) -> (ArcStore, TraceStats) {
    trace_all_arcs_kernel(grad, limits, 1, active_kernel())
}

/// [`trace_all_arcs`] with explicit thread count and kernel choice. The
/// flat kernel chunks the address-ordered critical list contiguously
/// across threads and concatenates the per-chunk stores in chunk order,
/// so the result is identical for every thread count; the heap kernel is
/// the original serial coordinate-at-a-time reference.
pub fn trace_all_arcs_kernel(
    grad: &GradientField,
    limits: TraceLimits,
    threads: usize,
    kernel: Kernel,
) -> (ArcStore, TraceStats) {
    let mut arcs = ArcStore::new();
    let mut stats = TraceStats::default();
    let crits: Vec<RCoord> = grad
        .critical_cells()
        .into_iter()
        .filter(|c| c.cell_dim() >= 1)
        .collect();
    match kernel {
        Kernel::Heap => {
            for &c in &crits {
                trace_from(grad, c, limits, &mut arcs, &mut stats);
            }
        }
        Kernel::Flat => {
            let workers = threads.min(crits.len()).max(1);
            if workers <= 1 {
                let mut tracer = FlatTracer::new(grad);
                for &c in &crits {
                    tracer.trace_from(grad, c, limits, &mut arcs, &mut stats);
                }
            } else {
                let chunk = crits.len().div_ceil(workers);
                let chunks: Vec<&[RCoord]> = crits.chunks(chunk).collect();
                let parts = msp_grid::par::par_map(workers, &chunks, |_, ch| {
                    let mut a = ArcStore::new();
                    let mut s = TraceStats::default();
                    let mut tracer = FlatTracer::new(grad);
                    for &c in ch.iter() {
                        tracer.trace_from(grad, c, limits, &mut a, &mut s);
                    }
                    (a, s)
                });
                for (a, s) in parts {
                    arcs.append(a);
                    stats.arcs += s.arcs;
                    stats.truncated_nodes += s.truncated_nodes;
                    stats.path_cells_total += s.path_cells_total;
                }
            }
        }
    }
    (arcs, stats)
}

/// Reusable scratch of the flat tracer: the DFS stack and path prefix
/// are cleared — capacity kept — between critical cells, so a whole
/// chunk traces with zero allocations after warm-up. Frames carry each
/// cell's linear byte index alongside its coordinate: facet neighbors
/// are `± stride` hops, and the per-step state test is a single byte
/// read instead of three strided index computations.
struct FlatTracer {
    lo: [u32; 3],
    hi: [u32; 3],
    strides: [isize; 3],
    path: Vec<RCoord>,
    /// (cell, linear index, depth to truncate the path to).
    stack: Vec<(RCoord, usize, usize)>,
}

impl FlatTracer {
    fn new(grad: &GradientField) -> Self {
        let bbox = grad.bbox();
        let (sx, sxy) = grad.strides();
        FlatTracer {
            lo: [bbox.lo.x, bbox.lo.y, bbox.lo.z],
            hi: [bbox.hi.x, bbox.hi.y, bbox.hi.z],
            strides: [1, sx as isize, sxy as isize],
            path: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Push the facets of `c` in `FaceDir::ALL` order (axis-major,
    /// negative before positive) — the exact order
    /// `msp_grid::topology::facets` yields, so the LIFO pops and hence
    /// the arc emission order match the reference tracer bit for bit.
    /// `skip` is the linear index of the facet the path arrived from.
    #[inline]
    fn push_facets(&mut self, c: RCoord, ci: usize, depth: usize, skip: usize) {
        for axis in 0..3 {
            let v = c.get(axis);
            if v.is_multiple_of(2) {
                continue; // no facet along an even axis
            }
            let s = self.strides[axis];
            if v > self.lo[axis] {
                let fi = (ci as isize - s) as usize;
                if fi != skip {
                    self.stack.push((c.with(axis, v - 1), fi, depth));
                }
            }
            if v < self.hi[axis] {
                let fi = (ci as isize + s) as usize;
                if fi != skip {
                    self.stack.push((c.with(axis, v + 1), fi, depth));
                }
            }
        }
    }

    /// Trace all descending paths from one critical cell — the iterative
    /// DFS of [`trace_from`] over linear indices.
    fn trace_from(
        &mut self,
        grad: &GradientField,
        from: RCoord,
        limits: TraceLimits,
        arcs: &mut ArcStore,
        stats: &mut TraceStats,
    ) {
        debug_assert!(from.cell_dim() >= 1);
        let from_idx = grad.linear_index(from);
        let mut emitted = 0usize;
        self.path.clear();
        self.path.push(from);
        self.stack.clear();
        self.push_facets(from, from_idx, 1, usize::MAX);
        while let Some((alpha, ai, depth)) = self.stack.pop() {
            self.path.truncate(depth);
            self.path.push(alpha);
            let b = grad.byte_at(ai);
            if b & CRITICAL != 0 {
                if emitted >= limits.max_paths_per_node {
                    stats.truncated_nodes += 1;
                    break;
                }
                emitted += 1;
                stats.arcs += 1;
                stats.path_cells_total += self.path.len() as u64;
                arcs.push(from, alpha, &self.path);
                continue;
            }
            if b & PAIRED == 0 || b & TAIL == 0 {
                continue; // head cell: flow does not continue through it
            }
            // partner is a cofacet (TAIL), one step along the stored axis
            let code = b & DIR_MASK;
            let axis = (code >> 1) as usize;
            let (bv, bi) = if code & 1 == 1 {
                (
                    alpha.get(axis) + 1,
                    (ai as isize + self.strides[axis]) as usize,
                )
            } else {
                (
                    alpha.get(axis) - 1,
                    (ai as isize - self.strides[axis]) as usize,
                )
            };
            let beta = alpha.with(axis, bv);
            debug_assert_eq!(beta.cell_dim(), from.cell_dim());
            self.path.push(beta);
            let next_depth = self.path.len();
            self.push_facets(beta, bi, next_depth, ai);
        }
    }
}

/// Trace all descending paths from one critical cell.
pub fn trace_from(
    grad: &GradientField,
    from: RCoord,
    limits: TraceLimits,
    arcs: &mut ArcStore,
    stats: &mut TraceStats,
) {
    debug_assert!(grad.is_critical(from));
    debug_assert!(from.cell_dim() >= 1);
    let bbox = *grad.bbox();
    let mut emitted = 0usize;

    // Explicit DFS. The path alternates (d−1)-cells and d-cells; `path`
    // holds the current prefix; frames record (cell to expand, depth to
    // truncate the path to before expanding).
    let mut path: Vec<RCoord> = vec![from];
    let mut stack: Vec<(RCoord, usize)> = Vec::new();
    for (_, f) in msp_grid::topology::facets(from, &bbox) {
        stack.push((f, 1));
    }
    while let Some((alpha, depth)) = stack.pop() {
        path.truncate(depth);
        path.push(alpha);
        if grad.is_critical(alpha) {
            if emitted >= limits.max_paths_per_node {
                stats.truncated_nodes += 1;
                break;
            }
            emitted += 1;
            stats.arcs += 1;
            stats.path_cells_total += path.len() as u64;
            arcs.push(from, alpha, &path);
            continue;
        }
        if !grad.is_tail(alpha) {
            continue; // head cell: flow does not continue through it
        }
        let beta = grad.partner(alpha).expect("tail has a partner");
        if beta.cell_dim() != from.cell_dim() {
            continue; // paired upward out of our tracing dimension
        }
        path.push(beta);
        let next_depth = path.len();
        for (_, f2) in msp_grid::topology::facets(beta, &bbox) {
            if f2 != alpha {
                stack.push((f2, next_depth));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_star::assign_gradient;
    use msp_grid::decomp::Decomposition;
    use msp_grid::{Dims, ScalarField};

    fn grad_of(f: &ScalarField) -> GradientField {
        let d = Decomposition::bisect(f.dims(), 1);
        assign_gradient(&f.extract_block(d.block(0)), &d)
    }

    #[test]
    fn ramp_has_no_arcs() {
        let f = msp_synth::ramp(Dims::new(5, 5, 5));
        let g = grad_of(&f);
        let (arcs, stats) = trace_all_arcs(&g, TraceLimits::default());
        assert!(arcs.is_empty(), "a fully collapsed field has no arcs");
        assert_eq!(stats.arcs, 0);
    }

    #[test]
    fn arcs_connect_adjacent_indices() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 4);
        let g = grad_of(&f);
        let (arcs, _) = trace_all_arcs(&g, TraceLimits::default());
        assert!(!arcs.is_empty());
        for a in arcs.iter() {
            assert_eq!(a.upper.cell_dim(), a.lower.cell_dim() + 1);
            assert!(g.is_critical(a.upper));
            assert!(g.is_critical(a.lower));
            assert_eq!(a.geom[0], a.upper);
            assert_eq!(*a.geom.last().unwrap(), a.lower);
        }
    }

    #[test]
    fn path_is_valid_v_path() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 11);
        let g = grad_of(&f);
        let (arcs, _) = trace_all_arcs(&g, TraceLimits::default());
        for a in arcs.iter() {
            // geometry alternates d, d-1, d, d-1, ..., d-1
            let d = a.upper.cell_dim();
            for (i, c) in a.geom.iter().enumerate() {
                let expect = if i % 2 == 0 { d } else { d - 1 };
                assert_eq!(c.cell_dim(), expect, "alternating dims in path");
            }
            // interior (d-1)-cells are tails paired with the next d-cell
            for w in a.geom.windows(2).skip(1).step_by(2) {
                assert_eq!(g.partner(w[0]), Some(w[1]));
            }
        }
    }

    #[test]
    fn two_bump_field_has_saddle_between_maxima() {
        // two bumps => two maxima separated by a 2-saddle; the 2-saddle
        // must have arcs to both maxima
        let dims = Dims::new(17, 9, 9);
        let f = ScalarField::from_fn(dims, |x, y, z| {
            let b1 =
                (-((x as f32 - 4.0).powi(2) + (y as f32 - 4.0).powi(2) + (z as f32 - 4.0).powi(2))
                    / 6.0)
                    .exp();
            let b2 = (-((x as f32 - 12.0).powi(2)
                + (y as f32 - 4.0).powi(2)
                + (z as f32 - 4.0).powi(2))
                / 6.0)
                .exp();
            b1 + b2
        });
        let g = grad_of(&f);
        let census = g.census();
        assert_eq!(census[3], 2, "two maxima: {:?}", census);
        let (arcs, _) = trace_all_arcs(&g, TraceLimits::default());
        // find 2-saddle -> max arcs; some saddle must reach two distinct maxima
        use std::collections::HashMap;
        let mut reach: HashMap<RCoord, std::collections::HashSet<RCoord>> = HashMap::new();
        for a in arcs.iter() {
            if a.upper.cell_dim() == 3 {
                // descending from maxima to 2-saddles: group by lower
                reach.entry(a.lower).or_default().insert(a.upper);
            }
        }
        assert!(
            reach.values().any(|s| s.len() == 2),
            "a 2-saddle should connect the two maxima"
        );
    }

    #[test]
    fn flat_tracer_equals_recursive_reference() {
        // stores are PartialEq: record order, endpoints and the full
        // geometry arena must all match, for every thread count
        for (dims, seed) in [
            (Dims::new(9, 8, 7), 7u64),
            (Dims::new(10, 10, 10), 5),
            (Dims::new(6, 5, 1), 13),
        ] {
            let f = msp_synth::white_noise(dims, seed);
            let g = grad_of(&f);
            let (heap, hs) = trace_all_arcs_kernel(&g, TraceLimits::default(), 1, Kernel::Heap);
            for threads in [1, 2, 3, 8] {
                let (flat, fs) =
                    trace_all_arcs_kernel(&g, TraceLimits::default(), threads, Kernel::Flat);
                assert_eq!(flat, heap, "dims {dims:?} threads {threads}");
                assert_eq!(fs.arcs, hs.arcs);
                assert_eq!(fs.path_cells_total, hs.path_cells_total);
            }
        }
    }

    #[test]
    fn flat_tracer_respects_truncation_identically() {
        let f = msp_synth::white_noise(Dims::new(10, 10, 10), 5);
        let g = grad_of(&f);
        let limits = TraceLimits {
            max_paths_per_node: 3,
        };
        let (heap, hs) = trace_all_arcs_kernel(&g, limits, 1, Kernel::Heap);
        for threads in [1, 4] {
            let (flat, fs) = trace_all_arcs_kernel(&g, limits, threads, Kernel::Flat);
            assert_eq!(flat, heap, "threads {threads}");
            assert_eq!(fs.truncated_nodes, hs.truncated_nodes);
        }
    }

    #[test]
    fn arc_store_append_matches_single_store() {
        let f = msp_synth::white_noise(Dims::new(8, 8, 8), 4);
        let g = grad_of(&f);
        let (whole, _) = trace_all_arcs(&g, TraceLimits::default());
        // re-trace in two halves and append
        let crits: Vec<RCoord> = g
            .critical_cells()
            .into_iter()
            .filter(|c| c.cell_dim() >= 1)
            .collect();
        let mid = crits.len() / 2;
        let mut parts = ArcStore::new();
        let mut stats = TraceStats::default();
        for half in [&crits[..mid], &crits[mid..]] {
            let mut a = ArcStore::new();
            let mut tracer = FlatTracer::new(&g);
            for &c in half {
                tracer.trace_from(&g, c, TraceLimits::default(), &mut a, &mut stats);
            }
            parts.append(a);
        }
        assert_eq!(parts, whole);
    }

    #[test]
    fn truncation_limit_respected() {
        let f = msp_synth::white_noise(Dims::new(10, 10, 10), 5);
        let g = grad_of(&f);
        let (full, _) = trace_all_arcs(&g, TraceLimits::default());
        let (limited, stats) = trace_all_arcs(
            &g,
            TraceLimits {
                max_paths_per_node: 1,
            },
        );
        assert!(limited.len() <= full.len());
        if limited.len() < full.len() {
            assert!(stats.truncated_nodes > 0);
        }
    }
}
