//! Structural validity checks for discrete gradient fields.
//!
//! These are the invariants the algorithm's correctness rests on; the
//! test suites (including property-based tests over random fields) run
//! them exhaustively on small blocks.

use crate::gradient::GradientField;
use msp_grid::decomp::Decomposition;
use msp_grid::topology::{cofacets, facets};
use msp_grid::RCoord;
use std::collections::HashMap;

/// Everything [`check_valid`] verifies, as a machine-readable report.
#[derive(Debug, Default)]
pub struct ValidityReport {
    pub unassigned: u64,
    pub bad_pairs: Vec<(RCoord, RCoord)>,
    pub cycles: u64,
}

impl ValidityReport {
    pub fn is_ok(&self) -> bool {
        self.unassigned == 0 && self.bad_pairs.is_empty() && self.cycles == 0
    }
}

/// Check the three structural requirements of a discrete gradient field:
/// every cell assigned exactly once (paired or critical), every pair a
/// mutual facet/cofacet relation, and all V-paths acyclic.
pub fn check_valid(grad: &GradientField) -> ValidityReport {
    let mut report = ValidityReport {
        unassigned: grad.n_unassigned(),
        ..Default::default()
    };
    let bbox = *grad.bbox();
    for c in bbox.iter() {
        if let Some(p) = grad.partner(c) {
            let ok = grad.partner(p) == Some(c)
                && (grad.is_tail(c) ^ grad.is_tail(p))
                && (c.cell_dim() as i32 - p.cell_dim() as i32).abs() == 1
                && is_incident(c, p);
            if !ok {
                report.bad_pairs.push((c, p));
            }
        }
    }
    report.cycles = count_cycles(grad);
    report
}

fn is_incident(a: RCoord, b: RCoord) -> bool {
    let mut diffs = 0;
    for axis in 0..3 {
        let d = (a.get(axis) as i64 - b.get(axis) as i64).abs();
        if d > 1 {
            return false;
        }
        diffs += d;
    }
    diffs == 1
}

/// Count cells participating in cyclic V-paths (0 for a valid gradient).
///
/// For each dimension `d`, build the directed graph on tail `(d−1)`-cells
/// where `α → α'` when `α` is paired with head `β` and `α'` is another
/// facet of `β` that is also a tail of the same dimension pairing; then
/// count cells on cycles with an iterative three-colour DFS.
pub fn count_cycles(grad: &GradientField) -> u64 {
    let bbox = *grad.bbox();
    let mut cyclic = 0u64;
    for d in 1u8..=3 {
        // collect tails of dimension d-1 paired with d-cells
        let tails: Vec<RCoord> = bbox
            .iter()
            .filter(|&c| {
                c.cell_dim() == d - 1
                    && grad.is_tail(c)
                    && grad.partner(c).map(|p| p.cell_dim()) == Some(d)
            })
            .collect();
        let index: HashMap<RCoord, usize> =
            tails.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        // adjacency
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); tails.len()];
        for (i, &a) in tails.iter().enumerate() {
            let beta = grad.partner(a).unwrap();
            for (_, f) in facets(beta, &bbox) {
                if f != a {
                    if let Some(&j) = index.get(&f) {
                        adj[i].push(j);
                    }
                }
            }
        }
        // 0 = white, 1 = grey, 2 = black
        let mut color = vec![0u8; tails.len()];
        for start in 0..tails.len() {
            if color[start] != 0 {
                continue;
            }
            // iterative DFS with explicit post-processing
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&(u, next)) = stack.last() {
                if next < adj[u].len() {
                    stack.last_mut().unwrap().1 += 1;
                    let v = adj[u][next];
                    match color[v] {
                        0 => {
                            color[v] = 1;
                            stack.push((v, 0));
                        }
                        1 => cyclic += 1, // back edge: cycle detected
                        _ => {}
                    }
                } else {
                    color[u] = 2;
                    stack.pop();
                }
            }
        }
    }
    cyclic
}

/// Euler characteristic from the critical-cell census:
/// `χ = c₀ − c₁ + c₂ − c₃`. For a gradient on a solid box this must be 1
/// (the box is contractible), by the Morse equalities.
pub fn euler_characteristic(grad: &GradientField) -> i64 {
    let c = grad.census();
    c[0] as i64 - c[1] as i64 + c[2] as i64 - c[3] as i64
}

/// Verify that two blocks' gradients carry identical bytes on every
/// shared refined coordinate — the property that makes gluing possible.
pub fn boundary_consistent(a: &GradientField, b: &GradientField) -> bool {
    let (ba, bb) = (*a.bbox(), *b.bbox());
    ba.iter()
        .filter(|c| bb.contains(*c))
        .all(|c| a.raw(c) == b.raw(c))
}

/// Verify the paper's pairing restriction: every pair's two cells have
/// equal owner sets under `decomp`.
pub fn pairs_respect_owners(grad: &GradientField, decomp: &Decomposition) -> bool {
    grad.bbox().iter().all(|c| match grad.partner(c) {
        Some(p) => decomp.owners(c) == decomp.owners(p),
        None => true,
    })
}

/// The critical cells of `grad` restricted to cells whose owner sets have
/// at least `min_owners` members — used to count boundary artifacts.
pub fn boundary_critical_count(grad: &GradientField, decomp: &Decomposition) -> u64 {
    grad.critical_cells()
        .iter()
        .filter(|&&c| decomp.owners(c).is_shared())
        .count() as u64
}

/// Spot-check that cofacet enumeration agrees with facet enumeration
/// (used by proptests; cheap smoke version of the duality test).
pub fn facet_duality_holds(grad: &GradientField) -> bool {
    let bbox = *grad.bbox();
    bbox.iter()
        .all(|c| facets(c, &bbox).all(|(_, f)| cofacets(f, &bbox).any(|(_, cf)| cf == c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_star::assign_gradient;
    use msp_grid::Dims;

    #[test]
    fn valid_on_noise() {
        let dims = Dims::new(8, 7, 6);
        let f = msp_synth::white_noise(dims, 31);
        let d = Decomposition::bisect(dims, 1);
        let g = assign_gradient(&f.extract_block(d.block(0)), &d);
        let report = check_valid(&g);
        assert!(report.is_ok(), "{:?}", report);
        assert_eq!(euler_characteristic(&g), 1);
    }

    #[test]
    fn valid_on_blocked_noise() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 8);
        let d = Decomposition::bisect(dims, 8);
        for b in d.blocks() {
            let g = assign_gradient(&f.extract_block(b), &d);
            let report = check_valid(&g);
            assert!(report.is_ok(), "block {}: {:?}", b.id, report);
            assert_eq!(euler_characteristic(&g), 1, "block {} chi", b.id);
            assert!(pairs_respect_owners(&g, &d));
        }
    }

    #[test]
    fn blocked_run_produces_boundary_artifacts() {
        // the restriction inevitably creates spurious critical cells on
        // shared faces ("necessary handles for gluing", paper §V-A)
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 17);
        let d1 = Decomposition::bisect(dims, 1);
        let d8 = Decomposition::bisect(dims, 8);
        let serial = assign_gradient(&f.extract_block(d1.block(0)), &d1);
        let total_blocked: u64 = d8
            .blocks()
            .iter()
            .map(|b| {
                let g = assign_gradient(&f.extract_block(b), &d8);
                // count critical cells owned by this block only once:
                // attribute shared cells to the lowest owner
                g.critical_cells()
                    .iter()
                    .filter(|&&c| d8.owners(c).as_slice()[0] == b.id)
                    .count() as u64
            })
            .sum();
        let total_serial: u64 = serial.census().iter().sum();
        assert!(
            total_blocked > total_serial,
            "blocking should add spurious boundary critical cells ({} vs {})",
            total_blocked,
            total_serial
        );
    }

    #[test]
    fn cycle_detector_fires_on_manufactured_cycle() {
        use crate::gradient::GradientField;
        use msp_grid::topology::RBox;
        use msp_grid::RCoord;
        // build a tiny gradient by hand containing a rotating square of
        // edge-quad pairs: a classic V-path cycle
        let bbox = RBox::new(RCoord::new(0, 0, 0), RCoord::new(4, 4, 0));
        let mut g = GradientField::new(bbox);
        // quad ring around vertex (2,2,0): pair each edge with the next
        // quad counterclockwise
        g.pair(RCoord::new(1, 2, 0), RCoord::new(1, 1, 0));
        g.pair(RCoord::new(2, 1, 0), RCoord::new(3, 1, 0));
        g.pair(RCoord::new(3, 2, 0), RCoord::new(3, 3, 0));
        g.pair(RCoord::new(2, 3, 0), RCoord::new(1, 3, 0));
        assert!(count_cycles(&g) > 0, "the rotating ring is a V-cycle");
    }
}
