//! Stratified lower-star discrete gradient assignment.
//!
//! Every cell of the cubical complex belongs to the *lower star* of
//! exactly one vertex: the maximal vertex (under the simulation-of-
//! simplicity order) of its vertex set. Lower stars are therefore
//! processed independently — this is the property the paper relies on
//! when it calls the gradient computation embarrassingly parallel.
//!
//! Within one lower star we run homotopy expansion (two priority queues,
//! as in Robins-Wood-Sheppard): repeatedly pair a cell that has exactly
//! one unassigned facet in the lower star with that facet, preferring
//! cells of smallest SoS key (steepest descent); when no pairing is
//! possible, the smallest remaining cell becomes critical.
//!
//! **Boundary restriction** (paper §IV-C): a pair `(α, β)` is only legal
//! when `owners(α) == owners(β)` — both cells lie on the boundaries of
//! exactly the same blocks. We implement this by *stratifying* each lower
//! star into owner-set groups and running the expansion independently per
//! group. Facet counts never cross groups, so the gradient restricted to
//! a shared block face is computed purely from data on that face — which
//! both adjacent blocks hold identically — making boundary gradients
//! bitwise equal across blocks (see `validate::boundary_consistent`).

use crate::flat::{ordered_keys_into, FlatSweep};
use crate::gradient::GradientField;
use crate::kernel::{active_kernel, Kernel, KernelStats};
use crate::pool;
use msp_grid::decomp::{Decomposition, OwnerSet};
use msp_grid::field::{BlockField, CellKey};
use msp_grid::topology::RBox;
use msp_grid::RCoord;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One cell of the lower star currently being processed.
#[derive(Clone, Copy)]
struct Entry {
    c: RCoord,
    key: CellKey,
    group: u8,
    assigned: bool,
}

/// Scratch state reused across lower stars to avoid per-vertex
/// allocation. One `Scratch` lives per sweeping thread; the heaps are
/// `clear()`ed (capacity kept) between lower stars and owner-set groups
/// only ever append, so after warm-up no sweep allocates at all.
struct Scratch {
    entries: Vec<Entry>,
    groups: Vec<OwnerSet>,
    pq_one: BinaryHeap<Reverse<(CellKey, u8)>>,
    pq_zero: BinaryHeap<Reverse<(CellKey, u8)>>,
}

impl Scratch {
    /// Pre-size from the block's refined box: a lower star has at most
    /// 3 cells per non-degenerate axis (27 in 3D, 9 in a 2D slab), and
    /// the expansion re-pushes cells whose facet count changes, so the
    /// heaps get twice that — large enough that they never reallocate.
    fn for_box(bbox: &RBox) -> Self {
        let star: usize = (0..3)
            .map(|a| if bbox.extent(a) > 1 { 3 } else { 1 })
            .product();
        Scratch {
            entries: Vec::with_capacity(star),
            groups: Vec::with_capacity(8),
            pq_one: BinaryHeap::with_capacity(2 * star),
            pq_zero: BinaryHeap::with_capacity(2 * star),
        }
    }
}

/// Compute the discrete gradient of one block, restricted so that shared
/// block faces are assigned identically in all owning blocks. Dispatches
/// to the process-wide kernel selection (`MSP_KERNEL`).
pub fn assign_gradient(field: &BlockField, decomp: &Decomposition) -> GradientField {
    assign_gradient_kernel(field, decomp, 1, active_kernel()).0
}

/// [`assign_gradient`] with explicit thread count and kernel choice,
/// returning the allocation/throughput stats the telemetry layer feeds
/// into `kernel_cells` / `scratch_reuse` / `kernel_allocs`. All other
/// gradient entry points are thin wrappers over this one; benches call
/// it directly to compare both kernels in one process.
pub fn assign_gradient_kernel(
    field: &BlockField,
    decomp: &Decomposition,
    threads: usize,
    kernel: Kernel,
) -> (GradientField, KernelStats) {
    let mut stats = KernelStats::default();
    let grad = match kernel {
        Kernel::Flat => {
            let (mut ord, reused) = pool::take_u32(field.data().len());
            stats.tally(reused);
            ordered_keys_into(field, &mut ord);
            let sweep = FlatSweep::new(field, decomp, &ord);
            let g = run_slabs(field, threads, &mut stats, |z0, z1, grad| {
                sweep.sweep_z_range(z0, z1, grad)
            });
            pool::put_u32(ord);
            g
        }
        Kernel::Heap => {
            let bbox = field.block().refined_box();
            run_slabs(field, threads, &mut stats, |z0, z1, grad| {
                let mut scratch = Scratch::for_box(&bbox);
                sweep_z_range(field, decomp, &bbox, z0, z1, grad, &mut scratch);
            })
        }
    };
    stats.cells = grad.bbox().len();
    debug_assert_eq!(grad.n_unassigned(), 0, "all cells must be assigned");
    (grad, stats)
}

/// Shared slab driver: split the vertex sweep into contiguous z-slabs,
/// run `sweep` per slab (serial inline when one slab suffices), and
/// merge slab outputs in slab order. Slab scratch buffers come from the
/// process-wide pool (`crate::pool`) so repeated runs stop paying a
/// fresh zeroed allocation per slab, and the merge uses the
/// contiguous-copy fast path of [`GradientField::absorb_slab`].
fn run_slabs<F>(
    field: &BlockField,
    threads: usize,
    stats: &mut KernelStats,
    sweep: F,
) -> GradientField
where
    F: Fn(u32, u32, &mut GradientField) + Sync,
{
    let block = *field.block();
    let bbox = block.refined_box();
    let n_rows = (block.hi[2] - block.lo[2] + 1) as usize;
    let slabs = threads.min(n_rows);
    if slabs <= 1 {
        // the result lives on past this call, so it gets a fresh buffer;
        // only slab-local scratch below is pooled
        let mut grad = GradientField::new(bbox);
        sweep(block.lo[2], block.hi[2], &mut grad);
        return grad;
    }
    // contiguous, near-equal z ranges (global vertex coordinates)
    let base = n_rows / slabs;
    let rem = n_rows % slabs;
    let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(slabs);
    let mut z = block.lo[2];
    for s in 0..slabs {
        let rows = (base + usize::from(s < rem)) as u32;
        ranges.push((z, z + rows - 1));
        z += rows;
    }
    let subgrads = msp_grid::par::par_map(slabs, &ranges, |_, &(z0, z1)| {
        let sub_box = RBox::new(
            RCoord::new(
                bbox.lo.x,
                bbox.lo.y,
                (2 * z0).saturating_sub(1).max(bbox.lo.z),
            ),
            RCoord::new(bbox.hi.x, bbox.hi.y, (2 * z1 + 1).min(bbox.hi.z)),
        );
        let (buf, reused) = pool::take_u8(sub_box.len() as usize);
        let mut g = GradientField::with_buffer(sub_box, buf);
        sweep(z0, z1, &mut g);
        (g, reused)
    });
    let mut grad = GradientField::new(bbox);
    for ((sg, reused), &(z0, z1)) in subgrads.into_iter().zip(&ranges) {
        stats.tally(reused);
        grad.absorb_slab(&sg, 2 * z0, 2 * z1);
        pool::put_u8(sg.into_bytes());
    }
    grad
}

/// Run the lower-star sweep for every vertex with z ∈ `[z0, z1]` (global
/// vertex coordinates), writing into `grad` — which may cover just the
/// slab's refined sub-box. Shared by the serial path (full range, full
/// box) and the per-thread slabs of [`assign_gradient_par`].
fn sweep_z_range(
    field: &BlockField,
    decomp: &Decomposition,
    bbox: &RBox,
    z0: u32,
    z1: u32,
    grad: &mut GradientField,
    scratch: &mut Scratch,
) {
    let block = field.block();
    for z in z0..=z1 {
        for y in block.lo[1]..=block.hi[1] {
            for x in block.lo[0]..=block.hi[0] {
                process_lower_star(
                    field,
                    decomp,
                    bbox,
                    RCoord::of_vertex(x, y, z),
                    grad,
                    scratch,
                );
            }
        }
    }
}

/// [`assign_gradient`] parallelized over contiguous z-slabs of the
/// vertex sweep, bit-identical to the serial path for every thread count.
///
/// Every cell belongs to the lower star of exactly one vertex (its
/// SoS-maximal one), and processing a lower star reads only the field —
/// never other cells' gradient bytes — so distinct vertices' writes are
/// disjoint and scheduling-independent. Each slab thread writes into its
/// own [`GradientField`] over the slab's clamped refined box (a vertex at
/// z touches refined z ∈ [2z−1, 2z+1], so adjacent slab boxes overlap in
/// exactly one refined plane whose cells are split between the two
/// slabs' lower stars); the slab fields are then merged in slab order.
/// Determinism therefore needs no locks, no atomics and no unsafe.
pub fn assign_gradient_par(
    field: &BlockField,
    decomp: &Decomposition,
    threads: usize,
) -> GradientField {
    assign_gradient_kernel(field, decomp, threads, active_kernel()).0
}

/// True if `f` is a facet of `c` (both containing the same vertex): they
/// differ by exactly 1 on exactly one axis, where `c` is odd.
#[inline]
fn is_facet_of(f: RCoord, c: RCoord) -> bool {
    let mut diff_axis = None;
    for a in 0..3 {
        let (x, y) = (f.get(a), c.get(a));
        if x != y {
            if diff_axis.is_some() || (x as i64 - y as i64).abs() != 1 {
                return false;
            }
            diff_axis = Some(a);
        }
    }
    match diff_axis {
        Some(a) => c.get(a) % 2 == 1,
        None => false,
    }
}

fn process_lower_star(
    field: &BlockField,
    decomp: &Decomposition,
    bbox: &RBox,
    rv: RCoord,
    grad: &mut GradientField,
    s: &mut Scratch,
) {
    let vkey = field.vertex_key(rv);
    s.entries.clear();
    s.groups.clear();
    s.pq_one.clear();
    s.pq_zero.clear();

    // Fast path: a vertex at refined distance >= 2 from every block-box
    // face has a star entirely interior to the block, hence a single
    // owner group. (Shared cells are always on the block surface.)
    let interior =
        (0..3).all(|a| rv.get(a) >= bbox.lo.get(a) + 2 && rv.get(a) + 2 <= bbox.hi.get(a));
    let block_id = field.block().id;

    // Collect the lower star: star cells (within the block box) whose
    // maximal vertex is rv.
    for dz in -1i32..=1 {
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                let (cx, cy, cz) = (
                    rv.x as i64 + dx as i64,
                    rv.y as i64 + dy as i64,
                    rv.z as i64 + dz as i64,
                );
                if cx < 0 || cy < 0 || cz < 0 {
                    continue;
                }
                let c = RCoord::new(cx as u32, cy as u32, cz as u32);
                if !bbox.contains(c) {
                    continue;
                }
                let key = field.cell_key(c);
                if key.max_vertex() != vkey {
                    continue; // not in the lower star of rv
                }
                let owners = if interior || decomp.interior_to(block_id, c) {
                    // singleton owner set {block}
                    let mut o = OwnerSet::empty();
                    o.push(block_id);
                    o
                } else {
                    decomp.owners(c)
                };
                let group = match s.groups.iter().position(|g| *g == owners) {
                    Some(i) => i as u8,
                    None => {
                        s.groups.push(owners);
                        (s.groups.len() - 1) as u8
                    }
                };
                s.entries.push(Entry {
                    c,
                    key,
                    group,
                    assigned: false,
                });
            }
        }
    }

    // Seed the queues by initial unassigned-facet count.
    for i in 0..s.entries.len() {
        let cnt = count_unassigned_facets(&s.entries, i);
        let e = &s.entries[i];
        if cnt == 1 {
            s.pq_one.push(Reverse((e.key, i as u8)));
        } else {
            s.pq_zero.push(Reverse((e.key, i as u8)));
        }
    }

    // Homotopy expansion, steepest (smallest key) first.
    loop {
        if let Some(Reverse((_, i))) = s.pq_one.pop() {
            let i = i as usize;
            if s.entries[i].assigned {
                continue;
            }
            let cnt = count_unassigned_facets(&s.entries, i);
            debug_assert!(cnt <= 1, "facet counts only decrease");
            if cnt == 0 {
                let e = &s.entries[i];
                s.pq_zero.push(Reverse((e.key, i as u8)));
                continue;
            }
            let j = unique_unassigned_facet(&s.entries, i);
            grad.pair(s.entries[j].c, s.entries[i].c);
            s.entries[i].assigned = true;
            s.entries[j].assigned = true;
            notify_cofacets(s, i);
            notify_cofacets(s, j);
            continue;
        }
        if let Some(Reverse((_, i))) = s.pq_zero.pop() {
            let i = i as usize;
            if s.entries[i].assigned {
                continue;
            }
            let cnt = count_unassigned_facets(&s.entries, i);
            if cnt == 1 {
                let e = &s.entries[i];
                s.pq_one.push(Reverse((e.key, i as u8)));
                continue;
            }
            debug_assert_eq!(
                cnt, 0,
                "a popped zero-queue cell must have no unassigned facets"
            );
            grad.mark_critical(s.entries[i].c);
            s.entries[i].assigned = true;
            notify_cofacets(s, i);
            continue;
        }
        break;
    }
    debug_assert!(s.entries.iter().all(|e| e.assigned));
}

/// Count unassigned facets of entry `i` within the lower star and the
/// same owner group.
fn count_unassigned_facets(entries: &[Entry], i: usize) -> usize {
    let e = entries[i];
    entries
        .iter()
        .filter(|f| !f.assigned && f.group == e.group && is_facet_of(f.c, e.c))
        .count()
}

/// Index of the unique unassigned same-group facet of entry `i`.
fn unique_unassigned_facet(entries: &[Entry], i: usize) -> usize {
    let e = entries[i];
    entries
        .iter()
        .position(|f| !f.assigned && f.group == e.group && is_facet_of(f.c, e.c))
        .expect("caller checked count == 1")
}

/// After entry `i` was assigned, push its still-unassigned same-group
/// cofacets whose unassigned-facet count just reached one.
fn notify_cofacets(s: &mut Scratch, i: usize) {
    let e = s.entries[i];
    for k in 0..s.entries.len() {
        let g = s.entries[k];
        if g.assigned || g.group != e.group || !is_facet_of(e.c, g.c) {
            continue;
        }
        if count_unassigned_facets(&s.entries, k) == 1 {
            s.pq_one.push(Reverse((g.key, k as u8)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_grid::{Dims, ScalarField};

    fn serial_grad(f: &ScalarField) -> GradientField {
        let d = Decomposition::bisect(f.dims(), 1);
        let bf = f.extract_block(d.block(0));
        assign_gradient(&bf, &d)
    }

    #[test]
    fn ramp_has_single_min_and_max() {
        // strictly monotone field on a box: one minimum (index 0) and
        // nothing else of positive persistence; discrete construction
        // gives exactly one critical cell: the global min vertex.
        let f = ScalarField::from_fn(Dims::new(5, 5, 5), |x, y, z| (x + 5 * y + 25 * z) as f32);
        let g = serial_grad(&f);
        let census = g.census();
        assert_eq!(census[0], 1, "exactly one minimum, got {:?}", census);
        // Euler characteristic of a ball: c0 - c1 + c2 - c3 = 1
        let chi = census[0] as i64 - census[1] as i64 + census[2] as i64 - census[3] as i64;
        assert_eq!(chi, 1);
    }

    #[test]
    fn constant_field_resolved_by_sos() {
        let f = ScalarField::from_fn(Dims::new(4, 4, 4), |_, _, _| 1.0);
        let g = serial_grad(&f);
        let census = g.census();
        let chi = census[0] as i64 - census[1] as i64 + census[2] as i64 - census[3] as i64;
        assert_eq!(chi, 1, "plateau must still satisfy chi = 1: {:?}", census);
        // SoS should produce a *minimal* number of critical cells here:
        // one vertex (the SoS-smallest corner) and nothing else.
        assert_eq!(census, [1, 0, 0, 0], "SoS should fully collapse a plateau");
    }

    #[test]
    fn single_bump_critical_points() {
        // one Gaussian bump: one max in the interior; minima forced to the
        // boundary of the box
        let dims = Dims::new(9, 9, 9);
        let f = ScalarField::from_fn(dims, |x, y, z| {
            let d2 = (x as f32 - 4.0).powi(2) + (y as f32 - 4.0).powi(2) + (z as f32 - 4.0).powi(2);
            (-d2 / 8.0).exp()
        });
        let g = serial_grad(&f);
        let census = g.census();
        assert_eq!(census[3], 1, "exactly one maximum (voxel): {:?}", census);
        let chi = census[0] as i64 - census[1] as i64 + census[2] as i64 - census[3] as i64;
        assert_eq!(chi, 1);
    }

    #[test]
    fn every_cell_assigned_exactly_once() {
        let f = msp_synth::white_noise(Dims::new(7, 6, 5), 99);
        let g = serial_grad(&f);
        assert_eq!(g.n_unassigned(), 0);
        // partner symmetry
        for c in g.bbox().iter() {
            if let Some(p) = g.partner(c) {
                assert_eq!(g.partner(p), Some(c), "pairing must be mutual at {:?}", c);
                assert!(g.is_tail(c) != g.is_tail(p), "one tail, one head");
            } else {
                assert!(g.is_critical(c));
            }
        }
    }

    #[test]
    fn pairs_respect_owner_restriction() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 7);
        let d = Decomposition::bisect(dims, 4);
        for b in d.blocks() {
            let bf = f.extract_block(b);
            let g = assign_gradient(&bf, &d);
            for c in g.bbox().iter() {
                if let Some(p) = g.partner(c) {
                    assert_eq!(
                        d.owners(c).as_slice(),
                        d.owners(p).as_slice(),
                        "pair {:?} <-> {:?} must have equal owner sets",
                        c,
                        p
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_gradient_bitwise_equals_serial() {
        // every thread count, every block of a multi-block decomposition:
        // the slab-parallel sweep must produce byte-identical gradients
        let dims = Dims::new(9, 8, 7);
        let f = msp_synth::white_noise(dims, 4242);
        let d = Decomposition::bisect(dims, 4);
        for b in d.blocks() {
            let bf = f.extract_block(b);
            let serial = assign_gradient(&bf, &d);
            for threads in [1, 2, 3, 4, 16] {
                let par = assign_gradient_par(&bf, &d, threads);
                assert_eq!(
                    par.bytes(),
                    serial.bytes(),
                    "block {} threads {} diverged from serial",
                    b.id,
                    threads
                );
            }
        }
    }

    #[test]
    fn parallel_gradient_handles_thin_blocks() {
        // z extent of 1 vertex row: the slab split must degenerate to the
        // serial path instead of producing empty ranges
        let dims = Dims::new(6, 5, 1);
        let f = msp_synth::white_noise(dims, 11);
        let d = Decomposition::bisect(dims, 1);
        let bf = f.extract_block(d.block(0));
        let serial = assign_gradient(&bf, &d);
        let par = assign_gradient_par(&bf, &d, 8);
        assert_eq!(par.bytes(), serial.bytes());
    }

    #[test]
    fn flat_kernel_bitwise_equals_heap() {
        // the tentpole contract: the flat SoA kernel reproduces the
        // two-heap reference byte for byte — noise, plateau-heavy and
        // smooth fields, multi-block, every slab split
        let dims = Dims::new(9, 8, 7);
        let fields = [
            msp_synth::white_noise(dims, 173),
            ScalarField::from_fn(dims, |x, y, z| ((x / 3 + y / 2 + z / 3) % 3) as f32),
            ScalarField::from_fn(dims, |x, y, z| {
                (x as f32 * 0.7).sin() + (y as f32 * 0.5).cos() + (z as f32 * 0.9).sin()
            }),
        ];
        for (fi, f) in fields.iter().enumerate() {
            let d = Decomposition::bisect(dims, 4);
            for b in d.blocks() {
                let bf = f.extract_block(b);
                let (heap, _) = assign_gradient_kernel(&bf, &d, 1, Kernel::Heap);
                for threads in [1, 2, 3, 8] {
                    let (flat, stats) = assign_gradient_kernel(&bf, &d, threads, Kernel::Flat);
                    assert_eq!(
                        flat.bytes(),
                        heap.bytes(),
                        "field {fi} block {} threads {threads}: flat != heap",
                        b.id
                    );
                    assert_eq!(stats.cells, heap.bbox().len());
                }
            }
        }
    }

    #[test]
    fn flat_kernel_handles_degenerate_extents() {
        // 2D slab (z extent 1) and a thin column: clip masks must kill
        // the degenerate axes identically to the heap's bbox checks
        for dims in [Dims::new(6, 5, 1), Dims::new(2, 7, 6)] {
            let f = msp_synth::white_noise(dims, 31);
            let d = Decomposition::bisect(dims, 1);
            let bf = f.extract_block(d.block(0));
            let (heap, _) = assign_gradient_kernel(&bf, &d, 1, Kernel::Heap);
            for threads in [1, 4] {
                let (flat, _) = assign_gradient_kernel(&bf, &d, threads, Kernel::Flat);
                assert_eq!(flat.bytes(), heap.bytes(), "dims {dims:?}");
            }
        }
    }

    #[test]
    fn kernel_stats_report_pool_reuse() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 55);
        let d = Decomposition::bisect(dims, 1);
        let bf = f.extract_block(d.block(0));
        // warm the pool, then a steady-state run must reuse its slab
        // buffers; concurrently running tests share the global pool and
        // can steal buffers between runs, so accept any fully-warm
        // iteration instead of demanding the very next one
        let _ = assign_gradient_kernel(&bf, &d, 4, Kernel::Flat);
        let warm = (0..5).any(|_| {
            let (_, stats) = assign_gradient_kernel(&bf, &d, 4, Kernel::Flat);
            // 4 slab byte buffers + 1 ordered-key buffer per run
            assert_eq!(stats.scratch_reuse + stats.kernel_allocs, 5, "{stats:?}");
            stats.kernel_allocs == 0
        });
        assert!(warm, "no run reached steady-state pool reuse");
    }

    #[test]
    fn boundary_gradient_identical_across_blocks() {
        let dims = Dims::new(9, 9, 9);
        let f = msp_synth::white_noise(dims, 21);
        let d = Decomposition::bisect(dims, 8);
        let grads: Vec<GradientField> = d
            .blocks()
            .iter()
            .map(|b| assign_gradient(&f.extract_block(b), &d))
            .collect();
        for a in 0..grads.len() {
            for b in (a + 1)..grads.len() {
                let (ga, gb) = (&grads[a], &grads[b]);
                for c in ga.bbox().iter() {
                    if gb.bbox().contains(c) {
                        assert_eq!(
                            ga.raw(c),
                            gb.raw(c),
                            "shared cell {:?} must carry identical gradient bytes",
                            c
                        );
                    }
                }
            }
        }
    }
}
