//! One-byte-per-cell discrete gradient storage.
//!
//! "We use a refined grid to store the result of the gradient
//! computation, … and stores the discrete gradient pairing, criticality,
//! and additional temporary values compactly in one byte per element"
//! (paper §IV-C). The byte layout here:
//!
//! ```text
//! bit 0..2   partner direction (FaceDir code 0..5), valid when PAIRED
//! bit 3      TAIL: partner is a cofacet (flow leaves through this cell)
//! bit 4      PAIRED
//! bit 5      CRITICAL
//! bit 6      ASSIGNED
//! ```

use msp_grid::topology::{FaceDir, RBox};
use msp_grid::RCoord;

pub(crate) const DIR_MASK: u8 = 0b0000_0111;
pub(crate) const TAIL: u8 = 0b0000_1000;
pub(crate) const PAIRED: u8 = 0b0001_0000;
pub(crate) const CRITICAL: u8 = 0b0010_0000;
pub(crate) const ASSIGNED: u8 = 0b0100_0000;

/// The discrete gradient of one block, stored on the block's refined box
/// in **global** refined coordinates. The byte array is addressed through
/// precomputed row/plane strides (flat layout) so the per-cell index is
/// three subtractions, one multiply-add pair and no recomputed extents —
/// this is the innermost memory access of the whole local stage.
#[derive(Debug, Clone)]
pub struct GradientField {
    bbox: RBox,
    /// Refined entries per row (x extent).
    sx: u64,
    /// Refined entries per plane (x extent · y extent).
    sxy: u64,
    bytes: Vec<u8>,
}

impl GradientField {
    /// A fully unassigned gradient over `bbox`.
    pub fn new(bbox: RBox) -> Self {
        let sx = bbox.extent(0);
        GradientField {
            bbox,
            sx,
            sxy: sx * bbox.extent(1),
            bytes: vec![0; bbox.len() as usize],
        }
    }

    /// A fully unassigned gradient over `bbox` backed by a caller-owned
    /// (typically pooled) zeroed buffer of exactly `bbox.len()` bytes.
    pub(crate) fn with_buffer(bbox: RBox, bytes: Vec<u8>) -> Self {
        assert_eq!(bytes.len() as u64, bbox.len(), "buffer size mismatch");
        debug_assert!(bytes.iter().all(|&b| b == 0), "buffer must be zeroed");
        let sx = bbox.extent(0);
        GradientField {
            bbox,
            sx,
            sxy: sx * bbox.extent(1),
            bytes,
        }
    }

    /// Take the byte buffer back (for returning slab scratch to a pool).
    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Row and plane strides for flat-kernel index arithmetic.
    pub(crate) fn strides(&self) -> (u64, u64) {
        (self.sx, self.sxy)
    }

    /// Linear index of a cell (the flat kernels hoist this out of their
    /// inner loops and advance it incrementally).
    #[inline]
    pub(crate) fn linear_index(&self, c: RCoord) -> usize {
        self.index(c)
    }

    /// Write the full byte of an unassigned cell by linear index. The
    /// flat kernel's only store; keeps the one-write-per-cell contract
    /// checkable in debug builds.
    #[inline]
    pub(crate) fn write_byte(&mut self, i: usize, b: u8) {
        debug_assert_eq!(self.bytes[i], 0, "cell already assigned");
        self.bytes[i] = b;
    }

    /// Read a cell's byte by linear index (flat tracer fast path).
    #[inline]
    pub(crate) fn byte_at(&self, i: usize) -> u8 {
        self.bytes[i]
    }

    /// The block's refined box (global coordinates).
    pub fn bbox(&self) -> &RBox {
        &self.bbox
    }

    /// The raw byte array, x-fastest over [`bbox`](GradientField::bbox).
    /// Unassigned cells are 0; every assigned cell is nonzero (the
    /// `ASSIGNED` bit). Used for slab merging and bit-exactness checks.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    #[inline]
    fn index(&self, c: RCoord) -> usize {
        debug_assert!(self.bbox.contains(c));
        ((c.x - self.bbox.lo.x) as u64
            + self.sx * (c.y - self.bbox.lo.y) as u64
            + self.sxy * (c.z - self.bbox.lo.z) as u64) as usize
    }

    #[inline]
    fn byte(&self, c: RCoord) -> u8 {
        self.bytes[self.index(c)]
    }

    #[inline]
    fn byte_mut(&mut self, c: RCoord) -> &mut u8 {
        let i = self.index(c);
        &mut self.bytes[i]
    }

    /// Copy every *assigned* cell of `sub` (a gradient over a sub-box of
    /// this field's box) into this field. Row-wise: the two boxes agree
    /// on x/y extent when slabs cut only along z, but the loop handles
    /// any contained sub-box. Cells unassigned in `sub` are left alone,
    /// so adjacent z-slabs — which overlap in exactly one refined plane,
    /// each owning a disjoint subset of its cells — merge losslessly in
    /// any order (the parallel path applies them in slab order anyway).
    pub fn absorb_assigned(&mut self, sub: &GradientField) {
        let sb = sub.bbox;
        debug_assert!(self.bbox.contains(sb.lo) && self.bbox.contains(sb.hi));
        let n = sb.extent(0) as usize;
        for z in sb.lo.z..=sb.hi.z {
            for y in sb.lo.y..=sb.hi.y {
                let row = RCoord::new(sb.lo.x, y, z);
                let s0 = sub.index(row);
                let d0 = self.index(row);
                let (src, dst) = (&sub.bytes[s0..s0 + n], &mut self.bytes[d0..d0 + n]);
                for (d, &s) in dst.iter_mut().zip(src) {
                    if s != 0 {
                        *d = s;
                    }
                }
            }
        }
    }

    /// Slab-specialized [`absorb_assigned`](GradientField::absorb_assigned):
    /// a z-slab that swept vertices `z ∈ [z0, z1]` fully owns every
    /// refined plane in `[2z0, 2z1]` (a cell on an even plane `2z` has
    /// all vertices at `z`; an odd plane `2z+1` has them at `z`/`z+1` —
    /// either way the owning SoS-max vertex is inside the slab), so that
    /// span is one contiguous `copy_from_slice`. Only the up-to-one
    /// overlap plane on each side (`2z0 − 1`, `2z1 + 1`), whose cells
    /// are split between adjacent slabs, needs the conditional per-byte
    /// merge. Falls back to the general path when `sub` is not a full
    /// xy-cross-section slab of this box.
    pub fn absorb_slab(&mut self, sub: &GradientField, full_lo_z: u32, full_hi_z: u32) {
        let sb = sub.bbox;
        let is_slab = sub.sx == self.sx
            && sub.sxy == self.sxy
            && sb.lo.x == self.bbox.lo.x
            && sb.lo.y == self.bbox.lo.y
            && sb.lo.z >= self.bbox.lo.z
            && sb.hi.z <= self.bbox.hi.z
            && sb.lo.z <= full_lo_z
            && full_hi_z <= sb.hi.z;
        if !is_slab {
            self.absorb_assigned(sub);
            return;
        }
        for z in sb.lo.z..full_lo_z {
            self.merge_plane(sub, z);
        }
        let row = RCoord::new(sb.lo.x, sb.lo.y, full_lo_z);
        let s0 = sub.index(row);
        let d0 = self.index(row);
        let n = (self.sxy * (full_hi_z - full_lo_z + 1) as u64) as usize;
        let src = &sub.bytes[s0..s0 + n];
        debug_assert!(
            src.iter().all(|&b| b != 0),
            "fully-owned slab planes must be completely assigned"
        );
        self.bytes[d0..d0 + n].copy_from_slice(src);
        for z in (full_hi_z + 1)..=sb.hi.z {
            self.merge_plane(sub, z);
        }
    }

    /// Conditional byte merge of one shared refined plane of `sub`.
    fn merge_plane(&mut self, sub: &GradientField, z: u32) {
        let sb = sub.bbox;
        let row = RCoord::new(sb.lo.x, sb.lo.y, z);
        let s0 = sub.index(row);
        let d0 = self.index(row);
        let n = self.sxy as usize;
        let (src, dst) = (&sub.bytes[s0..s0 + n], &mut self.bytes[d0..d0 + n]);
        for (d, &s) in dst.iter_mut().zip(src) {
            if s != 0 {
                *d = s;
            }
        }
    }

    /// Raw byte of a cell (for boundary-equality tests and serialization).
    pub fn raw(&self, c: RCoord) -> u8 {
        self.byte(c)
    }

    pub fn is_assigned(&self, c: RCoord) -> bool {
        self.byte(c) & ASSIGNED != 0
    }

    pub fn is_critical(&self, c: RCoord) -> bool {
        self.byte(c) & CRITICAL != 0
    }

    pub fn is_paired(&self, c: RCoord) -> bool {
        self.byte(c) & PAIRED != 0
    }

    /// True when `c` is the tail of its vector (paired with a cofacet,
    /// i.e. flow passes *through* `c` into the partner).
    pub fn is_tail(&self, c: RCoord) -> bool {
        let b = self.byte(c);
        b & PAIRED != 0 && b & TAIL != 0
    }

    /// True when `c` is the head of its vector (paired with a facet).
    pub fn is_head(&self, c: RCoord) -> bool {
        let b = self.byte(c);
        b & PAIRED != 0 && b & TAIL == 0
    }

    /// The cell `c` is paired with, if any.
    pub fn partner(&self, c: RCoord) -> Option<RCoord> {
        let b = self.byte(c);
        if b & PAIRED == 0 {
            return None;
        }
        let dir = FaceDir::from_code(b & DIR_MASK);
        let axis = dir.axis as usize;
        let v = (c.get(axis) as i64 + dir.delta() as i64) as u32;
        Some(c.with(axis, v))
    }

    /// Record the discrete vector `(tail < head)` where `head` must be a
    /// cofacet of `tail` one step along some axis. Panics (debug) if
    /// either cell is already assigned.
    pub fn pair(&mut self, tail: RCoord, head: RCoord) {
        debug_assert!(!self.is_assigned(tail), "tail already assigned");
        debug_assert!(!self.is_assigned(head), "head already assigned");
        debug_assert_eq!(tail.cell_dim() + 1, head.cell_dim());
        let (axis, positive) = Self::step_between(tail, head);
        let fwd = FaceDir { axis, positive };
        *self.byte_mut(tail) = ASSIGNED | PAIRED | TAIL | fwd.code();
        *self.byte_mut(head) = ASSIGNED | PAIRED | fwd.flip().code();
    }

    fn step_between(a: RCoord, b: RCoord) -> (u8, bool) {
        for axis in 0..3 {
            let (x, y) = (a.get(axis), b.get(axis));
            if x != y {
                debug_assert!((x as i64 - y as i64).abs() == 1, "cells must be adjacent");
                for other in 0..3 {
                    if other != axis {
                        debug_assert_eq!(a.get(other), b.get(other));
                    }
                }
                return (axis as u8, y > x);
            }
        }
        panic!("cells are identical");
    }

    /// Mark `c` as a critical cell.
    pub fn mark_critical(&mut self, c: RCoord) {
        debug_assert!(!self.is_assigned(c), "cell already assigned");
        *self.byte_mut(c) = ASSIGNED | CRITICAL;
    }

    /// All critical cells, in address order. Scans the byte array
    /// linearly (x-fastest, matching `bbox.iter()` order) instead of
    /// recomputing a strided index per cell.
    pub fn critical_cells(&self) -> Vec<RCoord> {
        let mut out = Vec::new();
        let mut i = 0usize;
        for z in self.bbox.lo.z..=self.bbox.hi.z {
            for y in self.bbox.lo.y..=self.bbox.hi.y {
                for x in self.bbox.lo.x..=self.bbox.hi.x {
                    if self.bytes[i] & CRITICAL != 0 {
                        out.push(RCoord::new(x, y, z));
                    }
                    i += 1;
                }
            }
        }
        out
    }

    /// Count of critical cells per index (0..=3).
    pub fn census(&self) -> [u64; 4] {
        let mut out = [0u64; 4];
        for c in self.bbox.iter() {
            if self.is_critical(c) {
                out[c.cell_dim() as usize] += 1;
            }
        }
        out
    }

    /// Number of unassigned cells (0 after a complete assignment).
    pub fn n_unassigned(&self) -> u64 {
        self.bytes.iter().filter(|&&b| b & ASSIGNED == 0).count() as u64
    }

    /// Number of cells in gradient pairs (tails + heads; an even number
    /// for a complete assignment: cells are either paired or critical).
    pub fn n_paired_cells(&self) -> u64 {
        self.bytes.iter().filter(|&&b| b & PAIRED != 0).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_box() -> RBox {
        RBox::new(RCoord::new(0, 0, 0), RCoord::new(4, 4, 4))
    }

    #[test]
    fn fresh_field_unassigned() {
        let g = GradientField::new(small_box());
        assert_eq!(g.n_unassigned(), 125);
        assert!(!g.is_assigned(RCoord::new(1, 2, 3)));
        assert_eq!(g.partner(RCoord::new(1, 2, 3)), None);
    }

    #[test]
    fn pair_round_trip() {
        let mut g = GradientField::new(small_box());
        let v = RCoord::new(2, 2, 2);
        let e = RCoord::new(3, 2, 2);
        g.pair(v, e);
        assert!(g.is_tail(v));
        assert!(g.is_head(e));
        assert_eq!(g.partner(v), Some(e));
        assert_eq!(g.partner(e), Some(v));
        assert!(!g.is_critical(v));
        assert_eq!(g.n_unassigned(), 123);
        assert_eq!(g.n_paired_cells(), 2);
        g.mark_critical(RCoord::new(0, 0, 0));
        assert_eq!(g.n_paired_cells(), 2); // critical cells are not paired
    }

    #[test]
    fn pair_negative_direction() {
        let mut g = GradientField::new(small_box());
        let e = RCoord::new(2, 1, 2); // edge along y
        let v = RCoord::new(2, 2, 2); // its upper vertex
        g.pair(v, e);
        assert_eq!(g.partner(v), Some(e));
        assert_eq!(g.partner(e), Some(v));
    }

    #[test]
    fn critical_census() {
        let mut g = GradientField::new(small_box());
        g.mark_critical(RCoord::new(0, 0, 0)); // vertex
        g.mark_critical(RCoord::new(1, 0, 0)); // edge
        g.mark_critical(RCoord::new(1, 1, 0)); // quad
        g.mark_critical(RCoord::new(1, 1, 1)); // voxel
        g.mark_critical(RCoord::new(3, 3, 3)); // voxel
        assert_eq!(g.census(), [1, 1, 1, 2]);
        assert_eq!(g.critical_cells().len(), 5);
    }

    #[test]
    fn absorb_assigned_merges_overlapping_slabs() {
        // two z-slabs sharing the refined plane z=3, each assigning a
        // disjoint subset of it, must merge into one complete field
        let mut a = GradientField::new(RBox::new(RCoord::new(0, 0, 0), RCoord::new(4, 4, 3)));
        let mut b = GradientField::new(RBox::new(RCoord::new(0, 0, 3), RCoord::new(4, 4, 4)));
        a.pair(RCoord::new(2, 2, 2), RCoord::new(2, 2, 3)); // reaches into the shared plane
        b.mark_critical(RCoord::new(0, 0, 4));
        b.mark_critical(RCoord::new(1, 0, 3)); // on the shared plane, owned by b
        let mut g = GradientField::new(small_box());
        g.absorb_assigned(&a);
        g.absorb_assigned(&b);
        assert_eq!(g.partner(RCoord::new(2, 2, 2)), Some(RCoord::new(2, 2, 3)));
        assert!(g.is_tail(RCoord::new(2, 2, 2)));
        assert!(g.is_critical(RCoord::new(0, 0, 4)));
        assert!(g.is_critical(RCoord::new(1, 0, 3)));
        assert_eq!(g.n_unassigned(), 125 - 4);
        assert_eq!(g.bytes().len(), 125);
    }

    #[test]
    fn absorb_slab_matches_absorb_assigned() {
        // a slab over vertices z ∈ [0, 1] of a 0..=4 refined box: fully
        // owned planes [0, 2], shared plane 3 partially assigned
        let sub_box = RBox::new(RCoord::new(0, 0, 0), RCoord::new(4, 4, 3));
        let mut sub = GradientField::new(sub_box);
        for c in sub_box.iter() {
            if c.z <= 2 {
                sub.mark_critical(c); // "fully assigned" stand-in bytes
            } else if (c.x + c.y) % 2 == 0 {
                sub.mark_critical(c); // split plane: half the cells
            }
        }
        let mut via_slab = GradientField::new(small_box());
        via_slab.absorb_slab(&sub, 0, 2);
        let mut via_general = GradientField::new(small_box());
        via_general.absorb_assigned(&sub);
        assert_eq!(via_slab.bytes(), via_general.bytes());
        // a sub-box that is not a full cross-section slab must fall back
        let part_box = RBox::new(RCoord::new(1, 1, 0), RCoord::new(3, 3, 1));
        let mut part = GradientField::new(part_box);
        part.mark_critical(RCoord::new(2, 2, 1));
        let mut d = GradientField::new(small_box());
        d.absorb_slab(&part, 0, 1);
        assert!(d.is_critical(RCoord::new(2, 2, 1)));
    }

    #[test]
    #[should_panic]
    fn double_assign_panics() {
        let mut g = GradientField::new(small_box());
        let v = RCoord::new(2, 2, 2);
        g.mark_critical(v);
        g.mark_critical(v);
    }
}
